"""Cross-module integration: the scenarios the tutorial motivates,
exercised end to end through the public API."""

import numpy as np
import pytest

from repro.core.pipeline import Pipeline, PipelineContext, stages
from repro.fsm.gspan import mine_frequent_subgraphs
from repro.fsm.single_graph import SingleGraphFSM
from repro.gnn.distributed import DistributedTrainer
from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph
from repro.graph.csr import Graph
from repro.graph.generators import (
    barabasi_albert,
    planted_motif_graph,
    planted_partition,
    random_labeled_transactions,
)
from repro.graph.partition import metis_like_partition
from repro.graph.transactions import TransactionDatabase
from repro.matching.backtrack import count_matches
from repro.matching.pattern import PatternGraph, triangle_pattern
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import MatchProgram
from repro.tlav import pagerank, wcc


class TestAnalyticsToMLHandoff:
    """Figure 1 end to end: analytics artifacts feed ML stages."""

    def test_vertex_scores_plus_embeddings_plus_classifier(self):
        g, labels = planted_partition(2, 25, p_in=0.3, p_out=0.02, seed=9)
        rng = np.random.default_rng(0)
        train = np.zeros(g.num_vertices, dtype=bool)
        train[rng.permutation(g.num_vertices)[:25]] = True
        ctx = Pipeline(
            [
                stages.pagerank_scores(),
                stages.structural_vertex_features(),
                stages.deepwalk(dim=16, walks_per_vertex=6, seed=0),
                stages.node_classifier(labels, train),
            ]
        ).run(PipelineContext(graph=g))
        assert ctx.artifacts["node_ml"]["accuracy"] > 0.75

    def test_gnn_on_pipeline_features(self):
        """Topology features from the analytics stage feed a GNN."""
        g, labels = planted_partition(3, 20, p_in=0.25, p_out=0.02, seed=3)
        ctx = Pipeline([stages.structural_vertex_features()]).run(
            PipelineContext(graph=g)
        )
        features = ctx.artifacts["features"]
        rng = np.random.default_rng(1)
        train = np.zeros(g.num_vertices, dtype=bool)
        train[rng.permutation(g.num_vertices)[:30]] = True
        model = NodeClassifier(features.shape[1], 16, 3, seed=0)
        report = train_full_graph(
            model, g, features, labels, train, ~train, epochs=30, lr=0.05
        )
        assert report.losses[-1] < report.losses[0]


class TestMinedPatternsAsQueries:
    """FSM output feeds the matching engines (structure analytics loop)."""

    def test_single_graph_patterns_are_matchable(self):
        motif = Graph.from_edges(
            [(0, 1), (1, 2), (2, 0)], vertex_labels=[5, 5, 5]
        )
        g = planted_motif_graph(
            n=90, p=0.02, motif=motif, copies=6, num_vertex_labels=3, seed=1
        )
        miner = SingleGraphFSM(min_support=4, max_edges=3)
        for mined in miner.run(g):
            pattern = mined.to_pattern()
            # Every frequent pattern must actually occur in the graph.
            assert count_matches(g, pattern) > 0

    def test_transaction_patterns_queryable_via_task_engine(self):
        db = TransactionDatabase(
            random_labeled_transactions(10, 8, 0.3, 2, seed=7)
        )
        patterns = mine_frequent_subgraphs(db, min_support=6, max_edges=2)
        assert patterns
        target = patterns[-1]
        pattern = PatternGraph(target.to_graph())
        hits = 0
        for t in db:
            engine = TaskEngine(
                t.graph, MatchProgram(pattern), num_workers=2,
                collect_results=False,
            )
            engine.run()
            if engine.result_count > 0:
                hits += 1
        assert hits == target.support


class TestTLAVPlusTLAG:
    """Both engine families over one graph, consistent answers."""

    def test_component_restricted_matching(self):
        g = barabasi_albert(120, 2, seed=5)
        components = wcc(g)
        assert len(set(components.tolist())) == 1
        scores = pagerank(g, iterations=10)
        top = int(np.argmax(scores))
        # The hub participates in some triangle of this graph, found by
        # the task engine's anchored matching.
        from repro.matching.backtrack import match

        total = count_matches(g, triangle_pattern())
        engine = TaskEngine(
            g, MatchProgram(triangle_pattern()), num_workers=4,
            collect_results=False,
        )
        engine.run()
        assert engine.result_count == total
        del top


class TestDistributedConsistency:
    """The same model trained via three execution paths agrees."""

    def test_three_ways_same_losses(self):
        g, labels = planted_partition(3, 18, p_in=0.25, p_out=0.02, seed=8)
        rng = np.random.default_rng(2)
        n = g.num_vertices
        features = np.eye(3)[labels] + rng.normal(0, 1.0, size=(n, 3))
        train = np.zeros(n, dtype=bool)
        train[rng.permutation(n)[:27]] = True

        single = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train, epochs=6, lr=0.05,
        )
        for num_parts in (2, 5):
            trainer = DistributedTrainer(
                NodeClassifier(3, 8, 3, seed=0), g,
                metis_like_partition(g, num_parts, seed=0),
                features, labels, lr=0.05,
            )
            report = trainer.train(train, epochs=6)
            assert np.allclose(report.losses, single.losses)
