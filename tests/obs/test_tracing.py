"""Unit tests for span-based tracing (wall + simulated clocks)."""

import json

from repro.obs import Span, Tracer


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner", "inner"]

    def test_siblings_after_close_are_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_find_searches_all_depths(self):
        tracer = Tracer()
        with tracer.span("run"):
            with tracer.span("step"):
                pass
            with tracer.span("step"):
                pass
        assert len(tracer.find("step")) == 2
        assert tracer.total_wall("step") >= 0.0


class TestSpanClocks:
    def test_wall_time_is_positive_after_finish(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.finished
        assert span.wall_seconds >= 0.0
        assert span.wall_end is not None

    def test_sim_clock_callable_sampled_at_start_and_end(self):
        clock = {"t": 10.0}
        tracer = Tracer()
        with tracer.span("s", sim_clock=lambda: clock["t"]) as span:
            clock["t"] = 14.5
        assert span.sim_start == 10.0
        assert span.sim_end == 14.5
        assert span.sim_duration == 4.5

    def test_tracer_level_sim_clock_is_inherited(self):
        clock = {"t": 0.0}
        tracer = Tracer(sim_clock=lambda: clock["t"])
        with tracer.span("s") as span:
            clock["t"] = 3.0
        assert span.sim_duration == 3.0

    def test_set_sim_without_clock(self):
        span = Span("s").start().finish()
        assert span.sim_duration is None
        span.set_sim(2, 9)
        assert span.sim_start == 2.0
        assert span.sim_duration == 7.0

    def test_attrs_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", superstep=3) as span:
            span.set("active", 17)
        assert span.attrs == {"superstep": 3, "active": 17}


class TestExport:
    def test_as_dict_preserves_tree(self):
        tracer = Tracer()
        with tracer.span("outer", k="v") as outer:
            outer.set_sim(0, 5)
            with tracer.span("inner"):
                pass
        d = tracer.as_dict()
        (root,) = d["spans"]
        assert root["name"] == "outer"
        assert root["attrs"] == {"k": "v"}
        assert root["sim_duration"] == 5.0
        assert [c["name"] for c in root["children"]] == ["inner"]
        assert "children" not in root["children"][0]  # leaf omits empty keys

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", idx=1):
                pass
        parsed = json.loads(tracer.to_json())
        assert parsed == tracer.as_dict()

    def test_merge_extends_roots(self):
        a, b = Tracer(), Tracer()
        with a.span("x"):
            pass
        with b.span("y"):
            pass
        a.merge(b)
        assert [s.name for s in a.roots] == ["x", "y"]
