"""End-to-end: engines emit into a shared registry, views stay consistent."""

import numpy as np
import pytest

from repro.core.pipeline import (
    Pipeline,
    PipelineContext,
    PipelineResult,
    stages,
)
from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph
from repro.graph.generators import barabasi_albert, planted_partition
from repro.graph.partition import hash_partition
from repro.obs import MetricsRegistry, Tracer
from repro.tlag.distributed import DistributedTaskEngine
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import TriangleProgram


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(150, 3, seed=11)


class TestTLAGCountersMatchEngineStats:
    """The refactor's contract: registry counters ARE the stats."""

    def test_serial_engine(self, graph):
        obs = MetricsRegistry()
        engine = TaskEngine(
            graph, TriangleProgram(), num_workers=4, task_budget=32,
            collect_results=False, obs=obs,
        )
        engine.run()
        stats = engine.stats
        assert stats.tasks_executed > 0
        assert obs.counter("tlag.tasks_executed").total == stats.tasks_executed
        assert obs.counter("tlag.tasks_forked").total == stats.tasks_forked
        assert obs.counter("tlag.steals").total == stats.steals
        assert obs.counter("tlag.total_ops").total == stats.total_ops
        assert obs.gauge("tlag.peak_pending_tasks").value() == \
            stats.peak_pending_tasks
        busy = obs.gauge("tlag.worker_busy")
        assert [int(busy.value(worker=w)) for w in range(4)] == \
            stats.worker_busy
        # The task-ops histogram saw every task exactly once.
        assert obs.histogram("tlag.task_ops").count() == stats.tasks_executed

    def test_distributed_engine(self, graph):
        obs = MetricsRegistry()
        engine = DistributedTaskEngine(
            graph, TriangleProgram(), hash_partition(graph, 3),
            task_budget=32, collect_results=False, obs=obs,
        )
        engine.run()
        assert engine.tasks_executed > 0
        assert obs.counter("tlag.tasks_executed").total == \
            engine.tasks_executed
        assert obs.counter("tlag.steals").total == engine.steals
        # Cache counters agree with the per-worker CacheStats views.
        reads = obs.counter("tlag.cache.reads")
        assert reads.value(kind="local") == \
            sum(s.local_reads for s in engine.cache_stats)
        assert reads.value(kind="hit") == \
            sum(s.cache_hits for s in engine.cache_stats)
        assert reads.value(kind="pull") == \
            sum(s.remote_pulls for s in engine.cache_stats)
        assert obs.counter("tlag.cache.bytes_pulled").total == \
            sum(s.bytes_pulled for s in engine.cache_stats)

    def test_distributed_network_shares_the_registry(self, graph):
        obs = MetricsRegistry()
        engine = DistributedTaskEngine(
            graph, TriangleProgram(), hash_partition(graph, 3),
            cache_capacity=2, collect_results=False, obs=obs,
        )
        engine.run()
        # One snapshot holds engine AND network counters.
        assert engine.network.registry is obs
        assert "cluster.messages" in obs
        assert "tlag.tasks_executed" in obs
        assert obs.counter("cluster.bytes").total == \
            engine.network.stats.total_bytes

    def test_run_span_carries_simulated_makespan(self, graph):
        tracer = Tracer()
        engine = TaskEngine(
            graph, TriangleProgram(), num_workers=4, task_budget=32,
            collect_results=False, tracer=tracer,
        )
        engine.run()
        (span,) = tracer.find("tlag.run")
        assert span.finished
        assert span.sim_duration == engine.stats.makespan


class TestPipelineResult:
    def test_run_accepts_graph_directly(self, graph):
        result = Pipeline([stages.pagerank_scores(iterations=5)]).run(graph)
        assert isinstance(result, PipelineResult)
        assert result.graph is graph
        assert "scores" in result
        assert len(result["scores"]) == graph.num_vertices

    def test_legacy_context_pattern_still_works(self, graph):
        ctx = PipelineContext(graph=graph)
        result = Pipeline([stages.pagerank_scores(iterations=5)]).run(ctx)
        # Old call sites read result.artifacts — the context's own dict.
        assert result.artifacts is ctx.artifacts
        assert "scores" in ctx.artifacts

    def test_rejects_unknown_input(self):
        with pytest.raises(TypeError):
            Pipeline([]).run(42)

    def test_per_stage_spans_and_metrics(self, graph):
        obs = MetricsRegistry()
        result = Pipeline(
            [stages.pagerank_scores(iterations=5),
             stages.structural_vertex_features()],
            obs=obs,
        ).run(graph)
        assert [s.name for s in result.spans] == \
            ["stage:pagerank", "stage:topology-features"]
        assert set(result.stage_seconds) == \
            {"stage:pagerank", "stage:topology-features"}
        assert result.total_seconds == sum(result.stage_seconds.values())
        assert obs.counter("core.pipeline.stages").total == 2
        assert obs.histogram("core.pipeline.stage_seconds").count(
            stage="pagerank") == 1

    def test_spans_nest_under_ambient_tracer(self, graph):
        tracer = Tracer()
        pipe = Pipeline([stages.pagerank_scores(iterations=5)], tracer=tracer)
        with tracer.span("outer"):
            pipe.run(graph)
        (outer,) = tracer.roots
        assert [c.name for c in outer.children] == ["stage:pagerank"]


class TestGNNTrainingEmission:
    def test_train_report_mirrors_into_registry(self):
        g, labels = planted_partition(3, 16, p_in=0.25, p_out=0.02, seed=3)
        n = g.num_vertices
        rng = np.random.default_rng(0)
        features = np.eye(3)[labels] + rng.normal(0, 1.0, size=(n, 3))
        train_mask = np.zeros(n, dtype=bool)
        train_mask[rng.permutation(n)[:24]] = True

        obs = MetricsRegistry()
        report = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, epochs=5, lr=0.05, obs=obs,
        )
        assert report.steps == 5
        assert obs.counter("gnn.train.steps").total == report.steps
        assert obs.counter("gnn.train.gathered_features").total == \
            report.gathered_features
        assert obs.histogram("gnn.train.loss").count() == 5
