"""Every stats/report object in the library satisfies ``StatsView``."""

import json

import numpy as np
import pytest

from repro.cluster.comm import CommStats, Message, Network
from repro.gnn.caching import CacheReport
from repro.gnn.pipeline import ScheduleResult
from repro.gnn.staleness import StalenessTrace
from repro.gnn.train import TrainReport
from repro.obs import StatsView, json_safe, merge_counters
from repro.tlag.distributed import CacheStats
from repro.tlag.engine import EngineStats
from repro.tlav.engine import SuperstepStats


def _views():
    return [
        EngineStats(num_workers=2),
        CommStats(num_workers=2),
        SuperstepStats(superstep=1, active_vertices=5,
                       messages_sent=9, messages_after_combine=7),
        TrainReport(),
        CacheReport(accesses=10, hits=4, feature_dim=8),
        ScheduleResult(makespan=10.0, busy={"sample": 6.0}),
        StalenessTrace(staleness=1, makespan=10.0, busy_time=8.0,
                       idle_time=2.0, steps_per_worker=5),
        CacheStats(local_reads=3, cache_hits=2, remote_pulls=1,
                   bytes_pulled=64),
    ]


@pytest.mark.parametrize("view", _views(), ids=lambda v: type(v).__name__)
def test_satisfies_protocol(view):
    assert isinstance(view, StatsView)


@pytest.mark.parametrize("view", _views(), ids=lambda v: type(v).__name__)
def test_as_dict_round_trips_through_json(view):
    d = view.as_dict()
    assert isinstance(d, dict)
    assert json.loads(view.to_json()) == json.loads(json.dumps(json_safe(d)))


@pytest.mark.parametrize("view", _views(), ids=lambda v: type(v).__name__)
def test_merge_returns_self(view):
    import copy

    other = copy.deepcopy(view)
    assert view.merge(other) is view


class TestEngineStatsView:
    def test_counters_read_back_through_properties(self):
        s = EngineStats(num_workers=2)
        s.record_task(worker=0, ops=10, forked=2, clock=10)
        s.record_task(worker=1, ops=4, forked=0, clock=4)
        s.record_steal()
        s.record_pending(3)
        assert s.tasks_executed == 2
        assert s.tasks_forked == 2
        assert s.steals == 1
        assert s.total_ops == 14
        assert s.worker_busy == [10, 4]
        assert s.peak_pending_tasks == 3
        assert s.makespan == 10

    def test_merge_adds_counters_maxes_busy(self):
        a, b = EngineStats(num_workers=2), EngineStats(num_workers=2)
        a.record_task(0, ops=10, forked=0, clock=10)
        b.record_task(0, ops=6, forked=1, clock=6)
        b.record_task(1, ops=20, forked=0, clock=20)
        b.record_steal()
        a.merge(b)
        assert a.tasks_executed == 3
        assert a.total_ops == 36
        assert a.steals == 1
        assert a.worker_busy == [10, 20]  # per-worker max, not sum
        assert a.makespan == 20

    def test_exported_dict_has_derived_fields(self):
        s = EngineStats(num_workers=2)
        s.record_task(0, ops=8, forked=0, clock=8)
        d = s.as_dict()
        assert d["makespan"] == 8
        assert d["balance"] == 2.0  # one busy worker of two


class TestCommStatsView:
    def _stats(self):
        s = CommStats(num_workers=2)
        s.record(Message(src=0, dst=0, payload=b"", nbytes=4, tag="data"))
        s.record(Message(src=0, dst=1, payload=b"", nbytes=8, tag="data"))
        s.record(Message(src=1, dst=0, payload=b"", nbytes=2, tag="ctl"))
        return s

    def test_locality_split(self):
        s = self._stats()
        assert s.messages_local == 1
        assert s.messages_remote == 2
        assert s.bytes_local == 4
        assert s.bytes_remote == 10
        assert s.total_messages == 3
        assert s.total_bytes == 14

    def test_by_tag(self):
        s = self._stats()
        assert s.by_tag == {"data": 12, "ctl": 2}

    def test_merge_pads_link_matrix(self):
        a = CommStats(num_workers=2)
        a.record(Message(src=0, dst=1, payload=b"", nbytes=2, tag="t"))
        b = CommStats(num_workers=3)
        b.record(Message(src=2, dst=0, payload=b"", nbytes=3, tag="t"))
        a.merge(b)
        assert a.num_workers == 3
        assert a.link_bytes.shape == (3, 3)
        assert a.link_bytes[0, 1] == 2
        assert a.link_bytes[2, 0] == 3
        assert a.total_bytes == 5

    def test_network_stats_share_registry(self):
        net = Network(num_workers=2)
        net.send(0, 1, np.zeros(4), tag="x")
        assert net.registry is net.stats.registry
        assert net.registry.counter("cluster.messages").total == 1
        assert net.stats.bytes_remote == 32  # 4 float64s


class TestMergeCountersHelper:
    def test_sum_max_concat(self):
        class Obj:
            def __init__(self, n, m, items):
                self.n, self.m, self.items = n, m, list(items)

        a, b = Obj(1, 5, ["x"]), Obj(2, 3, ["y"])
        out = merge_counters(a, b, sum_fields=("n",), max_fields=("m",),
                             concat_fields=("items",))
        assert out is a
        assert (a.n, a.m, a.items) == (3, 5, ["x", "y"])


class TestJsonSafe:
    def test_numpy_and_nonfinite(self):
        out = json_safe({
            "i": np.int64(3),
            "f": np.float32(1.5),
            "arr": np.arange(3),
            "nan": float("nan"),
            "set": {2, 1},
        })
        assert out == {"i": 3, "f": 1.5, "arr": [0, 1, 2],
                       "nan": "nan", "set": [1, 2]}
        json.dumps(out)  # actually serializable
