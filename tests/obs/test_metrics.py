"""Unit tests for the metrics registry: counters, gauges, histograms."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero(self):
        c = Counter("x")
        assert c.value() == 0
        assert c.total == 0

    def test_inc_default_and_amount(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value() == 5

    def test_labeled_series_are_independent(self):
        c = Counter("bytes")
        c.inc(10, locality="local")
        c.inc(3, locality="remote")
        c.inc(2, locality="remote")
        assert c.value(locality="local") == 10
        assert c.value(locality="remote") == 5
        assert c.total == 15

    def test_label_order_is_irrelevant(self):
        c = Counter("x")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_monotonic(self):
        c = Counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_merge_adds_by_series(self):
        a, b = Counter("x"), Counter("x")
        a.inc(1, k="a")
        b.inc(2, k="a")
        b.inc(5, k="b")
        a.merge(b)
        assert a.value(k="a") == 3
        assert a.value(k="b") == 5

    def test_merge_rejects_other_kinds_and_names(self):
        with pytest.raises(ValueError):
            Counter("x").merge(Gauge("x"))
        with pytest.raises(ValueError):
            Counter("x").merge(Counter("y"))

    def test_reset(self):
        c = Counter("x")
        c.inc(3, k="a")
        c.reset()
        assert c.total == 0

    def test_series_rendering(self):
        c = Counter("x")
        c.inc(2, worker="0")
        c.inc(1)
        assert c.series() == {"": 1, "worker=0": 2}


class TestGauge:
    def test_set_and_value(self):
        g = Gauge("depth")
        g.set(7)
        assert g.value() == 7

    def test_inc_dec(self):
        g = Gauge("depth")
        g.inc(3)
        g.dec()
        assert g.value() == 2

    def test_set_max_keeps_peak(self):
        g = Gauge("peak")
        g.set_max(5)
        g.set_max(3)
        g.set_max(9)
        assert g.value() == 9

    def test_merge_takes_max_per_series(self):
        a, b = Gauge("peak"), Gauge("peak")
        a.set(5, worker="0")
        b.set(3, worker="0")
        b.set(8, worker="1")
        a.merge(b)
        assert a.value(worker="0") == 5
        assert a.value(worker="1") == 8


class TestHistogram:
    def test_count_sum_mean(self):
        h = Histogram("ops")
        for v in (1, 2, 3, 10):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == 16
        assert h.mean() == 4.0

    def test_min_max_tracked(self):
        h = Histogram("ops")
        h.observe(5)
        h.observe(100)
        s = h.series()[""]
        assert s["min"] == 5
        assert s["max"] == 100

    def test_custom_buckets_and_overflow(self):
        h = Histogram("t", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5)
        h.observe(50)  # overflow bucket
        buckets = h.series()[""]["buckets"]
        assert buckets == {"1.0": 1, "10.0": 1, "+inf": 1}

    def test_percentile_estimate(self):
        h = Histogram("t", buckets=(1.0, 2.0, 4.0, 8.0))
        for v in (1, 1, 2, 2, 8):
            h.observe(v)
        assert h.percentile(0.5) <= 2.0
        assert h.percentile(1.0) == 8.0

    def test_percentile_empty(self):
        assert Histogram("t").percentile(0.5) == 0.0

    def test_labeled_series(self):
        h = Histogram("t")
        h.observe(1, stage="a")
        h.observe(2, stage="b")
        assert h.count(stage="a") == 1
        assert h.count(stage="b") == 1
        assert h.count() == 0

    def test_merge_combines_counts(self):
        a, b = Histogram("t"), Histogram("t")
        a.observe(1)
        b.observe(100)
        a.merge(b)
        assert a.count() == 2
        assert a.series()[""]["min"] == 1
        assert a.series()[""]["max"] == 100

    def test_merge_rejects_differing_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(1,)).merge(Histogram("t", buckets=(2,)))

    def test_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_contains_get_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "b" in reg
        assert reg.get("c") is None
        assert reg.names() == ["a", "b"]

    def test_as_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").inc(2)
        snap = reg.as_dict()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["description"] == "a counter"
        assert snap["c"]["series"] == {"": 2}

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2, k="v")
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3)
        parsed = json.loads(reg.to_json(indent=2))
        assert parsed == reg.as_dict()

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1)
        reg.reset()
        assert reg.counter("c").total == 0
        assert reg.histogram("h").count() == 0


def _registry(counter=0, gauge=0, hist=()):
    reg = MetricsRegistry()
    if counter:
        reg.counter("c").inc(counter)
    if gauge:
        reg.gauge("g").set(gauge)
    for v in hist:
        reg.histogram("h").observe(v)
    return reg


class TestRegistryMerge:
    def test_merge_disjoint_metrics(self):
        a = _registry(counter=1)
        b = MetricsRegistry()
        b.gauge("other").set(5)
        a.merge(b)
        assert a.counter("c").total == 1
        assert a.gauge("other").value() == 5

    def test_merge_does_not_alias_source(self):
        a, b = MetricsRegistry(), _registry(counter=3)
        a.merge(b)
        a.counter("c").inc(10)
        assert b.counter("c").total == 3  # source untouched

    def test_merge_is_associative(self):
        def snap(*regs):
            acc = MetricsRegistry()
            for r in regs:
                acc.merge(r)
            return acc.as_dict()

        a = _registry(counter=1, gauge=5, hist=(1, 2))
        b = _registry(counter=2, gauge=9, hist=(100,))
        c = _registry(counter=4, gauge=7, hist=(3,))
        # (a + b) + c == a + (b + c), element-wise on the snapshot.
        left = MetricsRegistry().merge(a).merge(b).merge(c).as_dict()
        bc = MetricsRegistry().merge(b).merge(c)
        right = MetricsRegistry().merge(a).merge(bc).as_dict()
        assert left == right == snap(a, b, c)

    def test_merge_is_commutative(self):
        a = _registry(counter=1, gauge=5, hist=(1, 2))
        b = _registry(counter=2, gauge=9, hist=(100,))
        ab = MetricsRegistry().merge(a).merge(b).as_dict()
        ba = MetricsRegistry().merge(b).merge(a).as_dict()
        assert ab == ba
