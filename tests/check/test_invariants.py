"""Comparators and structural invariants used by every check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check.invariants import (
    bounded_error,
    csr_well_formed,
    partition_consistent,
    same_bits,
    same_multiset,
    same_stats,
    same_values,
)
from repro.graph.csr import Graph
from repro.graph.generators import erdos_renyi
from repro.graph.partition import (
    Partition,
    hash_partition,
    vertex_cut_partition,
)
from repro.matching.backtrack import MatchStats


class TestSameBits:
    def test_equal_arrays(self):
        a = np.arange(5, dtype=np.int64)
        assert same_bits(a, a.copy()) == []

    def test_value_mismatch_reports_first_index(self):
        a = np.zeros(4)
        b = a.copy()
        b[2] = 1.0
        (msg,) = same_bits(a, b)
        assert "flat index 2" in msg

    def test_dtype_mismatch_is_a_violation(self):
        a = np.zeros(3, dtype=np.int64)
        assert same_bits(a, a.astype(np.int32))

    def test_shape_mismatch(self):
        assert same_bits(np.zeros(3), np.zeros(4))

    def test_array_vs_list_is_a_type_violation(self):
        assert same_bits(np.zeros(3), [0.0, 0.0, 0.0])

    def test_scalars_fall_back_to_values(self):
        assert same_bits(3, 3) == []
        assert same_bits(3, 4)


class TestComparators:
    def test_same_values_first_difference(self):
        (msg,) = same_values([1, 2, 3], [1, 9, 3])
        assert "[1]" in msg

    def test_same_multiset_accepts_permutation(self):
        assert same_multiset([(1, 2), (3, 4)], [(3, 4), (1, 2)]) == []

    def test_same_multiset_catches_multiplicity(self):
        assert same_multiset([1, 1, 2], [1, 2, 2])

    def test_bounded_error_within(self):
        assert bounded_error([1.0, 2.0], [1.0 + 1e-13, 2.0], atol=1e-12) == []

    def test_bounded_error_exceeded(self):
        (msg,) = bounded_error([1.0], [1.1], atol=1e-3)
        assert "exceed" in msg

    def test_same_stats_on_statsviews(self):
        a, b = MatchStats(), MatchStats()
        a.embeddings = b.embeddings = 7
        assert same_stats(a, b) == []
        b.embeddings = 8
        assert any("embeddings" in m for m in same_stats(a, b))


class TestCsrWellFormed:
    def test_generated_graph_passes(self):
        assert csr_well_formed(erdos_renyi(40, 0.2, seed=1)) == []

    def test_catches_out_of_range_neighbor(self):
        graph = erdos_renyi(12, 0.3, seed=2)
        indices = graph.indices.copy()
        indices[0] = 99
        bad = Graph(graph.indptr.copy(), indices, directed=graph.directed)
        assert csr_well_formed(bad)

    def test_catches_asymmetric_undirected_graph(self):
        # 0->1 present, 1->0 absent.
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        bad = Graph(indptr, indices, directed=False)
        assert csr_well_formed(bad)

    def test_catches_unsorted_rows(self):
        indptr = np.array([0, 2, 3, 4], dtype=np.int64)
        indices = np.array([2, 1, 0, 0], dtype=np.int64)
        bad = Graph(indptr, indices, directed=True)
        assert any("sorted" in m for m in csr_well_formed(bad))


class TestPartitionConsistent:
    def test_hash_partition_consistent(self):
        graph = erdos_renyi(40, 0.15, seed=3)
        assert partition_consistent(graph, hash_partition(graph, 4)) == []

    def test_vertex_cut_consistent_after_fix(self):
        graph = erdos_renyi(40, 0.15, seed=3)
        part = vertex_cut_partition(graph, 4, seed=1)
        assert partition_consistent(graph, part) == []

    def test_catches_phantom_vertex_cut_edge_cut(self):
        """A vertex-cut partition reporting cut > 0 must be flagged.

        Simulated by dropping edges from edge_assignment so the replica
        sets no longer cover both endpoints (the pre-fix symptom).
        """
        graph = erdos_renyi(20, 0.25, seed=4)
        part = vertex_cut_partition(graph, 3, seed=1)
        broken = dict(list(part.edge_assignment.items())[: graph.num_edges // 2])
        bad = Partition(
            part.num_parts, part.assignment.copy(), edge_assignment=broken
        )
        violations = partition_consistent(graph, bad)
        assert violations  # coverage and/or nonzero-cut flagged

    def test_catches_incomplete_assignment(self):
        graph = erdos_renyi(10, 0.3, seed=5)
        bad = Partition(2, np.zeros(5, dtype=np.int64))
        assert partition_consistent(graph, bad)
