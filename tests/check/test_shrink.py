"""Greedy shrinking of failing cases."""

from __future__ import annotations

from repro.check.registry import Check, INVARIANT
from repro.check.shrink import shrink_case


def make_check(run, floors):
    return Check(
        name="t.shrink", subsystem="t", relation=INVARIANT,
        gen=lambda rng: {}, run=run, floors=floors,
    )


class TestShrink:
    def test_shrinks_to_threshold(self):
        """Failure iff n >= 10: the shrinker must land exactly on 10."""
        check = make_check(
            lambda p: ["too big"] if p["n"] >= 10 else [], floors={"n": 1}
        )
        result = shrink_case(check, {"n": 1000})
        assert result.params["n"] == 10
        assert result.violations == ["too big"]
        assert result.steps >= 1

    def test_multiple_parameters_all_reduced(self):
        check = make_check(
            lambda p: ["bad"] if p["a"] >= 3 and p["b"] >= 5 else [],
            floors={"a": 1, "b": 1},
        )
        result = shrink_case(check, {"a": 50, "b": 40})
        assert result.params == {"a": 3, "b": 5}

    def test_respects_floors(self):
        check = make_check(lambda p: ["always"], floors={"n": 4})
        result = shrink_case(check, {"n": 100})
        assert result.params["n"] == 4

    def test_unfloored_parameters_untouched(self):
        """Seeds (no floor declared) must never be shrunk."""
        check = make_check(lambda p: ["always"], floors={"n": 1})
        result = shrink_case(check, {"n": 8, "seed": 12345})
        assert result.params["seed"] == 12345
        assert result.params["n"] == 1

    def test_exception_counts_as_failing(self):
        def run(p):
            if p["n"] >= 2:
                raise RuntimeError("boom")
            return []

        check = make_check(run, floors={"n": 1})
        result = shrink_case(check, {"n": 64})
        assert result.params["n"] == 2
        assert "RuntimeError" in result.violations[0]

    def test_non_failing_case_returned_unchanged(self):
        check = make_check(lambda p: [], floors={"n": 1})
        result = shrink_case(check, {"n": 9})
        assert result.params == {"n": 9}
        assert result.steps == 0

    def test_max_evals_bounds_work(self):
        calls = []

        def run(p):
            calls.append(p)
            return ["always"]

        check = make_check(run, floors={"n": 1})
        shrink_case(check, {"n": 1 << 40}, max_evals=17)
        assert len(calls) <= 17

    def test_float_parameters_shrink(self):
        check = make_check(
            lambda p: ["bad"] if p["p"] > 0.25 else [], floors={"p": 0.0}
        )
        result = shrink_case(check, {"p": 0.9})
        assert 0.25 < result.params["p"] <= 0.9
        assert result.params["p"] < 0.9  # strictly reduced

    def test_trail_records_each_accepted_step(self):
        check = make_check(
            lambda p: ["bad"] if p["n"] >= 6 else [], floors={"n": 1}
        )
        result = shrink_case(check, {"n": 24})
        assert result.trail
        assert all(list(step) == ["n"] for step in result.trail)
