"""The ``repro check`` CLI subcommand (the CI gate's entry point)."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main


class TestCheckCli:
    def test_list(self, capsys):
        assert main(["check", "--list"]) == 0
        out = capsys.readouterr().out
        assert "tlav.pagerank.engine_vs_dense" in out
        assert "bit_identical" in out

    def test_single_check_runs_green(self, capsys):
        code = main(["check", "--only", "parallel.chunking.spans_cover"])
        assert code == 0
        out = capsys.readouterr().out
        assert "OK" in out and "0 failures" in out

    def test_json_report(self, capsys):
        code = main([
            "check", "--only", "graph.csr.well_formed", "--json", "--cases", "2",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["cases"] == 2
        assert payload["results"][0]["check"] == "graph.csr.well_formed"
        assert "check.cases" in payload["metrics"]

    def test_corpus_suite_green(self, capsys):
        assert main(["check", "--suite", "corpus"]) == 0
        assert "corpus" in capsys.readouterr().out

    def test_subsystem_filter(self, capsys):
        code = main([
            "check", "--subsystem", "matching", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["subsystems"] == ["matching"]

    def test_exit_one_on_failure(self, tmp_path, capsys, monkeypatch):
        """A failing corpus case must fail the gate (exit 1)."""
        bad = {
            "check": "graph.csr.well_formed",
            # A graph kind the generator does not know crashes the
            # check, which the runner reports as a failure.
            "params": {"kind": "mystery", "n": 4, "graph_seed": 0},
            "note": "synthetic failing case",
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        code = main(["check", "--suite", "corpus", "--corpus-dir", str(tmp_path)])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out
