"""The pinned corpus: every shrunk reproducer stays green forever.

Each JSON file under ``tests/check/corpus/`` is a minimal failing case
the harness once found (and that a fix made pass).  Replaying them here
makes every historical bug a permanent tier-1 regression test.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.check import load_all, load_case, run_case
from repro.check.runner import default_corpus_dir

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CASES = sorted(
    name for name in os.listdir(CORPUS_DIR) if name.endswith(".json")
)


def test_default_corpus_dir_points_here():
    assert os.path.samefile(default_corpus_dir(), CORPUS_DIR)


def test_corpus_is_not_empty():
    """The satellites each pinned at least one reproducer."""
    assert len(CASES) >= 3


@pytest.mark.parametrize("name", CASES)
def test_corpus_case_is_well_formed(name):
    payload = load_case(os.path.join(CORPUS_DIR, name))
    assert payload["check"] in load_all()
    assert isinstance(payload["params"], dict)
    assert payload.get("note"), f"{name}: corpus cases must explain their bug"
    # Strictly JSON-scalar params: replayable anywhere, shrinkable.
    for key, value in payload["params"].items():
        assert isinstance(value, (int, float, str, bool)), (name, key)


@pytest.mark.parametrize("name", CASES)
def test_corpus_case_passes(name):
    """The bug each reproducer pinned must stay fixed."""
    payload = load_case(os.path.join(CORPUS_DIR, name))
    check = load_all().get(payload["check"])
    result = run_case(check, payload["params"], source=f"corpus:{name}")
    assert result.ok, (
        f"{name} regressed: error={result.error} "
        f"violations={result.violations}"
    )


def test_corpus_covers_the_three_satellite_bugs():
    checks = {
        load_case(os.path.join(CORPUS_DIR, name))["check"] for name in CASES
    }
    assert "graph.partition.metrics_consistent" in checks  # vertex-cut metric
    assert "tlav.random_walks.engine_vs_stored" in checks  # paging neighbors
    assert "gnn.cache.lru_vs_trace_sim" in checks  # cache accounting
