"""Suite execution, reporting, corpus replay, and check.* metrics."""

from __future__ import annotations

import json
import os

import pytest

from repro.check.registry import (
    BIT_IDENTICAL,
    INVARIANT,
    Check,
    CheckRegistry,
)
from repro.check.runner import (
    CheckReport,
    load_case,
    run_case,
    run_corpus,
    run_suite,
    save_case,
)
from repro.obs import MetricsRegistry, Tracer


def make_registry() -> CheckRegistry:
    reg = CheckRegistry()
    reg.add(Check(
        name="t.pass", subsystem="alpha", relation=BIT_IDENTICAL,
        gen=lambda rng: {"n": int(rng.integers(1, 100))},
        run=lambda params: [],
    ))
    reg.add(Check(
        name="t.fail_big", subsystem="alpha", relation=INVARIANT,
        gen=lambda rng: {"n": 64},
        run=lambda params: ["too big"] if params["n"] >= 10 else [],
        floors={"n": 1},
    ))
    reg.add(Check(
        name="t.crash", subsystem="beta", relation=BIT_IDENTICAL,
        gen=lambda rng: {"n": 1},
        run=lambda params: (_ for _ in ()).throw(RuntimeError("boom")),
        suites=("full",),
    ))
    return reg


class TestRunCase:
    def test_ok_case(self):
        check = make_registry().get("t.pass")
        result = run_case(check, {"n": 5})
        assert result.ok and result.violations == [] and result.error is None

    def test_violations_captured(self):
        check = make_registry().get("t.fail_big")
        result = run_case(check, {"n": 50})
        assert not result.ok and result.violations == ["too big"]

    def test_exception_becomes_error(self):
        check = make_registry().get("t.crash")
        result = run_case(check, {"n": 1})
        assert not result.ok
        assert "RuntimeError: boom" in result.error

    def test_metrics_emitted(self):
        obs = MetricsRegistry()
        tracer = Tracer()
        reg = make_registry()
        run_case(reg.get("t.pass"), {"n": 5}, obs=obs, tracer=tracer)
        run_case(reg.get("t.crash"), {"n": 1}, obs=obs, tracer=tracer)
        assert obs.counter("check.cases", "").value(tag="alpha") == 1
        assert obs.counter("check.cases", "").value(tag="beta") == 1
        assert obs.counter("check.failures", "").value(tag="beta") == 1
        spans = tracer.find("check.case")
        assert len(spans) == 2
        assert spans[0].attrs["ok"] is True
        assert spans[1].attrs["ok"] is False


class TestRunSuite:
    def test_quick_suite_skips_full_only_checks(self):
        report = run_suite(suite="quick", registry=make_registry())
        assert {r.check for r in report.results} == {"t.pass", "t.fail_big"}

    def test_full_suite_runs_everything(self):
        report = run_suite(suite="full", registry=make_registry())
        assert report.cases == 3
        assert report.failures == 2
        assert not report.ok

    def test_pairs_and_invariants_counted_distinctly(self):
        report = run_suite(suite="full", registry=make_registry(), cases=2)
        assert report.pairs_run == 2  # t.pass, t.crash
        assert report.invariants_run == 1  # t.fail_big
        assert report.cases == 6

    def test_cases_draw_distinct_workloads(self):
        report = run_suite(suite="quick", registry=make_registry(), cases=4)
        drawn = [
            r.params["n"] for r in report.results if r.check == "t.pass"
        ]
        assert len(set(drawn)) > 1

    def test_shrink_failures_attaches_reproducer(self):
        report = run_suite(
            suite="quick", registry=make_registry(), shrink_failures=True
        )
        (failing,) = [r for r in report.results if r.check == "t.fail_big"]
        assert failing.shrunk == {"n": 10}
        assert failing.shrink_evals > 0

    def test_names_filter(self):
        report = run_suite(registry=make_registry(), names=["t.pass"])
        assert {r.check for r in report.results} == {"t.pass"}

    def test_subsystems_filter(self):
        report = run_suite(
            suite="full", registry=make_registry(), subsystems=["beta"]
        )
        assert {r.check for r in report.results} == {"t.crash"}

    def test_ok_gauge_published(self):
        obs = MetricsRegistry()
        run_suite(suite="full", registry=make_registry(), obs=obs)
        assert obs.gauge("check.ok", "").value() == 0.0
        assert obs.gauge("check.pairs_run", "").value() == 2.0
        assert obs.gauge("check.invariants_run", "").value() == 1.0

    def test_report_as_dict_json_serializable(self):
        report = run_suite(suite="full", registry=make_registry())
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["cases"] == 3
        assert payload["subsystems"] == ["alpha", "beta"]


class TestCorpus:
    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "case.json")
        save_case(path, "t.pass", {"n": 3}, note="why")
        payload = load_case(path)
        assert payload == {"check": "t.pass", "params": {"n": 3}, "note": "why"}

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"params": {}}))
        with pytest.raises(ValueError, match="missing"):
            load_case(str(path))

    def test_run_corpus_replays_pinned_cases(self, tmp_path):
        save_case(str(tmp_path / "a.json"), "t.pass", {"n": 3})
        save_case(str(tmp_path / "b.json"), "t.fail_big", {"n": 10})
        report = run_corpus(str(tmp_path), registry=make_registry())
        assert report.suite == "corpus"
        assert report.cases == 2
        assert report.failures == 1
        sources = {r.source for r in report.results}
        assert sources == {"corpus:a.json", "corpus:b.json"}

    def test_run_corpus_ignores_non_json(self, tmp_path):
        (tmp_path / "README.md").write_text("not a case")
        save_case(str(tmp_path / "a.json"), "t.pass", {"n": 3})
        report = run_corpus(str(tmp_path), registry=make_registry())
        assert report.cases == 1

    def test_missing_corpus_dir_is_empty_report(self, tmp_path):
        report = run_corpus(
            str(tmp_path / "nope"), registry=make_registry()
        )
        assert report.cases == 0 and report.ok


class TestCheckReport:
    def test_merge_combines_results_and_suite_names(self):
        reg = make_registry()
        a = run_suite(suite="quick", registry=reg)
        b = run_corpus(os.devnull + "-missing", registry=reg)
        merged = a.merge(b)
        assert merged.suite == "quick+corpus"
        assert merged.cases == 2

    def test_report_is_a_stats_view(self):
        report = CheckReport(suite="quick", seed=0)
        assert report.as_dict()["ok"] is True
