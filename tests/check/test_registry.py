"""The oracle registry: declarations, selection, seeded workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import (
    BIT_IDENTICAL,
    INVARIANT,
    REGISTRY,
    Check,
    CheckRegistry,
    case_rng,
    load_all,
)
from repro.check.registry import SUITES


@pytest.fixture(scope="module")
def registry() -> CheckRegistry:
    return load_all()


class TestLoadAll:
    def test_covers_required_subsystems(self, registry):
        assert {"tlav", "tlag", "matching", "gnn", "parallel"} <= set(
            registry.subsystems()
        )

    def test_at_least_twelve_pairs_in_full_suite(self, registry):
        """The acceptance floor: >= 12 oracle pairs in the full suite."""
        assert len(registry.pairs("full")) >= 12

    def test_every_relation_is_declared(self, registry):
        for check in registry:
            assert check.relation in (
                "bit_identical", "permutation", "bounded_error", "invariant"
            )

    def test_every_check_in_a_known_suite(self, registry):
        for check in registry:
            assert check.suites
            assert set(check.suites) <= set(SUITES)

    def test_quick_is_a_subset_of_full(self, registry):
        quick = {c.name for c in registry.select(suite="quick")}
        full = {c.name for c in registry.select(suite="full")}
        assert quick <= full

    def test_floors_name_real_parameters(self, registry):
        """Every floor key must appear in the check's own workloads."""
        for check in registry:
            params = check.gen(case_rng(check.name, 0, 0))
            for key in check.floors:
                assert key in params, f"{check.name}: floor {key!r} unused"

    def test_load_all_idempotent(self, registry):
        assert load_all() is REGISTRY
        assert len(load_all()) == len(registry)


class TestRegistryMechanics:
    def _check(self, name="t.example", relation=BIT_IDENTICAL, **kw):
        return Check(
            name=name, subsystem="t", relation=relation,
            gen=lambda rng: {"n": int(rng.integers(1, 10))},
            run=lambda params: [], **kw,
        )

    def test_duplicate_name_rejected(self):
        reg = CheckRegistry()
        reg.add(self._check())
        with pytest.raises(ValueError, match="duplicate"):
            reg.add(self._check())

    def test_unknown_relation_rejected(self):
        with pytest.raises(ValueError, match="unknown relation"):
            self._check(relation="close_enough")

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            self._check(suites=("nightly",))

    def test_pair_decorator_refuses_invariant_relation(self):
        reg = CheckRegistry()
        with pytest.raises(ValueError, match="invariant"):
            reg.pair("x", "t", INVARIANT, gen=lambda rng: {})

    def test_select_by_name_subsystem_suite(self):
        reg = CheckRegistry()
        reg.add(self._check("a.one"))
        reg.add(self._check("b.two", suites=("full",)))
        assert [c.name for c in reg.select(suite="quick")] == ["a.one"]
        assert [c.name for c in reg.select(names=["b.two"])] == ["b.two"]
        assert [c.name for c in reg.select(subsystems=["t"])] == [
            "a.one", "b.two"
        ]

    def test_get_unknown_name(self):
        with pytest.raises(KeyError, match="unknown check"):
            CheckRegistry().get("nope")


class TestCaseRng:
    def test_deterministic(self):
        a = case_rng("some.check", 3, 1).integers(0, 1 << 30, size=8)
        b = case_rng("some.check", 3, 1).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_keyed_on_name_seed_and_case(self):
        base = case_rng("some.check", 3, 1).integers(0, 1 << 30, size=8)
        for other in (
            case_rng("other.check", 3, 1),
            case_rng("some.check", 4, 1),
            case_rng("some.check", 3, 2),
        ):
            assert not np.array_equal(base, other.integers(0, 1 << 30, size=8))

    def test_workloads_stable_across_registry_growth(self):
        """Adding checks must not perturb another check's workloads."""
        registry = load_all()
        check = registry.get("graph.csr.well_formed")
        before = check.gen(case_rng(check.name, 0, 0))
        registry  # ordering-independent: keyed on name, not position
        after = check.gen(case_rng(check.name, 0, 0))
        assert before == after
