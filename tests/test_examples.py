"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; a refactor that breaks one
should fail CI, not a reader.  Each is executed in-process (imported as
a module and ``main()`` called) with output captured.
"""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLE_SCRIPTS = [
    "quickstart",
    "community_detection",
    "molecule_mining",
    "distributed_gnn",
    "subgraph_query_service",
    "resilient_out_of_core",
]


def _load(name: str):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLE_SCRIPTS)
def test_example_runs(name, capsys):
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report

def test_every_example_file_covered():
    scripts = {
        f[:-3]
        for f in os.listdir(EXAMPLES_DIR)
        if f.endswith(".py")
    }
    assert scripts == set(EXAMPLE_SCRIPTS)
