"""Graphlet census vs closed-form counts and the generic matcher."""

import numpy as np
import pytest
from math import comb

from repro.core.graphlets import (
    GRAPHLET_PATTERNS,
    graphlet_census,
    graphlet_feature_vector,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.matching.backtrack import count_matches


class TestClosedForms:
    def test_complete_graph_counts(self):
        census = graphlet_census(complete_graph(6))
        n = 6
        assert census["triangle"] == comb(n, 3)
        assert census["clique4"] == comb(n, 4)
        # P3: choose the middle (n) and two ends (C(n-1, 2)).
        assert census["path3"] == n * comb(n - 1, 2)
        # C4 instances: 3 per 4-subset.
        assert census["cycle4"] == 3 * comb(n, 4)

    def test_cycle_graph_counts(self):
        census = graphlet_census(cycle_graph(8))
        assert census["triangle"] == 0
        assert census["path3"] == 8
        assert census["path4"] == 8
        assert census["cycle4"] == 0
        assert census["clique4"] == 0

    def test_path_graph_counts(self):
        census = graphlet_census(path_graph(6))
        assert census["path3"] == 4
        assert census["path4"] == 3
        assert census["star4"] == 0

    def test_star_graph_counts(self):
        census = graphlet_census(star_graph(6))  # hub + 5 leaves
        assert census["path3"] == comb(5, 2)
        assert census["star4"] == comb(5, 3)
        assert census["triangle"] == 0


class TestAgainstGenericMatcher:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_census_matches_backtracking(self, seed):
        g = erdos_renyi(25, 0.25, seed=seed)
        census = graphlet_census(g)
        for name, pattern in GRAPHLET_PATTERNS:
            assert census[name] == count_matches(g, pattern), name


class TestFeatureVector:
    def test_fixed_order_and_length(self, small_er):
        vec = graphlet_feature_vector(small_er)
        assert vec.shape == (len(GRAPHLET_PATTERNS),)

    def test_log_scaling(self, small_er):
        raw = graphlet_feature_vector(small_er, log_scale=False)
        logged = graphlet_feature_vector(small_er, log_scale=True)
        assert np.allclose(logged, np.log1p(raw))

    def test_distinguishes_structures(self):
        dense = graphlet_feature_vector(complete_graph(8))
        sparse = graphlet_feature_vector(cycle_graph(8))
        assert not np.allclose(dense, sparse)
