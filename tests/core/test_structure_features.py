"""Structural pattern features for graph classification."""

import numpy as np
import pytest

from repro.core.features import logistic_regression
from repro.core.structure_features import (
    contains_pattern,
    degree_histogram_features,
    pattern_feature_matrix,
)
from repro.graph.csr import Graph
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import TransactionDatabase
from repro.matching.pattern import PatternGraph, triangle_pattern


@pytest.fixture(scope="module")
def two_class_db():
    """Positive transactions embed a labeled triangle; negatives do not."""
    motif = Graph.from_edges([(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1])
    pos = random_labeled_transactions(
        16, 8, 0.15, 2, seed=1, planted=motif, plant_fraction=1.0
    )
    neg = random_labeled_transactions(16, 8, 0.15, 2, seed=2, id_offset=16)
    labels = np.array([1] * 16 + [0] * 16)
    return TransactionDatabase(pos + neg), labels, motif


class TestContainsPattern:
    def test_planted_motif_detected(self, two_class_db):
        db, labels, motif = two_class_db
        pattern = PatternGraph(motif)
        for t, y in zip(db, labels):
            if y == 1:
                assert contains_pattern(t.graph, pattern)

    def test_absent_pattern(self):
        g = Graph.from_edges([(0, 1), (1, 2)], vertex_labels=[0, 0, 0])
        assert not contains_pattern(g, triangle_pattern())


class TestPatternFeatures:
    def test_matrix_shape(self, two_class_db):
        db, *_ = two_class_db
        x, patterns = pattern_feature_matrix(db, min_support=8, max_edges=2)
        assert x.shape == (len(db), len(patterns))

    def test_binary_by_default(self, two_class_db):
        db, *_ = two_class_db
        x, _ = pattern_feature_matrix(db, min_support=8, max_edges=2)
        assert set(np.unique(x)) <= {0.0, 1.0}

    def test_counts_mode(self, two_class_db):
        db, *_ = two_class_db
        x, _ = pattern_feature_matrix(db, min_support=8, max_edges=2, counts=True)
        assert x.max() >= 1.0

    def test_column_support_matches_pattern_support(self, two_class_db):
        db, *_ = two_class_db
        x, patterns = pattern_feature_matrix(db, min_support=10, max_edges=2)
        for j, p in enumerate(patterns):
            assert int(x[:, j].sum()) == p.support

    def test_max_patterns_truncates(self, two_class_db):
        db, *_ = two_class_db
        x, patterns = pattern_feature_matrix(
            db, min_support=6, max_edges=2, max_patterns=5
        )
        assert len(patterns) <= 5
        assert x.shape[1] <= 5


class TestClassificationClaim:
    def test_pattern_features_beat_degree_baseline(self, two_class_db):
        """The C14 claim: structural pattern features are informative."""
        db, labels, _ = two_class_db
        rng = np.random.default_rng(5)
        train = np.zeros(len(db), dtype=bool)
        train[rng.permutation(len(db))[:22]] = True
        test = ~train

        x_pat, _ = pattern_feature_matrix(db, min_support=8, max_edges=3)
        x_deg = degree_histogram_features(db)

        acc_pat = (
            logistic_regression(x_pat[train], labels[train], epochs=300)
            .predict(x_pat[test]) == labels[test]
        ).mean()
        acc_deg = (
            logistic_regression(x_deg[train], labels[train], epochs=300)
            .predict(x_deg[test]) == labels[test]
        ).mean()
        assert acc_pat >= acc_deg
        assert acc_pat > 0.7


class TestDegreeBaseline:
    def test_shape(self, two_class_db):
        db, *_ = two_class_db
        x = degree_histogram_features(db, max_degree=5)
        labels_count = len(
            {t.graph.vertex_label(v) for t in db for v in t.graph.vertices()}
        )
        assert x.shape == (len(db), 6 + labels_count)

    def test_rows_sum_to_twice_vertices(self, two_class_db):
        db, *_ = two_class_db
        x = degree_histogram_features(db)
        for i, t in enumerate(db):
            assert x[i].sum() == 2 * t.graph.num_vertices
