"""The Figure-1 pipeline API and the Tables-1/2 taxonomy."""

import importlib

import numpy as np
import pytest

from repro.core.pipeline import Pipeline, PipelineContext, Stage, stages
from repro.core.taxonomy import (
    TABLE1_SYSTEMS,
    TABLE2_SYSTEMS,
    render_table1,
    render_table2,
)
from repro.graph.csr import Graph
from repro.graph.generators import (
    planted_partition,
    random_labeled_transactions,
)
from repro.graph.transactions import TransactionDatabase


@pytest.fixture(scope="module")
def community_graph():
    return planted_partition(3, 20, p_in=0.25, p_out=0.01, seed=6)


@pytest.fixture(scope="module")
def molecule_db():
    motif = Graph.from_edges([(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1])
    pos = random_labeled_transactions(
        12, 8, 0.15, 2, seed=1, planted=motif, plant_fraction=1.0
    )
    neg = random_labeled_transactions(12, 8, 0.15, 2, seed=2, id_offset=12)
    return TransactionDatabase(pos + neg), np.array([1] * 12 + [0] * 12)


class TestPipelineMechanics:
    def test_artifacts_accumulate(self, community_graph):
        g, _ = community_graph
        ctx = Pipeline([stages.pagerank_scores()]).run(PipelineContext(graph=g))
        assert "scores" in ctx.artifacts
        assert ctx.artifacts["scores"].sum() == pytest.approx(1.0)

    def test_custom_stage(self, community_graph):
        g, _ = community_graph
        pipeline = Pipeline()
        pipeline.add(Stage(name="n", run=lambda c: c.require_graph().num_vertices))
        ctx = pipeline.run(PipelineContext(graph=g))
        assert ctx.artifacts["n"] == g.num_vertices

    def test_missing_graph_raises(self):
        with pytest.raises(ValueError):
            Pipeline([stages.pagerank_scores()]).run(PipelineContext())

    def test_missing_database_raises(self, community_graph):
        g, _ = community_graph
        with pytest.raises(ValueError):
            Pipeline([stages.pattern_features(min_support=2)]).run(
                PipelineContext(graph=g)
            )


class TestFourPaths:
    def test_path1_vertex_analytics(self, community_graph):
        g, _ = community_graph
        ctx = Pipeline(
            [stages.pagerank_scores(), stages.structural_vertex_features()]
        ).run(PipelineContext(graph=g))
        assert ctx.artifacts["scores"].shape == (g.num_vertices,)
        assert ctx.artifacts["features"].shape[0] == g.num_vertices

    def test_path2_vertex_ml(self, community_graph):
        g, labels = community_graph
        rng = np.random.default_rng(0)
        train = np.zeros(g.num_vertices, dtype=bool)
        train[rng.permutation(g.num_vertices)[:30]] = True
        ctx = Pipeline(
            [
                stages.deepwalk(dim=16, walks_per_vertex=6, seed=0),
                stages.node_classifier(labels, train),
            ]
        ).run(PipelineContext(graph=g))
        assert ctx.artifacts["node_ml"]["accuracy"] > 0.7

    def test_path3_structure_analytics(self, community_graph):
        g, _ = community_graph
        ctx = Pipeline([stages.mine_maximal_cliques(min_size=3)]).run(
            PipelineContext(graph=g)
        )
        for clique in ctx.artifacts["structures"]:
            assert len(clique) >= 3

    def test_path4_structure_ml(self, molecule_db):
        db, labels = molecule_db
        rng = np.random.default_rng(1)
        train = np.zeros(len(db), dtype=bool)
        train[rng.permutation(len(db))[:16]] = True
        ctx = Pipeline(
            [
                stages.pattern_features(min_support=6, max_edges=3),
                stages.graph_classifier(labels, train),
            ]
        ).run(PipelineContext(database=db))
        assert ctx.artifacts["graph_ml"]["accuracy"] > 0.7
        assert "patterns" in ctx.artifacts


class TestTaxonomy:
    def test_tables_render(self):
        t1, t2 = render_table1(), render_table2()
        assert "G-thinker" in t1 and "EGSM" in t1
        assert "DistDGL" in t2 and "Dorylus" in t2

    def test_every_row_has_repro_module(self):
        for system in TABLE1_SYSTEMS + TABLE2_SYSTEMS:
            assert system.repro.startswith("repro.")

    def test_repro_modules_importable(self):
        for system in TABLE1_SYSTEMS + TABLE2_SYSTEMS:
            importlib.import_module(system.repro)

    def test_table1_problem_coverage_consistency(self):
        # Matching-only systems must not claim FSM support.
        for s in TABLE1_SYSTEMS:
            if s.matching_only:
                assert not s.supports_fsm

    def test_table2_each_system_has_a_technique(self):
        for s in TABLE2_SYSTEMS:
            assert any(
                [
                    s.partitioning,
                    s.scheduling,
                    s.asynchrony,
                    s.compression,
                    s.comm_optimization,
                    s.cpu_offload,
                ]
            )

    def test_row_counts_match_paper_scope(self):
        assert len(TABLE1_SYSTEMS) >= 20  # Table 1 families
        assert len(TABLE2_SYSTEMS) >= 13  # Table 2 rows
