"""Vertex features, embeddings, and the shallow classifier."""

import numpy as np
import pytest

from repro.core.features import (
    deepwalk_embeddings,
    logistic_regression,
    node2vec_walks,
    skipgram_train,
    topology_features,
)
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    planted_partition,
)


class TestTopologyFeatures:
    def test_shape_and_columns(self, small_ba):
        x = topology_features(small_ba)
        assert x.shape == (small_ba.num_vertices, 6)

    def test_degree_column(self, small_ba):
        x = topology_features(small_ba)
        assert np.array_equal(x[:, 0], small_ba.degrees().astype(float))

    def test_clustering_in_unit_range(self, small_ws):
        x = topology_features(small_ws)
        assert np.all(x[:, 2] >= 0) and np.all(x[:, 2] <= 1)

    def test_complete_graph_uniform(self):
        x = topology_features(complete_graph(6))
        for col in range(x.shape[1]):
            assert np.allclose(x[:, col], x[0, col])


class TestSkipgram:
    def test_embedding_shape(self):
        walks = [[0, 1, 2], [2, 1, 0], [1, 0, 2]]
        emb = skipgram_train(walks, num_vertices=3, dim=8, epochs=2, seed=0)
        assert emb.shape == (3, 8)

    def test_cooccurring_vertices_closer(self):
        # Two disconnected cliques of walk contexts: embeddings of
        # same-clique vertices should be closer than cross-clique ones.
        walks = []
        for _ in range(40):
            walks.append([0, 1, 2, 0, 1, 2])
            walks.append([3, 4, 5, 3, 4, 5])
        emb = skipgram_train(walks, num_vertices=6, dim=8, epochs=3, seed=1)

        def cos(a, b):
            return float(
                emb[a] @ emb[b] / (np.linalg.norm(emb[a]) * np.linalg.norm(emb[b]) + 1e-12)
            )

        same = (cos(0, 1) + cos(1, 2) + cos(3, 4) + cos(4, 5)) / 4
        cross = (cos(0, 3) + cos(1, 4) + cos(2, 5)) / 3
        assert same > cross

    def test_empty_walks(self):
        emb = skipgram_train([], num_vertices=4, dim=4)
        assert emb.shape == (4, 4)


class TestDeepWalk:
    def test_embeddings_separate_communities(self):
        g, labels = planted_partition(2, 25, p_in=0.3, p_out=0.01, seed=4)
        emb = deepwalk_embeddings(g, dim=16, walk_length=8,
                                  walks_per_vertex=6, epochs=3, seed=0)
        model = logistic_regression(emb, labels, epochs=300)
        assert model.score(emb, labels) > 0.85


class TestNode2Vec:
    def test_walks_follow_edges(self, small_ba):
        walks = node2vec_walks(small_ba, walk_length=5, walks_per_vertex=1,
                               p=0.5, q=2.0, seed=0)
        for walk in walks[:50]:
            for a, b in zip(walk, walk[1:]):
                assert small_ba.has_edge(a, b)

    def test_walk_counts(self, small_ba):
        walks = node2vec_walks(small_ba, walk_length=4, walks_per_vertex=2, seed=0)
        assert len(walks) == 2 * small_ba.num_vertices

    def test_low_q_explores_farther(self):
        g = barabasi_albert(300, 3, seed=1)
        def mean_unique(q):
            walks = node2vec_walks(
                g, walk_length=12, walks_per_vertex=2, p=1.0, q=q, seed=3
            )
            return np.mean([len(set(w)) for w in walks])

        # Low q (DFS-like) touches more distinct vertices than high q.
        assert mean_unique(0.25) > mean_unique(4.0)


class TestLogisticRegression:
    def test_separable_data_perfect(self):
        rng = np.random.default_rng(0)
        x = np.vstack([rng.normal(-3, 0.3, size=(40, 2)),
                       rng.normal(3, 0.3, size=(40, 2))])
        y = np.array([0] * 40 + [1] * 40)
        model = logistic_regression(x, y, epochs=300)
        assert model.score(x, y) == 1.0

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        centers = np.array([[0, 5], [5, 0], [-5, -5]])
        x = np.vstack([rng.normal(c, 0.5, size=(30, 2)) for c in centers])
        y = np.repeat(np.arange(3), 30)
        model = logistic_regression(x, y, epochs=300)
        assert model.score(x, y) > 0.95

    def test_probabilities_normalized(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(20, 3))
        y = rng.integers(0, 2, size=20)
        model = logistic_regression(x, y, epochs=50)
        probs = model.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_constant_feature_no_nan(self):
        x = np.ones((10, 2))
        y = np.array([0, 1] * 5)
        model = logistic_regression(x, y, epochs=20)
        assert np.isfinite(model.predict_proba(x)).all()
