"""Shared fixtures and oracle helpers for the test suite.

``networkx`` is used throughout as an *oracle only* — the library under
test never imports it.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi, watts_strogatz


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert a repro Graph to a networkx graph (labels as attributes)."""
    if graph.directed:
        g = nx.DiGraph()
    else:
        g = nx.Graph()
    for v in graph.vertices():
        g.add_node(v, label=graph.vertex_label(v))
    for u, v in graph.edges():
        g.add_edge(u, v)
    return g


@pytest.fixture
def small_er():
    """A 40-vertex Erdos-Renyi graph with triangles."""
    return erdos_renyi(40, 0.2, seed=3)


@pytest.fixture
def small_ba():
    """A 200-vertex preferential-attachment graph (skewed degrees)."""
    return barabasi_albert(200, 3, seed=1)


@pytest.fixture
def small_ws():
    """A clustered small-world graph (many triangles)."""
    return watts_strogatz(60, 6, 0.1, seed=2)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
