"""Structural property computations, cross-checked against networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.properties import (
    bfs_levels,
    clustering_coefficients,
    connected_components,
    core_numbers,
    num_connected_components,
    triangle_count_per_vertex,
)
from tests.conftest import to_networkx


class TestConnectedComponents:
    def test_single_component(self, small_ba):
        assert num_connected_components(small_ba) == 1

    def test_disjoint_components(self):
        g = Graph.from_edges([(0, 1), (2, 3), (4, 5)])
        comp = connected_components(g)
        assert num_connected_components(g) == 3
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert comp[0] != comp[2]

    def test_labels_are_min_member(self):
        g = Graph.from_edges([(5, 3), (3, 1)], num_vertices=6)
        comp = connected_components(g)
        assert comp[5] == comp[3] == comp[1] == 1

    def test_matches_networkx(self, small_er):
        ours = num_connected_components(small_er)
        theirs = nx.number_connected_components(to_networkx(small_er))
        assert ours == theirs

    def test_isolated_vertices_are_own_components(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        assert num_connected_components(g) == 3


class TestTriangles:
    def test_complete_graph(self):
        tri = triangle_count_per_vertex(complete_graph(5))
        assert np.all(tri == 6)  # C(4,2) triangles through each vertex

    def test_triangle_free(self):
        tri = triangle_count_per_vertex(cycle_graph(8))
        assert np.all(tri == 0)

    def test_matches_networkx(self, small_er):
        ours = triangle_count_per_vertex(small_er)
        theirs = nx.triangles(to_networkx(small_er))
        for v in small_er.vertices():
            assert ours[v] == theirs[v]

    def test_total_is_multiple_of_three(self, small_ws):
        tri = triangle_count_per_vertex(small_ws)
        assert tri.sum() % 3 == 0


class TestClustering:
    def test_complete_graph_coefficient_one(self):
        assert np.allclose(clustering_coefficients(complete_graph(6)), 1.0)

    def test_star_graph_coefficient_zero(self):
        assert np.allclose(clustering_coefficients(star_graph(6)), 0.0)

    def test_matches_networkx(self, small_ws):
        ours = clustering_coefficients(small_ws)
        theirs = nx.clustering(to_networkx(small_ws))
        for v in small_ws.vertices():
            assert ours[v] == pytest.approx(theirs[v])


class TestCoreNumbers:
    def test_complete_graph(self):
        assert np.all(core_numbers(complete_graph(5)) == 4)

    def test_path_graph(self):
        assert np.all(core_numbers(path_graph(6)) == 1)

    def test_matches_networkx(self, small_ba):
        ours = core_numbers(small_ba)
        theirs = nx.core_number(to_networkx(small_ba))
        for v in small_ba.vertices():
            assert ours[v] == theirs[v]


class TestBFS:
    def test_levels_on_path(self):
        levels = bfs_levels(path_graph(5), 0)
        assert levels.tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_negative(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        levels = bfs_levels(g, 0)
        assert levels[2] == -1

    def test_matches_networkx(self, small_er):
        ours = bfs_levels(small_er, 0)
        theirs = nx.single_source_shortest_path_length(to_networkx(small_er), 0)
        for v in small_er.vertices():
            expected = theirs.get(v, -1)
            assert ours[v] == expected


class TestModularity:
    def test_matches_networkx(self):
        from repro.graph.generators import planted_partition
        from repro.graph.properties import modularity

        g, labels = planted_partition(3, 20, 0.3, 0.02, seed=1)
        communities = [
            {v for v in g.vertices() if labels[v] == c} for c in range(3)
        ]
        theirs = nx.algorithms.community.modularity(to_networkx(g), communities)
        assert modularity(g, labels) == pytest.approx(theirs)

    def test_single_community_zero(self):
        from repro.graph.properties import modularity

        g = complete_graph(6)
        assert modularity(g, [0] * 6) == pytest.approx(0.0)

    def test_planted_beats_random(self):
        import numpy as np

        from repro.graph.generators import planted_partition
        from repro.graph.properties import modularity

        g, labels = planted_partition(4, 25, 0.2, 0.01, seed=3)
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(labels)
        assert modularity(g, labels) > modularity(g, shuffled) + 0.2

    def test_empty_graph(self):
        from repro.graph.csr import Graph
        from repro.graph.properties import modularity

        g = Graph.from_edges([], num_vertices=4)
        assert modularity(g, [0, 1, 0, 1]) == 0.0
