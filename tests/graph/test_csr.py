"""Unit and property tests for the CSR graph store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph, GraphBuilder

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)),
    min_size=0,
    max_size=60,
)


class TestGraphBuilder:
    def test_empty_graph(self):
        g = GraphBuilder().build(num_vertices=5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert all(g.degree(v) == 0 for v in g.vertices())

    def test_single_edge_undirected_symmetric(self):
        g = Graph.from_edges([(0, 1)])
        assert g.num_edges == 1
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_self_loops_dropped_by_default(self):
        g = Graph.from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_self_loops_kept_when_allowed(self):
        b = GraphBuilder(allow_self_loops=True)
        b.add_edge(0, 0)
        g = b.build(num_vertices=1)
        assert g.has_edge(0, 0)

    def test_duplicate_edges_deduplicated(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_isolated_vertex_via_add_vertex(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_vertex(4)
        g = b.build()
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_num_vertices_too_small_raises(self):
        b = GraphBuilder()
        b.add_edge(0, 5)
        with pytest.raises(ValueError):
            b.build(num_vertices=3)

    def test_negative_vertex_rejected(self):
        b = GraphBuilder()
        with pytest.raises(ValueError):
            b.add_edge(-1, 0)

    def test_directed_edges_one_way(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert g.num_edges == 1

    def test_edge_labels_round_trip(self):
        b = GraphBuilder()
        b.add_edge(0, 1, label=7)
        b.add_edge(1, 2, label=3)
        g = b.build()
        assert g.edge_label(0, 1) == 7
        assert g.edge_label(1, 0) == 7  # symmetric copy
        assert g.edge_label(2, 1) == 3

    def test_edge_label_missing_edge_raises(self):
        b = GraphBuilder()
        b.add_edge(0, 1, label=7)
        g = b.build()
        with pytest.raises(KeyError):
            g.edge_label(0, 2)

    def test_vertex_labels(self):
        g = Graph.from_edges([(0, 1), (1, 2)], vertex_labels=[5, 6, 7])
        assert [g.vertex_label(v) for v in g.vertices()] == [5, 6, 7]

    def test_unlabeled_vertex_label_is_zero(self):
        g = Graph.from_edges([(0, 1)])
        assert g.vertex_label(0) == 0


class TestGraphAccessors:
    def test_neighbors_sorted(self, small_ba):
        for v in small_ba.vertices():
            nbrs = small_ba.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)

    def test_degrees_match_neighbors(self, small_ba):
        degs = small_ba.degrees()
        for v in small_ba.vertices():
            assert degs[v] == small_ba.neighbors(v).size

    def test_edges_iterates_each_once(self, small_er):
        edges = list(small_er.edges())
        assert len(edges) == small_er.num_edges
        assert len(set(edges)) == len(edges)
        assert all(u < v for u, v in edges)

    def test_has_edge_agrees_with_edges(self, small_er):
        edges = set(small_er.edges())
        for u in small_er.vertices():
            for v in small_er.vertices():
                expected = (min(u, v), max(u, v)) in edges and u != v
                assert small_er.has_edge(u, v) == expected

    def test_equality_and_inequality(self):
        g1 = Graph.from_edges([(0, 1), (1, 2)])
        g2 = Graph.from_edges([(1, 2), (0, 1)])
        g3 = Graph.from_edges([(0, 1), (0, 2)])
        assert g1 == g2
        assert g1 != g3


class TestDerivedGraphs:
    def test_reverse_directed(self):
        g = Graph.from_edges([(0, 1), (1, 2)], directed=True)
        r = g.reverse()
        assert r.has_edge(1, 0) and r.has_edge(2, 1)
        assert not r.has_edge(0, 1)

    def test_reverse_undirected_is_self(self, small_er):
        assert small_er.reverse() is small_er

    def test_subgraph_preserves_internal_edges(self, small_er):
        keep = [0, 1, 2, 3, 4, 5, 6, 7]
        sub, old_ids = small_er.subgraph(keep)
        assert sub.num_vertices == len(keep)
        for i in range(sub.num_vertices):
            for j in range(i + 1, sub.num_vertices):
                assert sub.has_edge(i, j) == small_er.has_edge(
                    int(old_ids[i]), int(old_ids[j])
                )

    def test_subgraph_carries_labels(self):
        g = Graph.from_edges([(0, 1), (1, 2)], vertex_labels=[4, 5, 6])
        sub, old_ids = g.subgraph([1, 2])
        assert [sub.vertex_label(v) for v in sub.vertices()] == [5, 6]

    def test_orient_by_degree_halves_edges(self, small_ba):
        oriented = small_ba.orient_by_degree()
        assert oriented.directed
        assert oriented.num_edges == small_ba.num_edges

    def test_orient_by_degree_acyclic_ordering(self, small_ba):
        # Orientation follows a total order, so no 2-cycles.
        oriented = small_ba.orient_by_degree()
        for u, v in oriented.edges():
            assert not oriented.has_edge(v, u)

    def test_orient_rejects_directed(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            g.orient_by_degree()


class TestCSRInvariants:
    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_edges(self, edges):
        g = Graph.from_edges(edges)
        expected = {
            (min(u, v), max(u, v)) for u, v in edges if u != v
        }
        assert set(g.edges()) == expected

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_indptr_well_formed(self, edges):
        g = Graph.from_edges(edges)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.indices.size
        assert np.all(np.diff(g.indptr) >= 0)

    @given(edge_lists)
    @settings(max_examples=50, deadline=None)
    def test_degree_sum_is_twice_edges(self, edges):
        g = Graph.from_edges(edges)
        assert int(g.degrees().sum()) == 2 * g.num_edges

    @given(edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, edges):
        g = Graph.from_edges(edges)
        for u, v in g.edges():
            assert g.has_edge(v, u)

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            Graph(np.array([0, 2, 1]), np.array([1, 0]))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError):
            Graph(np.array([1, 2]), np.array([0, 1]))

    def test_mismatched_vertex_labels_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges([(0, 1)], vertex_labels=[1, 2, 3])
