"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    planted_motif_graph,
    planted_partition,
    random_labeled_graph,
    random_labeled_transactions,
    rmat,
    star_graph,
    watts_strogatz,
)
from repro.graph.properties import connected_components
from repro.matching.backtrack import count_matches
from repro.matching.pattern import PatternGraph


class TestClassicShapes:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.num_edges == 15
        assert all(g.degree(v) == 5 for v in g.vertices())

    def test_cycle_graph(self):
        g = cycle_graph(7)
        assert g.num_edges == 7
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_path_graph(self):
        g = path_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == g.degree(4) == 1

    def test_star_graph(self):
        g = star_graph(9)
        assert g.degree(0) == 8
        assert all(g.degree(v) == 1 for v in range(1, 9))

    def test_grid_graph(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical


class TestRandomGenerators:
    def test_erdos_renyi_deterministic_by_seed(self):
        a = erdos_renyi(50, 0.1, seed=7)
        b = erdos_renyi(50, 0.1, seed=7)
        assert a == b

    def test_erdos_renyi_seed_changes_graph(self):
        a = erdos_renyi(50, 0.1, seed=7)
        b = erdos_renyi(50, 0.1, seed=8)
        assert a != b

    def test_erdos_renyi_edge_count_close_to_expectation(self):
        n, p = 200, 0.05
        g = erdos_renyi(n, p, seed=0)
        expected = p * n * (n - 1) / 2
        assert 0.8 * expected < g.num_edges < 1.2 * expected

    def test_erdos_renyi_zero_p(self):
        g = erdos_renyi(30, 0.0, seed=1)
        assert g.num_edges == 0
        assert g.num_vertices == 30

    def test_barabasi_albert_edge_count(self):
        n, m = 100, 3
        g = barabasi_albert(n, m, seed=0)
        # m initial edges for the seed star, then m per new vertex.
        assert g.num_edges == m + (n - m - 1) * m

    def test_barabasi_albert_skew(self):
        g = barabasi_albert(400, 2, seed=0)
        degs = np.sort(g.degrees())[::-1]
        assert degs[0] > 5 * np.median(degs)

    def test_barabasi_albert_invalid_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(5, 5)

    def test_rmat_size(self):
        g = rmat(7, edge_factor=4, seed=1)
        assert g.num_vertices == 128
        assert g.num_edges <= 4 * 128
        assert g.num_edges > 100  # most edges survive dedup

    def test_rmat_invalid_probs(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.6, b=0.3, c=0.3)

    def test_watts_strogatz_degree_regular_at_p0(self):
        g = watts_strogatz(20, 4, 0.0, seed=0)
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_watts_strogatz_validates_k(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, 3, 0.1)


class TestPlantedStructure:
    def test_planted_partition_labels(self):
        g, labels = planted_partition(4, 10, 0.5, 0.01, seed=0)
        assert g.num_vertices == 40
        assert labels.shape == (40,)
        assert set(labels.tolist()) == {0, 1, 2, 3}

    def test_planted_partition_assortative(self):
        g, labels = planted_partition(3, 20, 0.4, 0.02, seed=1)
        internal = external = 0
        for u, v in g.edges():
            if labels[u] == labels[v]:
                internal += 1
            else:
                external += 1
        assert internal > 2 * external

    def test_random_labeled_graph_label_range(self):
        g = random_labeled_graph(50, 0.1, num_vertex_labels=3, seed=0)
        assert set(int(l) for l in g.vertex_labels) <= {0, 1, 2}

    def test_random_labeled_transactions_ids_dense(self):
        db = random_labeled_transactions(10, 6, 0.3, 2, seed=0)
        assert [t.graph_id for t in db] == list(range(10))

    def test_random_labeled_transactions_id_offset(self):
        db = random_labeled_transactions(5, 6, 0.3, 2, seed=0, id_offset=100)
        assert [t.graph_id for t in db] == list(range(100, 105))

    def test_planted_transactions_contain_motif(self):
        motif = Graph.from_edges(
            [(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1]
        )
        db = random_labeled_transactions(
            12, 8, 0.1, 3, seed=5, planted=motif, plant_fraction=1.0
        )
        pattern = PatternGraph(motif)
        for t in db:
            assert count_matches(t.graph, pattern) >= 1

    def test_planted_motif_graph_has_copies(self):
        motif = Graph.from_edges(
            [(0, 1), (1, 2), (2, 0)], vertex_labels=[7, 7, 7]
        )
        g = planted_motif_graph(
            n=100, p=0.01, motif=motif, copies=6, num_vertex_labels=3, seed=3
        )
        pattern = PatternGraph(motif)
        assert count_matches(g, pattern) >= 6

    def test_planted_motif_too_many_copies_raises(self):
        motif = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        with pytest.raises(ValueError):
            planted_motif_graph(10, 0.1, motif, copies=5, num_vertex_labels=2)
