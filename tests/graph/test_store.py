"""The on-disk store: format round-trips, paging, and the handle API.

Pins the storage-layer contracts DESIGN's "Storage layer" section
promises:

* chunked ingest writes **byte-identical** shards to the one-shot
  build (same partitioner, same seed);
* a corrupt or truncated shard raises a clear :class:`StoreError` at
  page-in, not a numpy decode error three frames later;
* repeated open/close cycles release their memory maps — no file
  descriptor leak;
* the deprecated ``graph=`` keyword spellings still work, with a
  :class:`DeprecationWarning`;
* every engine family gives identical answers through a paged
  :class:`StoredGraph` and the in-memory graph.
"""

import gc
import os
import warnings

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.partition import metis_like_partition
from repro.graph.store import (
    InMemoryGraph,
    Manifest,
    StoreCatalog,
    StoredGraph,
    StoreError,
    as_handle,
    build_store,
    ingest_edge_stream,
    open_store,
    streaming_assignment,
)
from repro.obs import MetricsRegistry


@pytest.fixture
def graph():
    return barabasi_albert(80, 3, seed=11)


def _shard_files(root):
    out = {}
    for dirpath, _dirs, files in os.walk(root):
        for fname in files:
            if fname.endswith(".npy"):
                full = os.path.join(dirpath, fname)
                with open(full, "rb") as handle:
                    out[os.path.relpath(full, root)] = handle.read()
    return out


class TestBuildRoundTrip:
    @pytest.mark.parametrize("partitioner", ["hash", "range", "metis"])
    def test_to_graph_reassembles_exactly(self, graph, tmp_path, partitioner):
        build_store(graph, tmp_path / "g", partition=partitioner, num_parts=3)
        stored = open_store(tmp_path / "g")
        assert stored.to_graph() == graph
        stored.close()

    def test_custom_partition_object(self, graph, tmp_path):
        part = metis_like_partition(graph, 3, seed=1)
        manifest = build_store(graph, tmp_path / "g", partition=part)
        assert manifest.partitioner == "custom"
        stored = open_store(tmp_path / "g")
        assert stored.to_graph() == graph
        stored.close()

    def test_manifest_counts_match_shards(self, graph, tmp_path):
        manifest = build_store(graph, tmp_path / "g", num_parts=4)
        assert manifest.num_vertices == graph.num_vertices
        assert manifest.num_edges == graph.num_edges
        assert sum(p.num_edge_slots for p in manifest.partitions) \
            == graph.indices.size
        reloaded = Manifest.load(tmp_path / "g")
        assert reloaded.as_dict() == manifest.as_dict()

    def test_features_and_labels_round_trip(self, tmp_path):
        rng = np.random.default_rng(3)
        graph = erdos_renyi(40, 0.15, seed=5)
        labeled = Graph(
            graph.indptr, graph.indices, directed=graph.directed,
            vertex_labels=rng.integers(0, 4, graph.num_vertices),
            edge_labels=rng.integers(0, 3, graph.indices.size),
        )
        feats = rng.normal(size=(labeled.num_vertices, 6))
        build_store(labeled, tmp_path / "g", num_parts=3, features=feats)
        stored = open_store(tmp_path / "g")
        assert stored.feature_dim == 6
        np.testing.assert_array_equal(stored.features(), feats)
        ids = np.array([7, 0, 33])
        np.testing.assert_array_equal(stored.features(ids), feats[ids])
        assert stored.to_graph() == labeled
        np.testing.assert_array_equal(
            stored.vertex_labels, labeled.vertex_labels
        )
        stored.close()

    def test_overwrite_required_to_replace(self, graph, tmp_path):
        build_store(graph, tmp_path / "g")
        with pytest.raises(StoreError, match="exists"):
            build_store(graph, tmp_path / "g")
        build_store(graph, tmp_path / "g", overwrite=True)


class TestChunkedIngest:
    @pytest.mark.parametrize("partitioner", ["hash", "range"])
    @pytest.mark.parametrize("chunk_edges", [5, 64, 10_000])
    def test_chunked_equals_one_shot_bytes(
        self, graph, tmp_path, partitioner, chunk_edges
    ):
        build_store(
            graph, tmp_path / "one", partition=partitioner, num_parts=4,
            seed=9,
        )
        ingest_edge_stream(
            graph.edges(), graph.num_vertices, tmp_path / "chunk",
            partition=partitioner, num_parts=4, seed=9,
            chunk_edges=chunk_edges,
        )
        assert _shard_files(tmp_path / "one") == _shard_files(tmp_path / "chunk")

    def test_streaming_assignment_matches_partitioners(self, graph):
        from repro.graph.partition import hash_partition, range_partition

        n = graph.num_vertices
        np.testing.assert_array_equal(
            streaming_assignment("hash", n, 4, seed=7),
            hash_partition(graph, 4, seed=7).assignment,
        )
        np.testing.assert_array_equal(
            streaming_assignment("range", n, 4, seed=7),
            range_partition(graph, 4).assignment,
        )

    def test_out_of_range_vertex_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="outside"):
            ingest_edge_stream([(0, 9)], 4, tmp_path / "g")

    def test_duplicate_and_self_loop_slots_collapse(self, tmp_path):
        edges = [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]
        ingest_edge_stream(edges, 3, tmp_path / "g", num_parts=2)
        stored = open_store(tmp_path / "g")
        rebuilt = stored.to_graph()
        np.testing.assert_array_equal(rebuilt.neighbors(0), [1])
        np.testing.assert_array_equal(rebuilt.neighbors(2), [1])
        assert rebuilt.num_edges == 2
        stored.close()


class TestCorruption:
    def _one_shard(self, root, name="indices.npy"):
        for dirpath, _dirs, files in os.walk(root):
            if name in files:
                return os.path.join(dirpath, name)
        raise AssertionError(f"no {name} under {root}")

    def test_corrupt_shard_raises_store_error(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=2)
        shard = self._one_shard(tmp_path / "g")
        blob = bytearray(open(shard, "rb").read())
        blob[-1] ^= 0xFF
        open(shard, "wb").write(bytes(blob))
        stored = open_store(tmp_path / "g")
        with pytest.raises(StoreError, match="corrupt shard"):
            stored.to_graph()
        stored.close()

    def test_truncated_shard_raises_store_error(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=2)
        shard = self._one_shard(tmp_path / "g")
        blob = open(shard, "rb").read()
        open(shard, "wb").write(blob[: len(blob) // 2])
        stored = open_store(tmp_path / "g", checksum=False)
        with pytest.raises(StoreError, match="truncated shard"):
            stored.to_graph()
        stored.close()

    def test_missing_manifest_is_not_a_store(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(StoreError, match="graph.json"):
            as_handle(str(tmp_path / "empty"))

    def test_checksum_false_skips_crc_but_not_size(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=2)
        shard = self._one_shard(tmp_path / "g")
        blob = bytearray(open(shard, "rb").read())
        blob[-1] ^= 0xFF
        open(shard, "wb").write(bytes(blob))
        stored = open_store(tmp_path / "g", checksum=False)
        stored.to_graph()  # same size, CRC unchecked: loads
        stored.close()


class TestFdHygiene:
    def test_repeated_open_close_leaks_no_fds(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=3)
        # Warm up interpreter-level fds (import caches etc.) first.
        for _ in range(2):
            stored = open_store(tmp_path / "g")
            stored.degrees()
            stored.close()
        gc.collect()
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(12):
            stored = open_store(tmp_path / "g")
            stored.neighbors(0)
            stored.to_graph()
            stored.close()
        gc.collect()
        after = len(os.listdir("/proc/self/fd"))
        assert after <= before, f"fd count grew {before} -> {after}"

    def test_close_empties_cache(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=2)
        stored = open_store(tmp_path / "g")
        stored.neighbors(1)
        assert stored.cache.resident_bytes > 0
        stored.close()
        assert stored.cache.resident_bytes == 0

    def test_context_manager_closes(self, graph, tmp_path):
        build_store(graph, tmp_path / "g")
        with open_store(tmp_path / "g") as stored:
            stored.neighbors(0)
        assert stored.cache.resident_bytes == 0


class TestShardCache:
    def test_budget_caps_resident_bytes(self, graph, tmp_path):
        manifest = build_store(graph, tmp_path / "g", num_parts=4)
        budget = manifest.shard_bytes // 3
        obs = MetricsRegistry()
        stored = open_store(tmp_path / "g", cache_budget=budget, obs=obs)
        for v in range(graph.num_vertices):
            stored.neighbors(v)
        stats = stored.cache.stats
        assert stats.evictions > 0
        largest = max(
            e.nbytes for p in manifest.partitions for e in p.files.values()
        )
        assert stored.cache.resident_bytes <= max(budget, largest)
        assert stats.hits + stats.misses == stats.pages_requested
        # The obs counters mirror the in-object ledger.
        assert sum(
            obs.counter("store.shard_misses").series().values()
        ) == stats.misses
        stored.close()

    def test_zero_budget_repages_every_pass(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=2)
        stored = open_store(tmp_path / "g", cache_budget=0)
        from repro.tlav.vectorized import pagerank_dense

        pagerank_dense(stored, iterations=2)
        first = stored.cache.stats.bytes_paged
        pagerank_dense(stored, iterations=2)
        assert stored.cache.stats.bytes_paged == 2 * first
        stored.close()

    def test_unbounded_cache_never_evicts(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=3)
        stored = open_store(tmp_path / "g")
        for v in range(graph.num_vertices):
            stored.neighbors(v)
        assert stored.cache.stats.evictions == 0
        assert stored.cache.stats.misses == 6  # 3 parts x (indptr, indices)
        stored.close()


class TestHandleProtocol:
    def test_as_handle_coercions(self, graph, tmp_path):
        handle = as_handle(graph)
        assert isinstance(handle, InMemoryGraph)
        assert as_handle(handle) is handle
        build_store(graph, tmp_path / "g")
        stored = as_handle(str(tmp_path / "g"))
        assert isinstance(stored, StoredGraph)
        stored.close()
        with pytest.raises(TypeError, match="graph handle"):
            as_handle(42)

    def test_surfaces_agree(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", num_parts=3)
        mem = as_handle(graph)
        stored = open_store(tmp_path / "g")
        assert stored.num_vertices == mem.num_vertices
        assert stored.num_edges == mem.num_edges
        assert stored.num_edge_slots == mem.num_edge_slots
        np.testing.assert_array_equal(stored.degrees(), mem.degrees())
        for v in (0, 7, graph.num_vertices - 1):
            np.testing.assert_array_equal(
                stored.neighbors(v), mem.neighbors(v)
            )
            assert stored.degree(v) == mem.degree(v)
        assert stored.has_edge(0, int(mem.neighbors(0)[0]))
        stored.close()

    def test_partition_views_cover_graph(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", partition="hash", num_parts=3)
        stored = open_store(tmp_path / "g")
        seen = []
        for k in range(stored.num_parts):
            view = stored.partition(k)
            assert view.part_id == k
            seen.extend(int(v) for v in view.nodes)
            some = int(view.nodes[0])
            np.testing.assert_array_equal(
                view.neighbors(some), graph.neighbors(some)
            )
            with pytest.raises(KeyError):
                other = (some + 1) % graph.num_vertices
                if other not in set(int(v) for v in view.nodes):
                    view.neighbors(other)
                else:
                    raise KeyError("skip: both owned")
        assert sorted(seen) == list(range(graph.num_vertices))
        stored.close()

    def test_iter_csr_runs_reassembles(self, graph, tmp_path):
        build_store(graph, tmp_path / "g", partition="hash", num_parts=4)
        stored = open_store(tmp_path / "g")
        n = graph.num_vertices
        degs = np.zeros(n, dtype=np.int64)
        chunks = {}
        last_hi = 0
        for lo, hi, run_ptr, run_idx in stored.iter_csr_runs():
            assert lo >= last_hi  # ascending, non-overlapping
            last_hi = hi
            degs[lo:hi] = np.diff(run_ptr)
            chunks[lo] = np.asarray(run_idx)
        np.testing.assert_array_equal(degs, graph.degrees())
        indices = np.concatenate([chunks[lo] for lo in sorted(chunks)])
        np.testing.assert_array_equal(indices, graph.indices)
        stored.close()

    def test_version_bump_persists(self, graph, tmp_path):
        build_store(graph, tmp_path / "g")
        stored = open_store(tmp_path / "g")
        v0 = stored.version
        stored.bump_version()
        stored.close()
        assert Manifest.load(tmp_path / "g").version == v0 + 1


class TestCatalog:
    def test_names_open_and_manifest(self, graph, tmp_path):
        build_store(graph, tmp_path / "a")
        build_store(erdos_renyi(30, 0.2, seed=2), tmp_path / "b")
        (tmp_path / "not-a-store").mkdir()
        catalog = StoreCatalog(tmp_path)
        assert catalog.names() == ["a", "b"]
        assert "a" in catalog and "not-a-store" not in catalog
        assert catalog.manifest("a").num_vertices == graph.num_vertices
        stored = catalog.open("b", cache_budget=128)
        assert stored.cache.budget == 128
        stored.close()
        with pytest.raises(StoreError, match="no store named"):
            catalog.path("missing")


class TestDeprecatedSpellings:
    def test_legacy_graph_keyword_warns(self, graph):
        from repro.tlav.algorithms import pagerank
        from repro.tlav.vectorized import pagerank_dense

        want = pagerank(graph, iterations=4)
        with pytest.warns(DeprecationWarning, match="pass the graph"):
            got = pagerank(graph=graph, iterations=4)
        np.testing.assert_array_equal(got, want)
        with pytest.warns(DeprecationWarning):
            np.testing.assert_array_equal(
                pagerank_dense(graph=graph, iterations=4),
                pagerank_dense(graph, iterations=4),
            )

    def test_both_spellings_is_an_error(self, graph):
        from repro.tlav.algorithms import pagerank

        with pytest.raises(TypeError, match="both"):
            pagerank(graph, graph=graph)

    def test_missing_graph_is_an_error(self):
        from repro.tlav.algorithms import pagerank

        with pytest.raises(TypeError, match="missing required graph"):
            pagerank()

    def test_engine_legacy_keyword(self, graph):
        from repro.tlav.algorithms import PageRankProgram
        from repro.tlav.engine import PregelEngine

        with pytest.warns(DeprecationWarning):
            engine = PregelEngine(
                graph=graph, program=PageRankProgram(iterations=2)
            )
        assert engine.graph.num_vertices == graph.num_vertices


class TestEnginesOverStoredGraphs:
    """Every engine family answers identically through a paged store."""

    @pytest.fixture
    def stored(self, graph, tmp_path):
        manifest = build_store(
            graph, tmp_path / "g", partition="hash", num_parts=3
        )
        stored = open_store(
            tmp_path / "g", cache_budget=manifest.shard_bytes // 2
        )
        yield stored
        stored.close()

    def test_pregel_engine(self, graph, stored):
        from repro.tlav.algorithms import pagerank, sssp

        np.testing.assert_array_equal(
            pagerank(stored, iterations=6), pagerank(graph, iterations=6)
        )
        np.testing.assert_array_equal(
            sssp(stored, source=0), sssp(graph, source=0)
        )

    def test_task_engine(self, graph, stored):
        from repro.tlag.engine import TaskEngine
        from repro.tlag.programs import TriangleProgram

        assert sorted(TaskEngine(stored, TriangleProgram()).run()) \
            == sorted(TaskEngine(graph, TriangleProgram()).run())

    def test_matching(self, graph, stored):
        from repro.matching.backtrack import count_matches
        from repro.matching.pattern import triangle_pattern
        from repro.matching.triangles import triangle_count

        assert count_matches(stored, triangle_pattern()) \
            == count_matches(graph, triangle_pattern())
        assert triangle_count(stored) == triangle_count(graph)

    def test_gnn_training(self, graph, stored):
        from repro.gnn.models import NodeClassifier
        from repro.gnn.train import train_full_graph

        rng = np.random.default_rng(1)
        feats = rng.normal(size=(graph.num_vertices, 5))
        labels = rng.integers(0, 3, graph.num_vertices)
        mask = np.zeros(graph.num_vertices, dtype=bool)
        mask[::2] = True

        def run(g):
            return train_full_graph(
                NodeClassifier(5, 8, 3, seed=4), g, feats, labels,
                mask, ~mask, epochs=3,
            )

        assert run(stored).losses == run(graph).losses

    def test_paging_actually_happened(self, stored):
        from repro.tlav.vectorized import wcc_dense

        wcc_dense(stored)
        assert stored.cache.stats.evictions > 0
