"""Batched edge deltas: apply_edge_updates + random_edge_updates."""

import numpy as np
import pytest

from repro.graph.delta import (
    EdgeDelta,
    apply_edge_updates,
    random_edge_updates,
)
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.partition import hash_partition


class TestApplyEdgeUpdates:
    def test_insert_and_delete(self):
        g = barabasi_albert(30, 2, seed=0)
        u, v = 0, 29
        assert not g.has_edge(u, v)
        g2, delta = apply_edge_updates(g, inserts=[(u, v)])
        assert g2.has_edge(u, v) and g2.has_edge(v, u)
        assert delta.changed
        assert delta.inserts.tolist() == [[u, v]]
        assert set(delta.touched.tolist()) == {u, v}
        g3, delta = apply_edge_updates(g2, deletes=[(v, u)])
        assert not g3.has_edge(u, v)
        assert delta.deletes.tolist() == [[u, v]]

    def test_original_graph_untouched(self):
        g = barabasi_albert(20, 2, seed=1)
        before = (g.indptr.copy(), g.indices.copy())
        apply_edge_updates(g, inserts=[(0, 19)], deletes=[(0, 1)])
        assert np.array_equal(g.indptr, before[0])
        assert np.array_equal(g.indices, before[1])

    def test_noop_requests_dropped_from_delta(self):
        g = barabasi_albert(20, 2, seed=2)
        present = (0, int(g.neighbors(0)[0]))
        g2, delta = apply_edge_updates(
            g, inserts=[present], deletes=[(7, 13) if not g.has_edge(7, 13)
                                          else (7, 14)]
        )
        if not delta.changed:
            assert np.array_equal(g2.indptr, g.indptr)
            assert np.array_equal(g2.indices, g.indices)
            assert delta.touched.size == 0

    def test_delete_before_insert_in_one_batch(self):
        g = barabasi_albert(20, 2, seed=3)
        e = (0, int(g.neighbors(0)[0]))
        g2, delta = apply_edge_updates(g, inserts=[e], deletes=[e])
        assert g2.has_edge(*e)
        assert delta.deletes.tolist() == [sorted(e)]
        assert delta.inserts.tolist() == [sorted(e)]

    def test_rejects_self_loop_and_out_of_range(self):
        g = barabasi_albert(10, 2, seed=4)
        with pytest.raises(ValueError):
            apply_edge_updates(g, inserts=[(3, 3)])
        with pytest.raises(ValueError):
            apply_edge_updates(g, inserts=[(0, 10)])

    def test_csr_stays_canonical(self):
        g = erdos_renyi(40, 0.1, seed=5)
        g2, _ = apply_edge_updates(
            g, inserts=[(0, 39), (1, 38)], deletes=[(0, int(g.neighbors(0)[0]))]
        )
        for v in range(g2.num_vertices):
            nbrs = g2.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)  # sorted, no duplicates

    def test_dirty_partitions(self):
        g = barabasi_albert(24, 2, seed=6)
        part = hash_partition(g, 4)
        _, delta = apply_edge_updates(g, inserts=[(0, 23)])
        dirty = delta.dirty_partitions(part.assignment)
        assert dirty == frozenset(
            {int(part.assignment[0]), int(part.assignment[23])}
        )
        assert delta.dirty_partitions(None) == frozenset({0})
        empty = EdgeDelta(
            inserts=np.empty((0, 2), dtype=np.int64),
            deletes=np.empty((0, 2), dtype=np.int64),
            touched=np.empty(0, dtype=np.int64),
        )
        assert empty.dirty_partitions(part.assignment) == frozenset()


class TestRandomEdgeUpdates:
    def test_stream_is_consistent_and_deterministic(self):
        g = barabasi_albert(60, 3, seed=7)
        batches = random_edge_updates(g, 10, edge_fraction=0.02, seed=1)
        again = random_edge_updates(g, 10, edge_fraction=0.02, seed=1)
        assert all(
            np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
            for a, b in zip(batches, again)
        )
        live = g
        for ins, dels in batches:
            for u, v in dels:
                assert live.has_edge(int(u), int(v))
            for u, v in ins:
                assert not live.has_edge(int(u), int(v))
            live, delta = apply_edge_updates(live, inserts=ins, deletes=dels)
            # every request was effective by construction
            assert delta.inserts.shape == ins.shape
            assert delta.deletes.shape == dels.shape

    def test_rejects_directed(self):
        from repro.graph.csr import Graph

        indptr = np.array([0, 1, 2, 2], dtype=np.int64)
        indices = np.array([1, 2], dtype=np.int64)
        directed = Graph(indptr, indices, directed=True)
        with pytest.raises(ValueError):
            random_edge_updates(directed, 1)

    def test_complete_graph_terminates_with_empty_batches(self):
        """Regression: on a graph with no non-edges the insert sampler
        used to rejection-sample forever; batches must cap at the
        complement size (here zero) instead."""
        from repro.graph.csr import Graph

        n = 5
        src, dst = zip(*[(u, v) for u in range(n) for v in range(n) if u != v])
        src = np.array(src, dtype=np.int64)
        dst = np.array(dst, dtype=np.int64)
        order = np.lexsort((dst, src))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src[order], minlength=n), out=indptr[1:])
        complete = Graph(indptr, dst[order], directed=False)
        batches = random_edge_updates(complete, 3, edge_fraction=0.5, seed=0)
        assert len(batches) == 3
        for ins, dels in batches:
            assert ins.shape == (0, 2) and dels.shape == (0, 2)

    def test_near_complete_graph_caps_inserts_at_complement(self):
        """edge_fraction may ask for more inserts than there are
        non-edges; the batch shrinks to the complement size."""
        from repro.graph.csr import Graph

        n = 4
        # Complete K4 minus the (0, 1) edge: exactly one non-edge.
        pairs = [
            (u, v) for u in range(n) for v in range(n)
            if u != v and {u, v} != {0, 1}
        ]
        src = np.array([p[0] for p in pairs], dtype=np.int64)
        dst = np.array([p[1] for p in pairs], dtype=np.int64)
        order = np.lexsort((dst, src))
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src[order], minlength=n), out=indptr[1:])
        g = Graph(indptr, dst[order], directed=False)
        batches = random_edge_updates(g, 1, edge_fraction=0.9, seed=3)
        ins, dels = batches[0]
        assert ins.shape == (1, 2) and dels.shape == (1, 2)
        assert tuple(sorted(ins[0].tolist())) == (0, 1)
