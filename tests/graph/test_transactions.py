"""Tests for the transaction-database data model."""

import pytest

from repro.graph.csr import Graph, GraphBuilder
from repro.graph.transactions import GraphTransaction, TransactionDatabase


def _labeled(edges, labels, gid=0):
    n = len(labels)
    return GraphTransaction(
        graph_id=gid,
        graph=Graph.from_edges(edges, num_vertices=n, vertex_labels=labels),
    )


class TestTransactionDatabase:
    def test_len_and_iteration(self):
        db = TransactionDatabase(
            [_labeled([(0, 1)], [1, 2], gid=i) for i in range(3)]
        )
        assert len(db) == 3
        assert [t.graph_id for t in db] == [0, 1, 2]
        assert db[1].graph_id == 1

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            TransactionDatabase(
                [_labeled([(0, 1)], [1, 2], gid=0), _labeled([(0, 1)], [1, 2], gid=0)]
            )

    def test_directed_transaction_rejected(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            GraphTransaction(graph_id=0, graph=g)

    def test_vertex_label_support(self):
        db = TransactionDatabase(
            [
                _labeled([(0, 1)], [1, 2], gid=0),
                _labeled([(0, 1)], [1, 1], gid=1),
                _labeled([(0, 1)], [2, 3], gid=2),
            ]
        )
        support = db.vertex_label_support()
        assert support[1] == 2
        assert support[2] == 2
        assert support[3] == 1

    def test_edge_label_support_canonical_key(self):
        b1 = GraphBuilder()
        b1.add_edge(0, 1, label=5)
        t1 = GraphTransaction(
            0, b1.build(num_vertices=2, vertex_labels=[2, 1])
        )
        b2 = GraphBuilder()
        b2.add_edge(0, 1, label=5)
        t2 = GraphTransaction(
            1, b2.build(num_vertices=2, vertex_labels=[1, 2])
        )
        db = TransactionDatabase([t1, t2])
        support = db.edge_label_support()
        # Both orientations collapse to (1, 5, 2).
        assert support == {(1, 5, 2): 2}

    def test_edge_support_counts_transactions_not_edges(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edge(1, 2)
        t = GraphTransaction(0, b.build(num_vertices=3, vertex_labels=[1, 1, 1]))
        db = TransactionDatabase([t])
        support = db.edge_label_support()
        assert support[(1, 0, 1)] == 1  # two edges, one transaction
