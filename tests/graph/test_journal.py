"""Crash-consistent chunked ingest: journal, resume, atomic overwrite,
verify/repair quarantine, and temp-file hygiene."""

import hashlib
import os

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert
from repro.graph.store import (
    QUARANTINE_DIRNAME,
    CorruptShardError,
    IngestJournal,
    Manifest,
    StoreError,
    build_store,
    ingest_edge_stream,
    verify_store,
    repair_store,
)
from repro.graph.store import journal as journal_mod
from repro.graph.store import writer as writer_mod
from repro.graph.store.journal import INGEST_DIRNAME
from repro.resilience.faults import FaultError, FaultPlan

NUM_VERTICES = 60
CHUNK_EDGES = 12


def _edges():
    graph = barabasi_albert(NUM_VERTICES, 2, seed=5)
    pairs = []
    for u in range(graph.num_vertices):
        for v in graph.indices[graph.indptr[u]: graph.indptr[u + 1]]:
            if u < int(v):
                pairs.append((u, int(v)))
    order = np.random.default_rng(9).permutation(len(pairs))
    return [pairs[i] for i in order]


EDGES = _edges()
N_CHUNKS = -(-len(EDGES) // CHUNK_EDGES)

KWARGS = dict(
    num_vertices=NUM_VERTICES, directed=False, partition="hash",
    num_parts=2, seed=3, chunk_edges=CHUNK_EDGES, name="t",
)


def _digest(root):
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for fname in sorted(filenames):
            full = os.path.join(dirpath, fname)
            digest.update(os.path.relpath(full, root).encode() + b"\0")
            with open(full, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\1")
    return digest.hexdigest()


@pytest.fixture
def reference(tmp_path):
    root = str(tmp_path / "ref")
    ingest_edge_stream(iter(EDGES), path=root, **KWARGS)
    return _digest(root)


class TestResumeByteIdentity:
    @pytest.mark.parametrize("chunk", [0, N_CHUNKS // 2, N_CHUNKS - 1])
    def test_crash_at_chunk_boundary(self, tmp_path, reference, chunk):
        root = str(tmp_path / "g")
        injector = FaultPlan(seed=0).crash_at_chunk(chunk).build()
        with pytest.raises(FaultError) as excinfo:
            ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        assert excinfo.value.kind == "crash_at_chunk"
        # The crash landed on a journaled boundary.
        journal = IngestJournal.load(root)
        assert journal is not None
        assert journal.chunks_committed == chunk + 1

        ingest_edge_stream(iter(EDGES), path=root, resume=True, **KWARGS)
        assert _digest(root) == reference
        assert not os.path.exists(os.path.join(root, INGEST_DIRNAME))

    def test_torn_write_truncated_on_resume(self, tmp_path, reference):
        root = str(tmp_path / "g")
        injector = FaultPlan(seed=0).torn_write(chunk=1).build()
        with pytest.raises(FaultError) as excinfo:
            ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        assert excinfo.value.kind == "torn_write"
        # The torn chunk was NOT committed: the journal still points at
        # the previous boundary, and a spill file has a ragged tail.
        journal = IngestJournal.load(root)
        assert journal.chunks_committed == 1

        ingest_edge_stream(iter(EDGES), path=root, resume=True, **KWARGS)
        assert _digest(root) == reference

    def test_crash_in_pass2_resumes(self, tmp_path, reference):
        root = str(tmp_path / "g")
        # Rate 1.0 fails every write attempt: the first partition shard
        # write dies even after the retry, mid pass 2.
        injector = FaultPlan(seed=0).io_error(1.0).build()
        with pytest.raises(FaultError) as excinfo:
            ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        assert excinfo.value.kind == "io_error"
        journal = IngestJournal.load(root)
        assert journal.phase == "pass2"

        ingest_edge_stream(iter(EDGES), path=root, resume=True, **KWARGS)
        assert _digest(root) == reference

    def test_resume_of_finished_build_is_a_noop(self, tmp_path):
        root = str(tmp_path / "g")
        want = ingest_edge_stream(iter(EDGES), path=root, **KWARGS)
        got = ingest_edge_stream(None, path=root, resume=True, **KWARGS)
        assert got.as_dict() == want.as_dict()

    def test_resume_without_edges_needs_pass1_done(self, tmp_path):
        root = str(tmp_path / "g")
        injector = FaultPlan(seed=0).crash_at_chunk(0).build()
        with pytest.raises(FaultError):
            ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        with pytest.raises(StoreError):
            ingest_edge_stream(None, path=root, resume=True, **KWARGS)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        root = str(tmp_path / "g")
        injector = FaultPlan(seed=0).crash_at_chunk(1).build()
        with pytest.raises(FaultError):
            ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        mismatched = dict(KWARGS, chunk_edges=CHUNK_EDGES + 1)
        with pytest.raises(StoreError):
            ingest_edge_stream(iter(EDGES), path=root, resume=True, **mismatched)

    def test_fresh_restart_discards_crashed_leftovers(self, tmp_path, reference):
        root = str(tmp_path / "g")
        injector = FaultPlan(seed=0).crash_at_chunk(1).build()
        with pytest.raises(FaultError):
            ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        # No resume: start over from scratch; stale spills must not leak.
        ingest_edge_stream(iter(EDGES), path=root, **KWARGS)
        assert _digest(root) == reference


class TestIoRetry:
    def test_single_io_error_absorbed_by_retry(self, tmp_path, reference):
        root = str(tmp_path / "g")
        injector = FaultPlan(seed=0).fail_write("part1/indices.npy").build()
        ingest_edge_stream(iter(EDGES), path=root, injector=injector, **KWARGS)
        assert injector.faults_injected >= 1
        assert _digest(root) == reference


class TestAtomicOverwrite:
    def test_overwrite_replaces_store(self, tmp_path):
        graph_a = barabasi_albert(30, 2, seed=1)
        graph_b = barabasi_albert(40, 3, seed=2)
        root = str(tmp_path / "g")
        build_store(graph_a, root, num_parts=2, name="t")
        build_store(graph_b, root, num_parts=2, name="t", overwrite=True)
        assert Manifest.load(root).num_vertices == 40

        fresh = str(tmp_path / "fresh")
        build_store(graph_b, fresh, num_parts=2, name="t")
        assert _digest(root) == _digest(fresh)
        # The sibling temp/old directories were cleaned up.
        assert os.listdir(str(tmp_path)) == sorted(["g", "fresh"]) or set(
            os.listdir(str(tmp_path))
        ) == {"g", "fresh"}

    def test_failed_overwrite_preserves_original(self, tmp_path):
        graph_a = barabasi_albert(30, 2, seed=1)
        graph_b = barabasi_albert(40, 3, seed=2)
        root = str(tmp_path / "g")
        build_store(graph_a, root, num_parts=2, name="t")
        want = _digest(root)
        injector = FaultPlan(seed=0).io_error(1.0).build()
        with pytest.raises(FaultError):
            build_store(
                graph_b, root, num_parts=2, name="t",
                overwrite=True, injector=injector,
            )
        # The original store is untouched and still verifies.
        assert _digest(root) == want
        assert verify_store(root).ok
        # The half-built sibling is tracked for the atexit sweep.
        writer_mod._sweep_tmp_dirs()
        assert set(os.listdir(str(tmp_path))) == {"g"}

    def test_overwrite_still_required(self, tmp_path):
        graph = barabasi_albert(30, 2, seed=1)
        root = str(tmp_path / "g")
        build_store(graph, root)
        with pytest.raises(StoreError):
            build_store(graph, root)


class TestVerifyRepair:
    def _flip_byte(self, path):
        with open(path, "r+b") as handle:
            handle.seek(-8, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-8, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_clean_store_verifies(self, tmp_path):
        build_store(barabasi_albert(30, 2, seed=1), str(tmp_path / "g"))
        report = verify_store(str(tmp_path / "g"))
        assert report.ok
        assert report.checked > 0 and report.bad_paths == []

    def test_corruption_detected_and_quarantined(self, tmp_path):
        root = str(tmp_path / "g")
        build_store(barabasi_albert(30, 2, seed=1), root, num_parts=2)
        victim = os.path.join("part0", "indices.npy")
        self._flip_byte(os.path.join(root, victim))

        report = verify_store(root)
        assert not report.ok
        assert report.corrupt == [victim]

        with pytest.raises(CorruptShardError) as excinfo:
            repair_store(root)
        assert victim in excinfo.value.paths
        quarantined = os.path.join(root, QUARANTINE_DIRNAME, victim)
        assert os.path.exists(quarantined)
        # After repair the bad shard is classified missing, not corrupt.
        after = verify_store(root)
        assert after.corrupt == []
        assert after.missing == [victim]

    def test_truncation_detected(self, tmp_path):
        root = str(tmp_path / "g")
        build_store(barabasi_albert(30, 2, seed=1), root)
        victim = os.path.join(root, "part0", "indices.npy")
        with open(victim, "r+b") as handle:
            handle.truncate(os.path.getsize(victim) - 4)
        report = verify_store(root)
        assert not report.ok
        assert os.path.join("part0", "indices.npy") in report.truncated


class TestTempHygiene:
    def test_enospc_journal_commit_leaves_no_tmp(self, tmp_path, monkeypatch):
        journal = IngestJournal(str(tmp_path), {"k": 1})

        def no_space(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(journal_mod.os, "fsync", no_space)
        with pytest.raises(OSError):
            journal.commit()
        monkeypatch.undo()
        assert not os.path.exists(journal.path + ".tmp")
        assert journal.path + ".tmp" not in journal_mod._LIVE_TMP

    def test_atexit_sweep_removes_stray_journal_tmp(self, tmp_path):
        stray = str(tmp_path / "journal.json.tmp")
        with open(stray, "w") as handle:
            handle.write("{}")
        journal_mod._LIVE_TMP.add(stray)
        journal_mod._sweep_tmp()
        assert not os.path.exists(stray)
        assert stray not in journal_mod._LIVE_TMP

    def test_atexit_sweep_removes_stray_build_dir(self, tmp_path):
        stray = str(tmp_path / "g.tmp-999")
        os.makedirs(os.path.join(stray, "part0"))
        with open(os.path.join(stray, "part0", "x.npy"), "w") as handle:
            handle.write("x")
        writer_mod._LIVE_TMP_DIRS.add(stray)
        writer_mod._sweep_tmp_dirs()
        assert not os.path.exists(stray)
        assert stray not in writer_mod._LIVE_TMP_DIRS
