"""Round-trip tests for the graph I/O formats."""

import pytest

from repro.graph.csr import Graph, GraphBuilder
from repro.graph.generators import erdos_renyi, random_labeled_transactions
from repro.graph.io import (
    load_adjacency,
    load_edge_list,
    load_transactions,
    save_adjacency,
    save_edge_list,
    save_transactions,
)
from repro.graph.transactions import TransactionDatabase


class TestEdgeList:
    def test_round_trip(self, tmp_path, small_er):
        path = tmp_path / "g.txt"
        save_edge_list(small_er, path)
        loaded = load_edge_list(path)
        assert set(loaded.edges()) == set(small_er.edges())

    def test_round_trip_with_labels(self, tmp_path):
        b = GraphBuilder()
        b.add_edge(0, 1, label=3)
        b.add_edge(1, 2, label=5)
        g = b.build()
        path = tmp_path / "labeled.txt"
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert loaded.edge_label(0, 1) == 3
        assert loaded.edge_label(1, 2) == 5

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# header\n\n0 1\n# mid\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            load_edge_list(path)

    def test_directed_load(self, tmp_path):
        path = tmp_path / "d.txt"
        path.write_text("0 1\n")
        g = load_edge_list(path, directed=True)
        assert g.has_edge(0, 1) and not g.has_edge(1, 0)


class TestAdjacency:
    def test_round_trip(self, tmp_path, small_er):
        path = tmp_path / "adj.txt"
        save_adjacency(small_er, path)
        loaded = load_adjacency(path)
        assert set(loaded.edges()) == set(small_er.edges())
        assert loaded.num_vertices == small_er.num_vertices

    def test_isolated_vertices_preserved(self, tmp_path):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_vertex(3)
        g = b.build()
        path = tmp_path / "iso.txt"
        save_adjacency(g, path)
        loaded = load_adjacency(path)
        assert loaded.num_vertices == 4


class TestTransactions:
    def test_round_trip(self, tmp_path):
        db = TransactionDatabase(
            random_labeled_transactions(6, 7, 0.3, 3, seed=1)
        )
        path = tmp_path / "db.gspan"
        save_transactions(db, path)
        loaded = load_transactions(path)
        assert len(loaded) == len(db)
        for a, b in zip(db, loaded):
            assert a.graph_id == b.graph_id
            assert set(a.graph.edges()) == set(b.graph.edges())
            assert [a.graph.vertex_label(v) for v in a.graph.vertices()] == [
                b.graph.vertex_label(v) for v in b.graph.vertices()
            ]

    def test_end_marker_stops_parsing(self, tmp_path):
        path = tmp_path / "m.gspan"
        path.write_text("t # 0\nv 0 1\nv 1 2\ne 0 1 0\nt # -1\nt # 9\nv 0 1\n")
        db = load_transactions(path)
        assert len(db) == 1

    def test_out_of_order_vertices_rejected(self, tmp_path):
        path = tmp_path / "bad.gspan"
        path.write_text("t # 0\nv 1 1\n")
        with pytest.raises(ValueError):
            load_transactions(path)

    def test_unknown_record_rejected(self, tmp_path):
        path = tmp_path / "bad2.gspan"
        path.write_text("t # 0\nv 0 1\nq 1 2\n")
        with pytest.raises(ValueError):
            load_transactions(path)
