"""Tests for the graph partitioners and their quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi, grid_graph
from repro.graph.partition import (
    Partition,
    balance,
    bfs_voronoi_partition,
    edge_cut_fraction,
    hash_partition,
    metis_like_partition,
    range_partition,
    replication_factor,
    vertex_cut_partition,
)


def _check_cover(graph, partition):
    """Every vertex assigned exactly one worker within range."""
    assert partition.assignment.shape == (graph.num_vertices,)
    assert partition.assignment.min() >= 0
    assert partition.assignment.max() < partition.num_parts
    total = sum(partition.part(k).size for k in range(partition.num_parts))
    assert total == graph.num_vertices


PARTITIONERS = [
    ("hash", lambda g, k: hash_partition(g, k, seed=0)),
    ("range", lambda g, k: range_partition(g, k)),
    ("metis", lambda g, k: metis_like_partition(g, k, seed=0)),
    (
        "voronoi",
        lambda g, k: bfs_voronoi_partition(
            g, k, seeds=list(range(0, g.num_vertices, max(g.num_vertices // (3 * k), 1)))
        ),
    ),
    ("vertex-cut", lambda g, k: vertex_cut_partition(g, k, seed=0)),
]


class TestPartitionCoverage:
    @pytest.mark.parametrize("name,fn", PARTITIONERS)
    def test_cover_and_disjoint(self, name, fn, small_ba):
        partition = fn(small_ba, 4)
        _check_cover(small_ba, partition)

    @pytest.mark.parametrize("name,fn", PARTITIONERS)
    def test_single_part(self, name, fn, small_er):
        partition = fn(small_er, 1)
        assert edge_cut_fraction(small_er, partition) == 0.0

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError):
            Partition(2, np.array([0, 1, 2]))


class TestQuality:
    def test_metis_beats_hash_on_grid(self):
        g = grid_graph(12, 12)
        cut_hash = edge_cut_fraction(g, hash_partition(g, 4, seed=0))
        cut_metis = edge_cut_fraction(g, metis_like_partition(g, 4, seed=0))
        assert cut_metis < cut_hash / 2

    def test_metis_beats_hash_on_ba(self, small_ba):
        cut_hash = edge_cut_fraction(small_ba, hash_partition(small_ba, 4))
        cut_metis = edge_cut_fraction(
            small_ba, metis_like_partition(small_ba, 4, seed=0)
        )
        assert cut_metis < cut_hash

    def test_metis_balance_bounded(self, small_ba):
        partition = metis_like_partition(small_ba, 4, seed=0)
        assert balance(partition) < 1.35

    def test_voronoi_blocks_recorded(self, small_ba):
        seeds = list(range(0, 200, 20))
        partition = bfs_voronoi_partition(small_ba, 4, seeds=seeds)
        assert partition.blocks is not None
        assert len(partition.blocks) == len(seeds)
        # every vertex reachable from a seed lands in some block
        covered = sum(len(b) for b in partition.blocks)
        assert covered <= small_ba.num_vertices

    def test_voronoi_respects_seed_locality(self):
        g = grid_graph(10, 10)
        partition = bfs_voronoi_partition(g, 2, seeds=[0, 99])
        # The two seed corners must land on different... workers may merge
        # blocks, but the two blocks themselves are distinct.
        assert partition.blocks is not None
        b0 = set(partition.blocks[0])
        b1 = set(partition.blocks[1])
        assert 0 in b0 and 99 in b1
        assert not (b0 & b1)

    def test_vertex_cut_covers_edges(self, small_er):
        partition = vertex_cut_partition(small_er, 3, seed=0)
        assert partition.edge_assignment is not None
        assert len(partition.edge_assignment) == small_er.num_edges

    def test_vertex_cut_replication_bounded(self, small_ba):
        partition = vertex_cut_partition(small_ba, 4, seed=0)
        rf = replication_factor(small_ba, partition)
        assert 1.0 <= rf <= 4.0

    def test_replication_factor_single_part_is_one(self, small_er):
        partition = hash_partition(small_er, 1)
        assert replication_factor(small_er, partition) == 1.0

    def test_edge_cut_empty_graph(self):
        g = Graph.from_edges([], num_vertices=4)
        assert edge_cut_fraction(g, hash_partition(g, 2)) == 0.0


class TestDeterminism:
    @pytest.mark.parametrize(
        "name,fn", [p for p in PARTITIONERS if p[0] != "range"]
    )
    def test_same_seed_same_partition(self, name, fn, small_ba):
        a = fn(small_ba, 4)
        b = fn(small_ba, 4)
        assert np.array_equal(a.assignment, b.assignment)

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_hash_partition_num_parts(self, k):
        g = erdos_renyi(30, 0.1, seed=1)
        partition = hash_partition(g, k)
        _check_cover(g, partition)


class TestVertexCutMetrics:
    """Regression: edge_cut_fraction must respect edge_assignment.

    Pre-fix it read ``partition.assignment`` for every partition kind,
    reporting a phantom cut for vertex-cut partitions whose edges are
    all local to their assigned worker.  Pinned in the differential
    corpus as ``graph-vertexcut-edgecut.json``.
    """

    def test_vertex_cut_reports_zero_edge_cut(self):
        g = erdos_renyi(60, 0.1, seed=3)
        part = vertex_cut_partition(g, 4, seed=1)
        assert edge_cut_fraction(g, part) == 0.0

    def test_vertex_cut_cost_is_replication(self):
        g = barabasi_albert(80, 3, seed=2)
        part = vertex_cut_partition(g, 4, seed=0)
        assert edge_cut_fraction(g, part) == 0.0
        assert replication_factor(g, part) > 1.0

    def test_vertex_partition_cut_unchanged(self):
        """The classic cut for vertex partitions must not change."""
        g = erdos_renyi(40, 0.15, seed=5)
        part = hash_partition(g, 3, seed=0)
        expected = sum(
            1 for u, v in g.edges()
            if part.assignment[u] != part.assignment[v]
        ) / g.num_edges
        assert edge_cut_fraction(g, part) == expected

    def test_replica_sets_cover_incident_workers(self):
        from repro.graph.partition import replica_sets

        g = erdos_renyi(30, 0.2, seed=7)
        part = vertex_cut_partition(g, 3, seed=2)
        replicas = replica_sets(g, part)
        for (u, v), k in part.edge_assignment.items():
            assert k in replicas[u] and k in replicas[v]

    def test_replica_sets_isolated_vertex_single_copy(self):
        # 4 vertices, one edge: vertices 2 and 3 are isolated.
        g = Graph(
            np.array([0, 1, 2, 2, 2], dtype=np.int64),
            np.array([1, 0], dtype=np.int64),
        )
        from repro.graph.partition import replica_sets

        part = vertex_cut_partition(g, 2, seed=0)
        replicas = replica_sets(g, part)
        assert len(replicas[2]) == 1 and len(replicas[3]) == 1
        assert replication_factor(g, part) >= 1.0

    def test_halo_bound_ties_cut_to_replication(self):
        """(rf - 1) * |V| <= 2 * cut edges for vertex partitions."""
        g = barabasi_albert(60, 3, seed=4)
        for k in (2, 4):
            part = metis_like_partition(g, k, seed=0)
            cut_edges = edge_cut_fraction(g, part) * g.num_edges
            rf = replication_factor(g, part)
            assert (rf - 1.0) * g.num_vertices <= 2.0 * cut_edges + 1e-9
