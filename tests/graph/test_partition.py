"""Tests for the graph partitioners and their quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi, grid_graph
from repro.graph.partition import (
    Partition,
    balance,
    bfs_voronoi_partition,
    edge_cut_fraction,
    hash_partition,
    metis_like_partition,
    range_partition,
    replication_factor,
    vertex_cut_partition,
)


def _check_cover(graph, partition):
    """Every vertex assigned exactly one worker within range."""
    assert partition.assignment.shape == (graph.num_vertices,)
    assert partition.assignment.min() >= 0
    assert partition.assignment.max() < partition.num_parts
    total = sum(partition.part(k).size for k in range(partition.num_parts))
    assert total == graph.num_vertices


PARTITIONERS = [
    ("hash", lambda g, k: hash_partition(g, k, seed=0)),
    ("range", lambda g, k: range_partition(g, k)),
    ("metis", lambda g, k: metis_like_partition(g, k, seed=0)),
    (
        "voronoi",
        lambda g, k: bfs_voronoi_partition(
            g, k, seeds=list(range(0, g.num_vertices, max(g.num_vertices // (3 * k), 1)))
        ),
    ),
    ("vertex-cut", lambda g, k: vertex_cut_partition(g, k, seed=0)),
]


class TestPartitionCoverage:
    @pytest.mark.parametrize("name,fn", PARTITIONERS)
    def test_cover_and_disjoint(self, name, fn, small_ba):
        partition = fn(small_ba, 4)
        _check_cover(small_ba, partition)

    @pytest.mark.parametrize("name,fn", PARTITIONERS)
    def test_single_part(self, name, fn, small_er):
        partition = fn(small_er, 1)
        assert edge_cut_fraction(small_er, partition) == 0.0

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError):
            Partition(2, np.array([0, 1, 2]))


class TestQuality:
    def test_metis_beats_hash_on_grid(self):
        g = grid_graph(12, 12)
        cut_hash = edge_cut_fraction(g, hash_partition(g, 4, seed=0))
        cut_metis = edge_cut_fraction(g, metis_like_partition(g, 4, seed=0))
        assert cut_metis < cut_hash / 2

    def test_metis_beats_hash_on_ba(self, small_ba):
        cut_hash = edge_cut_fraction(small_ba, hash_partition(small_ba, 4))
        cut_metis = edge_cut_fraction(
            small_ba, metis_like_partition(small_ba, 4, seed=0)
        )
        assert cut_metis < cut_hash

    def test_metis_balance_bounded(self, small_ba):
        partition = metis_like_partition(small_ba, 4, seed=0)
        assert balance(partition) < 1.35

    def test_voronoi_blocks_recorded(self, small_ba):
        seeds = list(range(0, 200, 20))
        partition = bfs_voronoi_partition(small_ba, 4, seeds=seeds)
        assert partition.blocks is not None
        assert len(partition.blocks) == len(seeds)
        # every vertex reachable from a seed lands in some block
        covered = sum(len(b) for b in partition.blocks)
        assert covered <= small_ba.num_vertices

    def test_voronoi_respects_seed_locality(self):
        g = grid_graph(10, 10)
        partition = bfs_voronoi_partition(g, 2, seeds=[0, 99])
        # The two seed corners must land on different... workers may merge
        # blocks, but the two blocks themselves are distinct.
        assert partition.blocks is not None
        b0 = set(partition.blocks[0])
        b1 = set(partition.blocks[1])
        assert 0 in b0 and 99 in b1
        assert not (b0 & b1)

    def test_vertex_cut_covers_edges(self, small_er):
        partition = vertex_cut_partition(small_er, 3, seed=0)
        assert partition.edge_assignment is not None
        assert len(partition.edge_assignment) == small_er.num_edges

    def test_vertex_cut_replication_bounded(self, small_ba):
        partition = vertex_cut_partition(small_ba, 4, seed=0)
        rf = replication_factor(small_ba, partition)
        assert 1.0 <= rf <= 4.0

    def test_replication_factor_single_part_is_one(self, small_er):
        partition = hash_partition(small_er, 1)
        assert replication_factor(small_er, partition) == 1.0

    def test_edge_cut_empty_graph(self):
        g = Graph.from_edges([], num_vertices=4)
        assert edge_cut_fraction(g, hash_partition(g, 2)) == 0.0


class TestDeterminism:
    @pytest.mark.parametrize(
        "name,fn", [p for p in PARTITIONERS if p[0] != "range"]
    )
    def test_same_seed_same_partition(self, name, fn, small_ba):
        a = fn(small_ba, 4)
        b = fn(small_ba, 4)
        assert np.array_equal(a.assignment, b.assignment)

    @given(st.integers(2, 6))
    @settings(max_examples=10, deadline=None)
    def test_hash_partition_num_parts(self, k):
        g = erdos_renyi(30, 0.1, seed=1)
        partition = hash_partition(g, k)
        _check_cover(g, partition)
