"""Interactive query serving (G-thinkerQ)."""

import pytest

from repro.graph.generators import barabasi_albert, random_labeled_graph
from repro.matching.backtrack import count_matches
from repro.matching.pattern import (
    PatternGraph,
    clique_pattern,
    diamond_pattern,
    path_pattern,
    triangle_pattern,
)
from repro.tlag.query import Query, QueryServer


@pytest.fixture
def graph():
    return barabasi_albert(120, 3, seed=7)


class TestQueryResults:
    def test_single_query_correct(self, graph):
        server = QueryServer(graph, num_workers=4)
        server.submit(Query(triangle_pattern()))
        results = server.serve()
        assert results[0].embeddings == count_matches(graph, triangle_pattern())

    def test_multiple_queries_all_correct(self, graph):
        patterns = [triangle_pattern(), path_pattern(3), diamond_pattern()]
        server = QueryServer(graph, num_workers=4)
        for p in patterns:
            server.submit(Query(p))
        results = server.serve()
        for res, p in zip(results, patterns):
            assert res.embeddings == count_matches(graph, p)

    def test_sequential_baseline_same_answers(self, graph):
        patterns = [triangle_pattern(), diamond_pattern()]
        shared = QueryServer(graph, num_workers=2)
        seq = QueryServer(graph, num_workers=2)
        for p in patterns:
            shared.submit(Query(p))
            seq.submit(Query(p))
        a = shared.serve()
        b = seq.run_sequentially()
        assert [r.embeddings for r in a] == [r.embeddings for r in b]

    def test_labeled_query_spawns_filtered(self):
        g = random_labeled_graph(60, 0.15, num_vertex_labels=2, seed=1)
        pattern = PatternGraph.from_edges([(0, 1)], vertex_labels=[0, 1])
        server = QueryServer(g, num_workers=2)
        server.submit(Query(pattern))
        results = server.serve()
        assert results[0].embeddings == count_matches(g, pattern)


class TestScheduling:
    def test_short_query_finishes_before_long_one(self, graph):
        """The C15 claim: fair sharing lets small queries overtake."""
        long_query = Query(diamond_pattern())   # heavy
        short_query = Query(path_pattern(2))    # trivial
        server = QueryServer(graph, num_workers=2)
        server.submit(long_query)
        server.submit(short_query)
        results = server.serve()
        assert results[1].completion_time <= results[0].completion_time

    def test_shared_mean_response_not_worse(self, graph):
        patterns = [diamond_pattern(), path_pattern(2), triangle_pattern()]
        shared = QueryServer(graph, num_workers=2)
        seq = QueryServer(graph, num_workers=2)
        for p in patterns:
            shared.submit(Query(p))
            seq.submit(Query(p))
        mean_shared = sum(r.completion_time for r in shared.serve()) / 3
        mean_seq = sum(r.completion_time for r in seq.run_sequentially()) / 3
        assert mean_shared <= mean_seq * 1.1

    def test_arrival_times_respected(self, graph):
        server = QueryServer(graph, num_workers=2)
        server.submit(Query(triangle_pattern(), arrival=0))
        server.submit(Query(path_pattern(2), arrival=10**9))
        results = server.serve()
        assert results[1].completion_time >= 10**9

    def test_response_time_is_relative_to_arrival(self, graph):
        """A late arrival's response time is what *it* waited, not the
        raw completion clock."""
        server = QueryServer(graph, num_workers=2)
        server.submit(Query(triangle_pattern(), arrival=0))
        server.submit(Query(path_pattern(2), arrival=10**9))
        early, late = server.serve()
        assert early.response_time == early.completion_time
        assert late.response_time == late.completion_time - 10**9
        # The trivial query did not "wait" a billion ops.
        assert late.response_time < 10**6

    def test_sequential_response_time_relative_too(self, graph):
        server = QueryServer(graph, num_workers=2)
        server.submit(Query(triangle_pattern(), arrival=500))
        (result,) = server.run_sequentially()
        assert result.arrival == 500
        assert result.response_time == result.completion_time - 500


class TestObservability:
    def test_stats_view_counts_queries_and_tasks(self, graph):
        server = QueryServer(graph, num_workers=2)
        server.submit(Query(triangle_pattern()))
        server.submit(Query(path_pattern(2)))
        results = server.serve()
        stats = server.stats
        assert stats.submitted == 2
        assert stats.completed == 2
        assert stats.tasks_executed > 0
        assert stats.total_work == sum(r.work for r in results)
        assert stats.mean_response("shared") == pytest.approx(
            sum(r.response_time for r in results) / 2
        )

    def test_shared_registry_accumulates(self, graph):
        from repro.obs import MetricsRegistry

        obs = MetricsRegistry()
        for _ in range(2):
            server = QueryServer(graph, num_workers=2, obs=obs)
            server.submit(Query(triangle_pattern()))
            server.serve()
        assert obs.counter("tlag.query.submitted").total == 2
        assert obs.counter("tlag.query.completed").total == 2

    def test_serve_emits_span(self, graph):
        from repro.obs import Tracer

        tracer = Tracer()
        server = QueryServer(graph, num_workers=2, tracer=tracer)
        server.submit(Query(triangle_pattern()))
        results = server.serve()
        (span,) = tracer.find("tlag.query.serve")
        assert span.attrs["mode"] == "shared"
        assert span.attrs["queries"] == 1
        assert span.sim_end == results[0].completion_time
