"""Distributed TLAG: pull-and-cache correctness and traffic."""

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.partition import hash_partition, metis_like_partition
from repro.matching.backtrack import count_matches
from repro.matching.cliques import maximal_cliques
from repro.matching.pattern import diamond_pattern, triangle_pattern
from repro.tlag.distributed import DistributedTaskEngine, VertexCache
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import (
    KCliqueProgram,
    MatchProgram,
    MaximalCliqueProgram,
)


@pytest.fixture
def graph():
    return barabasi_albert(180, 3, seed=8)


@pytest.fixture
def partition(graph):
    return hash_partition(graph, 4)


class TestVertexCache:
    def test_miss_then_hit(self):
        import numpy as np

        cache = VertexCache(capacity=2)
        assert cache.get(5) is None
        cache.put(5, np.array([1, 2]))
        assert cache.get(5) is not None

    def test_lru_eviction(self):
        import numpy as np

        cache = VertexCache(capacity=2)
        cache.put(1, np.array([0]))
        cache.put(2, np.array([0]))
        cache.get(1)          # refresh 1
        cache.put(3, np.array([0]))  # evicts 2
        assert cache.get(2) is None
        assert cache.get(1) is not None

    def test_zero_capacity_never_stores(self):
        import numpy as np

        cache = VertexCache(capacity=0)
        cache.put(1, np.array([0]))
        assert cache.get(1) is None


class TestCorrectness:
    def test_maximal_cliques_match_shared_memory(self, graph, partition):
        engine = DistributedTaskEngine(
            graph, MaximalCliqueProgram(), partition, task_budget=40
        )
        assert sorted(engine.run()) == sorted(maximal_cliques(graph))

    def test_matching_counts(self, graph, partition):
        for pattern in (triangle_pattern(), diamond_pattern()):
            engine = DistributedTaskEngine(
                graph, MatchProgram(pattern), partition,
                collect_results=False,
            )
            engine.run()
            assert engine.result_count == count_matches(graph, pattern)

    def test_kclique_with_tiny_cache(self, graph, partition):
        engine = DistributedTaskEngine(
            graph, KCliqueProgram(3), partition, cache_capacity=4
        )
        reference = TaskEngine(graph, KCliqueProgram(3), num_workers=2)
        assert sorted(engine.run()) == sorted(reference.run())

    @pytest.mark.parametrize("num_parts", [1, 2, 6])
    def test_partition_count_invariant(self, graph, num_parts):
        engine = DistributedTaskEngine(
            graph,
            MatchProgram(triangle_pattern()),
            hash_partition(graph, num_parts),
            collect_results=False,
        )
        engine.run()
        assert engine.result_count == count_matches(graph, triangle_pattern())


class TestTraffic:
    def test_single_worker_no_pulls(self, graph):
        engine = DistributedTaskEngine(
            graph, MatchProgram(triangle_pattern()),
            hash_partition(graph, 1), collect_results=False,
        )
        engine.run()
        stats = engine.aggregate_cache_stats()
        assert stats.remote_pulls == 0
        assert stats.local_reads > 0

    def test_cache_cuts_pull_bytes(self, graph, partition):
        """The G-thinker vertex-cache claim."""
        cached = DistributedTaskEngine(
            graph, MaximalCliqueProgram(), partition,
            cache_capacity=512, collect_results=False,
        )
        cached.run()
        uncached = DistributedTaskEngine(
            graph, MaximalCliqueProgram(), partition,
            cache_capacity=0, collect_results=False,
        )
        uncached.run()
        a = cached.aggregate_cache_stats()
        b = uncached.aggregate_cache_stats()
        assert a.bytes_pulled < b.bytes_pulled / 2
        assert a.hit_rate > 0.5
        assert b.cache_hits == 0

    def test_better_partition_fewer_remote_reads(self, graph):
        def pulls(partition):
            engine = DistributedTaskEngine(
                graph, MatchProgram(triangle_pattern()), partition,
                cache_capacity=0, collect_results=False,
            )
            engine.run()
            return engine.aggregate_cache_stats().remote_pulls

        assert pulls(metis_like_partition(graph, 4, seed=0)) <= pulls(
            hash_partition(graph, 4)
        )

    def test_network_tags(self, graph, partition):
        engine = DistributedTaskEngine(
            graph, MaximalCliqueProgram(), partition,
            cache_capacity=64, task_budget=30,
        )
        engine.run()
        tags = engine.network.stats.by_tag
        assert tags.get("adj-pull", 0) > 0

    def test_total_reads_conserved(self, graph, partition):
        # Cache on/off changes *where* reads resolve, not how many the
        # program makes.
        runs = []
        for capacity in (0, 512):
            engine = DistributedTaskEngine(
                graph, MatchProgram(triangle_pattern()), partition,
                cache_capacity=capacity, collect_results=False, steal=False,
            )
            engine.run()
            runs.append(engine.aggregate_cache_stats().total_reads)
        assert runs[0] == runs[1]
