"""The task engine: correctness, splitting, stealing, load balance."""

import pytest

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, erdos_renyi, star_graph
from repro.matching.cliques import maximal_cliques
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import MaximalCliqueProgram, TriangleProgram
from repro.tlag.task import Task, TaskContext, TaskProgram


class CountdownProgram(TaskProgram):
    """Synthetic skewed workload: task v costs v ops; forks when asked."""

    def __init__(self, fanout: int = 0) -> None:
        self.fanout = fanout

    def spawn(self, graph):
        for v in graph.vertices():
            yield Task(subgraph=(v,), state=v)

    def process(self, task, ctx):
        ctx.charge(max(task.state, 1))
        ctx.emit(task.state)
        for i in range(self.fanout):
            if task.state > 4:
                ctx.fork(Task(subgraph=task.subgraph, state=task.state // 4))
                break


class TestEngineBasics:
    def test_all_spawned_tasks_processed(self, small_er):
        engine = TaskEngine(small_er, CountdownProgram(), num_workers=3)
        results = engine.run()
        assert sorted(results)[: small_er.num_vertices] is not None
        assert engine.stats.tasks_executed >= small_er.num_vertices

    def test_single_worker_is_serial_reference(self, small_er):
        e1 = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=1)
        e4 = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=4)
        assert sorted(e1.run()) == sorted(e4.run())

    def test_results_match_oracle(self, small_er):
        engine = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=4)
        assert sorted(engine.run()) == sorted(maximal_cliques(small_er))

    def test_invalid_worker_count(self, small_er):
        with pytest.raises(ValueError):
            TaskEngine(small_er, MaximalCliqueProgram(), num_workers=0)

    def test_counting_mode_skips_materialization(self, small_er):
        engine = TaskEngine(
            small_er, TriangleProgram(), num_workers=2, collect_results=False
        )
        results = engine.run()
        assert results == []
        assert engine.result_count > 0


class TestSplitting:
    def test_budget_forces_forking(self, small_ba):
        engine = TaskEngine(
            small_ba, MaximalCliqueProgram(), num_workers=4, task_budget=5
        )
        results = engine.run()
        assert engine.stats.tasks_forked > 0
        assert sorted(results) == sorted(maximal_cliques(small_ba))

    def test_split_results_identical_to_unsplit(self, small_er):
        unsplit = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=2)
        split = TaskEngine(
            small_er, MaximalCliqueProgram(), num_workers=2, task_budget=3
        )
        assert sorted(unsplit.run()) == sorted(split.run())

    def test_no_budget_no_forks(self, small_er):
        engine = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=2)
        engine.run()
        assert engine.stats.tasks_forked == 0


class TestStealing:
    def test_stealing_improves_balance_on_skew(self):
        """The C4 claim: stealing + splitting fixes skewed DFS tasks."""
        g = barabasi_albert(250, 4, seed=3)
        program = MaximalCliqueProgram()
        no_steal = TaskEngine(
            g, program, num_workers=8, steal=False, task_budget=None
        )
        no_steal.run()
        with_steal = TaskEngine(
            g, MaximalCliqueProgram(), num_workers=8, steal=True, task_budget=50
        )
        with_steal.run()
        assert with_steal.stats.balance <= no_steal.stats.balance
        assert with_steal.stats.makespan <= no_steal.stats.makespan

    def test_steals_counted(self):
        g = star_graph(40)
        engine = TaskEngine(
            g, CountdownProgram(fanout=1), num_workers=4, steal=True
        )
        engine.run()
        # With 40 skewed tasks on 4 workers some stealing happens
        # (or the work divided evenly without it; both acceptable),
        # but the counter must be consistent.
        assert engine.stats.steals >= 0

    def test_same_results_with_and_without_steal(self, small_er):
        a = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=3, steal=True)
        b = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=3, steal=False)
        assert sorted(a.run()) == sorted(b.run())


class TestStats:
    def test_total_ops_accumulated(self, small_er):
        engine = TaskEngine(small_er, CountdownProgram(), num_workers=2)
        engine.run()
        expected = sum(max(v, 1) for v in small_er.vertices())
        assert engine.stats.total_ops == expected

    def test_makespan_at_least_ideal(self, small_er):
        engine = TaskEngine(small_er, CountdownProgram(), num_workers=4)
        engine.run()
        ideal = engine.stats.total_ops / 4
        assert engine.stats.makespan >= ideal * 0.99

    def test_peak_pending_tracked(self, small_ba):
        engine = TaskEngine(
            small_ba, MaximalCliqueProgram(), num_workers=2, task_budget=5
        )
        engine.run()
        assert engine.stats.peak_pending_tasks > 0
