"""Task programs vs their serial oracles."""

import pytest

from repro.graph.generators import complete_graph, erdos_renyi, random_labeled_graph
from repro.matching.backtrack import count_matches, find_matches
from repro.matching.cliques import count_k_cliques, maximal_cliques
from repro.matching.pattern import (
    PatternGraph,
    clique_pattern,
    diamond_pattern,
    triangle_pattern,
)
from repro.matching.triangles import triangle_count
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import (
    KCliqueProgram,
    MatchProgram,
    MaximalCliqueProgram,
    TriangleProgram,
)


class TestMaximalCliqueProgram:
    def test_matches_serial(self, small_er):
        engine = TaskEngine(small_er, MaximalCliqueProgram(), num_workers=4)
        assert sorted(engine.run()) == sorted(maximal_cliques(small_er))

    def test_min_size_filter(self, small_er):
        engine = TaskEngine(
            small_er, MaximalCliqueProgram(min_size=3), num_workers=2
        )
        results = engine.run()
        expected = [c for c in maximal_cliques(small_er) if len(c) >= 3]
        assert sorted(results) == sorted(expected)

    def test_with_budget_on_dense_graph(self):
        g = erdos_renyi(30, 0.5, seed=9)
        engine = TaskEngine(
            g, MaximalCliqueProgram(), num_workers=4, task_budget=10
        )
        assert sorted(engine.run()) == sorted(maximal_cliques(g))


class TestKCliqueProgram:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_counts(self, k, small_er):
        engine = TaskEngine(small_er, KCliqueProgram(k), num_workers=3)
        results = engine.run()
        assert len(results) == count_k_cliques(small_er, k)
        assert len(set(results)) == len(results)

    def test_with_budget(self, small_er):
        engine = TaskEngine(
            small_er, KCliqueProgram(3), num_workers=3, task_budget=4
        )
        assert len(engine.run()) == count_k_cliques(small_er, 3)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KCliqueProgram(1)


class TestMatchProgram:
    @pytest.mark.parametrize(
        "pattern", [triangle_pattern(), clique_pattern(4), diamond_pattern()]
    )
    def test_counts_match_serial(self, pattern, small_er):
        engine = TaskEngine(small_er, MatchProgram(pattern), num_workers=4)
        results = engine.run()
        assert len(results) == count_matches(small_er, pattern)

    def test_embeddings_identical_to_serial(self, small_er):
        pattern = triangle_pattern()
        engine = TaskEngine(small_er, MatchProgram(pattern), num_workers=2)
        parallel = {tuple(sorted(e)) for e in engine.run()}
        serial = {tuple(sorted(e)) for e in find_matches(small_er, pattern)}
        assert parallel == serial

    def test_labeled_spawn_filtering(self):
        g = random_labeled_graph(40, 0.2, num_vertex_labels=2, seed=3)
        pattern = PatternGraph.from_edges([(0, 1)], vertex_labels=[0, 1])
        program = MatchProgram(pattern)
        spawned = list(program.spawn(g))
        # Only label-0 vertices spawn tasks (first order vertex is label 0).
        for task in spawned:
            assert g.vertex_label(task.subgraph[0]) == 0


class TestTriangleProgram:
    def test_counts_match_serial(self, small_er):
        engine = TaskEngine(small_er, TriangleProgram(), num_workers=3)
        results = engine.run()
        assert len(results) == triangle_count(small_er)

    def test_complete_graph(self):
        g = complete_graph(7)
        engine = TaskEngine(g, TriangleProgram(), num_workers=2)
        assert len(engine.run()) == 35
