"""BFS subgraph extension: exactness and the materialization explosion."""

import pytest

from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    path_graph,
)
from repro.matching.cliques import count_k_cliques
from repro.tlag.bfs_engine import (
    BfsExplorer,
    _canonical_generation,
    bfs_enumerate_cliques,
    bfs_enumerate_connected,
)
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import KCliqueProgram


class TestCanonicality:
    def test_canonical_order_is_connected_and_sorted_start(self, small_er):
        result = bfs_enumerate_connected(small_er, 3)
        for emb in result.final_embeddings:
            assert emb[0] == min(emb)

    def test_each_instance_exactly_once(self, small_er):
        result = bfs_enumerate_connected(small_er, 3)
        sets = [tuple(sorted(e)) for e in result.final_embeddings]
        assert len(set(sets)) == len(sets)

    def test_canonical_generation_deterministic(self, small_er):
        result = bfs_enumerate_connected(small_er, 3)
        for emb in result.final_embeddings[:50]:
            assert emb == _canonical_generation(emb, small_er)

    def test_disconnected_set_rejected(self):
        g = path_graph(4)
        with pytest.raises(ValueError):
            _canonical_generation((0, 3), g)


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_clique_counts(self, k, small_er):
        result = bfs_enumerate_cliques(small_er, k)
        assert len(result.final_embeddings) == count_k_cliques(small_er, k)

    def test_connected_subgraph_count_on_path(self):
        # Path on n vertices has n - k + 1 connected k-subgraphs.
        g = path_graph(8)
        result = bfs_enumerate_connected(g, 3)
        assert len(result.final_embeddings) == 6

    def test_connected_count_matches_complete(self):
        # K5: every k-subset is connected -> C(5, 3) = 10.
        result = bfs_enumerate_connected(complete_graph(5), 3)
        assert len(result.final_embeddings) == 10


class TestExplosion:
    def test_levels_recorded(self, small_er):
        result = bfs_enumerate_connected(small_er, 4)
        assert [s.level for s in result.levels] == [1, 2, 3, 4]
        assert result.levels[0].kept == small_er.num_vertices

    def test_materialization_grows_exponentially(self):
        """The C2 claim: BFS holds exponentially many embeddings."""
        g = barabasi_albert(120, 4, seed=0)
        result = bfs_enumerate_connected(g, 4)
        kept = [s.kept for s in result.levels]
        assert kept[1] > kept[0]
        assert kept[2] > 4 * kept[1]
        assert result.peak_materialized == max(kept)

    def test_dfs_engine_avoids_materialization(self):
        """Same answers, no level materialization, in the task engine."""
        g = erdos_renyi(40, 0.25, seed=2)
        bfs_result = bfs_enumerate_cliques(g, 3)
        engine = TaskEngine(g, KCliqueProgram(3), num_workers=1,
                            collect_results=False)
        engine.run()
        assert engine.result_count == len(bfs_result.final_embeddings)
        # The DFS engine materializes only pending tasks, never a level.
        assert engine.stats.peak_pending_tasks < bfs_result.peak_materialized


class TestFilters:
    def test_filter_prunes_growth(self, small_er):
        everything = bfs_enumerate_connected(small_er, 3)
        cliques = bfs_enumerate_cliques(small_er, 3)
        assert (
            len(cliques.final_embeddings) <= len(everything.final_embeddings)
        )
        assert cliques.total_generated <= everything.total_generated

    def test_filter_applied_at_every_level(self, small_er):
        # A filter that rejects everything leaves nothing after level 1.
        explorer = BfsExplorer(
            small_er, max_size=3, keep_filter=lambda e, g: len(e) == 1
        )
        result = explorer.run()
        assert result.levels[1].kept == 0
        assert result.final_embeddings == []
