"""Warp-level SIMT simulation (STMatch / T-DFS)."""

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.matching.backtrack import count_matches
from repro.matching.pattern import (
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    triangle_pattern,
)
from repro.tlag.warp import WarpSimulator, warp_match


PATTERNS = [triangle_pattern(), cycle_pattern(4), clique_pattern(4), diamond_pattern()]


class TestCorrectness:
    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_counts_match_reference(self, pattern, small_er):
        stats = warp_match(small_er, pattern, num_warps=4, warp_width=8)
        assert stats.embeddings == count_matches(small_er, pattern)

    @pytest.mark.parametrize("num_warps", [1, 2, 8])
    @pytest.mark.parametrize("width", [1, 4, 32])
    def test_invariant_to_configuration(self, num_warps, width, small_er):
        pattern = triangle_pattern()
        stats = warp_match(
            small_er, pattern, num_warps=num_warps, warp_width=width
        )
        assert stats.embeddings == count_matches(small_er, pattern)

    def test_no_steal_same_answer(self, small_er):
        pattern = diamond_pattern()
        with_steal = warp_match(small_er, pattern, steal=True)
        without = warp_match(small_er, pattern, steal=False)
        assert with_steal.embeddings == without.embeddings


class TestSimtCounters:
    def test_divergence_in_unit_range(self, small_er):
        stats = warp_match(small_er, triangle_pattern(), warp_width=32)
        assert 0.0 <= stats.divergence <= 1.0

    def test_wider_warps_diverge_more(self):
        """The GPU-DFS irregularity claim: wide warps waste lanes on
        irregular candidate lists."""
        g = barabasi_albert(150, 3, seed=1)
        narrow = warp_match(g, diamond_pattern(), warp_width=2)
        wide = warp_match(g, diamond_pattern(), warp_width=64)
        assert wide.divergence > narrow.divergence

    def test_stack_depth_bounded_by_pattern(self, small_er):
        pattern = clique_pattern(4)
        stats = warp_match(small_er, pattern, num_warps=2, warp_width=4)
        # One frame per pattern level, plus split frames from steals.
        assert stats.max_stack_depth <= pattern.n * 8

    def test_stealing_counted_when_skewed(self):
        g = barabasi_albert(200, 4, seed=2)
        stats = warp_match(g, diamond_pattern(), num_warps=8, warp_width=4)
        assert stats.steals >= 0  # counter wired up

    def test_lanes_busy_bounded_by_slots(self, small_er):
        stats = warp_match(small_er, triangle_pattern())
        assert stats.lanes_busy <= stats.lane_slots
