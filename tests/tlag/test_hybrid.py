"""EGSM BFS-DFS hybrid: budget-independent answers, correct switching."""

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.matching.backtrack import count_matches
from repro.matching.pattern import (
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    house_pattern,
    triangle_pattern,
)
from repro.tlag.hybrid import hybrid_match


PATTERNS = [
    triangle_pattern(),
    cycle_pattern(4),
    clique_pattern(4),
    diamond_pattern(),
]


class TestBudgetIndependence:
    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("budget", [5, 100, 10**9])
    def test_count_invariant_under_budget(self, pattern, budget, small_er):
        expected = count_matches(small_er, pattern)
        count, _ = hybrid_match(small_er, pattern, memory_budget=budget)
        assert count == expected


class TestRegimes:
    def test_huge_budget_pure_bfs(self, small_er):
        _, stats = hybrid_match(
            small_er, triangle_pattern(), memory_budget=10**9
        )
        assert stats.switch_level is None
        assert stats.dfs_completions == 0
        assert stats.bfs_levels == 3

    def test_tiny_budget_switches_immediately(self, small_er):
        _, stats = hybrid_match(small_er, triangle_pattern(), memory_budget=3)
        assert stats.switch_level == 0
        assert stats.bfs_levels == 0

    def test_medium_budget_hybrid(self):
        g = barabasi_albert(150, 4, seed=5)
        _, stats = hybrid_match(g, house_pattern(), memory_budget=400)
        assert stats.switch_level is not None
        assert 0 < stats.switch_level < 5
        assert stats.dfs_completions > 0

    def test_peak_resident_bounded_in_dfs_mode(self):
        g = barabasi_albert(150, 4, seed=5)
        _, tiny = hybrid_match(g, house_pattern(), memory_budget=20)
        _, huge = hybrid_match(g, house_pattern(), memory_budget=10**9)
        assert tiny.peak_resident < huge.peak_resident


class TestMonotonicity:
    def test_switch_level_monotone_in_budget(self):
        g = erdos_renyi(60, 0.2, seed=1)
        pattern = diamond_pattern()
        levels = []
        for budget in (10, 100, 1000, 10**8):
            _, stats = hybrid_match(g, pattern, memory_budget=budget)
            level = (
                stats.switch_level
                if stats.switch_level is not None
                else pattern.n
            )
            levels.append(level)
        assert levels == sorted(levels)
