"""G2-AIMD chunked BFS: bounded device residency, AIMD control loop."""

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.tlag.aimd import AimdStats, DeviceOverflow, aimd_enumerate
from repro.tlag.bfs_engine import bfs_enumerate_connected


class TestEquivalence:
    @pytest.mark.parametrize("k", [2, 3])
    def test_same_embeddings_as_plain_bfs(self, k, small_er):
        embeddings, _ = aimd_enumerate(small_er, k, device_capacity=10_000)
        reference = bfs_enumerate_connected(small_er, k)
        assert sorted(embeddings) == sorted(reference.final_embeddings)

    def test_tiny_capacity_still_exact(self, small_er):
        embeddings, _ = aimd_enumerate(small_er, 3, device_capacity=60)
        reference = bfs_enumerate_connected(small_er, 3)
        assert sorted(embeddings) == sorted(reference.final_embeddings)


class TestMemoryBound:
    def test_device_residency_respected(self):
        g = barabasi_albert(100, 4, seed=1)
        capacity = 400
        _, stats = aimd_enumerate(g, 3, device_capacity=capacity)
        assert stats.peak_device_embeddings <= capacity

    def test_non_adaptive_overflows(self):
        """The failure mode AIMD eliminates (GSI/cuTS regime)."""
        g = barabasi_albert(100, 4, seed=1)
        with pytest.raises(DeviceOverflow):
            aimd_enumerate(g, 3, device_capacity=400, adaptive=False)

    def test_non_adaptive_fine_with_big_device(self, small_er):
        embeddings, stats = aimd_enumerate(
            small_er, 3, device_capacity=10**7, adaptive=False
        )
        reference = bfs_enumerate_connected(small_er, 3)
        assert len(embeddings) == len(reference.final_embeddings)
        # Whole-frontier launches: one per level.
        assert stats.launches == 2


class TestControlLoop:
    def test_additive_increase_visible(self, small_er):
        _, stats = aimd_enumerate(
            small_er, 3, device_capacity=10**6,
            initial_chunk=8, additive_increase=8,
        )
        # Chunks grow while capacity allows.
        assert any(b > a for a, b in zip(stats.chunk_trace, stats.chunk_trace[1:]))

    def test_multiplicative_decrease_on_pressure(self):
        g = barabasi_albert(120, 4, seed=2)
        _, stats = aimd_enumerate(
            g, 3, device_capacity=300, initial_chunk=128
        )
        assert stats.decreases > 0

    def test_more_launches_under_pressure(self):
        g = erdos_renyi(60, 0.15, seed=4)
        _, tight = aimd_enumerate(g, 3, device_capacity=200)
        _, loose = aimd_enumerate(g, 3, device_capacity=10**7)
        assert tight.launches > loose.launches

    def test_host_buffer_tracks_spill(self):
        g = barabasi_albert(100, 4, seed=3)
        _, stats = aimd_enumerate(g, 3, device_capacity=300)
        # Host buffering holds what the device cannot.
        assert stats.peak_host_buffer > stats.peak_device_embeddings
