"""Pattern graphs, automorphism groups, and symmetry breaking."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph
from repro.graph.generators import erdos_renyi
from repro.matching.backtrack import count_matches
from repro.matching.pattern import (
    PatternGraph,
    automorphisms,
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    house_pattern,
    path_pattern,
    star_pattern,
    symmetry_breaking_restrictions,
    tailed_triangle_pattern,
    triangle_pattern,
)


KNOWN_AUT_SIZES = [
    (triangle_pattern(), 6),
    (path_pattern(3), 2),
    (path_pattern(4), 2),
    (cycle_pattern(4), 8),
    (cycle_pattern(5), 10),
    (clique_pattern(4), 24),
    (star_pattern(3), 6),
    (diamond_pattern(), 4),
    (tailed_triangle_pattern(), 2),
    (house_pattern(), 2),
]


class TestPatternGraph:
    def test_disconnected_rejected(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            PatternGraph(g)

    def test_directed_rejected(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            PatternGraph(g)

    def test_adjacency_sets(self):
        p = triangle_pattern()
        assert p.adj[0] == {1, 2}
        assert p.degree(0) == 2

    def test_labels_default_zero(self):
        p = path_pattern(3)
        assert p.label(1) == 0

    def test_labeled_pattern(self):
        p = PatternGraph.from_edges([(0, 1)], vertex_labels=[3, 4])
        assert p.label(0) == 3 and p.label(1) == 4


class TestAutomorphisms:
    @pytest.mark.parametrize("pattern,size", KNOWN_AUT_SIZES)
    def test_known_group_sizes(self, pattern, size):
        assert len(automorphisms(pattern)) == size

    def test_identity_always_present(self):
        for pattern, _ in KNOWN_AUT_SIZES:
            assert tuple(range(pattern.n)) in automorphisms(pattern)

    def test_automorphisms_are_isomorphisms(self):
        p = diamond_pattern()
        for perm in automorphisms(p):
            for u in range(p.n):
                for v in p.adj[u]:
                    assert perm[v] in p.adj[perm[u]]

    def test_labels_restrict_group(self):
        # A labeled triangle with distinct labels has only the identity.
        p = PatternGraph.from_edges(
            [(0, 1), (1, 2), (0, 2)], vertex_labels=[1, 2, 3]
        )
        assert automorphisms(p) == [(0, 1, 2)]


class TestSymmetryBreaking:
    @pytest.mark.parametrize("pattern,aut_size", KNOWN_AUT_SIZES)
    def test_defining_property(self, pattern, aut_size):
        """#embeddings without restrictions == aut_size * #with restrictions."""
        g = erdos_renyi(25, 0.3, seed=11)
        with_r = count_matches(g, pattern, distinct=True)
        without_r = count_matches(g, pattern, distinct=False)
        assert without_r == aut_size * with_r

    def test_restrictions_reference_pattern_vertices(self):
        for pattern, _ in KNOWN_AUT_SIZES:
            for u, v in symmetry_breaking_restrictions(pattern):
                assert 0 <= u < pattern.n
                assert 0 <= v < pattern.n
                assert u != v

    def test_asymmetric_pattern_no_restrictions(self):
        # Tailed triangle has |Aut| = 2, so at least one restriction;
        # a fully asymmetric pattern has none.
        p = PatternGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        )
        if len(automorphisms(p)) == 1:
            assert symmetry_breaking_restrictions(p) == []

    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_property_on_random_patterns(self, seed):
        """The defining property holds for random connected patterns."""
        base = erdos_renyi(5, 0.6, seed=seed)
        try:
            pattern = PatternGraph(base)
        except ValueError:
            return  # disconnected draw
        g = erdos_renyi(18, 0.35, seed=seed + 1)
        aut = len(automorphisms(pattern))
        with_r = count_matches(g, pattern, distinct=True)
        without_r = count_matches(g, pattern, distinct=False)
        assert without_r == aut * with_r
