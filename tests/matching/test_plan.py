"""Matching-order planning tests."""

import pytest

from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import MatchStats, match
from repro.matching.pattern import (
    clique_pattern,
    diamond_pattern,
    house_pattern,
    path_pattern,
    star_pattern,
    triangle_pattern,
)
from repro.matching.plan import GraphStats, MatchingPlan, Planner, connected_orders


class TestConnectedOrders:
    def test_triangle_all_orders_connected(self):
        assert len(connected_orders(triangle_pattern())) == 6

    def test_path3_excludes_disconnected(self):
        orders = connected_orders(path_pattern(3))
        # (0, 2, ...) starts disconnected: 0 and 2 are not adjacent.
        assert (0, 2, 1) not in orders
        assert (1, 0, 2) in orders

    def test_star_center_first_or_second(self):
        for order in connected_orders(star_pattern(3)):
            assert 0 in order[:2]  # leaves only connect through the hub


class TestCostModel:
    @pytest.fixture
    def planner(self):
        return Planner(GraphStats(num_vertices=10_000, avg_degree=12.0, max_degree=500))

    def test_plan_returns_connected_order(self, planner):
        plan = planner.plan(house_pattern())
        assert tuple(sorted(plan.order)) == tuple(range(5))
        assert plan.order in connected_orders(house_pattern())

    def test_best_cost_not_above_worst(self, planner):
        best = planner.plan(house_pattern())
        worst = planner.worst_plan(house_pattern())
        assert best.estimated_cost <= worst.estimated_cost

    def test_dense_pattern_cheaper_than_sparse(self, planner):
        # A clique constrains every step; a path does not.
        k4 = planner.plan(clique_pattern(4))
        p4 = planner.plan(path_pattern(4))
        assert k4.estimated_cost < p4.estimated_cost

    def test_stats_of(self, small_ba):
        stats = GraphStats.of(small_ba)
        assert stats.num_vertices == small_ba.num_vertices
        assert stats.avg_degree == pytest.approx(
            2 * small_ba.num_edges / small_ba.num_vertices
        )
        assert stats.max_degree == int(small_ba.degrees().max())


class TestPlanQualityOnRealGraph:
    def test_planned_order_does_less_work(self):
        """The C3 claim: the planner's order beats the worst order in
        actual search-tree size, on a skewed graph."""
        g = barabasi_albert(250, 4, seed=6)
        planner = Planner(GraphStats.of(g))
        pattern = house_pattern()
        best, worst = planner.plan(pattern), planner.worst_plan(pattern)

        def work(order):
            stats = MatchStats()
            match(g, pattern, order=order, stats=stats)
            return stats.candidates_scanned, stats.embeddings

        best_work, best_count = work(best.order)
        worst_work, worst_count = work(worst.order)
        assert best_count == worst_count  # same answer
        assert best_work < worst_work / 2  # far less work

    def test_estimates_rank_orders_consistently(self):
        g = barabasi_albert(150, 3, seed=2)
        planner = Planner(GraphStats.of(g))
        pattern = diamond_pattern()
        orders = connected_orders(pattern)
        estimated = [
            (planner.estimate_order_cost(pattern, o), o) for o in orders
        ]
        cheap_order = min(estimated)[1]
        costly_order = max(estimated)[1]

        def work(order):
            stats = MatchStats()
            match(g, pattern, order=order, stats=stats)
            return stats.candidates_scanned

        # The model's extremes should not be inverted in practice.
        assert work(cheap_order) <= work(costly_order)
