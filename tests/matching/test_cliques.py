"""Clique algorithms vs networkx oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph
from repro.graph.generators import complete_graph, cycle_graph, erdos_renyi
from repro.matching.cliques import (
    count_k_cliques,
    k_cliques,
    maximal_cliques,
    maximal_quasi_cliques,
    maximum_clique,
)
from tests.conftest import to_networkx


class TestMaximalCliques:
    def test_complete_graph_single_clique(self):
        cliques = list(maximal_cliques(complete_graph(5)))
        assert cliques == [(0, 1, 2, 3, 4)]

    def test_triangle_free_graph_edges_are_maximal(self):
        g = cycle_graph(6)
        cliques = sorted(maximal_cliques(g))
        assert cliques == sorted(g.edges())

    def test_matches_networkx(self, small_er):
        ours = sorted(maximal_cliques(small_er))
        theirs = sorted(
            tuple(sorted(c)) for c in nx.find_cliques(to_networkx(small_er))
        )
        assert ours == theirs

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_property_matches_networkx(self, seed):
        g = erdos_renyi(18, 0.4, seed=seed)
        ours = sorted(maximal_cliques(g))
        theirs = sorted(
            tuple(sorted(c)) for c in nx.find_cliques(to_networkx(g))
        )
        assert ours == theirs

    def test_each_result_is_a_maximal_clique(self, small_er):
        adj = [set(int(w) for w in small_er.neighbors(v)) for v in small_er.vertices()]
        for clique in maximal_cliques(small_er):
            members = set(clique)
            for u in clique:
                assert members - {u} <= adj[u]
            for v in small_er.vertices():
                if v not in members:
                    assert not members <= adj[v]  # not extendable


class TestMaximumClique:
    def test_matches_networkx_size(self, small_er):
        ours = maximum_clique(small_er)
        theirs = max(nx.find_cliques(to_networkx(small_er)), key=len)
        assert len(ours) == len(theirs)

    def test_result_is_a_clique(self, small_er):
        clique = maximum_clique(small_er)
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                assert small_er.has_edge(u, v)

    def test_complete_graph(self):
        assert maximum_clique(complete_graph(6)) == (0, 1, 2, 3, 4, 5)


class TestKCliques:
    def test_k1_is_vertices(self, small_er):
        assert count_k_cliques(small_er, 1) == small_er.num_vertices

    def test_k2_is_edges(self, small_er):
        assert count_k_cliques(small_er, 2) == small_er.num_edges

    def test_k3_matches_triangles(self, small_er):
        from repro.matching.triangles import triangle_count

        assert count_k_cliques(small_er, 3) == triangle_count(small_er)

    def test_k4_in_k6(self):
        assert count_k_cliques(complete_graph(6), 4) == 15

    def test_cliques_distinct_and_valid(self, small_er):
        seen = set()
        for clique in k_cliques(small_er, 3):
            assert clique not in seen
            seen.add(clique)
            a, b, c = clique
            assert small_er.has_edge(a, b)
            assert small_er.has_edge(b, c)
            assert small_er.has_edge(a, c)


class TestQuasiCliques:
    def test_gamma_one_equals_cliques(self):
        g = erdos_renyi(12, 0.4, seed=2)
        quasi = set(maximal_quasi_cliques(g, gamma=1.0, min_size=3))
        cliques = {c for c in maximal_cliques(g) if len(c) >= 3}
        assert quasi == cliques

    def test_results_satisfy_degree_condition(self):
        import numpy as np

        g = erdos_renyi(14, 0.4, seed=5)
        gamma = 0.6
        adj = [set(int(w) for w in g.neighbors(v)) for v in g.vertices()]
        for qc in maximal_quasi_cliques(g, gamma=gamma, min_size=3, max_results=40):
            s = set(qc)
            need = int(np.ceil(gamma * (len(s) - 1)))
            for v in s:
                assert len(adj[v] & s) >= need

    def test_max_results_cap(self):
        g = erdos_renyi(14, 0.5, seed=1)
        results = maximal_quasi_cliques(g, gamma=0.5, min_size=3, max_results=5)
        assert len(results) <= 5

    def test_every_clique_inside_some_quasi_clique(self):
        # Relaxing gamma can merge several maximal cliques into one
        # larger quasi-clique, so the *count* may drop — but every
        # maximal clique must be contained in some maximal quasi-clique.
        g = erdos_renyi(13, 0.45, seed=7)
        relaxed = [set(q) for q in maximal_quasi_cliques(g, gamma=0.6, min_size=3)]
        for clique in maximal_cliques(g):
            if len(clique) >= 3:
                members = set(clique)
                assert any(members <= q for q in relaxed)
