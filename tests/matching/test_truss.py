"""k-truss decomposition vs networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    watts_strogatz,
)
from repro.matching.truss import k_truss, max_truss, truss_numbers
from tests.conftest import to_networkx


class TestTrussNumbers:
    def test_complete_graph(self):
        numbers = truss_numbers(complete_graph(6))
        assert all(t == 6 for t in numbers.values())

    def test_triangle_free(self):
        numbers = truss_numbers(cycle_graph(8))
        assert all(t == 2 for t in numbers.values())

    def test_every_edge_assigned(self, small_er):
        numbers = truss_numbers(small_er)
        assert len(numbers) == small_er.num_edges

    def test_directed_rejected(self):
        g = Graph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            truss_numbers(g)

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_networkx(self, k, small_ws):
        ours = k_truss(small_ws, k)
        theirs = {
            tuple(sorted(e))
            for e in nx.k_truss(to_networkx(small_ws), k).edges()
        }
        assert ours == theirs

    @given(st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_property_matches_networkx(self, seed):
        g = erdos_renyi(22, 0.3, seed=seed)
        for k in (3, 4):
            ours = k_truss(g, k)
            theirs = {
                tuple(sorted(e))
                for e in nx.k_truss(to_networkx(g), k).edges()
            }
            assert ours == theirs


class TestTrussStructure:
    def test_trusses_nested(self, small_ws):
        t3 = k_truss(small_ws, 3)
        t4 = k_truss(small_ws, 4)
        assert t4 <= t3

    def test_truss_internal_support(self, small_er):
        """Definition check: inside the k-truss every edge closes
        >= k - 2 triangles with other truss edges."""
        k = 4
        edges = k_truss(small_er, k)
        adj = {}
        for u, v in edges:
            adj.setdefault(u, set()).add(v)
            adj.setdefault(v, set()).add(u)
        for u, v in edges:
            common = adj.get(u, set()) & adj.get(v, set())
            assert len(common) >= k - 2

    def test_max_truss_values(self):
        assert max_truss(complete_graph(5)) == 5
        assert max_truss(cycle_graph(5)) == 2

    def test_invalid_k(self, small_er):
        with pytest.raises(ValueError):
            k_truss(small_er, 1)
