"""Candidate filtering (the filter-and-join stage of GSI/EGSM)."""

import pytest

from repro.graph.csr import Graph
from repro.graph.generators import erdos_renyi, random_labeled_graph
from repro.matching.backtrack import MatchStats, count_matches, match
from repro.matching.filtering import build_candidates, filtered_match
from repro.matching.pattern import PatternGraph, diamond_pattern, triangle_pattern


@pytest.fixture
def labeled_graph():
    return random_labeled_graph(80, 0.1, num_vertex_labels=3, seed=2)


@pytest.fixture
def labeled_pattern():
    return PatternGraph(
        Graph.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)], vertex_labels=[0, 1, 2, 0]
        )
    )


class TestCandidateSets:
    def test_ldf_respects_label_and_degree(self, labeled_graph, labeled_pattern):
        candidates, _ = build_candidates(
            labeled_graph, labeled_pattern, use_nlf=False, refine=False
        )
        for u in range(labeled_pattern.n):
            for v in candidates[u]:
                assert labeled_graph.vertex_label(v) == labeled_pattern.label(u)
                assert labeled_graph.degree(v) >= labeled_pattern.degree(u)

    def test_stages_monotonically_shrink(self, labeled_graph, labeled_pattern):
        _, stats = build_candidates(labeled_graph, labeled_pattern)
        for a, b, c in zip(stats.after_ldf, stats.after_nlf, stats.after_refinement):
            assert a >= b >= c

    def test_candidates_are_sound(self, labeled_graph, labeled_pattern):
        """Every true embedding's vertices survive all filters."""
        candidates, _ = build_candidates(labeled_graph, labeled_pattern)
        embeddings = []
        match(labeled_graph, labeled_pattern, on_match=embeddings.append)
        for emb in embeddings:
            for u, v in enumerate(emb):
                assert v in candidates[u]

    def test_refinement_counts_rounds(self, labeled_graph, labeled_pattern):
        _, stats = build_candidates(labeled_graph, labeled_pattern)
        assert stats.refinement_rounds >= 1

    def test_unlabeled_graph_ok(self, small_er):
        candidates, stats = build_candidates(small_er, triangle_pattern())
        assert all(len(c) > 0 for c in candidates)


class TestFilteredMatch:
    def test_count_unchanged(self, labeled_graph, labeled_pattern):
        exact = count_matches(labeled_graph, labeled_pattern)
        filtered, _ = filtered_match(labeled_graph, labeled_pattern)
        assert filtered == exact

    def test_count_unchanged_unlabeled(self, small_er):
        for pattern in (triangle_pattern(), diamond_pattern()):
            exact = count_matches(small_er, pattern)
            filtered, _ = filtered_match(small_er, pattern)
            assert filtered == exact

    def test_filtering_reduces_scanned_candidates(self, labeled_graph, labeled_pattern):
        s_plain = MatchStats()
        match(labeled_graph, labeled_pattern, stats=s_plain)
        s_filtered = MatchStats()
        filtered_match(labeled_graph, labeled_pattern, stats=s_filtered)
        assert s_filtered.candidates_scanned <= s_plain.candidates_scanned

    def test_empty_candidate_set_short_circuits(self, small_er):
        # A pattern vertex label absent from the graph empties a set.
        pattern = PatternGraph(
            Graph.from_edges([(0, 1)], vertex_labels=[9, 9])
        )
        count, stats = filtered_match(small_er, pattern)
        assert count == 0

    def test_allowed_parameter_restricts_matches(self, small_er):
        # Restricting vertex 0 of the pattern to a single data vertex
        # equals anchoring there.
        pattern = triangle_pattern()
        anchor_vertex = next(
            v for v in small_er.vertices() if small_er.degree(v) >= 2
        )
        allowed = [
            {anchor_vertex} if u == 0 else set(small_er.vertices())
            for u in range(3)
        ]
        restricted = match(small_er, pattern, allowed=allowed)
        anchored = match(small_er, pattern, anchor=(0, anchor_vertex))
        assert restricted == anchored
