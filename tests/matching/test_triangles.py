"""Serial ordered triangle listing (the Chu & Cheng kernel)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    star_graph,
)
from repro.matching.triangles import (
    triangle_count,
    triangle_count_with_work,
    triangle_list,
)
from tests.conftest import to_networkx


class TestTriangleCount:
    def test_complete_graph(self):
        assert triangle_count(complete_graph(6)) == 20

    def test_triangle_free(self):
        assert triangle_count(cycle_graph(10)) == 0
        assert triangle_count(star_graph(10)) == 0

    def test_matches_networkx(self, small_ws):
        theirs = sum(nx.triangles(to_networkx(small_ws)).values()) // 3
        assert triangle_count(small_ws) == theirs

    @given(st.integers(0, 400))
    @settings(max_examples=20, deadline=None)
    def test_random_graphs(self, seed):
        g = erdos_renyi(25, 0.3, seed=seed)
        theirs = sum(nx.triangles(to_networkx(g)).values()) // 3
        assert triangle_count(g) == theirs


class TestTriangleList:
    def test_each_triangle_once_sorted(self, small_er):
        triangles = list(triangle_list(small_er))
        assert len(triangles) == triangle_count(small_er)
        assert len(set(triangles)) == len(triangles)
        for a, b, c in triangles:
            assert a < b < c
            assert small_er.has_edge(a, b)
            assert small_er.has_edge(b, c)
            assert small_er.has_edge(a, c)


class TestWorkBound:
    def test_work_reported(self, small_ba):
        count, work = triangle_count_with_work(small_ba)
        assert count == triangle_count(small_ba)
        assert work > 0

    def test_orientation_bounds_work(self):
        # Degree orientation keeps per-edge intersection cost near
        # O(sqrt(m)); total work stays well under the naive sum of
        # endpoint degrees.
        g = barabasi_albert(400, 4, seed=0)
        _, work = triangle_count_with_work(g)
        naive = sum(g.degree(u) + g.degree(v) for u, v in g.edges())
        assert work < naive
