"""Compilation-based matching: generated code equals the interpreter."""

import time

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.matching.backtrack import count_matches
from repro.matching.codegen import (
    compile_matcher,
    compiled_count,
    generate_source,
    prepare_adjacency,
)
from repro.matching.pattern import (
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    house_pattern,
    path_pattern,
    star_pattern,
    symmetry_breaking_restrictions,
    tailed_triangle_pattern,
    triangle_pattern,
)
from repro.matching.plan import GraphStats, Planner

ALL_PATTERNS = [
    triangle_pattern(),
    path_pattern(3),
    path_pattern(4),
    cycle_pattern(4),
    clique_pattern(4),
    star_pattern(3),
    diamond_pattern(),
    tailed_triangle_pattern(),
    house_pattern(),
]


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        for pattern in ALL_PATTERNS:
            src = generate_source(
                pattern,
                order=list(Planner(GraphStats(1000, 8.0, 50)).plan(pattern).order),
                restrictions=symmetry_breaking_restrictions(pattern),
            )
            compile(src, "<test>", "exec")  # must not raise

    def test_one_loop_per_pattern_vertex(self):
        pattern = house_pattern()
        src = generate_source(
            pattern,
            order=list(range(pattern.n)),
            restrictions=[],
        )
        assert src.count("for v") == pattern.n

    def test_source_attached_to_function(self):
        func = compile_matcher(triangle_pattern())
        assert "def count_pattern" in func.__source__


class TestCompiledCorrectness:
    @pytest.mark.parametrize("pattern", ALL_PATTERNS)
    def test_matches_interpreter(self, pattern, small_er):
        assert compiled_count(small_er, pattern) == count_matches(
            small_er, pattern
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_on_random_graphs(self, seed):
        g = erdos_renyi(30, 0.25, seed=seed)
        for pattern in (triangle_pattern(), cycle_pattern(4), diamond_pattern()):
            assert compiled_count(g, pattern) == count_matches(g, pattern)

    def test_no_restrictions_counts_all_automorphic_images(self, small_er):
        from repro.matching.pattern import automorphisms

        pattern = triangle_pattern()
        func = compile_matcher(pattern, restrictions=[])
        adj, adjset = prepare_adjacency(small_er)
        total = func(adj, adjset, small_er.num_vertices)
        distinct = compiled_count(small_er, pattern)
        assert total == len(automorphisms(pattern)) * distinct


class TestCompiledSpeed:
    def test_compiled_faster_than_interpreter(self):
        """The AutoMine claim: specialization beats interpretation."""
        g = barabasi_albert(300, 4, seed=5)
        pattern = diamond_pattern()
        order = Planner(GraphStats.of(g)).plan(pattern).order

        t0 = time.perf_counter()
        interpreted = count_matches(g, pattern, order=order)
        t1 = time.perf_counter()

        func = compile_matcher(pattern, order=order)
        adj, adjset = prepare_adjacency(g)
        t2 = time.perf_counter()
        compiled = func(adj, adjset, g.num_vertices)
        t3 = time.perf_counter()

        assert compiled == interpreted
        assert (t3 - t2) < (t1 - t0)  # strictly faster
