"""The generic backtracking matcher vs networkx ISMAGS oracles."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph, GraphBuilder
from repro.graph.generators import (
    complete_graph,
    erdos_renyi,
    random_labeled_graph,
)
from repro.matching.backtrack import (
    MatchStats,
    count_matches,
    find_matches,
    match,
)
from repro.matching.pattern import (
    PatternGraph,
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
    path_pattern,
    star_pattern,
    triangle_pattern,
)
from tests.conftest import to_networkx


def oracle_subgraph_count(graph, pattern):
    """Distinct (non-induced) pattern instances via networkx.

    The systems surveyed count *monomorphisms* (subgraph instances where
    extra edges among matched vertices are allowed), so the oracle
    counts monomorphisms and divides by the automorphism-group size.
    """
    from repro.matching.pattern import automorphisms

    G = to_networkx(graph)
    P = nx.Graph()
    for v in range(pattern.n):
        P.add_node(v)
    for u in range(pattern.n):
        for v in pattern.adj[u]:
            if u < v:
                P.add_edge(u, v)
    matcher = nx.isomorphism.GraphMatcher(G, P)
    monomorphisms = sum(1 for _ in matcher.subgraph_monomorphisms_iter())
    return monomorphisms // len(automorphisms(pattern))


ORACLE_PATTERNS = [
    triangle_pattern(),
    path_pattern(3),
    path_pattern(4),
    cycle_pattern(4),
    clique_pattern(4),
    star_pattern(3),
    diamond_pattern(),
]


class TestAgainstOracle:
    @pytest.mark.parametrize("pattern", ORACLE_PATTERNS)
    def test_counts_match_ismags(self, pattern, small_er):
        ours = count_matches(small_er, pattern)
        theirs = oracle_subgraph_count(small_er, pattern)
        assert ours == theirs

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_triangles_on_random_graphs(self, seed):
        g = erdos_renyi(20, 0.35, seed=seed)
        assert count_matches(g, triangle_pattern()) == oracle_subgraph_count(
            g, triangle_pattern()
        )


class TestOrders:
    def test_all_connected_orders_same_count(self, small_er):
        from repro.matching.plan import connected_orders

        pattern = diamond_pattern()
        counts = {
            count_matches(small_er, pattern, order=o)
            for o in connected_orders(pattern)
        }
        assert len(counts) == 1

    def test_invalid_order_not_permutation(self, small_er):
        with pytest.raises(ValueError):
            match(small_er, triangle_pattern(), order=[0, 0, 1])

    def test_disconnected_order_rejected(self, small_er):
        p = path_pattern(4)
        with pytest.raises(ValueError):
            match(small_er, p, order=[0, 3, 1, 2])


class TestEmbeddings:
    def test_embeddings_are_valid(self, small_er):
        pattern = triangle_pattern()
        for emb in find_matches(small_er, pattern):
            a, b, c = emb
            assert small_er.has_edge(a, b)
            assert small_er.has_edge(b, c)
            assert small_er.has_edge(a, c)
            assert len(set(emb)) == 3

    def test_embeddings_distinct(self, small_er):
        embs = find_matches(small_er, triangle_pattern())
        assert len({tuple(sorted(e)) for e in embs}) == len(embs)

    def test_limit_caps_results(self, small_er):
        embs = find_matches(small_er, triangle_pattern(), limit=2)
        assert len(embs) == 2

    def test_on_match_receives_pattern_order(self, small_er):
        # The callback's tuple is indexed by pattern vertex, not by step.
        pattern = path_pattern(3)
        seen = []
        match(
            small_er,
            pattern,
            order=[1, 0, 2],
            on_match=seen.append,
            restrictions=[],
        )
        for emb in seen[:20]:
            assert small_er.has_edge(emb[0], emb[1])
            assert small_er.has_edge(emb[1], emb[2])


class TestAnchors:
    def test_anchor_partitions_the_count(self, small_er):
        pattern = triangle_pattern()
        total = count_matches(small_er, pattern)
        by_anchor = sum(
            match(small_er, pattern, anchor=(0, v))
            for v in small_er.vertices()
        )
        assert by_anchor == total

    def test_anchor_must_pin_first_vertex(self, small_er):
        with pytest.raises(ValueError):
            match(
                small_er,
                triangle_pattern(),
                order=[0, 1, 2],
                anchor=(1, 0),
            )


class TestLabels:
    def test_vertex_labels_filter(self):
        g = random_labeled_graph(30, 0.3, num_vertex_labels=2, seed=0)
        pattern = PatternGraph.from_edges([(0, 1)], vertex_labels=[0, 1])
        count = 0
        for u, v in g.edges():
            lu, lv = g.vertex_label(u), g.vertex_label(v)
            if {lu, lv} == {0, 1}:
                count += 1
        assert count_matches(g, pattern) == count

    def test_edge_labels_filter(self):
        b = GraphBuilder()
        b.add_edge(0, 1, label=1)
        b.add_edge(1, 2, label=2)
        g = b.build(num_vertices=3, vertex_labels=[0, 0, 0])
        pb = GraphBuilder()
        pb.add_edge(0, 1, label=1)
        pattern = PatternGraph(pb.build(num_vertices=2, vertex_labels=[0, 0]))
        # Only the label-1 edge matches; with empty restrictions both
        # orientations count.
        assert match(g, pattern, restrictions=[]) == 2


class TestStats:
    def test_stats_populated(self, small_er):
        stats = MatchStats()
        match(small_er, triangle_pattern(), stats=stats)
        assert stats.embeddings > 0
        assert stats.candidates_scanned > 0
        assert stats.nodes_visited >= stats.embeddings

    def test_empty_graph_zero_matches(self):
        g = Graph.from_edges([], num_vertices=5)
        assert count_matches(g, triangle_pattern()) == 0

    def test_pattern_larger_than_graph(self):
        g = complete_graph(3)
        assert count_matches(g, clique_pattern(4)) == 0
