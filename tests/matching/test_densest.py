"""Densest-subgraph peeling: the Charikar 1/2-approximation."""

import itertools

import pytest

from repro.graph.csr import Graph
from repro.graph.generators import (
    barabasi_albert,
    complete_graph,
    cycle_graph,
    erdos_renyi,
)
from repro.matching.densest import densest_subgraph, density


def brute_force_densest(graph: Graph) -> float:
    best = 0.0
    n = graph.num_vertices
    for k in range(1, n + 1):
        for combo in itertools.combinations(range(n), k):
            best = max(best, density(graph, set(combo)))
    return best


class TestDensity:
    def test_complete_graph(self):
        g = complete_graph(6)
        assert density(g, set(range(6))) == pytest.approx(15 / 6)

    def test_empty_set(self, small_er):
        assert density(small_er, set()) == 0.0

    def test_single_vertex(self, small_er):
        assert density(small_er, {0}) == 0.0


class TestDensestSubgraph:
    def test_complete_graph_is_itself(self):
        g = complete_graph(7)
        vertices, d = densest_subgraph(g)
        assert vertices == set(range(7))
        assert d == pytest.approx(3.0)

    def test_planted_clique_found(self):
        # A sparse cycle plus a K6 on vertices 20..25: the clique wins.
        edges = [(i, (i + 1) % 20) for i in range(20)]
        edges += [
            (u, v) for u in range(20, 26) for v in range(u + 1, 26)
        ]
        g = Graph.from_edges(edges, num_vertices=26)
        vertices, d = densest_subgraph(g)
        assert set(range(20, 26)) <= vertices
        assert d >= 15 / 6 - 1e-9

    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_half_approximation(self, seed):
        g = erdos_renyi(11, 0.3, seed=seed)
        _, greedy = densest_subgraph(g)
        optimum = brute_force_densest(g)
        assert greedy >= optimum / 2 - 1e-12
        assert greedy <= optimum + 1e-12

    def test_density_reported_matches_set(self, small_ba):
        vertices, d = densest_subgraph(small_ba)
        assert d == pytest.approx(density(small_ba, vertices))

    def test_empty_graph(self):
        g = Graph.from_edges([], num_vertices=0)
        vertices, d = densest_subgraph(g)
        assert vertices == set() and d == 0.0

    def test_edgeless_graph(self):
        g = Graph.from_edges([], num_vertices=5)
        _, d = densest_subgraph(g)
        assert d == 0.0
