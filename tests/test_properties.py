"""Cross-cutting property-based tests: the invariants that hold the
library together, attacked with hypothesis."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fsm.gspan import mine_frequent_subgraphs
from repro.graph.csr import Graph, GraphBuilder
from repro.graph.generators import erdos_renyi
from repro.graph.partition import hash_partition, metis_like_partition
from repro.graph.transactions import GraphTransaction, TransactionDatabase
from repro.matching.backtrack import count_matches
from repro.matching.pattern import (
    PatternGraph,
    cycle_pattern,
    diamond_pattern,
    triangle_pattern,
)
from repro.tlav import pagerank, wcc
from tests.fsm.test_gspan import wl_hash


def _permute_transaction(t: GraphTransaction, rng) -> GraphTransaction:
    """Relabel a transaction's vertex ids by a random permutation."""
    g = t.graph
    n = g.num_vertices
    perm = rng.permutation(n)
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u, v in g.edges():
        label = g.edge_label(u, v) if g.edge_labels is not None else 0
        builder.add_edge(int(perm[u]), int(perm[v]), label=label)
    labels = [0] * n
    for v in range(n):
        labels[int(perm[v])] = g.vertex_label(v)
    return GraphTransaction(
        graph_id=t.graph_id,
        graph=builder.build(num_vertices=n, vertex_labels=labels),
    )


class TestRelabelingInvariance:
    """Canonicality: results must not depend on vertex numbering."""

    @given(st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_gspan_invariant_under_relabeling(self, seed):
        from repro.graph.generators import random_labeled_transactions

        rng = np.random.default_rng(seed + 1)
        db = TransactionDatabase(
            random_labeled_transactions(6, 7, 0.3, 2, seed=seed)
        )
        permuted = TransactionDatabase(
            [_permute_transaction(t, rng) for t in db]
        )
        a = mine_frequent_subgraphs(db, min_support=3, max_edges=2)
        b = mine_frequent_subgraphs(permuted, min_support=3, max_edges=2)
        assert sorted((wl_hash(p.to_graph()), p.support) for p in a) == sorted(
            (wl_hash(p.to_graph()), p.support) for p in b
        )

    @given(st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_match_counts_invariant_under_relabeling(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(20, 0.3, seed=seed)
        perm = rng.permutation(20)
        relabeled = Graph.from_edges(
            [(int(perm[u]), int(perm[v])) for u, v in g.edges()],
            num_vertices=20,
        )
        for pattern in (triangle_pattern(), cycle_pattern(4), diamond_pattern()):
            assert count_matches(g, pattern) == count_matches(
                relabeled, pattern
            )

    @given(st.integers(0, 100))
    @settings(max_examples=5, deadline=None)
    def test_pagerank_equivariant_under_relabeling(self, seed):
        rng = np.random.default_rng(seed)
        g = erdos_renyi(25, 0.2, seed=seed)
        perm = rng.permutation(25)
        relabeled = Graph.from_edges(
            [(int(perm[u]), int(perm[v])) for u, v in g.edges()],
            num_vertices=25,
        )
        pr = pagerank(g, iterations=20)
        pr_relabeled = pagerank(relabeled, iterations=20)
        for v in range(25):
            assert pr[v] == pytest.approx(pr_relabeled[int(perm[v])])


class TestEngineAgreement:
    """Independent engines must agree on shared workloads."""

    @given(st.integers(0, 300))
    @settings(max_examples=8, deadline=None)
    def test_three_triangle_counters_agree(self, seed):
        from repro.matching.codegen import compiled_count
        from repro.matching.triangles import triangle_count
        from repro.tlav.algorithms import triangle_count_tlav

        g = erdos_renyi(22, 0.3, seed=seed)
        serial = triangle_count(g)
        assert compiled_count(g, triangle_pattern()) == serial
        assert triangle_count_tlav(g)[0] == serial

    @given(st.integers(0, 300))
    @settings(max_examples=8, deadline=None)
    def test_wcc_partition_invariant(self, seed):
        from repro.tlav.algorithms import WCCProgram
        from repro.tlav.distributed import run_distributed

        g = erdos_renyi(25, 0.08, seed=seed)
        expected = wcc(g).tolist()
        for parts in (2, 3):
            values, _ = run_distributed(
                g, WCCProgram(), hash_partition(g, parts)
            )
            assert values == expected

    @given(st.integers(2, 5), st.integers(0, 50))
    @settings(max_examples=8, deadline=None)
    def test_partitions_always_cover(self, parts, seed):
        g = erdos_renyi(30, 0.1, seed=seed)
        for fn in (hash_partition, lambda g, k: metis_like_partition(g, k, seed=1)):
            partition = fn(g, parts)
            covered = np.zeros(30, dtype=bool)
            for k in range(parts):
                covered[partition.part(k)] = True
            assert covered.all()


class TestAutogradComposition:
    @given(st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_chain_rule_random_compositions(self, seed):
        """tanh -> matmul -> sigmoid -> square -> sum, vs finite diff."""
        from repro.gnn.tensor import Parameter

        rng = np.random.default_rng(seed)
        x = Parameter(rng.normal(size=(4, 3)))
        w = rng.normal(size=(3, 2))
        loss = ((x.tanh() @ w).sigmoid() ** 2).sum()
        loss.backward()

        def numpy_loss(data: np.ndarray) -> float:
            hidden = np.tanh(data) @ w
            squashed = 1.0 / (1.0 + np.exp(-hidden))
            return float((squashed ** 2).sum())

        eps = 1e-6
        idx = (int(rng.integers(4)), int(rng.integers(3)))
        orig = x.data[idx]
        x.data[idx] = orig + eps
        plus = numpy_loss(x.data)
        x.data[idx] = orig - eps
        minus = numpy_loss(x.data)
        x.data[idx] = orig
        numeric = (plus - minus) / (2 * eps)
        assert x.grad[idx] == pytest.approx(numeric, abs=1e-4)
