"""Arabesque-style BFS FSM vs gSpan (cross-engine oracle pair)."""

import pytest

from repro.fsm import bfs_mine_frequent_subgraphs, mine_frequent_subgraphs
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import TransactionDatabase


@pytest.fixture(scope="module")
def db():
    return TransactionDatabase(
        random_labeled_transactions(8, 8, 0.3, 2, seed=4)
    )


class TestEquivalenceWithGSpan:
    @pytest.mark.parametrize("min_support,max_edges", [(3, 2), (4, 3), (6, 3)])
    def test_same_patterns_and_supports(self, db, min_support, max_edges):
        gspan = mine_frequent_subgraphs(db, min_support, max_edges=max_edges)
        bfs, _ = bfs_mine_frequent_subgraphs(db, min_support, max_edges=max_edges)
        assert sorted((tuple(p.code), p.support) for p in gspan) == sorted(
            (tuple(p.code), p.support) for p in bfs
        )

    def test_same_supporting_transactions(self, db):
        gspan = {tuple(p.code): p.graph_ids for p in
                 mine_frequent_subgraphs(db, 4, max_edges=2)}
        bfs, _ = bfs_mine_frequent_subgraphs(db, 4, max_edges=2)
        for p in bfs:
            assert p.graph_ids == gspan[tuple(p.code)]


class TestMaterialization:
    def test_levels_recorded(self, db):
        _, stats = bfs_mine_frequent_subgraphs(db, 3, max_edges=3)
        assert len(stats.embeddings_per_level) == 3
        assert stats.peak_embeddings == max(stats.embeddings_per_level)

    def test_embeddings_grow_through_levels(self, db):
        """The Arabesque memory profile on this workload."""
        _, stats = bfs_mine_frequent_subgraphs(db, 3, max_edges=3)
        assert stats.embeddings_per_level[-1] > stats.embeddings_per_level[0]

    def test_higher_support_prunes_levels(self, db):
        _, loose = bfs_mine_frequent_subgraphs(db, 3, max_edges=3)
        _, tight = bfs_mine_frequent_subgraphs(db, 7, max_edges=3)
        assert sum(tight.embeddings_per_level) <= sum(loose.embeddings_per_level)

    def test_invalid_support(self, db):
        with pytest.raises(ValueError):
            bfs_mine_frequent_subgraphs(db, 0)
