"""PrefixFPM framework: PrefixSpan and the gSpan domain."""

import pytest

from repro.fsm.gspan import GSpan
from repro.fsm.prefixfpm import (
    GraphPatterns,
    PrefixMiner,
    SequencePatterns,
)
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import TransactionDatabase


def brute_force_prefixspan(sequences, min_support):
    """All frequent subsequences by exhaustive subsequence generation."""
    from itertools import combinations

    candidates = set()
    for seq in sequences:
        for k in range(1, len(seq) + 1):
            for idx in combinations(range(len(seq)), k):
                candidates.add(tuple(seq[i] for i in idx))
    out = {}
    for cand in candidates:
        support = sum(1 for seq in sequences if _is_subsequence(cand, seq))
        if support >= min_support:
            out[cand] = support
    return out


def _is_subsequence(pattern, seq):
    it = iter(seq)
    return all(any(x == item for item in it) for x in pattern)


class TestPrefixSpan:
    def test_matches_brute_force(self):
        sequences = ["abcab", "abcb", "acb", "bab"]
        mined = PrefixMiner(SequencePatterns(sequences), min_support=2).run()
        ours = {tuple(p): s for p, s in mined}
        oracle = brute_force_prefixspan(sequences, 2)
        assert ours == oracle

    def test_higher_support_subset(self):
        sequences = ["xyzx", "xzy", "yxz"]
        lo = dict(PrefixMiner(SequencePatterns(sequences), min_support=1).run())
        hi = dict(PrefixMiner(SequencePatterns(sequences), min_support=3).run())
        assert set(hi) <= set(lo)

    def test_empty_database(self):
        mined = PrefixMiner(SequencePatterns([]), min_support=1).run()
        assert mined == []

    def test_support_counts_sequences_not_occurrences(self):
        # 'aa' occurs twice inside 'aaa' but supports only 1 sequence.
        mined = dict(PrefixMiner(SequencePatterns(["aaa"]), min_support=1).run())
        assert mined[("a", "a")] == 1


class TestGraphDomain:
    @pytest.fixture
    def db(self):
        return TransactionDatabase(
            random_labeled_transactions(8, 8, 0.3, 2, seed=4)
        )

    def test_equals_gspan(self, db):
        reference = GSpan(min_support=4, max_edges=3).run(db)
        mined = PrefixMiner(
            GraphPatterns(db, max_edges=3), min_support=4, num_workers=1
        ).run()
        assert sorted(c for c, _ in mined) == sorted(p.code for p in reference)

    def test_supports_match_gspan(self, db):
        reference = {p.code: p.support for p in GSpan(min_support=3, max_edges=2).run(db)}
        mined = dict(
            PrefixMiner(GraphPatterns(db, max_edges=2), min_support=3).run()
        )
        assert mined == reference

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_does_not_change_results(self, db, workers):
        mined = PrefixMiner(
            GraphPatterns(db, max_edges=2), min_support=4, num_workers=workers
        ).run()
        reference = PrefixMiner(
            GraphPatterns(db, max_edges=2), min_support=4, num_workers=1
        ).run()
        assert sorted(mined, key=repr) == sorted(reference, key=repr)


class TestParallelStats:
    def test_balance_and_makespan(self):
        db = TransactionDatabase(
            random_labeled_transactions(10, 8, 0.3, 2, seed=9)
        )
        miner = PrefixMiner(
            GraphPatterns(db, max_edges=3), min_support=3, num_workers=4
        )
        miner.run()
        stats = miner.stats
        assert stats.tasks > 0
        assert stats.total_ops > 0
        assert stats.makespan >= stats.total_ops / 4 * 0.99
        assert stats.balance >= 1.0

    def test_parallelism_reduces_makespan(self):
        db = TransactionDatabase(
            random_labeled_transactions(10, 8, 0.3, 2, seed=9)
        )
        serial = PrefixMiner(GraphPatterns(db, max_edges=3), 3, num_workers=1)
        serial.run()
        parallel = PrefixMiner(GraphPatterns(db, max_edges=3), 3, num_workers=4)
        parallel.run()
        assert parallel.stats.makespan < serial.stats.makespan
