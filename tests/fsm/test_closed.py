"""Closed-pattern mining (the PrefixFPM [57] extension)."""

import pytest

from repro.fsm import (
    GSpan,
    closed_graph_patterns,
    closed_sequences,
    is_subpattern,
)
from repro.fsm.prefixfpm import PrefixMiner, SequencePatterns
from repro.graph.csr import Graph
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import TransactionDatabase
from repro.matching.pattern import PatternGraph


@pytest.fixture(scope="module")
def mined():
    db = TransactionDatabase(random_labeled_transactions(8, 8, 0.3, 2, seed=4))
    return GSpan(min_support=4, max_edges=3).run(db)


class TestIsSubpattern:
    def test_edge_in_triangle(self):
        edge = PatternGraph(Graph.from_edges([(0, 1)], vertex_labels=[1, 1]))
        triangle = PatternGraph(
            Graph.from_edges([(0, 1), (1, 2), (2, 0)], vertex_labels=[1, 1, 1])
        )
        assert is_subpattern(edge, triangle)
        assert not is_subpattern(triangle, edge)

    def test_label_mismatch(self):
        a = PatternGraph(Graph.from_edges([(0, 1)], vertex_labels=[1, 2]))
        b = PatternGraph(
            Graph.from_edges([(0, 1), (1, 2)], vertex_labels=[1, 1, 1])
        )
        assert not is_subpattern(a, b)

    def test_self_containment(self):
        p = PatternGraph(Graph.from_edges([(0, 1), (1, 2)], vertex_labels=[1, 2, 1]))
        assert is_subpattern(p, p)


class TestClosedGraphPatterns:
    def test_closed_is_subset(self, mined):
        closed = closed_graph_patterns(mined)
        mined_codes = {p.code for p in mined}
        assert all(p.code in mined_codes for p in closed)
        assert len(closed) <= len(mined)

    def test_definition_holds(self, mined):
        """No closed pattern has an equal-support proper super-pattern."""
        closed = closed_graph_patterns(mined)
        graphs = {p.code: PatternGraph(p.to_graph()) for p in mined}
        for p in closed:
            for q in mined:
                if q.code == p.code or q.support != p.support:
                    continue
                if q.num_edges > p.num_edges:
                    assert not is_subpattern(graphs[p.code], graphs[q.code])

    def test_non_closed_dominated(self, mined):
        """Every dropped pattern has an equal-support super-pattern."""
        closed_codes = {p.code for p in closed_graph_patterns(mined)}
        graphs = {p.code: PatternGraph(p.to_graph()) for p in mined}
        for p in mined:
            if p.code in closed_codes:
                continue
            assert any(
                q.support == p.support
                and q.num_edges > p.num_edges
                and is_subpattern(graphs[p.code], graphs[q.code])
                for q in mined
            )

    def test_supports_recoverable(self, mined):
        """Lossless compression: every pattern's support equals the max
        support among its closed super-patterns."""
        closed = closed_graph_patterns(mined)
        graphs = {p.code: PatternGraph(p.to_graph()) for p in mined}
        closed_graphs = [(c, PatternGraph(c.to_graph())) for c in closed]
        for p in mined:
            candidates = [
                c.support
                for c, cg in closed_graphs
                if is_subpattern(graphs[p.code], cg)
            ]
            assert max(candidates) == p.support


class TestClosedSequences:
    def test_known_example(self):
        seqs = ["abcab", "abcb", "acb", "bab"]
        mined = PrefixMiner(SequencePatterns(seqs), min_support=2).run()
        closed = closed_sequences(mined)
        closed_patterns = {p for p, _ in closed}
        # 'a' (support 4) is closed only if no super-pattern has support 4;
        # 'ab' has support 4, so 'a' must be dropped.
        supports = dict(mined)
        assert supports[("a",)] == supports[("a", "b")] == 4
        assert ("a",) not in closed_patterns
        assert ("a", "b") in closed_patterns

    def test_definition_holds(self):
        seqs = ["xyzxy", "xyy", "zxy", "yxz"]
        mined = PrefixMiner(SequencePatterns(seqs), min_support=2).run()
        closed = closed_sequences(mined)
        from repro.fsm.closed import _is_subsequence

        for p, s in closed:
            for q, t in mined:
                if q != p and t == s and len(q) > len(p):
                    assert not _is_subsequence(p, q)

    def test_all_supports_preserved(self):
        seqs = ["abab", "abb", "bab"]
        mined = PrefixMiner(SequencePatterns(seqs), min_support=1).run()
        closed = closed_sequences(mined)
        from repro.fsm.closed import _is_subsequence

        for p, s in mined:
            covering = [t for q, t in closed if _is_subsequence(p, q)]
            assert max(covering) == s
