"""gSpan: DFS codes, canonicality, and mining vs a brute-force oracle."""

import itertools
from collections import defaultdict

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.csr import Graph, GraphBuilder
from repro.graph.generators import random_labeled_transactions
from repro.graph.transactions import GraphTransaction, TransactionDatabase
from repro.fsm.gspan import (
    DFSCode,
    GSpan,
    is_min,
    mine_frequent_subgraphs,
)


def wl_hash(graph: Graph) -> str:
    """Canonical hash of a labeled repro graph via networkx WL."""
    G = nx.Graph()
    for v in graph.vertices():
        G.add_node(v, label=str(graph.vertex_label(v)))
    for u, v in graph.edges():
        elabel = (
            graph.edge_label(u, v) if graph.edge_labels is not None else 0
        )
        G.add_edge(u, v, elabel=str(elabel))
    return nx.weisfeiler_lehman_graph_hash(
        G, node_attr="label", edge_attr="elabel", iterations=3
    )


def brute_force_frequent(db, min_support, max_edges):
    """Enumerate all connected labeled subgraphs up to max_edges and count
    transaction support by WL-hash identity."""
    support = defaultdict(set)
    for t in db:
        G = nx.Graph()
        for v in t.graph.vertices():
            G.add_node(v, label=str(t.graph.vertex_label(v)))
        for u, v in t.graph.edges():
            el = (
                t.graph.edge_label(u, v)
                if t.graph.edge_labels is not None
                else 0
            )
            G.add_edge(u, v, elabel=str(el))
        seen = set()
        edges = list(G.edges())
        for k in range(1, max_edges + 1):
            for combo in itertools.combinations(edges, k):
                sub = nx.Graph()
                for u, v in combo:
                    sub.add_node(u, label=G.nodes[u]["label"])
                    sub.add_node(v, label=G.nodes[v]["label"])
                    sub.add_edge(u, v, elabel=G.edges[u, v]["elabel"])
                if not nx.is_connected(sub):
                    continue
                h = nx.weisfeiler_lehman_graph_hash(
                    sub, node_attr="label", edge_attr="elabel", iterations=3
                )
                if h not in seen:
                    seen.add(h)
                    support[h].add(t.graph_id)
    return {h: len(s) for h, s in support.items() if len(s) >= min_support}


@pytest.fixture
def molecule_db():
    return TransactionDatabase(
        random_labeled_transactions(8, 8, 0.3, 2, seed=4)
    )


class TestDFSCode:
    def test_num_vertices(self):
        code = DFSCode(((0, 1, 0, 0, 1), (1, 2, 1, 0, 0)))
        assert code.num_vertices() == 3

    def test_rightmost_path_chain(self):
        code = DFSCode(((0, 1, 0, 0, 0), (1, 2, 0, 0, 0)))
        assert code.rightmost_path() == [2, 1, 0]

    def test_rightmost_path_with_branch(self):
        # 0-1, 1-2, then forward from 0 -> 3: rightmost path is 3, 0.
        code = DFSCode(
            ((0, 1, 0, 0, 0), (1, 2, 0, 0, 0), (0, 3, 0, 0, 0))
        )
        assert code.rightmost_path() == [3, 0]

    def test_to_graph_round_trip(self):
        code = DFSCode(((0, 1, 5, 7, 6), (1, 2, 6, 8, 5), (2, 0, 5, 9, 5)))
        g = code.to_graph()
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert g.vertex_label(0) == 5
        assert g.edge_label(0, 1) == 7
        assert g.edge_label(1, 2) == 8


class TestIsMin:
    def test_single_edge_canonical_orientation(self):
        assert is_min(DFSCode(((0, 1, 1, 0, 2),)))
        assert not is_min(DFSCode(((0, 1, 2, 0, 1),)))

    def test_symmetric_single_edge(self):
        assert is_min(DFSCode(((0, 1, 1, 0, 1),)))

    def test_path_grown_from_middle_not_min(self):
        # Path a-b-c with labels 0-1-2: minimal code starts at label 0.
        not_min = DFSCode(((0, 1, 1, 0, 0), (0, 2, 1, 0, 2)))
        assert not is_min(not_min)
        minimal = DFSCode(((0, 1, 0, 0, 1), (1, 2, 1, 0, 2)))
        assert is_min(minimal)

    def test_triangle_canonical(self):
        minimal = DFSCode(((0, 1, 0, 0, 0), (1, 2, 0, 0, 0), (2, 0, 0, 0, 0)))
        assert is_min(minimal)

    def test_exactly_one_min_code_per_graph(self):
        """Among all valid DFS codes of a labeled triangle with one
        distinct label, exactly the canonical one passes is_min."""
        codes = [
            DFSCode(((0, 1, 0, 0, 0), (1, 2, 0, 0, 1), (2, 0, 1, 0, 0))),
            DFSCode(((0, 1, 0, 0, 1), (1, 2, 1, 0, 0), (2, 0, 0, 0, 0))),
        ]
        assert sum(1 for c in codes if is_min(c)) == 1


class TestMining:
    def test_matches_brute_force(self, molecule_db):
        patterns = mine_frequent_subgraphs(molecule_db, min_support=4, max_edges=3)
        ours = {wl_hash(p.to_graph()): p.support for p in patterns}
        oracle = brute_force_frequent(molecule_db, 4, 3)
        assert ours == oracle

    @given(st.integers(0, 200))
    @settings(max_examples=6, deadline=None)
    def test_property_matches_brute_force(self, seed):
        db = TransactionDatabase(
            random_labeled_transactions(6, 7, 0.3, 2, seed=seed)
        )
        patterns = mine_frequent_subgraphs(db, min_support=3, max_edges=2)
        ours = {wl_hash(p.to_graph()): p.support for p in patterns}
        oracle = brute_force_frequent(db, 3, 2)
        assert ours == oracle

    def test_no_duplicate_patterns(self, molecule_db):
        patterns = mine_frequent_subgraphs(molecule_db, min_support=3, max_edges=3)
        hashes = [wl_hash(p.to_graph()) for p in patterns]
        assert len(set(hashes)) == len(hashes)

    def test_support_monotone_in_threshold(self, molecule_db):
        lo = mine_frequent_subgraphs(molecule_db, min_support=3, max_edges=3)
        hi = mine_frequent_subgraphs(molecule_db, min_support=6, max_edges=3)
        assert len(hi) <= len(lo)
        hi_hashes = {wl_hash(p.to_graph()) for p in hi}
        lo_hashes = {wl_hash(p.to_graph()) for p in lo}
        assert hi_hashes <= lo_hashes

    def test_min_edges_filters_output_not_growth(self, molecule_db):
        all_patterns = mine_frequent_subgraphs(
            molecule_db, min_support=4, max_edges=3, min_edges=1
        )
        big_only = mine_frequent_subgraphs(
            molecule_db, min_support=4, max_edges=3, min_edges=3
        )
        assert all(p.num_edges >= 3 for p in big_only)
        expected = {wl_hash(p.to_graph()) for p in all_patterns if p.num_edges >= 3}
        assert {wl_hash(p.to_graph()) for p in big_only} == expected

    def test_graph_ids_are_supporting_transactions(self, molecule_db):
        patterns = mine_frequent_subgraphs(molecule_db, min_support=4, max_edges=2)
        for p in patterns:
            assert p.support == len(p.graph_ids)
            assert p.support >= 4

    def test_invalid_min_support(self):
        with pytest.raises(ValueError):
            GSpan(min_support=0)

    def test_pruning_counters_advance(self, molecule_db):
        miner = GSpan(min_support=4, max_edges=3)
        miner.run(molecule_db)
        assert miner.patterns_pruned_not_min > 0
        assert miner.patterns_pruned_infrequent > 0
