"""Single-graph FSM: MNI support semantics, GraMi prunings, T-FSM tasks."""

import numpy as np
import pytest

from repro.fsm.single_graph import (
    SingleGraphFSM,
    mni_support,
    mni_support_parallel,
)
from repro.graph.csr import Graph
from repro.graph.generators import planted_motif_graph, random_labeled_graph
from repro.matching.backtrack import find_matches
from repro.matching.pattern import PatternGraph


def mni_oracle(graph, pattern):
    """MNI by full enumeration: distinct data vertices per position."""
    domains = [set() for _ in range(pattern.n)]
    embeddings = find_matches(graph, pattern)
    # find_matches applies symmetry breaking; for MNI we need all
    # embeddings, so enumerate without restrictions.
    from repro.matching.backtrack import match

    all_embeddings = []
    match(graph, pattern, restrictions=[], on_match=all_embeddings.append)
    for emb in all_embeddings:
        for q, v in enumerate(emb):
            domains[q].add(v)
    return min(len(d) for d in domains) if domains else 0


@pytest.fixture
def labeled_graph():
    return random_labeled_graph(60, 0.1, num_vertex_labels=2, seed=8)


@pytest.fixture
def edge_pattern():
    return PatternGraph(
        Graph.from_edges([(0, 1)], vertex_labels=[0, 1])
    )


@pytest.fixture
def triangle_motif_graph():
    motif = Graph.from_edges([(0, 1), (1, 2), (2, 0)], vertex_labels=[5, 5, 5])
    return (
        planted_motif_graph(
            n=100, p=0.02, motif=motif, copies=7, num_vertex_labels=4, seed=2
        ),
        PatternGraph(motif),
    )


class TestMNISemantics:
    def test_matches_oracle_edge(self, labeled_graph, edge_pattern):
        result = mni_support(
            labeled_graph, edge_pattern, min_support=None, early_stop=False
        )
        assert result.support == mni_oracle(labeled_graph, edge_pattern)

    def test_matches_oracle_triangle(self, triangle_motif_graph):
        graph, pattern = triangle_motif_graph
        result = mni_support(graph, pattern, min_support=None, early_stop=False)
        assert result.support == mni_oracle(graph, pattern)

    def test_planted_copies_lower_bound(self, triangle_motif_graph):
        graph, pattern = triangle_motif_graph
        result = mni_support(graph, pattern, min_support=None, early_stop=False)
        assert result.support >= 7

    def test_absent_pattern_zero(self, labeled_graph):
        pattern = PatternGraph(
            Graph.from_edges([(0, 1)], vertex_labels=[7, 7])  # label 7 absent
        )
        result = mni_support(labeled_graph, pattern)
        assert result.support == 0

    def test_parallel_same_support(self, triangle_motif_graph):
        graph, pattern = triangle_motif_graph
        serial = mni_support(
            graph, pattern, min_support=None, early_stop=False,
            reuse_embeddings=False,
        )
        parallel, makespan = mni_support_parallel(graph, pattern, num_workers=4)
        assert parallel.support == serial.support
        assert 0 < makespan <= parallel.search_ops


class TestPrunings:
    def test_prunings_preserve_decision(self, triangle_motif_graph):
        """All pruning configurations agree on the frequency decision."""
        graph, pattern = triangle_motif_graph
        threshold = 5
        decisions = set()
        for nlf in (False, True):
            for early in (False, True):
                for reuse in (False, True):
                    r = mni_support(
                        graph,
                        pattern,
                        min_support=threshold,
                        prune_nlf=nlf,
                        early_stop=early,
                        reuse_embeddings=reuse,
                    )
                    decisions.add(r.support >= threshold)
        assert decisions == {True}

    def test_prunings_cut_work(self, triangle_motif_graph):
        """The C6 claim: GraMi prunings cut the search drastically."""
        graph, pattern = triangle_motif_graph
        slow = mni_support(
            graph, pattern, min_support=5,
            prune_nlf=False, early_stop=False, reuse_embeddings=False,
        )
        fast = mni_support(graph, pattern, min_support=5)
        assert fast.search_ops < slow.search_ops
        assert fast.existence_checks < slow.existence_checks

    def test_early_stop_caps_domain_size(self, triangle_motif_graph):
        graph, pattern = triangle_motif_graph
        result = mni_support(graph, pattern, min_support=3, early_stop=True)
        # Early stop means support is reported as "at least threshold",
        # bounded by the capped domains.
        assert result.support >= 3


class TestSingleGraphFSM:
    def test_planted_motif_is_found(self, triangle_motif_graph):
        graph, pattern = triangle_motif_graph
        miner = SingleGraphFSM(min_support=5, max_edges=3)
        patterns = miner.run(graph)
        found = False
        for p in patterns:
            g = p.to_graph()
            if (
                g.num_vertices == 3
                and g.num_edges == 3
                and all(g.vertex_label(v) == 5 for v in range(3))
            ):
                found = True
        assert found

    def test_all_results_meet_threshold(self, labeled_graph):
        miner = SingleGraphFSM(min_support=8, max_edges=2)
        for p in miner.run(labeled_graph):
            assert p.support >= 8

    def test_results_canonical_unique(self, labeled_graph):
        miner = SingleGraphFSM(min_support=6, max_edges=2)
        patterns = miner.run(labeled_graph)
        codes = [p.code for p in patterns]
        assert len(set(codes)) == len(codes)

    def test_higher_threshold_fewer_patterns(self, labeled_graph):
        lo = SingleGraphFSM(min_support=4, max_edges=2).run(labeled_graph)
        hi = SingleGraphFSM(min_support=12, max_edges=2).run(labeled_graph)
        assert len(hi) <= len(lo)

    def test_supports_anti_monotone_along_growth(self, triangle_motif_graph):
        """A pattern's MNI support never exceeds its sub-pattern's."""
        graph, _ = triangle_motif_graph
        miner = SingleGraphFSM(min_support=3, max_edges=3)
        patterns = miner.run(graph)
        by_code = {p.code: p.support for p in patterns}
        for code, support in by_code.items():
            if len(code) > 1:
                parent = code[:-1]
                if tuple(parent) in {tuple(c) for c in by_code}:
                    parent_support = by_code[
                        next(c for c in by_code if tuple(c) == tuple(parent))
                    ]
                    assert support <= parent_support
