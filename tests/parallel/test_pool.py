"""Warm-pool amortization: one spawn, one CSR copy, many fan-outs.

The PR 7 contract: a :class:`~repro.parallel.pool.WorkerPool` maps each
graph into shared memory exactly once per (pool, graph) pair, keeps the
futures pool warm across ``map_graph`` calls, and survives crash-path
rebuilds without re-copying the CSR.
"""

from multiprocessing import shared_memory

import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.obs import MetricsRegistry
from repro.parallel import (
    ParallelExecutor,
    WorkerPool,
    get_pool,
    pool_registry,
    shutdown_pools,
)


def _span_edges(graph, span):
    lo, hi = span
    return int(graph.indptr[hi] - graph.indptr[lo])


@pytest.fixture
def graph():
    return barabasi_albert(120, 3, seed=4)


def _segment_names(pool, graph):
    entry = pool._graphs[id(graph)]
    return entry[1].handle.cache_key()


class TestWorkerPool:
    def test_share_is_idempotent(self, graph):
        with WorkerPool("process", 1) as pool:
            first = pool.share(graph)
            second = pool.share(graph)
            assert second is first
            assert pool.shares == 1
            assert pool.share_hits == 1
            assert pool.last_share_seconds == 0.0
            assert pool.is_shared(graph)

    def test_lru_eviction_unlinks_segments(self):
        graphs = [erdos_renyi(30, 0.1, seed=s) for s in range(3)]
        with WorkerPool("process", 1, max_shared_graphs=2) as pool:
            names = []
            for g in graphs:
                pool.share(g)
                names.append(_segment_names(pool, g))
            assert not pool.is_shared(graphs[0])
            assert pool.is_shared(graphs[1]) and pool.is_shared(graphs[2])
            for name in names[0]:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)

    def test_discard_is_idempotent(self, graph):
        with WorkerPool("process", 1) as pool:
            pool.share(graph)
            names = _segment_names(pool, graph)
            pool.discard(graph)
            pool.discard(graph)
            assert not pool.is_shared(graph)
            for name in names:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)

    def test_rebuild_keeps_shared_graphs(self, graph):
        with WorkerPool("thread", 2) as pool:
            pool.executor()
            pool.share(graph)
            assert pool.warm
            pool.rebuild()
            assert not pool.warm
            # The crash-recovery promise: respawn workers, keep the CSR.
            assert pool.is_shared(graph)
            pool.executor()
            assert pool.cold_starts == 2

    def test_warm_executor_reports_zero_spinup(self):
        with WorkerPool("thread", 2) as pool:
            pool.executor()
            assert pool.last_spinup_seconds > 0.0
            pool.executor()
            assert pool.last_spinup_seconds == 0.0
            assert pool.cold_starts == 1

    def test_close_unlinks_everything(self, graph):
        pool = WorkerPool("process", 1)
        pool.share(graph)
        names = _segment_names(pool, graph)
        pool.close()
        pool.close()  # idempotent
        assert pool.shared_bytes == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            WorkerPool("serial", 2)
        with pytest.raises(ValueError):
            WorkerPool("thread", 0)


class TestPoolRegistry:
    def test_get_pool_returns_the_same_instance(self):
        a = get_pool("thread", 3)
        b = get_pool("thread", 3)
        other = get_pool("thread", 2)
        try:
            assert a is b
            assert other is not a
            assert ("thread", 3) in pool_registry()
        finally:
            shutdown_pools()

    def test_shutdown_empties_the_registry(self):
        get_pool("thread", 2)
        shutdown_pools()
        assert pool_registry() == {}


class TestExecutorPoolReuse:
    """The tentpole: successive ``map_graph`` calls reuse pool + shm."""

    def test_same_segments_across_map_graph_calls(self, graph):
        obs = MetricsRegistry()
        with ParallelExecutor(
            backend="process", workers=2, chunk_size=32,
            obs=obs, reuse_pool=False,
        ) as ex:
            first = ex.map_graph(_span_edges, graph, ex.spans(graph.num_vertices))
            names = _segment_names(ex._pools["process"], graph)
            second = ex.map_graph(_span_edges, graph, ex.spans(graph.num_vertices))
            assert first == second
            # Same shm segments served both fan-outs: one publish, one reuse.
            assert _segment_names(ex._pools["process"], graph) == names
            assert obs.counter("parallel.shm_shares").value() == 1
            assert obs.counter("parallel.shm_reuses").value() == 1
            # And one pool spawn covered both calls.
            assert ex._pools["process"].cold_starts == 1

    def test_registry_pool_shared_across_executors(self, graph):
        shutdown_pools()
        try:
            with ParallelExecutor(backend="process", workers=2, chunk_size=32) as a:
                a.map_graph(_span_edges, graph, a.spans(graph.num_vertices))
                pool = pool_registry()[("process", 2)]
                spawned = pool.cold_starts
                assert pool.is_shared(graph)
            # close() leaves borrowed pools warm — the amortization.
            assert pool.warm
            with ParallelExecutor(backend="process", workers=2, chunk_size=32) as b:
                b.map_graph(_span_edges, graph, b.spans(graph.num_vertices))
                assert b._pools["process"] is pool
                assert pool.cold_starts == spawned
                assert pool.share_hits >= 1
        finally:
            shutdown_pools()

    def test_warmup_excluded_from_efficiency(self, graph):
        obs = MetricsRegistry()
        with ParallelExecutor(
            backend="process", workers=2, chunk_size=32,
            obs=obs, reuse_pool=False,
        ) as ex:
            ex.map_graph(_span_edges, graph, ex.spans(graph.num_vertices))
            warmup = obs.counter("parallel.warmup_seconds").value(backend="process")
            wall = obs.counter("parallel.wall_seconds").value(backend="process")
            busy = obs.counter("parallel.busy_seconds").value(backend="process")
            # Spawn + publish dominated this tiny fan-out; the efficiency
            # gauge must rate the steady state, not the setup.
            assert 0.0 < warmup < wall
            naive = busy / (wall * ex.workers)
            assert ex.efficiency >= naive
            assert 0.0 < ex.efficiency <= 1.0
