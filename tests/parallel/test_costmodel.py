"""The calibrated cost model behind ``backend="auto"``.

Pinned properties: the priors make parallel backends earn their keep
(first calls run serial), calibration is a pure EWMA fold (same
observations -> same decisions, so auto mode is deterministic), and the
process-wide default model persists across executors within a session.
"""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert
from repro.obs import MetricsRegistry
from repro.parallel import (
    CostModel,
    ParallelExecutor,
    default_cost_model,
    reset_default_cost_model,
)
from repro.parallel.chunking import default_chunk_size
from repro.parallel.costmodel import BACKEND_ORDER, TARGET_CHUNK_SECONDS


def _span_vertices(graph, span):
    lo, hi = span
    return hi - lo


@pytest.fixture(autouse=True)
def fresh_default_model():
    reset_default_cost_model()
    yield
    reset_default_cost_model()


class TestEstimates:
    def test_uncalibrated_small_fanout_runs_serial(self):
        model = CostModel()
        prior = model.work_prior(num_vertices=200, num_edge_slots=600, items=8)
        decision = model.choose("k", items=8, workers=4, work_prior=prior)
        assert decision.backend == "serial"
        assert not decision.calibrated
        assert set(decision.estimates) == set(BACKEND_ORDER)

    def test_heavy_warm_shared_fanout_prefers_process(self):
        model = CostModel()
        decision = model.choose(
            "k", items=10_000, workers=8, work_prior=1e-2,
            warm=("thread", "process"), shared=True,
        )
        assert decision.backend == "process"

    def test_cold_spinup_and_share_cost_are_charged(self):
        model = CostModel()
        cold = model.estimate(
            "k", "process", items=100, workers=4,
            work_prior=1e-5, warm=False, shared=False, graph_bytes=1 << 30,
        )
        warm = model.estimate(
            "k", "process", items=100, workers=4,
            work_prior=1e-5, warm=True, shared=True, graph_bytes=1 << 30,
        )
        assert cold > warm + model.SPINUP["process"] * 0.9

    def test_measured_rate_replaces_the_prior(self):
        model = CostModel()
        model.observe("k", "serial", items=100, busy=1.0, wall=1.0)
        assert model.estimate(
            "k", "serial", items=100, workers=1, work_prior=1e-9
        ) == pytest.approx(1.0)

    def test_ties_break_toward_the_simpler_backend(self):
        model = CostModel()
        for backend in BACKEND_ORDER:
            model.observe(backend=backend, key="k", items=10, busy=0.1, wall=0.1)
        decision = model.choose(
            "k", items=10, workers=4, work_prior=1e-3,
            warm=("thread", "process"), shared=True,
        )
        assert len(set(decision.estimates.values())) == 1
        assert decision.backend == "serial"
        assert decision.calibrated

    def test_warmup_excluded_from_calibration(self):
        model = CostModel()
        # 1s of wall, but 0.9s was one-time pool spawn: a warm repeat
        # costs 0.1s, and that is the rate the model must learn.
        model.observe("k", "process", items=100, busy=0.1, wall=1.0, warmup=0.9)
        assert model.estimate(
            "k", "process", items=100, workers=4,
            work_prior=1e-9, warm=True, shared=True,
        ) == pytest.approx(0.1)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            CostModel(alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(alpha=1.5)


class TestChunkSizing:
    def test_uncalibrated_model_defers_to_default_policy(self):
        assert CostModel().auto_chunk_size(1000, 4) is None

    def test_calibrated_chunks_target_the_time_budget(self):
        model = CostModel()
        model.observe("k", "serial", items=1000, busy=1e-2, wall=1e-2)
        size = model.auto_chunk_size(1000, 4)
        # unit cost 1e-5 s/item -> 200 items reach the 2 ms target.
        assert size == int(np.ceil(TARGET_CHUNK_SECONDS / 1e-5))
        assert size >= default_chunk_size(1000, 4)

    def test_never_coarser_than_one_chunk_per_worker(self):
        model = CostModel()
        model.observe("k", "serial", items=1000, busy=1e-6, wall=1e-6)
        # Nearly free items would suggest giant chunks; balance wins.
        assert model.auto_chunk_size(1000, 4) == 250


class TestDeterminism:
    def test_same_observations_same_decisions(self):
        rng = np.random.default_rng(7)
        trace = [
            (
                f"fn{int(rng.integers(3))}",
                BACKEND_ORDER[int(rng.integers(3))],
                int(rng.integers(1, 1000)),
                float(rng.uniform(1e-4, 1e-1)),
            )
            for _ in range(40)
        ]
        decisions = []
        for _ in range(2):
            model = CostModel()
            run = []
            for key, backend, items, busy in trace:
                model.observe(key, backend, items=items, busy=busy, wall=busy * 1.5)
                run.append(
                    model.choose(
                        key, items=items, workers=4,
                        work_prior=model.work_prior(500, 1500, items),
                    ).backend
                )
            decisions.append(run)
        assert decisions[0] == decisions[1]

    def test_auto_executor_is_deterministic_at_fixed_seed(self):
        graph = barabasi_albert(400, 3, seed=11)

        def run_once():
            obs = MetricsRegistry()
            with ParallelExecutor(
                backend="auto", workers=2, obs=obs,
                reuse_pool=False, cost_model=CostModel(),
            ) as ex:
                results = []
                for _ in range(3):
                    results.append(
                        ex.map_graph(
                            _span_vertices, graph, ex.spans(graph.num_vertices)
                        )
                    )
                counts = {
                    b: obs.counter("parallel.auto_decisions").value(backend=b)
                    for b in BACKEND_ORDER
                }
            return results, counts

        first_results, first_counts = run_once()
        second_results, second_counts = run_once()
        assert first_results == second_results
        assert first_counts == second_counts
        assert sum(first_counts.values()) == 3

    def test_first_auto_call_runs_serial(self):
        graph = barabasi_albert(120, 3, seed=2)
        obs = MetricsRegistry()
        with ParallelExecutor(
            backend="auto", workers=2, obs=obs,
            reuse_pool=False, cost_model=CostModel(),
        ) as ex:
            ex.map_graph(_span_vertices, graph, ex.spans(graph.num_vertices))
            assert obs.counter("parallel.auto_decisions").value(backend="serial") == 1


class TestCalibrationPersistence:
    def test_default_model_is_shared_across_executors(self):
        graph = barabasi_albert(150, 3, seed=5)
        with ParallelExecutor(backend="serial", reuse_pool=False) as ex:
            assert ex.cost_model is default_cost_model()
            ex.map_graph(_span_vertices, graph, ex.spans(graph.num_vertices))
            seen = ex.cost_model.observations
        assert seen >= 1
        with ParallelExecutor(backend="auto", workers=2, reuse_pool=False) as later:
            # A later executor in the same session starts calibrated.
            assert later.cost_model is default_cost_model()
            assert later.cost_model.observations == seen

    def test_reset_forgets_calibration(self):
        model = default_cost_model()
        model.observe("k", "serial", items=10, busy=0.1, wall=0.1)
        reset_default_cost_model()
        assert default_cost_model().observations == 0
        assert default_cost_model() is not model

    def test_snapshot_exposes_model_state(self):
        model = CostModel()
        model.observe("k", "serial", items=10, busy=0.1, wall=0.1)
        snap = model.snapshot()
        assert snap["observations"] == 1
        assert snap["unit_cost"] == pytest.approx(0.01)
        assert snap["wall_per_item"]["k|serial"] == pytest.approx(0.01)
