"""Backend equivalence: serial / thread / process give identical answers.

The determinism contract (DESIGN.md): with the same chunk layout, every
backend performs the same computation graph, so integer counts are equal
and floating-point vectors are *bit*-identical across backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    random_labeled_graph,
)
from repro.matching.backtrack import MatchStats, count_matches
from repro.matching.pattern import (
    PatternGraph,
    clique_pattern,
    cycle_pattern,
    diamond_pattern,
)
from repro.matching.triangles import triangle_count
from repro.obs import MetricsRegistry
from repro.parallel import (
    ParallelExecutor,
    SharedGraph,
    attach_graph,
    chunk_spans,
    default_chunk_size,
    resolve_backend,
    resolve_workers,
)
from repro.tlav import pagerank_dense

SEEDS = [0, 1, 2]


@pytest.fixture(scope="module")
def executors():
    """One executor per backend, identical chunking so results match."""
    execs = {
        "serial": ParallelExecutor(backend="serial", chunk_size=16),
        "thread": ParallelExecutor(backend="thread", workers=2, chunk_size=16),
        "process": ParallelExecutor(backend="process", workers=2, chunk_size=16),
    }
    yield execs
    for ex in execs.values():
        ex.close()


class TestCountMatchesEquivalence:
    def _assert_all_equal(self, graph, pattern, executors):
        expected = count_matches(graph, pattern)
        for name, ex in executors.items():
            assert count_matches(graph, pattern, executor=ex) == expected, name
        return expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cliques_on_random_graphs(self, seed, executors):
        g = erdos_renyi(80, 0.15, seed=seed)
        self._assert_all_equal(g, clique_pattern(4), executors)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cycles_on_skewed_graphs(self, seed, executors):
        g = barabasi_albert(120, 3, seed=seed)
        self._assert_all_equal(g, cycle_pattern(4), executors)

    def test_labeled_pattern(self, executors):
        g = random_labeled_graph(80, 0.12, num_vertex_labels=3, seed=7)
        pattern = PatternGraph.from_edges(
            [(0, 1), (1, 2), (2, 0)], vertex_labels=[0, 1, 2]
        )
        self._assert_all_equal(g, pattern, executors)

    def test_symmetric_pattern_with_restrictions(self, executors):
        # The diamond has a nontrivial automorphism group, so distinct
        # counting relies on symmetry-breaking restrictions; the parallel
        # fan-out must apply them identically in every chunk.
        g = erdos_renyi(70, 0.15, seed=11)
        self._assert_all_equal(g, diamond_pattern(), executors)

    def test_merged_worker_stats_equal_serial_stats(self, executors):
        # Every root's search subtree is chunk-independent, so the merged
        # per-worker counters must equal one serial pass over all roots.
        g = erdos_renyi(80, 0.15, seed=3)
        pattern = clique_pattern(4)
        serial = MatchStats()
        count_matches(g, pattern, stats=serial)
        for name, ex in executors.items():
            merged = MatchStats()
            count_matches(g, pattern, executor=ex, stats=merged)
            assert merged.as_dict() == serial.as_dict(), name

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_property_serial_and_thread_agree(self, seed):
        g = erdos_renyi(50, 0.2, seed=seed)
        pattern = clique_pattern(3)
        expected = count_matches(g, pattern)
        with ParallelExecutor(backend="thread", workers=2, chunk_size=7) as ex:
            assert count_matches(g, pattern, executor=ex) == expected


class TestTriangleEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_backends(self, seed, executors):
        g = barabasi_albert(250, 4, seed=seed)
        expected = triangle_count(g)
        for name, ex in executors.items():
            assert triangle_count(g, executor=ex) == expected, name


class TestPageRankDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_across_backends(self, seed, executors):
        g = erdos_renyi(150, 0.05, seed=seed)
        reference = pagerank_dense(g, iterations=10, executor=executors["serial"])
        for name in ("thread", "process"):
            got = pagerank_dense(g, iterations=10, executor=executors[name])
            assert np.array_equal(got, reference), name
        # The unchunked path folds partial sums in a different association
        # order, so it is close but not required to be bit-equal.
        solo = pagerank_dense(g, iterations=10)
        np.testing.assert_allclose(reference, solo, rtol=0, atol=1e-14)


class TestResolution:
    def test_backend_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        assert resolve_backend() == "thread"
        assert resolve_backend("process") == "process"
        monkeypatch.delenv("REPRO_BACKEND")
        assert resolve_backend() == "auto"
        assert resolve_backend("auto") == "auto"
        with pytest.raises(ValueError):
            resolve_backend("gpu")

    def test_workers_env_and_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_serial_backend_reports_one_worker(self):
        with ParallelExecutor(backend="serial", workers=8) as ex:
            assert ex.workers == 1

    def test_executor_honours_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        with ParallelExecutor() as ex:
            assert ex.backend == "thread"
            assert ex.workers == 2


class TestChunking:
    @given(st.integers(0, 500), st.integers(1, 64), st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_spans_partition_the_range(self, n, chunk, workers):
        spans = chunk_spans(n, chunk, workers)
        assert all(lo < hi for lo, hi in spans)
        flat = [i for lo, hi in spans for i in range(lo, hi)]
        assert flat == list(range(n))

    def test_default_size_oversubscribes_workers(self):
        # Enough chunks per worker that stealing/imbalance can average out.
        size = default_chunk_size(1000, 4)
        assert 1 <= size <= 1000
        assert len(chunk_spans(1000, None, 4)) >= 4

    def test_zero_items(self):
        assert chunk_spans(0, None, 4) == []


class TestSharedGraph:
    def test_round_trip_preserves_csr_and_labels(self):
        g = random_labeled_graph(
            50, 0.1, num_vertex_labels=3, num_edge_labels=2, seed=1
        )
        with SharedGraph(g) as shared:
            attached = attach_graph(shared.handle)
            assert attached.directed == g.directed
            assert np.array_equal(attached.indptr, g.indptr)
            assert np.array_equal(attached.indices, g.indices)
            for v in range(g.num_vertices):
                assert attached.vertex_label(v) == g.vertex_label(v)

    def test_close_is_idempotent(self):
        shared = SharedGraph(erdos_renyi(20, 0.2, seed=0))
        shared.close()
        shared.close()


class TestObservability:
    def test_efficiency_gauge_and_counters(self):
        obs = MetricsRegistry()
        g = erdos_renyi(120, 0.05, seed=0)
        with ParallelExecutor(backend="serial", obs=obs) as ex:
            triangle_count(g, executor=ex)
            assert 0.0 < ex.efficiency <= 1.0
        assert obs.get("parallel.maps").total >= 1
        assert obs.get("parallel.chunks").total >= 1
        assert obs.get("parallel.workers").value(backend="serial") == 1


def _boom_task(graph, span):
    raise RuntimeError("chunk exploded")


class TestCrashTolerance:
    """Injected worker deaths: re-dispatch, pool rebuild, degradation."""

    def _graph(self):
        return barabasi_albert(150, 3, seed=2)

    def test_serial_and_thread_redispatch(self):
        from repro.resilience import FaultPlan

        g = self._graph()
        expected = triangle_count(g)
        for backend in ("serial", "thread"):
            obs = MetricsRegistry()
            injector = FaultPlan(seed=1).crash_worker(chunk=0).build(obs)
            with ParallelExecutor(
                backend=backend, workers=2, obs=obs, injector=injector
            ) as ex:
                assert triangle_count(g, executor=ex) == expected
            assert (
                obs.counter("resilience.redispatched_chunks").value(
                    backend=backend
                )
                == 1
            )

    def test_process_pool_rebuild_and_redispatch(self):
        from repro.resilience import FaultPlan

        g = self._graph()
        expected = triangle_count(g)
        obs = MetricsRegistry()
        injector = FaultPlan(seed=1).crash_worker(chunk=1).build(obs)
        with ParallelExecutor(
            backend="process", workers=2, obs=obs, injector=injector
        ) as ex:
            assert triangle_count(g, executor=ex) == expected
            assert ex.backend == "process"
            # The rebuilt pool keeps serving later fan-outs.
            assert triangle_count(g, executor=ex) == expected
        assert obs.counter("resilience.pool_failures").total == 1
        assert obs.counter("resilience.redispatched_chunks").total >= 1

    def test_degradation_after_repeated_pool_losses(self):
        from repro.resilience import FaultPlan

        g = self._graph()
        expected = triangle_count(g)
        obs = MetricsRegistry()
        injector = FaultPlan(seed=1).crash_worker(chunk=0, times=2).build(obs)
        with ParallelExecutor(
            backend="process", workers=2, obs=obs,
            injector=injector, max_pool_failures=2,
        ) as ex:
            assert triangle_count(g, executor=ex) == expected
            assert ex.backend == "thread"
            assert obs.gauge("resilience.degraded").value(to="thread") == 1


class TestSharedMemoryHygiene:
    """No stale /dev/shm segments, whatever kills a fan-out."""

    def test_failing_chunk_releases_segments(self):
        g = erdos_renyi(80, 0.1, seed=0)
        ex = ParallelExecutor(backend="process", workers=2, reuse_pool=False)
        names = [seg.name for seg in ex._share(g)._segments]
        assert names
        with pytest.raises(RuntimeError, match="chunk exploded"):
            ex.map_graph(_boom_task, g, ex.spans(g.num_vertices))
        # The failure path discarded the graph from the pool's registry.
        assert not ex._pools["process"].is_shared(g)
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        ex.close()

    def test_private_pool_close_unlinks_segments(self):
        g = erdos_renyi(60, 0.1, seed=1)
        ex = ParallelExecutor(backend="process", workers=2, reuse_pool=False)
        assert triangle_count(g, executor=ex) == triangle_count(g)
        names = [seg.name for seg in ex._share(g)._segments]
        ex.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_atexit_guard_sweeps_unclosed_owners(self):
        import subprocess
        import sys

        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.graph.generators import erdos_renyi\n"
            "from repro.parallel.shm import SharedGraph\n"
            "shared = SharedGraph(erdos_renyi(50, 0.1, seed=0))\n"
            "print('\\n'.join(seg.name for seg in shared._segments))\n"
            # no close(): the atexit guard must unlink at interpreter exit
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True, cwd=".",
        ).stdout
        names = [n for n in out.splitlines() if n]
        assert names
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_partial_construction_unlinks(self, monkeypatch):
        from multiprocessing import shared_memory as shm_mod

        from repro.parallel import shm as shm_module

        created = []
        real = shm_mod.SharedMemory

        def flaky(*args, **kwargs):
            if kwargs.get("create") and created:
                raise OSError("shm exhausted")
            seg = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(seg.name)
            return seg

        monkeypatch.setattr(shm_module.shared_memory, "SharedMemory", flaky)
        with pytest.raises(OSError, match="shm exhausted"):
            SharedGraph(erdos_renyi(40, 0.1, seed=0))
        monkeypatch.undo()
        assert created
        for name in created:
            with pytest.raises(FileNotFoundError):
                real(name=name)
