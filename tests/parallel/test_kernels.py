"""The vectorized adjacency kernels against brute-force oracles."""

import numpy as np
import pytest

from repro.graph import kernels
from repro.graph.generators import erdos_renyi


def _sorted_unique(rng, size, universe):
    return np.unique(rng.integers(0, universe, size=size).astype(np.int64))


class TestInSorted:
    def test_matches_python_membership(self, rng):
        for _ in range(25):
            hay = _sorted_unique(rng, rng.integers(0, 40), 60)
            needles = rng.integers(0, 60, size=rng.integers(0, 40)).astype(np.int64)
            mask = kernels.in_sorted(hay, needles)
            expected = np.array([int(x) in set(hay.tolist()) for x in needles], bool)
            assert np.array_equal(mask, expected)

    def test_empty_sides(self):
        empty = np.empty(0, dtype=np.int64)
        some = np.array([1, 2, 3], dtype=np.int64)
        assert kernels.in_sorted(empty, some).sum() == 0
        assert kernels.in_sorted(some, empty).size == 0


class TestIntersect:
    def test_pairwise_equals_set_intersection(self, rng):
        for _ in range(25):
            a = _sorted_unique(rng, rng.integers(0, 50), 70)
            b = _sorted_unique(rng, rng.integers(0, 50), 70)
            expected = np.asarray(
                sorted(set(a.tolist()) & set(b.tolist())), dtype=np.int64
            )
            assert np.array_equal(kernels.intersect_sorted(a, b), expected)
            assert kernels.intersect_count(a, b) == expected.size

    def test_multi_way(self, rng):
        for _ in range(25):
            lists = [_sorted_unique(rng, rng.integers(1, 40), 50) for _ in range(4)]
            expected = set(lists[0].tolist())
            for other in lists[1:]:
                expected &= set(other.tolist())
            got = kernels.intersect_multi(lists)
            assert np.array_equal(got, np.asarray(sorted(expected), dtype=np.int64))

    def test_multi_empty_input(self):
        assert kernels.intersect_multi([]).size == 0


class TestExpandFrontier:
    def test_concatenates_neighborhoods_with_owners(self, rng):
        g = erdos_renyi(60, 0.08, seed=int(rng.integers(1000)))
        frontier = np.unique(rng.integers(0, 60, size=10).astype(np.int64))
        owners, neighbors = kernels.expand_frontier(g.indptr, g.indices, frontier)
        expected = np.concatenate(
            [g.neighbors(int(v)) for v in frontier]
            + [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(neighbors, expected)
        # owners index into the frontier, repeated by degree.
        degrees = np.array([g.degree(int(v)) for v in frontier])
        assert np.array_equal(owners, np.repeat(np.arange(frontier.size), degrees))

    def test_empty_frontier(self):
        g = erdos_renyi(10, 0.2, seed=0)
        owners, neighbors = kernels.expand_frontier(
            g.indptr, g.indices, np.empty(0, dtype=np.int64)
        )
        assert owners.size == 0 and neighbors.size == 0


class TestScatterAddOrdered:
    def test_accumulates_like_a_loop(self, rng):
        out = np.zeros(8)
        idx = rng.integers(0, 8, size=50).astype(np.int64)
        vals = rng.random(50)
        expected = np.zeros(8)
        for i, v in zip(idx, vals):
            expected[i] += v
        kernels.scatter_add_ordered(out, idx, vals)
        assert np.array_equal(out, expected)


class TestEdgeArray:
    def test_round_trips_csr(self):
        g = erdos_renyi(40, 0.1, seed=5)
        src, dst = kernels.edge_array(g.indptr, g.indices)
        assert src.size == g.indices.size
        for k in range(src.size):
            assert g.has_edge(int(src[k]), int(dst[k]))


class TestOrientByDegree:
    """The vectorized orientation keeps the classic invariants."""

    def test_each_edge_oriented_once_upward(self, small_er):
        oriented = small_er.orient_by_degree()
        deg = small_er.degrees()
        assert oriented.directed
        assert oriented.indices.size == small_er.num_edges
        src, dst = kernels.edge_array(oriented.indptr, oriented.indices)
        for k in range(src.size):
            u, v = int(src[k]), int(dst[k])
            assert (deg[u], u) < (deg[v], v)

    def test_rejects_directed(self):
        from repro.graph.csr import Graph

        g = Graph.from_edges([(0, 1)], directed=True)
        with pytest.raises(ValueError):
            g.orient_by_degree()
