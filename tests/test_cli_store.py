"""The ``repro store`` subcommands and ``analyze --graph``."""

import json

import pytest

from repro.__main__ import main


@pytest.fixture
def edge_file(tmp_path):
    path = str(tmp_path / "g.txt")
    assert main(["generate", "ba", path, "--n", "150", "--m", "3"]) == 0
    return path


class TestStoreBuild:
    def test_build_and_inspect(self, edge_file, tmp_path, capsys):
        dest = str(tmp_path / "store")
        assert main(["store", "build", edge_file, dest,
                     "--partition", "hash", "--num-parts", "3"]) == 0
        out = capsys.readouterr().out
        assert "n=150" in out and "parts=3" in out
        assert main(["store", "inspect", dest, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "hash x3" in out
        assert "CRC-32 checksums OK" in out

    def test_inspect_json(self, edge_file, tmp_path, capsys):
        dest = str(tmp_path / "store")
        main(["store", "build", edge_file, dest])
        capsys.readouterr()
        assert main(["store", "inspect", dest, "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["num_vertices"] == 150
        assert len(manifest["partitions"]) == 1

    def test_chunked_build_matches_one_shot(self, edge_file, tmp_path):
        one = str(tmp_path / "one")
        chunk = str(tmp_path / "chunk")
        assert main(["store", "build", edge_file, one,
                     "--partition", "hash", "--num-parts", "2"]) == 0
        assert main(["store", "build", edge_file, chunk,
                     "--partition", "hash", "--num-parts", "2",
                     "--chunked", "--chunk-edges", "50"]) == 0
        from repro.graph.store import Manifest

        m1, m2 = Manifest.load(one), Manifest.load(chunk)
        assert [
            (e.path, e.nbytes, e.crc32)
            for p in m1.partitions for e in p.files.values()
        ] == [
            (e.path, e.nbytes, e.crc32)
            for p in m2.partitions for e in p.files.values()
        ]

    def test_chunked_rejects_metis(self, edge_file, tmp_path, capsys):
        assert main(["store", "build", edge_file, str(tmp_path / "s"),
                     "--partition", "metis", "--chunked"]) == 2
        assert "streaming partitioner" in capsys.readouterr().err

    def test_existing_dest_needs_overwrite(self, edge_file, tmp_path, capsys):
        dest = str(tmp_path / "store")
        assert main(["store", "build", edge_file, dest]) == 0
        assert main(["store", "build", edge_file, dest]) == 1
        assert "exists" in capsys.readouterr().err
        assert main(["store", "build", edge_file, dest, "--overwrite"]) == 0

    def test_inspect_non_store(self, tmp_path, capsys):
        assert main(["store", "inspect", str(tmp_path)]) == 1
        assert "store inspect:" in capsys.readouterr().err


class TestAnalyzeStored:
    def test_paged_profile_end_to_end(self, edge_file, tmp_path, capsys):
        dest = str(tmp_path / "store")
        main(["store", "build", edge_file, dest,
              "--partition", "hash", "--num-parts", "4"])
        capsys.readouterr()
        # Cache far below the shard bytes: the profile must page.
        assert main(["analyze", "--graph", dest,
                     "--shard-cache", "512", "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["num_vertices"] == 150
        assert profile["paging"]["paged"] is True
        assert profile["paging"]["evictions"] > 0
        assert profile["paging"]["cache_budget"] == 512
        assert profile["paging"]["shard_bytes"] > 512
        assert profile["components"] >= 1

    def test_text_report(self, edge_file, tmp_path, capsys):
        dest = str(tmp_path / "store")
        main(["store", "build", edge_file, dest])
        capsys.readouterr()
        assert main(["analyze", "--graph", dest]) == 0
        out = capsys.readouterr().out
        assert "paging" in out and "pagerank" in out

    def test_both_sources_rejected(self, edge_file, tmp_path, capsys):
        assert main(["analyze", edge_file, "--graph", str(tmp_path)]) == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_source_rejected(self, capsys):
        assert main(["analyze"]) == 2
        assert "edge-list path or --graph" in capsys.readouterr().err
