"""Tests for the simulated network and traffic accounting."""

import numpy as np
import pytest

from repro.cluster.comm import CommStats, Message, Network, payload_nbytes


class TestPayloadSizing:
    def test_numpy_array_true_bytes(self):
        assert payload_nbytes(np.zeros((3, 4))) == 96

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(None) == 1
        assert payload_nbytes(True) == 1

    def test_strings_and_bytes(self):
        assert payload_nbytes("abc") == 3
        assert payload_nbytes(b"abcd") == 4

    def test_containers_sum(self):
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes({"a": 1}) == 9
        assert payload_nbytes((1.0, 2.0)) == 16


class TestNetwork:
    def test_bsp_delivery_semantics(self):
        net = Network(2)
        net.send(0, 1, "hello")
        assert net.receive(1) == []  # not delivered yet
        net.deliver()
        msgs = net.receive(1)
        assert len(msgs) == 1
        assert msgs[0].payload == "hello"

    def test_send_now_immediate(self):
        net = Network(2)
        net.send_now(0, 1, 42)
        msgs = net.receive(1)
        assert len(msgs) == 1

    def test_receive_drains(self):
        net = Network(2)
        net.send_now(0, 1, 1)
        assert len(net.receive(1)) == 1
        assert net.receive(1) == []

    def test_local_vs_remote_accounting(self):
        net = Network(2)
        net.send(0, 0, np.zeros(4))
        net.send(0, 1, np.zeros(4))
        assert net.stats.messages_local == 1
        assert net.stats.messages_remote == 1
        assert net.stats.bytes_local == 32
        assert net.stats.bytes_remote == 32

    def test_link_matrix(self):
        net = Network(3)
        net.send(0, 2, None, nbytes=100)
        net.send(2, 0, None, nbytes=50)
        assert net.stats.link_bytes[0, 2] == 100
        assert net.stats.link_bytes[2, 0] == 50
        assert net.stats.link_bytes[0, 1] == 0

    def test_tag_accounting(self):
        net = Network(2)
        net.send(0, 1, None, tag="halo", nbytes=10)
        net.send(0, 1, None, tag="halo", nbytes=5)
        net.send(0, 1, None, tag="grad", nbytes=7)
        assert net.stats.by_tag == {"halo": 15, "grad": 7}

    def test_explicit_nbytes_overrides_estimate(self):
        net = Network(2)
        net.send(0, 1, np.zeros(100), nbytes=1)
        assert net.stats.bytes_remote == 1

    def test_has_pending(self):
        net = Network(2)
        assert not net.has_pending()
        net.send(0, 1, 1)
        assert net.has_pending()
        net.deliver()
        assert net.has_pending()  # sits in inbox
        net.receive(1)
        assert not net.has_pending()

    def test_stats_reset(self):
        net = Network(2)
        net.send(0, 1, None, tag="x", nbytes=9)
        net.stats.reset()
        assert net.stats.total_bytes == 0
        assert net.stats.by_tag == {}
        assert np.all(net.stats.link_bytes == 0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Network(0)


class TestLossyNetwork:
    """Drop/duplicate/delay under the FaultInjector, with retransmit."""

    @staticmethod
    def _lossy(seed=3, retry=True, reliable=True, **rates):
        from repro.resilience import FaultPlan, RetryPolicy

        plan = FaultPlan(seed=seed).lossy_network(**rates)
        return Network(
            2,
            injector=plan.build(),
            retry=RetryPolicy(max_attempts=4, seed=seed) if retry else None,
            reliable=reliable,
        )

    def test_scheduled_drop_retransmits_and_delivers(self):
        from repro.resilience import FaultPlan, RetryPolicy

        net = Network(
            2,
            injector=FaultPlan(seed=0).drop_message(0).build(),
            retry=RetryPolicy(max_attempts=3),
        )
        net.send(0, 1, "x")
        net.deliver()
        assert [m.payload for m in net.receive(1)] == ["x"]
        assert net.stats.dropped == 1
        assert net.stats.retransmits == 1
        assert net.stats.retransmitted_bytes == 1

    def test_duplicate_deduplicated_at_receiver(self):
        from repro.resilience import FaultPlan

        net = Network(2, injector=FaultPlan(seed=0).duplicate_message(0).build())
        net.send(0, 1, "x")
        net.deliver()
        assert len(net.receive(1)) == 1
        assert net.stats.duplicates == 1

    def test_delay_surfaces_in_a_later_round(self):
        from repro.resilience import FaultPlan

        net = Network(
            2, injector=FaultPlan(seed=0).delay_message(0, rounds=2).build()
        )
        net.send(0, 1, "late")
        net.deliver()
        assert net.receive(1) == []
        assert net.has_pending()
        net.deliver()
        assert net.receive(1) == []
        net.deliver()
        assert [m.payload for m in net.receive(1)] == ["late"]
        assert not net.has_pending()

    def test_deliver_order_is_stable_by_seq(self):
        from repro.resilience import FaultPlan

        # seq 0 is delayed one round; in that later round it must sort
        # *before* the fresher seq 2 even though it matured last.
        net = Network(2, injector=FaultPlan(seed=0).delay_message(0).build())
        net.send(0, 1, "a")  # seq 0, delayed
        net.send(0, 1, "b")  # seq 1
        net.deliver()
        assert [m.payload for m in net.receive(1)] == ["b"]
        net.send(0, 1, "c")  # seq 2
        net.deliver()
        assert [m.payload for m in net.receive(1)] == ["a", "c"]

    def test_reliable_exhaustion_still_delivers(self):
        net = self._lossy(drop=1.0)
        net.send(0, 1, "x")
        net.deliver()
        assert len(net.receive(1)) == 1
        assert net.stats.retry_exhausted == 1
        assert net.stats.lost == 0

    def test_unreliable_exhaustion_loses(self):
        net = self._lossy(drop=1.0, reliable=False)
        net.send(0, 1, "x")
        net.deliver()
        assert net.receive(1) == []
        assert net.stats.lost == 1

    def test_send_now_is_lossy_too(self):
        from repro.resilience import FaultPlan

        net = Network(2, injector=FaultPlan(seed=0).duplicate_message(0).build())
        net.send_now(0, 1, "x")
        assert len(net.receive(1)) == 1  # deduplicated immediately

    def test_stats_round_trip_with_retry_fields(self):
        net = self._lossy(drop=0.4, duplicate=0.2)
        for i in range(40):
            net.send(0, 1, i)
        while net.has_pending():
            net.deliver()
            net.receive(1)
        d = net.stats.as_dict()
        for field in ("dropped", "duplicates", "delayed", "lost",
                      "retransmits", "retransmitted_bytes", "retry_exhausted"):
            assert field in d
        merged = CommStats(2).merge(net.stats)
        assert merged.retransmits == net.stats.retransmits
        assert merged.retransmitted_bytes == net.stats.retransmitted_bytes
        assert merged.dropped == net.stats.dropped

    def test_merge_is_additive(self):
        a = self._lossy(drop=0.4)
        b = self._lossy(drop=0.4)
        for net in (a, b):
            for i in range(20):
                net.send(0, 1, i)
            while net.has_pending():
                net.deliver()
                net.receive(1)
        total = a.stats.retransmits + b.stats.retransmits
        assert a.stats.merge(b.stats).retransmits == total

    def test_reset_clears_retry_fields(self):
        net = self._lossy(drop=1.0)
        net.send(0, 1, "x")
        net.deliver()
        net.stats.reset()
        assert net.stats.retransmits == 0
        assert net.stats.retry_exhausted == 0
        assert net.stats.dropped == 0
