"""Tests for the simulated network and traffic accounting."""

import numpy as np
import pytest

from repro.cluster.comm import CommStats, Message, Network, payload_nbytes


class TestPayloadSizing:
    def test_numpy_array_true_bytes(self):
        assert payload_nbytes(np.zeros((3, 4))) == 96

    def test_scalars(self):
        assert payload_nbytes(3) == 8
        assert payload_nbytes(2.5) == 8
        assert payload_nbytes(None) == 1
        assert payload_nbytes(True) == 1

    def test_strings_and_bytes(self):
        assert payload_nbytes("abc") == 3
        assert payload_nbytes(b"abcd") == 4

    def test_containers_sum(self):
        assert payload_nbytes([1, 2, 3]) == 24
        assert payload_nbytes({"a": 1}) == 9
        assert payload_nbytes((1.0, 2.0)) == 16


class TestNetwork:
    def test_bsp_delivery_semantics(self):
        net = Network(2)
        net.send(0, 1, "hello")
        assert net.receive(1) == []  # not delivered yet
        net.deliver()
        msgs = net.receive(1)
        assert len(msgs) == 1
        assert msgs[0].payload == "hello"

    def test_send_now_immediate(self):
        net = Network(2)
        net.send_now(0, 1, 42)
        msgs = net.receive(1)
        assert len(msgs) == 1

    def test_receive_drains(self):
        net = Network(2)
        net.send_now(0, 1, 1)
        assert len(net.receive(1)) == 1
        assert net.receive(1) == []

    def test_local_vs_remote_accounting(self):
        net = Network(2)
        net.send(0, 0, np.zeros(4))
        net.send(0, 1, np.zeros(4))
        assert net.stats.messages_local == 1
        assert net.stats.messages_remote == 1
        assert net.stats.bytes_local == 32
        assert net.stats.bytes_remote == 32

    def test_link_matrix(self):
        net = Network(3)
        net.send(0, 2, None, nbytes=100)
        net.send(2, 0, None, nbytes=50)
        assert net.stats.link_bytes[0, 2] == 100
        assert net.stats.link_bytes[2, 0] == 50
        assert net.stats.link_bytes[0, 1] == 0

    def test_tag_accounting(self):
        net = Network(2)
        net.send(0, 1, None, tag="halo", nbytes=10)
        net.send(0, 1, None, tag="halo", nbytes=5)
        net.send(0, 1, None, tag="grad", nbytes=7)
        assert net.stats.by_tag == {"halo": 15, "grad": 7}

    def test_explicit_nbytes_overrides_estimate(self):
        net = Network(2)
        net.send(0, 1, np.zeros(100), nbytes=1)
        assert net.stats.bytes_remote == 1

    def test_has_pending(self):
        net = Network(2)
        assert not net.has_pending()
        net.send(0, 1, 1)
        assert net.has_pending()
        net.deliver()
        assert net.has_pending()  # sits in inbox
        net.receive(1)
        assert not net.has_pending()

    def test_stats_reset(self):
        net = Network(2)
        net.send(0, 1, None, tag="x", nbytes=9)
        net.stats.reset()
        assert net.stats.total_bytes == 0
        assert net.stats.by_tag == {}
        assert np.all(net.stats.link_bytes == 0)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Network(0)
