"""Tests for link topologies and transfer pricing."""

import numpy as np
import pytest

from repro.cluster.links import (
    LinkTopology,
    ethernet_topology,
    host_of,
    nvlink_topology,
)


class TestTopologies:
    def test_ethernet_uniform(self):
        top = ethernet_topology(4, gbps=10)
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert top.bandwidth[i, j] == pytest.approx(10 / 8)

    def test_nvlink_hierarchy(self):
        top = nvlink_topology(2, 4, nvlink_gbs=300, ethernet_gbps=10)
        assert top.num_devices == 8
        assert top.bandwidth[0, 1] == 300  # same host
        assert top.bandwidth[0, 4] == pytest.approx(10 / 8)  # cross host

    def test_host_of(self):
        assert host_of(0, 4) == 0
        assert host_of(5, 4) == 1

    def test_diagonal_free(self):
        top = ethernet_topology(3)
        assert top.transfer_time(1, 1, 10**9) == 0.0

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            LinkTopology(np.ones((2, 3)))


class TestPricing:
    def test_transfer_time_scales_with_bytes(self):
        top = ethernet_topology(2, gbps=8, latency_us=0)  # 1 GB/s
        assert top.transfer_time(0, 1, 10**9) == pytest.approx(1.0)
        assert top.transfer_time(0, 1, 2 * 10**9) == pytest.approx(2.0)

    def test_latency_added(self):
        top = ethernet_topology(2, gbps=8, latency_us=100)
        t = top.transfer_time(0, 1, 0)
        assert t == pytest.approx(100e-6)

    def test_nvlink_faster_than_ethernet(self):
        top = nvlink_topology(2, 2)
        fast = top.transfer_time(0, 1, 10**8)
        slow = top.transfer_time(0, 2, 10**8)
        assert fast < slow / 10

    def test_price_traffic_sums_offdiagonal(self):
        top = ethernet_topology(2, gbps=8, latency_us=0)
        traffic = np.array([[10**9, 10**9], [0, 0]])
        assert top.price_traffic(traffic) == pytest.approx(1.0)

    def test_bottleneck_is_max(self):
        top = ethernet_topology(3, gbps=8, latency_us=0)
        traffic = np.zeros((3, 3), dtype=np.int64)
        traffic[0, 1] = 10**9
        traffic[1, 2] = 3 * 10**9
        assert top.bottleneck_time(traffic) == pytest.approx(3.0)

    def test_zero_bandwidth_is_infinite(self):
        top = LinkTopology(np.array([[np.inf, 0.0], [0.0, np.inf]]))
        assert top.transfer_time(0, 1, 1) == float("inf")
