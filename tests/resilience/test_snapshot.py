"""Snapshot/SnapshotStore: deep-copy semantics and byte accounting."""

import pickle

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import SnapshotStore


class TestSnapshotStore:
    def test_restore_is_a_deep_copy(self):
        store = SnapshotStore()
        state = {"values": [1, 2, 3]}
        store.save("engine", 0, state)
        state["values"].append(4)  # live state mutates after checkpoint
        restored = store.restore_latest("engine")
        assert restored == {"values": [1, 2, 3]}
        restored["values"].clear()
        assert store.restore_latest("engine") == {"values": [1, 2, 3]}

    def test_latest_per_tag(self):
        store = SnapshotStore()
        store.save("a", 1, "one")
        store.save("a", 2, "two")
        store.save("b", 9, "nine")
        assert store.latest("a").step == 2
        assert store.restore_latest("a") == "two"
        assert store.restore_latest("b") == "nine"
        assert store.tags() == ["a", "b"]
        assert "a" in store and "missing" not in store

    def test_keep_bounds_history(self):
        store = SnapshotStore(keep=2)
        for step in range(5):
            store.save("t", step, step)
        assert len(store._by_tag["t"]) == 2
        assert store.latest("t").step == 4

    def test_missing_tag_raises(self):
        with pytest.raises(KeyError):
            SnapshotStore().restore_latest("nope")

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            SnapshotStore(keep=0)

    def test_byte_accounting(self):
        obs = MetricsRegistry()
        store = SnapshotStore(obs=obs)
        state = {"values": list(range(100))}
        snap = store.save("t", 0, state)
        assert snap.nbytes == len(pickle.dumps(state))
        assert store.checkpoints_taken("t") == 1
        assert store.checkpoint_bytes("t") == snap.nbytes
        store.restore_latest("t")
        assert store.restores("t") == 1
        assert obs.counter("resilience.checkpoints").value(tag="t") == 1

    def test_billed_bytes_override(self):
        # LWCP light checkpoints store the inbox (exact recovery) but
        # bill only the state a real system would persist.
        store = SnapshotStore()
        snap = store.save("t", 0, {"state": [1] * 50, "inbox": [2] * 500},
                          billed_bytes=10)
        assert snap.nbytes > 10  # stored in full
        assert store.checkpoint_bytes("t") == 10  # billed light
