"""RetryPolicy: backoff schedule, deterministic jitter, call()."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import RetryPolicy


class TestSchedule:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.1, multiplier=2.0,
            max_delay=0.5, jitter=0.0,
        )
        assert policy.delays() == [0.1, 0.2, 0.4, 0.5, 0.5]
        assert policy.total_backoff() == pytest.approx(1.7)

    def test_jitter_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.2, seed=3)
        d1 = policy.delay(1, key="msg-7")
        assert 0.08 <= d1 <= 0.12
        assert d1 == RetryPolicy(base_delay=0.1, jitter=0.2, seed=3).delay(
            1, key="msg-7"
        )

    def test_jitter_spreads_keys(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=0)
        delays = {policy.delay(1, key=k) for k in range(32)}
        assert len(delays) > 16  # not a thundering herd

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestCall:
    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "done"

        obs = MetricsRegistry()
        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert policy.call(flaky, obs=obs, op="unit") == "done"
        assert len(attempts) == 3
        assert obs.counter("resilience.retries").value(op="unit") == 2
        assert obs.counter("resilience.backoff_seconds").total > 0

    def test_raises_after_budget(self):
        def always_broken():
            raise OSError("down")

        with pytest.raises(OSError):
            RetryPolicy(max_attempts=3).call(always_broken)

    def test_retry_on_filters_exceptions(self):
        def typed():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            RetryPolicy(max_attempts=5).call(typed, retry_on=(OSError,))

    def test_simulated_sleep_by_default(self):
        calls = []

        def fail_once():
            calls.append(1)
            if len(calls) == 1:
                raise OSError()
            return 1

        slept = []
        policy = RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0)
        # Default: no real sleeping (fast chaos suite) ...
        assert policy.call(fail_once) == 1
        # ... but an explicit sleep hook receives the exact schedule.
        calls.clear()
        assert policy.call(fail_once, sleep=slept.append) == 1
        assert slept == [0.5]
