"""Cross-engine recovery equivalence: every engine run under a fault
plan must reproduce the failure-free run bit-for-bit.

The four recovery paths of the resilience layer (TLAV checkpoint
replay, TLAG task re-queue, executor chunk re-dispatch, GNN snapshot
resume), plus the lossy network and the lambda fleet, all at a fixed
``FaultPlan`` seed.
"""

import numpy as np
import pytest

from repro.cluster.comm import Network
from repro.gnn.models import NodeClassifier
from repro.gnn.serverless import FleetStats, simulate_fleet
from repro.gnn.train import train_full_graph
from repro.graph.generators import barabasi_albert
from repro.matching.triangles import triangle_count
from repro.obs import MetricsRegistry, Tracer
from repro.parallel import ParallelExecutor
from repro.resilience import FaultPlan, RetryPolicy, SnapshotStore
from repro.tlag.engine import TaskEngine
from repro.tlag.programs import TriangleProgram
from repro.tlav.algorithms import BFSProgram, PageRankProgram
from repro.tlav.fault_tolerance import CheckpointedEngine

SEED = 7


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(150, 3, seed=2)


class TestTlavRecovery:
    @pytest.mark.parametrize("mode", ["light", "full"])
    def test_bit_identical_after_replay(self, graph, mode):
        reference = CheckpointedEngine(
            graph, PageRankProgram(iterations=8), checkpoint_interval=3,
            mode=mode,
        ).run()
        obs = MetricsRegistry()
        tracer = Tracer()
        injector = FaultPlan(seed=SEED).fail_superstep(5).build(obs)
        engine = CheckpointedEngine(
            graph, PageRankProgram(iterations=8), checkpoint_interval=3,
            mode=mode, injector=injector, obs=obs, tracer=tracer,
        )
        assert engine.run() == reference
        assert engine.stats.failures == 1
        assert engine.stats.supersteps_replayed >= 1
        spans = tracer.find("resilience.recover")
        assert [s.attrs["engine"] for s in spans] == ["tlav"]
        assert spans[0].attrs["mode"] == mode

    def test_light_bills_less_than_full(self, graph):
        by_mode = {}
        for mode in ("light", "full"):
            obs = MetricsRegistry()
            store = SnapshotStore(obs=obs)
            CheckpointedEngine(
                graph, BFSProgram(source=0), checkpoint_interval=2,
                mode=mode, snapshots=store, obs=obs,
            ).run()
            by_mode[mode] = store.checkpoint_bytes("tlav")
        assert 0 < by_mode["light"] < by_mode["full"]

    def test_snapshot_store_counts_restores(self, graph):
        obs = MetricsRegistry()
        store = SnapshotStore(obs=obs)
        injector = FaultPlan(seed=SEED).fail_superstep(3).build(obs)
        CheckpointedEngine(
            graph, BFSProgram(source=0), checkpoint_interval=2,
            injector=injector, snapshots=store, obs=obs,
        ).run()
        assert store.restores("tlav") == 1


class TestTlagRecovery:
    def test_requeued_tasks_bit_identical(self, graph):
        reference = TaskEngine(
            graph, TriangleProgram(), num_workers=4
        )
        expected = sorted(reference.run())
        obs = MetricsRegistry()
        tracer = Tracer()
        injector = FaultPlan(seed=SEED).fail_task(20).build(obs)
        engine = TaskEngine(
            graph, TriangleProgram(), num_workers=4,
            injector=injector, checkpoint_every=8, obs=obs, tracer=tracer,
        )
        assert sorted(engine.run()) == expected
        assert engine.result_count == reference.result_count
        assert engine.snapshots.restores("tlag") == 1
        assert tracer.find("resilience.recover")[0].attrs["engine"] == "tlag"

    def test_recovery_without_periodic_checkpoints(self, graph):
        # Only the pre-run snapshot exists: recovery restarts the deal.
        expected = sorted(TaskEngine(graph, TriangleProgram(), num_workers=3).run())
        injector = FaultPlan(seed=SEED).fail_task(5).build()
        engine = TaskEngine(
            graph, TriangleProgram(), num_workers=3, injector=injector
        )
        assert sorted(engine.run()) == expected

    def test_repeated_crashes_still_converge(self, graph):
        expected = sorted(TaskEngine(graph, TriangleProgram(), num_workers=4).run())
        injector = (
            FaultPlan(seed=SEED).fail_task(4).fail_task(9).fail_task(30).build()
        )
        engine = TaskEngine(
            graph, TriangleProgram(), num_workers=4,
            injector=injector, checkpoint_every=6,
        )
        assert sorted(engine.run()) == expected
        assert engine.snapshots.restores("tlag") == 3

    def test_checkpoint_cadence_validated(self, graph):
        with pytest.raises(ValueError):
            TaskEngine(graph, TriangleProgram(), checkpoint_every=0)


class TestExecutorRecovery:
    def test_redispatch_matches_serial(self, graph):
        expected = triangle_count(graph)
        obs = MetricsRegistry()
        tracer = Tracer()
        injector = FaultPlan(seed=SEED).crash_worker(chunk=1).build(obs)
        with ParallelExecutor(
            backend="thread", workers=2, obs=obs,
            injector=injector, tracer=tracer,
        ) as executor:
            assert triangle_count(graph, executor=executor) == expected
        assert obs.counter("resilience.redispatched_chunks").total == 1
        assert tracer.find("resilience.recover")[0].attrs["engine"] == "executor"

    def test_process_pool_rebuild(self, graph):
        expected = triangle_count(graph)
        obs = MetricsRegistry()
        injector = FaultPlan(seed=SEED).crash_worker(chunk=0).build(obs)
        with ParallelExecutor(
            backend="process", workers=2, obs=obs, injector=injector
        ) as executor:
            assert triangle_count(graph, executor=executor) == expected
            assert executor.backend == "process"  # rebuilt, not degraded
        assert obs.counter("resilience.pool_failures").total == 1

    def test_degrades_to_thread_after_repeated_losses(self, graph):
        expected = triangle_count(graph)
        obs = MetricsRegistry()
        injector = FaultPlan(seed=SEED).crash_worker(chunk=0, times=2).build(obs)
        with ParallelExecutor(
            backend="process", workers=2, obs=obs,
            injector=injector, max_pool_failures=2,
        ) as executor:
            assert triangle_count(graph, executor=executor) == expected
            assert executor.backend == "thread"
        assert obs.gauge("resilience.degraded").value(to="thread") == 1


class TestGnnRecovery:
    def test_resume_from_snapshot_bit_identical(self, graph):
        rng = np.random.default_rng(0)
        n = graph.num_vertices
        features = rng.normal(size=(n, 8))
        labels = rng.integers(0, 3, size=n)
        mask = np.zeros(n, dtype=bool)
        mask[: n // 2] = True

        def run(injector=None, tracer=None):
            return train_full_graph(
                NodeClassifier(8, 16, 3, seed=5), graph, features, labels,
                mask, ~mask, epochs=10,
                injector=injector, checkpoint_every=4, tracer=tracer,
            )

        reference = run()
        tracer = Tracer()
        injector = FaultPlan(seed=SEED).fail_epoch(6).build()
        recovered = run(injector, tracer)
        assert recovered.losses == reference.losses
        assert recovered.train_accuracy == reference.train_accuracy
        assert recovered.val_accuracy == reference.val_accuracy
        span = tracer.find("resilience.recover")[0]
        assert span.attrs["engine"] == "gnn"
        assert span.attrs["replayed"] == 2  # crash at 6, checkpoint at 4

    def test_cadence_validated(self, graph):
        with pytest.raises(ValueError):
            train_full_graph(
                NodeClassifier(4, 4, 2), graph,
                np.zeros((graph.num_vertices, 4)),
                np.zeros(graph.num_vertices, dtype=int),
                np.ones(graph.num_vertices, dtype=bool),
                epochs=1, checkpoint_every=0,
            )


class TestLossyNetworkEquivalence:
    @staticmethod
    def pump(net, messages=60, workers=4):
        received = []
        for i in range(messages):
            net.send(i % workers, (3 * i + 1) % workers, payload=i, tag="t")
        while net.has_pending():
            net.deliver()
            for w in range(workers):
                received.extend((w, m.seq, m.payload) for m in net.receive(w))
        return received

    def test_reliable_lossy_run_matches_clean(self):
        reference = self.pump(Network(4))
        plan = FaultPlan(seed=SEED).lossy_network(
            drop=0.2, duplicate=0.1, delay=0.1
        )
        lossy = Network(
            4, injector=plan.build(),
            retry=RetryPolicy(max_attempts=4, seed=SEED),
        )
        got = self.pump(lossy)
        # Delayed messages surface in later rounds, so compare the
        # per-worker multiset; dedup + stable seq order make it exact.
        assert sorted(got) == sorted(reference)
        assert lossy.stats.retransmits > 0

    def test_unreliable_without_retry_loses(self):
        plan = FaultPlan(seed=SEED).lossy_network(drop=0.3)
        lossy = Network(4, injector=plan.build(), reliable=False)
        got = self.pump(lossy)
        assert len(got) < 60
        assert lossy.stats.lost > 0


class TestLambdaFleet:
    def test_deterministic_and_lossless(self):
        plan = FaultPlan(seed=SEED).fail_lambda(0.2, straggler=0.1)
        retry = RetryPolicy(max_attempts=3, timeout=0.5, seed=SEED)
        a = simulate_fleet(48, 1.0, 6, injector=plan.build(), retry=retry)
        b = simulate_fleet(48, 1.0, 6, injector=plan.build(), retry=retry)
        assert a.as_dict() == b.as_dict()
        # Every invocation completes exactly once, whatever failed.
        assert a.busy_seconds == pytest.approx(48 * 1.0)

    def test_retry_cures_the_tail(self):
        plan = FaultPlan(seed=SEED).fail_lambda(0.0, straggler=0.2)
        retry = RetryPolicy(max_attempts=4, timeout=0.5, seed=SEED)
        cured = simulate_fleet(48, 1.0, 6, injector=plan.build(), retry=retry)
        uncured = simulate_fleet(48, 1.0, 6, injector=plan.build())
        assert cured.makespan < uncured.makespan
        assert cured.retries > 0

    def test_stats_merge(self):
        a = FleetStats(invocations=2, busy_seconds=2.0, makespan=1.5)
        b = FleetStats(invocations=3, busy_seconds=3.0, makespan=2.5)
        merged = a.merge(b)
        assert merged.invocations == 5
        assert merged.busy_seconds == 5.0
        assert merged.makespan == 2.5
        assert 0 < merged.as_dict()["goodput"] <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fleet(-1, 1.0, 2)
        with pytest.raises(ValueError):
            simulate_fleet(1, 1.0, 0)
