"""FaultPlan/FaultInjector: scheduling, determinism, accounting."""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (
    ENV_FAULT_SEED,
    FaultError,
    FaultInjector,
    FaultPlan,
    resolve_fault_seed,
)


class TestSeedResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_SEED, "9")
        assert resolve_fault_seed(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT_SEED, "42")
        assert resolve_fault_seed() == 42
        assert FaultPlan().seed == 42

    def test_default_zero(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULT_SEED, raising=False)
        assert resolve_fault_seed() == 0


class TestScheduledFaults:
    def test_point_fault_fires_once_then_disarms(self):
        inj = FaultPlan(seed=1).fail_superstep(4).build()
        assert not inj.take_superstep_failure(3)
        assert inj.take_superstep_failure(4)
        assert not inj.take_superstep_failure(4)  # recovered run is safe
        assert inj.faults_injected == 1

    def test_times_budget(self):
        inj = FaultPlan(seed=1).crash_worker(chunk=2, times=3).build()
        fired = sum(inj.take_worker_crash(2) for _ in range(10))
        assert fired == 3

    def test_each_engine_stream_is_independent(self):
        inj = (
            FaultPlan(seed=1)
            .crash_worker(chunk=0)
            .fail_superstep(0)
            .fail_task(0)
            .fail_epoch(0)
            .build()
        )
        assert inj.take_worker_crash(0)
        assert inj.take_superstep_failure(0)
        assert inj.take_task_failure(0)
        assert inj.take_epoch_failure(0)
        assert inj.faults_injected == 4

    def test_arm_on_live_injector(self):
        inj = FaultInjector()
        inj.arm("task_failure", 7)
        assert inj.take_task_failure(7)
        assert not inj.take_task_failure(7)

    def test_counter_labelled_by_kind(self):
        obs = MetricsRegistry()
        inj = FaultPlan(seed=0).fail_task(1).fail_epoch(2).build(obs)
        inj.take_task_failure(1)
        inj.take_epoch_failure(2)
        counter = obs.counter("resilience.faults_injected")
        assert counter.value(kind="task_failure") == 1
        assert counter.value(kind="epoch_failure") == 1


class TestMessageFates:
    def test_scheduled_message_faults(self):
        inj = (
            FaultPlan(seed=3)
            .drop_message(5)
            .duplicate_message(6)
            .delay_message(7, rounds=2)
            .build()
        )
        assert inj.message_fate(5).action == "drop"
        assert inj.message_fate(6).action == "duplicate"
        fate = inj.message_fate(7)
        assert fate.action == "delay" and fate.delay_rounds == 2
        assert inj.message_fate(8).action == "deliver"

    def test_scheduled_faults_spare_retransmissions(self):
        inj = FaultPlan(seed=3).drop_message(5).build()
        assert inj.message_fate(5, attempt=0).action == "drop"
        assert inj.message_fate(5, attempt=1).action == "deliver"

    def test_probabilistic_fates_are_pure(self):
        plan = FaultPlan(seed=11).lossy_network(drop=0.3, duplicate=0.2)
        a, b = plan.build(), plan.build()
        fates_a = [a.message_fate(s).action for s in range(200)]
        fates_b = [b.message_fate(s, attempt=0).action for s in range(200)]
        assert fates_a == fates_b
        assert "drop" in fates_a and "duplicate" in fates_a

    def test_query_order_does_not_matter(self):
        plan = FaultPlan(seed=11).lossy_network(drop=0.3)
        forward = [plan.build().message_fate(s).action for s in range(50)]
        backward = [
            plan.build().message_fate(s).action for s in reversed(range(50))
        ]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        fates = [
            tuple(
                FaultPlan(seed=s).lossy_network(drop=0.5).build().message_fate(k).action
                for k in range(64)
            )
            for s in (0, 1)
        ]
        assert fates[0] != fates[1]

    def test_delay_rounds_bounded(self):
        inj = FaultPlan(seed=2).lossy_network(delay=1.0, max_delay_rounds=3).build()
        for seq in range(100):
            fate = inj.message_fate(seq)
            assert fate.action == "delay"
            assert 1 <= fate.delay_rounds <= 3

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan().lossy_network(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan().fail_lambda(-0.1)


class TestLambdaOutcomes:
    def test_deterministic_and_mixed(self):
        plan = FaultPlan(seed=5).fail_lambda(0.3, straggler=0.2)
        outcomes = [plan.build().lambda_outcome(i) for i in range(200)]
        assert outcomes == [plan.build().lambda_outcome(i) for i in range(200)]
        assert {"ok", "fail", "straggler"} <= set(outcomes)

    def test_attempts_are_independent(self):
        inj = FaultPlan(seed=5).fail_lambda(0.5).build()
        per_attempt = [inj.lambda_outcome(0, attempt=a) for a in range(40)]
        assert "ok" in per_attempt  # retries eventually clear

    def test_no_rates_means_ok(self):
        assert FaultInjector().lambda_outcome(0) == "ok"


class TestPlanIntrospection:
    def test_empty(self):
        assert FaultPlan().empty
        assert not FaultPlan().fail_task(0).empty
        assert not FaultPlan().lossy_network(drop=0.1).empty

    def test_as_dict_round_trip_fields(self):
        plan = FaultPlan(seed=9).fail_task(3, times=2).lossy_network(drop=0.25)
        d = plan.as_dict()
        assert d["seed"] == 9
        assert d["scheduled"] == [
            {"kind": "task_failure", "key": 3, "times": 2}
        ]
        assert d["drop_rate"] == 0.25

    def test_fault_error_carries_context(self):
        err = FaultError("worker_crash", chunk=3)
        assert err.kind == "worker_crash"
        assert err.info == {"chunk": 3}
        assert "worker_crash" in str(err) and "chunk=3" in str(err)
