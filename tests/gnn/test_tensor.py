"""Autograd: every op gradient-checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gnn.tensor import Parameter, Tensor, no_grad


def numeric_gradient(f, x: Parameter, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued f at x."""
    grad = np.zeros_like(x.data)
    it = np.nditer(x.data, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x.data[idx]
        x.data[idx] = orig + eps
        plus = float(f().data)
        x.data[idx] = orig - eps
        minus = float(f().data)
        x.data[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_loss, *params, tol=1e-5):
    for p in params:
        p.zero_grad()
    loss = build_loss()
    loss.backward()
    for p in params:
        numeric = numeric_gradient(build_loss, p)
        assert p.grad is not None
        assert np.abs(numeric - p.grad).max() < tol


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestBasicOps:
    def test_add(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(3, 4)))
        check_gradient(lambda: ((a + b) ** 2).sum(), a, b)

    def test_add_broadcast_bias(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4,)))
        check_gradient(lambda: ((a + b) ** 2).sum(), a, b)

    def test_mul(self, rng):
        a = Parameter(rng.normal(size=(2, 3)))
        b = Parameter(rng.normal(size=(2, 3)))
        check_gradient(lambda: ((a * b) ** 2).sum(), a, b)

    def test_sub_and_neg(self, rng):
        a = Parameter(rng.normal(size=(4,)))
        b = Parameter(rng.normal(size=(4,)))
        check_gradient(lambda: ((a - b) ** 2).sum(), a, b)

    def test_div(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        b = Parameter(rng.normal(size=(3,)) + 3.0)
        check_gradient(lambda: ((a / b) ** 2).sum(), a, b)

    def test_matmul(self, rng):
        a = Parameter(rng.normal(size=(3, 5)))
        b = Parameter(rng.normal(size=(5, 2)))
        check_gradient(lambda: ((a @ b) ** 2).sum(), a, b)

    def test_pow(self, rng):
        a = Parameter(rng.normal(size=(4,)) + 3.0)
        check_gradient(lambda: (a ** 3).sum(), a)

    def test_rsub_radd(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        check_gradient(lambda: ((1.0 - a) ** 2).sum(), a)
        check_gradient(lambda: ((2.0 + a) ** 2).sum(), a)


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        check_gradient(lambda: (a.sum(axis=0) ** 2).sum(), a)
        check_gradient(lambda: (a.sum(axis=1) ** 2).sum(), a)

    def test_mean(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        check_gradient(lambda: (a.mean(axis=1) ** 2).sum(), a)

    def test_max(self, rng):
        a = Parameter(rng.normal(size=(3, 4)))
        check_gradient(lambda: (a.max(axis=1) ** 2).sum(), a)

    def test_reshape(self, rng):
        a = Parameter(rng.normal(size=(2, 6)))
        check_gradient(lambda: (a.reshape(3, 4) ** 2).sum(), a)

    def test_transpose(self, rng):
        a = Parameter(rng.normal(size=(2, 5)))
        check_gradient(lambda: ((a.T @ a) ** 2).sum(), a)

    def test_concat(self, rng):
        a = Parameter(rng.normal(size=(3, 2)))
        b = Parameter(rng.normal(size=(3, 4)))
        check_gradient(lambda: (a.concat(b, axis=1) ** 2).sum(), a, b)


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        ["relu", "sigmoid", "tanh", "exp", "leaky_relu"],
    )
    def test_elementwise(self, op, rng):
        a = Parameter(rng.normal(size=(4, 3)) + 0.1)
        check_gradient(lambda: (getattr(a, op)() ** 2).sum(), a)

    def test_log(self, rng):
        a = Parameter(np.abs(rng.normal(size=(4,))) + 1.0)
        check_gradient(lambda: (a.log() ** 2).sum(), a)

    def test_log_softmax(self, rng):
        a = Parameter(rng.normal(size=(4, 5)))
        check_gradient(lambda: (a.log_softmax(axis=1) ** 2).sum(), a)

    def test_log_softmax_rows_normalize(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        probs = np.exp(a.log_softmax(axis=1).data)
        assert np.allclose(probs.sum(axis=1), 1.0)


class TestGatherScatter:
    def test_gather_rows(self, rng):
        a = Parameter(rng.normal(size=(5, 3)))
        idx = np.array([0, 2, 2, 4])
        check_gradient(lambda: (a.gather_rows(idx) ** 2).sum(), a)

    def test_scatter_add(self, rng):
        a = Parameter(rng.normal(size=(6, 2)))
        idx = np.array([0, 1, 1, 2, 0, 2])
        check_gradient(lambda: (a.scatter_add(idx, 3) ** 2).sum(), a)

    def test_scatter_add_values(self):
        a = Tensor(np.array([[1.0], [2.0], [3.0]]))
        out = a.scatter_add(np.array([0, 0, 1]), 2)
        assert np.allclose(out.data, [[3.0], [3.0]])

    def test_gather_then_scatter_identity_on_permutation(self, rng):
        a = Tensor(rng.normal(size=(4, 2)))
        perm = np.array([2, 0, 3, 1])
        out = a.gather_rows(perm).scatter_add(perm, 4)
        assert np.allclose(out.data, a.data)


class TestCrossEntropy:
    def test_gradient(self, rng):
        x = Parameter(rng.normal(size=(6, 3)))
        y = np.array([0, 1, 2, 0, 1, 2])
        check_gradient(lambda: x.cross_entropy(y), x)

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.eye(3) * 20.0)
        loss = logits.cross_entropy(np.array([0, 1, 2]))
        assert float(loss.data) < 1e-6

    def test_uniform_prediction_log_k(self):
        logits = Tensor(np.zeros((4, 5)))
        loss = logits.cross_entropy(np.array([0, 1, 2, 3]))
        assert float(loss.data) == pytest.approx(np.log(5))


class TestEngineMechanics:
    def test_grad_accumulates_across_uses(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        loss = (a * a).sum() + (a * 2.0).sum()
        loss.backward()
        assert np.allclose(a.grad, 2 * a.data + 2.0)

    def test_zero_grad(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        (a * a).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_backward_twice_accumulates(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        (a * 3.0).sum().backward()
        first = a.grad.copy()
        (a * 3.0).sum().backward()
        assert np.allclose(a.grad, 2 * first)

    def test_no_grad_blocks_graph(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        with no_grad():
            out = (a * a).sum()
        assert out._parents == ()

    def test_detach(self, rng):
        a = Parameter(rng.normal(size=(3,)))
        d = a.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, a.data) or np.allclose(d.data, a.data)

    def test_diamond_dependency(self, rng):
        # a feeds two paths that rejoin: gradient must sum both.
        a = Parameter(np.array([2.0]))
        b = a * 3.0
        c = a * 4.0
        (b + c).sum().backward()
        assert np.allclose(a.grad, [7.0])


class TestScatterMax:
    def test_values(self):
        a = Tensor(np.array([[1.0], [5.0], [3.0], [2.0]]))
        out = a.scatter_max(np.array([0, 0, 1, 1]), 3)
        assert np.allclose(out.data, [[5.0], [3.0], [0.0]])

    def test_empty_bucket_reads_zero(self):
        a = Tensor(np.array([[7.0]]))
        out = a.scatter_max(np.array([1]), 2)
        assert out.data[0, 0] == 0.0
        assert out.data[1, 0] == 7.0

    def test_gradient(self, rng):
        a = Parameter(rng.normal(size=(6, 3)))
        idx = np.array([0, 1, 1, 2, 0, 2])
        check_gradient(lambda: (a.scatter_max(idx, 3) ** 2).sum(), a)

    def test_gradient_goes_to_winner_only(self):
        a = Parameter(np.array([[1.0], [5.0], [3.0]]))
        out = a.scatter_max(np.array([0, 0, 0]), 1)
        out.sum().backward()
        assert np.allclose(a.grad, [[0.0], [1.0], [0.0]])
