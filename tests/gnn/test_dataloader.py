"""The staged mini-batch dataloader: determinism, coverage, accounting.

The load-bearing property is bit-identity: at a fixed seed the loader
emits exactly the batches the legacy ``NeighborSampler.batches`` loop
would — across repeated epochs, and with prefetch on or off — so the
refactored ``train_sampled`` reproduces pre-refactor losses exactly.
"""

import numpy as np
import pytest

from repro.gnn.caching import LRUCache, StaticDegreeCache
from repro.gnn.dataloader import (
    FeatureFetcher,
    InferReport,
    ItemSampler,
    MiniBatchLoader,
    infer_sampled,
)
from repro.gnn.dataloader import _PrefetchIterator
from repro.gnn.layers import GraphTensors
from repro.gnn.models import Adam, NodeClassifier
from repro.gnn.sampling import NeighborSampler
from repro.gnn.tensor import Tensor, no_grad
from repro.gnn.train import train_sampled
from repro.graph.generators import barabasi_albert, planted_partition
from repro.graph.store import build_store
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def task():
    g, labels = planted_partition(3, 25, p_in=0.15, p_out=0.01, seed=1)
    n = g.num_vertices
    rng = np.random.default_rng(0)
    features = np.eye(3)[labels] + rng.normal(0, 1.5, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    return g, labels, features, train_mask, ~train_mask


def _loader(task, **kwargs):
    g, _labels, features, train_mask, _val = task
    kwargs.setdefault("items", np.nonzero(train_mask)[0])
    kwargs.setdefault("batch_size", 8)
    kwargs.setdefault("fanouts", (3, 3))
    kwargs.setdefault("features", features)
    kwargs.setdefault("seed", 0)
    return MiniBatchLoader(g, **kwargs)


class TestItemSampler:
    def test_len_rounds_up_without_drop_last(self):
        assert len(ItemSampler(range(10), 4)) == 3
        assert len(ItemSampler(range(10), 4, drop_last=True)) == 2
        assert len(ItemSampler(range(8), 4)) == 2
        assert len(ItemSampler(range(8), 4, drop_last=True)) == 2

    def test_unshuffled_batches_preserve_order(self):
        sampler = ItemSampler(range(10), 4, shuffle=False)
        batches = list(sampler.batches())
        np.testing.assert_array_equal(np.concatenate(batches), np.arange(10))
        assert [b.size for b in batches] == [4, 4, 2]

    def test_drop_last_discards_remainder(self):
        sampler = ItemSampler(range(10), 4, shuffle=False, drop_last=True)
        batches = list(sampler.batches())
        assert [b.size for b in batches] == [4, 4]

    def test_shuffle_covers_exactly_once(self):
        sampler = ItemSampler(range(11), 3)
        rng = np.random.default_rng(7)
        seen = np.concatenate(list(sampler.batches(rng)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(11))

    def test_shuffle_requires_rng(self):
        with pytest.raises(ValueError):
            list(ItemSampler(range(4), 2).batches())

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            ItemSampler(range(4), 0)


class TestLoaderDeterminism:
    def test_matches_legacy_sampler_loop(self, task):
        g, _labels, _features, train_mask, _val = task
        train_nodes = np.nonzero(train_mask)[0]
        legacy = NeighborSampler(g, (3, 3), seed=0)
        loader = _loader(task)
        for _ in range(2):  # the RNG stream continues across epochs
            legacy_blocks = legacy.batches(train_nodes, 8)
            batches = list(loader.epoch())
            assert len(batches) == len(legacy_blocks)
            for mb, block in zip(batches, legacy_blocks):
                np.testing.assert_array_equal(mb.node_ids, block.node_ids)
                np.testing.assert_array_equal(mb.seed_local, block.seed_local)

    def test_two_loaders_same_seed_identical(self, task):
        a = [mb.node_ids for mb in _loader(task).epoch()]
        b = [mb.node_ids for mb in _loader(task).epoch()]
        assert len(a) == len(b)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_prefetch_does_not_change_batches(self, task):
        plain = _loader(task)
        prefetched = _loader(task, prefetch=3)
        for _ in range(2):
            for mb_p, mb_q in zip(plain.epoch(), prefetched.epoch()):
                np.testing.assert_array_equal(mb_p.seeds, mb_q.seeds)
                np.testing.assert_array_equal(mb_p.node_ids, mb_q.node_ids)
                np.testing.assert_array_equal(mb_p.x, mb_q.x)

    def test_different_seeds_differ(self, task):
        a = next(iter(_loader(task, seed=0).epoch()))
        b = next(iter(_loader(task, seed=1).epoch()))
        assert not np.array_equal(a.seeds, b.seeds)


class TestEpochSemantics:
    def test_every_item_exactly_once_per_epoch(self, task):
        _g, _labels, _features, train_mask, _val = task
        train_nodes = np.nonzero(train_mask)[0]
        loader = _loader(task)
        for _ in range(3):
            seeds = np.concatenate([mb.seeds for mb in loader.epoch()])
            np.testing.assert_array_equal(np.sort(seeds), np.sort(train_nodes))

    def test_remainder_batch_kept_by_default(self, task):
        _g, _labels, _features, train_mask, _val = task
        n_items = int(train_mask.sum())
        batches = list(_loader(task, batch_size=8).epoch())
        assert [mb.seeds.size for mb in batches[:-1]] == [8] * (len(batches) - 1)
        assert batches[-1].seeds.size == n_items - 8 * (len(batches) - 1)

    def test_drop_last_truncates(self, task):
        _g, _labels, _features, train_mask, _val = task
        n_items = int(train_mask.sum())
        assert n_items % 8 != 0  # fixture guards the interesting case
        loader = _loader(task, batch_size=8, drop_last=True)
        batches = list(loader.epoch())
        assert len(batches) == n_items // 8 == len(loader)
        assert all(mb.seeds.size == 8 for mb in batches)

    def test_epoch_indices_advance(self, task):
        loader = _loader(task)
        first = [mb.epoch for mb in loader.epoch()]
        second = [mb.epoch for mb in loader.epoch()]
        assert set(first) == {0} and set(second) == {1}
        assert loader.epochs_run == 2
        assert loader.batches_emitted == len(first) + len(second)


class TestFeatureFetcher:
    def test_rows_match_source_array(self, task):
        _g, _labels, features, _mask, _val = task
        fetcher = FeatureFetcher(features=features)
        ids = np.array([3, 1, 4, 1])
        np.testing.assert_array_equal(fetcher.fetch(ids), features[ids])

    def test_cache_accounting_sums_to_accesses(self, task):
        g, _labels, features, _mask, _val = task
        obs = MetricsRegistry()
        cache = LRUCache(16)
        fetcher = FeatureFetcher(features=features, cache=cache, obs=obs)
        total = 0
        rng = np.random.default_rng(0)
        for _ in range(5):
            ids = rng.integers(0, g.num_vertices, size=20)
            fetcher.fetch(ids)
            total += ids.size
        assert fetcher.hits + fetcher.misses == total
        assert cache.stats.accesses == total
        assert obs.counter("gnn.loader.cache_hits", "").total == fetcher.hits
        assert obs.counter("gnn.loader.cache_misses", "").total == fetcher.misses
        row_bytes = features.shape[1] * features.dtype.itemsize
        assert (
            obs.counter("gnn.loader.bytes_fetched", "").total
            == fetcher.misses * row_bytes
        )

    def test_fetch_without_features_or_handle_rejected(self):
        with pytest.raises(TypeError):
            FeatureFetcher().fetch(np.array([0]))

    def test_fetches_from_stored_feature_shards(self, tmp_path):
        g = barabasi_albert(40, 2, seed=3)
        features = np.random.default_rng(3).normal(size=(40, 4))
        build_store(
            g, tmp_path / "s", partition="hash", num_parts=4,
            features=features, name="s",
        )
        loader = MiniBatchLoader(
            tmp_path / "s", items=np.arange(20), batch_size=8, fanouts=(2, 2),
        )
        for mb in loader.epoch():
            np.testing.assert_allclose(mb.x, features[mb.node_ids])
            # Stored graphs carry a partition assignment, so every
            # batch also knows its exact partition footprint.
            assert mb.partitions is not None and mb.partitions


class TestAccounting:
    def test_schedule_report_shapes(self, task):
        loader = _loader(task)
        for mb in loader.epoch():
            mb.record_compute(0.001)
        sched = loader.schedule_report()
        assert sched["batches"] == len(loader.stage_times) > 0
        assert sched["pipelined"]["makespan"] <= sched["sequential"]["makespan"]
        assert sched["overlap_speedup"] >= 1.0
        assert set(sched["utilization"]) == {"sample", "gather", "compute"}
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in sched["utilization"].values())

    def test_cache_report_mirrors_cache_stats(self, task):
        g = task[0]
        cache = StaticDegreeCache(g, 20)
        loader = _loader(task, cache=cache)
        for _ in loader.epoch():
            pass
        rep = loader.cache_report()
        assert rep["hits"] == cache.stats.hits
        assert rep["misses"] == cache.stats.misses
        assert rep["cache_stats"]["admissions"] == cache.stats.admissions
        assert 0.0 <= rep["hit_rate"] <= 1.0

    def test_loader_obs_counters(self, task):
        obs = MetricsRegistry()
        loader = _loader(task, obs=obs)
        gathered = sum(mb.gathered_nodes for mb in loader.epoch())
        assert obs.counter("gnn.loader.epochs", "").total == 1
        assert (
            obs.counter("gnn.loader.batches", "").total
            == loader.batches_emitted
        )
        assert obs.counter("gnn.loader.gathered_nodes", "").total == gathered

    def test_prefetch_error_surfaces_on_consumer(self):
        def boom():
            yield 1
            raise RuntimeError("producer died")

        it = _PrefetchIterator(boom(), depth=2)
        assert next(it) == 1
        with pytest.raises(RuntimeError, match="producer died"):
            next(it)
        it.close()


def _legacy_losses(task, epochs, batch_size, fanouts, lr, seed):
    """The pre-loader train_sampled inner loop, verbatim."""
    g, labels, features, train_mask, _val = task
    model = NodeClassifier(3, 8, 3, layer="sage", seed=seed)
    sampler = NeighborSampler(g, fanouts, seed=seed)
    optimizer = Adam(model.parameters(), lr=lr)
    train_nodes = np.nonzero(train_mask)[0]
    losses = []
    for _ in range(epochs):
        for block in sampler.batches(train_nodes, batch_size):
            x = Tensor(features[block.node_ids])
            optimizer.zero_grad()
            logits = model(block.tensors(), x)
            loss = logits.gather_rows(block.seed_local).cross_entropy(
                labels[block.node_ids[block.seed_local]]
            )
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
    return losses


class TestTrainSampledBitIdentity:
    EPOCHS, BATCH, FANOUTS, LR, SEED = 3, 8, (3, 3), 0.02, 0

    def _train(self, task, **kwargs):
        g, labels, features, train_mask, val_mask = task
        model = NodeClassifier(3, 8, 3, layer="sage", seed=self.SEED)
        return train_sampled(
            model, g, features, labels, train_mask, val_mask,
            epochs=self.EPOCHS, batch_size=self.BATCH, fanouts=self.FANOUTS,
            lr=self.LR, seed=self.SEED, **kwargs,
        )

    def test_losses_match_legacy_loop_exactly(self, task):
        legacy = _legacy_losses(
            task, self.EPOCHS, self.BATCH, self.FANOUTS, self.LR, self.SEED
        )
        assert self._train(task).losses == legacy

    def test_prefetch_preserves_losses(self, task):
        assert self._train(task, prefetch=3).losses == self._train(task).losses

    def test_full_eval_path_preserves_losses(self, task):
        # The sampled-eval RNG stream is separate from the training
        # stream, so switching eval modes cannot perturb the losses.
        assert (
            self._train(task, full_eval=True).losses
            == self._train(task).losses
        )

    def test_sampled_eval_records_accuracies(self, task):
        report = self._train(task)
        assert len(report.val_accuracy) == self.EPOCHS
        assert len(report.train_accuracy) == self.EPOCHS
        assert all(0.0 <= a <= 1.0 for a in report.val_accuracy)

    def test_external_loader_reused(self, task):
        g, _labels, features, train_mask, _val = task
        loader = _loader(task, batch_size=self.BATCH, seed=self.SEED)
        report = self._train(task, loader=loader)
        assert loader.epochs_run == self.EPOCHS
        assert report.steps == self.EPOCHS * len(loader)
        # The trainer fed its compute seconds back into the loader.
        assert any(t.compute > 0 for t in loader.stage_times)


class TestInferSampled:
    def test_deterministic_at_fixed_seed(self, task):
        g, _labels, features, _mask, _val = task
        model = NodeClassifier(3, 8, 3, layer="sage", seed=0)
        a = infer_sampled(model, g, features=features, seed=5)
        b = infer_sampled(model, g, features=features, seed=5)
        np.testing.assert_array_equal(a, b)
        assert a.size == g.num_vertices

    def test_full_fanout_matches_full_forward(self, task):
        g, _labels, features, _mask, _val = task
        model = NodeClassifier(3, 8, 3, layer="sage", seed=0)
        nodes = np.arange(0, g.num_vertices, 3)
        sampled = infer_sampled(
            model, g, features=features, nodes=nodes, fanouts=(-1, -1)
        )
        with no_grad():
            logits = model(GraphTensors(g), Tensor(features)).data
        np.testing.assert_array_equal(sampled, np.argmax(logits[nodes], axis=1))

    def test_report_accounts_cost_and_touched(self, task):
        g, _labels, features, _mask, _val = task
        model = NodeClassifier(3, 8, 3, layer="sage", seed=0)
        nodes = np.array([0, 5, 10, 15])
        rep = InferReport()
        infer_sampled(
            model, g, features=features, nodes=nodes, batch_size=2,
            fanouts=(2, 2), report=rep,
        )
        assert rep.batches == 2
        assert rep.seeds == nodes.size
        assert rep.messages > 0
        assert rep.gathered_features >= nodes.size
        assert set(nodes) <= set(rep.touched.tolist())
