"""GNN layers: shapes, math, and end-to-end gradients."""

import numpy as np
import pytest

from repro.gnn.layers import (
    GATLayer,
    GCNLayer,
    GraphTensors,
    Linear,
    Module,
    SAGELayer,
)
from repro.gnn.tensor import Parameter, Tensor
from repro.graph.csr import Graph
from repro.graph.generators import complete_graph, path_graph


@pytest.fixture
def rng():
    return np.random.default_rng(11)


@pytest.fixture
def gt(small_er):
    return GraphTensors(small_er)


class TestGraphTensors:
    def test_message_count(self, small_er):
        gt = GraphTensors(small_er, add_self_loops=False)
        assert gt.num_messages == 2 * small_er.num_edges

    def test_self_loops_added(self, small_er):
        gt = GraphTensors(small_er, add_self_loops=True)
        assert gt.num_messages == 2 * small_er.num_edges + small_er.num_vertices

    def test_gcn_norm_symmetric(self):
        g = path_graph(3)
        gt = GraphTensors(g, add_self_loops=False)
        # Edge (0,1): deg0=1, deg1=2 -> norm = 1/sqrt(2).
        for e in range(gt.num_messages):
            u, v = int(gt.src[e]), int(gt.dst[e])
            expected = 1.0 / np.sqrt(gt.in_degree[u] * gt.in_degree[v])
            assert gt.gcn_norm[e, 0] == pytest.approx(expected)

    def test_in_degree_no_zeros(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        gt = GraphTensors(g, add_self_loops=False)
        assert np.all(gt.in_degree > 0)  # isolated vertex guarded


class TestLinear:
    def test_shapes_and_grad(self, rng):
        layer = Linear(4, 3, rng)
        x = Tensor(rng.normal(size=(5, 4)))
        out = layer(x)
        assert out.shape == (5, 3)
        (out ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestGCNLayer:
    def test_output_shape(self, gt, rng, small_er):
        layer = GCNLayer(6, 4, rng)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 6)))
        out = layer(gt, h)
        assert out.shape == (small_er.num_vertices, 4)

    def test_constant_signal_preserved_on_regular_graph(self, rng):
        # On a complete graph with self-loops, aggregating a constant
        # vector returns the same constant (symmetric normalization).
        g = complete_graph(5)
        gt = GraphTensors(g, add_self_loops=True)
        layer = GCNLayer(2, 2, rng)
        layer.weight.data = np.eye(2)
        layer.bias.data = np.zeros(2)
        h = Tensor(np.ones((5, 2)))
        out = layer(gt, h)
        assert np.allclose(out.data, 1.0)

    def test_gradients_flow_to_weights(self, gt, rng, small_er):
        layer = GCNLayer(3, 2, rng)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 3)))
        loss = (layer(gt, h) ** 2).sum()
        loss.backward()
        assert np.abs(layer.weight.grad).max() > 0


class TestSAGELayer:
    def test_output_shape(self, gt, rng, small_er):
        layer = SAGELayer(6, 4, rng)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 6)))
        assert layer(gt, h).shape == (small_er.num_vertices, 4)

    def test_mean_aggregation_math(self, rng):
        # Path 0-1-2 without self loops: neighbor mean of v1 is avg(h0, h2).
        g = path_graph(3)
        gt = GraphTensors(g, add_self_loops=False)
        layer = SAGELayer(1, 1, rng)
        layer.weight.data = np.array([[0.0], [1.0]])  # pick the mean part
        layer.bias.data = np.zeros(1)
        h = Tensor(np.array([[1.0], [5.0], [3.0]]))
        out = layer(gt, h)
        assert out.data[1, 0] == pytest.approx(2.0)  # (1 + 3) / 2
        assert out.data[0, 0] == pytest.approx(5.0)

    def test_self_features_used(self, rng):
        g = path_graph(3)
        gt = GraphTensors(g, add_self_loops=False)
        layer = SAGELayer(1, 1, rng)
        layer.weight.data = np.array([[1.0], [0.0]])  # pick the self part
        layer.bias.data = np.zeros(1)
        h = Tensor(np.array([[1.0], [5.0], [3.0]]))
        out = layer(gt, h)
        assert np.allclose(out.data, h.data)


class TestGATLayer:
    def test_output_shape(self, gt, rng, small_er):
        layer = GATLayer(6, 4, rng)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 6)))
        assert layer(gt, h).shape == (small_er.num_vertices, 4)

    def test_attention_weights_normalized(self, rng, small_er):
        # Aggregating a constant value with normalized attention returns
        # the constant.
        gt = GraphTensors(small_er, add_self_loops=True)
        layer = GATLayer(2, 2, rng)
        h = Tensor(np.ones((small_er.num_vertices, 2)))
        z_const = (h @ layer.weight).data[0]
        out = layer(gt, h)
        assert np.allclose(out.data, z_const, atol=1e-9)

    def test_gradients_flow_to_attention(self, gt, rng, small_er):
        layer = GATLayer(3, 2, rng)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 3)))
        (layer(gt, h) ** 2).sum().backward()
        assert layer.attn_src.grad is not None
        assert np.abs(layer.attn_src.grad).max() > 0


class TestModule:
    def test_parameter_discovery(self, rng):
        class Net(Module):
            def __init__(self):
                self.a = Linear(2, 3, rng)
                self.b = [Linear(3, 4, rng), Linear(4, 5, rng)]
                self.w = Parameter(np.zeros(3))

        net = Net()
        # 2 per Linear (w, b) * 3 + standalone = 7
        assert len(net.parameters()) == 7

    def test_state_dict_round_trip(self, rng):
        layer = Linear(3, 2, rng)
        state = layer.state_dict()
        layer.weight.data += 1.0
        layer.load_state_dict(state)
        assert np.allclose(layer.weight.data, state[0])

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        (layer(x) ** 2).sum().backward()
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())


class TestGINLayer:
    def test_output_shape(self, gt, rng, small_er):
        from repro.gnn.layers import GINLayer

        layer = GINLayer(6, 4, rng)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 6)))
        assert layer(gt, h).shape == (small_er.num_vertices, 4)

    def test_sum_aggregation_math(self, rng):
        from repro.gnn.layers import GINLayer

        # Identity MLP exposes the raw (1+eps)h + sum aggregation.
        g = path_graph(3)
        gt = GraphTensors(g, add_self_loops=False)
        layer = GINLayer(1, 1, rng, eps=0.0)
        layer.w1.data = np.array([[1.0]])
        layer.b1.data = np.zeros(1)
        layer.w2.data = np.array([[1.0]])
        layer.b2.data = np.zeros(1)
        h = Tensor(np.array([[1.0], [2.0], [4.0]]))
        out = layer(gt, h)
        # v1: (1+0)*2 + (1 + 4) = 7 (inputs positive, ReLU transparent)
        assert out.data[1, 0] == pytest.approx(7.0)
        assert out.data[0, 0] == pytest.approx(1.0 + 2.0)

    def test_gradients_flow_including_eps(self, gt, rng, small_er):
        from repro.gnn.layers import GINLayer

        layer = GINLayer(3, 2, rng, eps=0.1)
        h = Tensor(rng.normal(size=(small_er.num_vertices, 3)))
        (layer(gt, h) ** 2).sum().backward()
        assert layer.eps.grad is not None
        assert layer.w1.grad is not None

    def test_trains_on_communities(self):
        import numpy as np
        from repro.gnn.models import NodeClassifier
        from repro.gnn.train import train_full_graph
        from repro.graph.generators import planted_partition

        g, labels = planted_partition(3, 25, 0.2, 0.01, seed=1)
        n = g.num_vertices
        rng = np.random.default_rng(0)
        features = np.eye(3)[labels] + rng.normal(0, 1.5, size=(n, 3))
        train_mask = np.zeros(n, dtype=bool)
        train_mask[rng.permutation(n)[:40]] = True
        model = NodeClassifier(3, 16, 3, layer="gin", seed=0)
        report = train_full_graph(
            model, g, features, labels, train_mask, ~train_mask,
            epochs=30, lr=0.02,
        )
        assert report.losses[-1] < report.losses[0]
        assert report.final_val_accuracy > 0.5
