"""The DistDGL pipeline: partition x sampling x cache, composed."""

import numpy as np
import pytest

from repro.gnn.distributed_sampled import DistributedSampledTrainer
from repro.gnn.models import NodeClassifier
from repro.graph.generators import planted_partition
from repro.graph.partition import hash_partition, metis_like_partition


@pytest.fixture(scope="module")
def task():
    g, labels = planted_partition(4, 30, p_in=0.14, p_out=0.01, seed=10)
    n = g.num_vertices
    rng = np.random.default_rng(3)
    features = np.eye(4)[labels] + rng.normal(0, 1.2, size=(n, 4))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[: n // 2]] = True
    return g, labels, features, train_mask, ~train_mask


def _trainer(task, partition, cache=0, policy="degree", seed=1):
    g, labels, features, *_ = task
    return DistributedSampledTrainer(
        NodeClassifier(4, 16, 4, layer="sage", seed=0), g, partition,
        features, labels, fanouts=(4, 4), batch_size=16, lr=0.05,
        cache_capacity=cache, cache_policy=policy, seed=seed,
    )


class TestLearning:
    def test_learns_communities(self, task):
        g, labels, features, train_mask, val_mask = task
        trainer = _trainer(task, hash_partition(g, 4))
        report = trainer.train(train_mask, val_mask, epochs=6)
        assert report.losses[-1] < report.losses[0]
        assert report.final_val_accuracy > 0.5

    def test_single_worker_no_remote_rows(self, task):
        g, labels, features, train_mask, _ = task
        trainer = _trainer(task, hash_partition(g, 1))
        trainer.train(train_mask, epochs=2)
        assert trainer.remote_rows == 0
        assert trainer.feature_bytes == 0
        assert trainer.local_rows > 0


class TestTrafficComposition:
    def test_partitioning_cuts_feature_bytes(self, task):
        g, *_ = task
        _, _, _, train_mask, _ = task
        hashed = _trainer(task, hash_partition(g, 4))
        hashed.train(train_mask, epochs=3)
        metis = _trainer(task, metis_like_partition(g, 4, seed=0))
        metis.train(train_mask, epochs=3)
        assert metis.feature_bytes < hashed.feature_bytes

    def test_cache_cuts_feature_bytes(self, task):
        g, *_ = task
        _, _, _, train_mask, _ = task
        partition = metis_like_partition(g, 4, seed=0)
        plain = _trainer(task, partition, cache=0)
        plain.train(train_mask, epochs=3)
        cached = _trainer(task, partition, cache=40)
        cached.train(train_mask, epochs=3)
        assert cached.feature_bytes < plain.feature_bytes
        assert cached.cache_hit_rate > 0.1
        assert plain.cache_hit_rate == 0.0

    def test_lru_policy_supported(self, task):
        g, *_ = task
        _, _, _, train_mask, _ = task
        trainer = _trainer(
            task, hash_partition(g, 4), cache=40, policy="lru"
        )
        trainer.train(train_mask, epochs=2)
        assert trainer.cache_hits >= 0

    def test_unknown_policy_rejected(self, task):
        g, *_ = task
        with pytest.raises(ValueError):
            _trainer(task, hash_partition(g, 4), cache=10, policy="random")

    def test_rows_accounted_exhaustively(self, task):
        g, *_ = task
        _, _, _, train_mask, _ = task
        trainer = _trainer(task, hash_partition(g, 4), cache=40)
        report = trainer.train(train_mask, epochs=2)
        touched = trainer.local_rows + trainer.cache_hits + trainer.remote_rows
        assert touched == report.gathered_features
