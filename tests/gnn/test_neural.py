"""Neural subgraph matching/counting and Subgraph-GNN expressiveness."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import erdos_renyi
from repro.gnn.activation_compression import (
    activation_memory,
    train_compressed,
)
from repro.gnn.models import NodeClassifier
from repro.gnn.neural_matching import (
    NeuralMatcher,
    contains_exact,
    make_training_pairs,
)
from repro.gnn.subgraph_gnn import (
    PlainGraphGNN,
    SubgraphGNN,
    evaluate,
    train_graph_classifier,
    wl_colors,
    wl_indistinguishable,
)
from repro.gnn.train import train_full_graph
from repro.graph.generators import planted_partition
from repro.matching.pattern import PatternGraph, triangle_pattern


@pytest.fixture(scope="module")
def trained_matcher():
    pairs = make_training_pairs(24, target_size=12, pattern_size=4, seed=3)
    matcher = NeuralMatcher(dim=12, hidden=16, seed=0)
    losses = matcher.fit(pairs, epochs=15, lr=0.02)
    return matcher, pairs, losses


class TestTrainingPairs:
    def test_labels_are_exact(self):
        pairs = make_training_pairs(10, seed=1)
        for pattern, target, label in pairs:
            truth = contains_exact(target, PatternGraph(pattern))
            assert truth == bool(label)

    def test_both_classes_present(self):
        pairs = make_training_pairs(10, seed=2)
        labels = {label for *_, label in pairs}
        assert labels == {0, 1}


class TestNeuralMatcher:
    def test_loss_decreases(self, trained_matcher):
        _, _, losses = trained_matcher
        assert losses[-1] < losses[0]

    def test_training_accuracy(self, trained_matcher):
        """The [61] claim shape: order embeddings learn containment."""
        matcher, pairs, _ = trained_matcher
        correct = sum(
            1
            for pattern, target, label in pairs
            if matcher.predict_contains(pattern, target) == bool(label)
        )
        assert correct / len(pairs) >= 0.75

    def test_generalizes_to_fresh_pairs(self, trained_matcher):
        matcher, _, _ = trained_matcher
        fresh = make_training_pairs(16, target_size=12, pattern_size=4, seed=77)
        correct = sum(
            1
            for pattern, target, label in fresh
            if matcher.predict_contains(pattern, target) == bool(label)
        )
        assert correct / len(fresh) >= 0.6  # above chance, far from exact

    def test_violation_nonnegative(self, trained_matcher):
        matcher, pairs, _ = trained_matcher
        for pattern, target, _ in pairs[:5]:
            assert matcher.violation(pattern, target) >= 0.0

    def test_count_regressor_correlates(self, trained_matcher):
        """The [40] claim shape: embeddings predict match counts."""
        matcher, _, _ = trained_matcher
        graphs = [erdos_renyi(14, p, seed=s) for s in range(12)
                  for p in (0.1, 0.3, 0.5)]
        pattern = triangle_pattern()
        matcher.fit_count(graphs, pattern)
        from repro.matching.backtrack import count_matches

        truth = np.array([count_matches(g, pattern) for g in graphs], float)
        approx = np.array([matcher.count_estimate(g) for g in graphs])
        corr = np.corrcoef(truth, approx)[0, 1]
        assert corr > 0.8

    def test_count_before_fit_raises(self):
        matcher = NeuralMatcher(seed=1)
        with pytest.raises(RuntimeError):
            matcher.count_estimate(erdos_renyi(8, 0.3, seed=0))


@pytest.fixture(scope="module")
def wl_counterexample():
    c6 = Graph.from_edges([(i, (i + 1) % 6) for i in range(6)])
    two_triangles = Graph.from_edges(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    )
    return c6, two_triangles


class TestExpressiveness:
    def test_counterexample_is_wl_indistinguishable(self, wl_counterexample):
        c6, two_triangles = wl_counterexample
        assert wl_indistinguishable(c6, two_triangles)

    def test_wl_distinguishes_easy_pair(self):
        path = Graph.from_edges([(0, 1), (1, 2)])
        star = Graph.from_edges([(0, 1), (0, 2)])
        # Same degree multiset {1,1,2}? path: 1,2,1; star: 2,1,1 — same!
        # One WL round separates them anyway? They are isomorphic, so no.
        assert wl_indistinguishable(path, star)  # isomorphic graphs

        square = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        triangle_plus = Graph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert wl_colors(square) != wl_colors(triangle_plus)

    def test_plain_gcn_cannot_separate(self, wl_counterexample):
        """1-WL bound, demonstrated: logits are bit-identical."""
        c6, two_triangles = wl_counterexample
        model = PlainGraphGNN(seed=0)
        from repro.gnn.tensor import no_grad

        with no_grad():
            a = model.logits(c6).data
            b = model.logits(two_triangles).data
        assert np.allclose(a, b)
        train_graph_classifier(model, [c6, two_triangles], [0, 1],
                               epochs=60, lr=0.05)
        assert evaluate(model, [c6, two_triangles], [0, 1]) == 0.5

    def test_subgraph_gnn_separates(self, wl_counterexample):
        """The [5, 12] claim: subgraph bags exceed 1-WL."""
        c6, two_triangles = wl_counterexample
        model = SubgraphGNN(seed=0)
        train_graph_classifier(model, [c6, two_triangles], [0, 1],
                               epochs=150, lr=0.05)
        assert evaluate(model, [c6, two_triangles], [0, 1]) == 1.0


class TestActivationCompression:
    @pytest.fixture(scope="class")
    def task(self):
        g, labels = planted_partition(3, 20, 0.2, 0.01, seed=4)
        n = g.num_vertices
        rng = np.random.default_rng(0)
        features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
        train_mask = np.zeros(n, dtype=bool)
        train_mask[rng.permutation(n)[:30]] = True
        return g, labels, features, train_mask, ~train_mask

    def test_exact_recompute_matches_plain_training(self, task):
        g, labels, features, train_mask, val_mask = task
        ref = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, epochs=6, lr=0.05,
        )
        out = train_compressed(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, bits=None, epochs=6, lr=0.05,
        )
        assert np.allclose(ref.losses, out.report.losses)
        assert out.memory_ratio == 1.0

    def test_low_bit_saves_memory(self, task):
        """The EXACT claim: extreme activation compression."""
        g, labels, features, train_mask, val_mask = task
        out = train_compressed(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, bits=2, epochs=15, lr=0.05,
        )
        assert out.memory_ratio < 0.5
        assert out.activation_bytes_exact == activation_memory(
            g, [3, 8]
        )

    def test_low_bit_still_learns(self, task):
        g, labels, features, train_mask, val_mask = task
        out = train_compressed(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, bits=2, epochs=25, lr=0.05,
        )
        assert out.report.losses[-1] < out.report.losses[0]
        assert out.report.final_val_accuracy > 0.6

    def test_more_bits_closer_to_exact(self, task):
        g, labels, features, train_mask, val_mask = task
        ref = train_compressed(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, bits=None, epochs=10, lr=0.05,
        )
        errors = []
        for bits in (2, 8):
            out = train_compressed(
                NodeClassifier(3, 8, 3, seed=0), g, features, labels,
                train_mask, val_mask, bits=bits, epochs=10, lr=0.05,
            )
            errors.append(
                abs(out.report.final_loss - ref.report.final_loss)
            )
        assert errors[1] <= errors[0]
