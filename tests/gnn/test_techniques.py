"""Table-2 technique modules: pipeline, P3, caching, quantization,
comm planning, serverless economics, host offload."""

import numpy as np
import pytest

from repro.cluster.links import ethernet_topology, nvlink_topology
from repro.gnn.caching import (
    LRUCache,
    StaticDegreeCache,
    access_trace_from_sampling,
    replay,
)
from repro.gnn.comm_plan import (
    flat_broadcast_time,
    flat_ring_allreduce_time,
    hierarchical_allreduce_time,
    hierarchical_broadcast_time,
)
from repro.gnn.offload import (
    DeviceMemoryExceeded,
    naive_footprint,
    plan_offload,
)
from repro.gnn.p3 import (
    data_parallel_bytes_per_step,
    p3_bytes_per_step,
    partial_aggregation,
    shard_columns,
)
from repro.gnn.pipeline import (
    StageTimes,
    measured_stage_times,
    pipelined_schedule,
    sequential_schedule,
    two_level_schedule,
)
from repro.gnn.quantization import (
    ErrorCompensatedQuantizer,
    compressed_nbytes,
    dequantize,
    quantize,
    quantize_dequantize,
)
from repro.gnn.serverless import Workload, estimate_costs
from repro.graph.generators import barabasi_albert


class TestPipeline:
    def test_pipelining_beats_sequential(self):
        batches = measured_stage_times(30, seed=0)
        seq = sequential_schedule(batches)
        pipe = pipelined_schedule(batches)
        assert pipe.makespan < seq.makespan * 0.6

    def test_pipeline_bounded_by_bottleneck(self):
        batches = [StageTimes(1.0, 2.0, 0.5)] * 50
        pipe = pipelined_schedule(batches)
        # Steady state: one gather (the bottleneck) per batch.
        assert pipe.makespan == pytest.approx(1.0 + 50 * 2.0 + 0.5, rel=0.05)

    def test_two_level_helps_when_sampling_dominates(self):
        batches = [StageTimes(3.0, 1.0, 1.0)] * 40
        single = pipelined_schedule(batches)
        dual = two_level_schedule(batches, samplers=3)
        assert dual.makespan < single.makespan * 0.6

    def test_two_level_no_gain_when_sampling_cheap(self):
        batches = [StageTimes(0.1, 1.0, 2.0)] * 40
        single = pipelined_schedule(batches)
        dual = two_level_schedule(batches, samplers=4)
        assert dual.makespan == pytest.approx(single.makespan, rel=0.05)

    def test_utilization_improves(self):
        batches = measured_stage_times(30, seed=1)
        seq = sequential_schedule(batches)
        pipe = pipelined_schedule(batches)
        assert pipe.mean_utilization > seq.mean_utilization

    def test_busy_time_conserved(self):
        batches = measured_stage_times(20, seed=2)
        seq = sequential_schedule(batches)
        pipe = pipelined_schedule(batches)
        for stage in ("sample", "gather", "compute"):
            assert seq.busy[stage] == pytest.approx(pipe.busy[stage])


class TestP3:
    def test_shards_partition_columns(self):
        shards = shard_columns(10, 3)
        all_cols = np.concatenate(shards)
        assert sorted(all_cols.tolist()) == list(range(10))

    def test_partial_aggregation_exact(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 16))
        w = rng.normal(size=(16, 4))
        full, partials = partial_aggregation(x, w, 4)
        assert len(partials) == 4
        assert np.allclose(full, x @ w)
        assert np.allclose(sum(partials), x @ w)

    def test_crossover_in_feature_width(self):
        """The C11 claim: P3 wins iff raw features are wide."""
        p3 = p3_bytes_per_step(64, 600, hidden_dim=32, num_workers=4)
        narrow_dp = data_parallel_bytes_per_step(64, 600, in_dim=8)
        wide_dp = data_parallel_bytes_per_step(64, 600, in_dim=256)
        assert p3.total > narrow_dp.total
        assert p3.total < wide_dp.total

    def test_p3_traffic_independent_of_feature_width(self):
        a = p3_bytes_per_step(64, 600, hidden_dim=32, num_workers=4)
        assert a.feature_fetch == 0


class TestCaching:
    @pytest.fixture(scope="class")
    def trace(self):
        g = barabasi_albert(400, 4, seed=1)
        return g, access_trace_from_sampling(
            g, list(range(0, 400, 4)), fanouts=(5, 5), batch_size=20,
            epochs=2, seed=0,
        )

    def test_degree_cache_hit_rate_grows_with_capacity(self, trace):
        g, accesses = trace
        rates = [
            replay(accesses, StaticDegreeCache(g, cap)).hit_rate
            for cap in (10, 50, 200)
        ]
        assert rates[0] < rates[1] < rates[2]

    def test_zero_capacity_no_hits(self, trace):
        g, accesses = trace
        assert replay(accesses, StaticDegreeCache(g, 0)).hit_rate == 0.0
        assert replay(accesses, LRUCache(0)).hit_rate == 0.0

    def test_degree_cache_beats_lru_on_powerlaw(self, trace):
        """AliGraph's bet: static importance caching wins under skew."""
        g, accesses = trace
        degree_rate = replay(accesses, StaticDegreeCache(g, 50)).hit_rate
        lru_rate = replay(accesses, LRUCache(50)).hit_rate
        assert degree_rate > lru_rate

    def test_lru_exploits_recency(self):
        cache = LRUCache(2)
        assert not cache.lookup(1)
        assert cache.lookup(1)
        assert not cache.lookup(2)
        assert not cache.lookup(3)  # evicts 1
        assert not cache.lookup(1)

    def test_bytes_accounting(self, trace):
        g, accesses = trace
        report = replay(accesses, StaticDegreeCache(g, 100), feature_dim=64)
        total = report.bytes_fetched + report.bytes_saved
        assert total == len(accesses) * 64 * 8


class TestCacheAccounting:
    """Regression: caches keep their own books and replay audits them.

    Pre-fix neither cache tracked its own hits/misses, so ``replay``'s
    external tally was unverifiable and accounting bugs were invisible.
    Pinned in the differential corpus as ``gnn-lru-accounting.json``.
    """

    @pytest.fixture(scope="class")
    def trace(self):
        g = barabasi_albert(400, 4, seed=1)
        return g, access_trace_from_sampling(
            g, list(range(0, 400, 4)), fanouts=(5, 5), batch_size=20,
            epochs=2, seed=0,
        )

    def test_lru_stats_match_replayed_counts(self):
        cache = LRUCache(2)
        trace = [1, 1, 2, 3, 1, 3, 3]
        report = replay(trace, cache)
        assert cache.stats.hits == report.hits
        assert cache.stats.accesses == len(trace)
        assert cache.stats.admissions == cache.stats.evictions + len(
            cache._entries
        )

    def test_zero_capacity_lru_counts_misses(self):
        cache = LRUCache(0)
        replay([1, 2, 3], cache)
        assert cache.stats.misses == 3
        assert cache.stats.admissions == 0 and cache.stats.evictions == 0

    def test_static_cache_stats(self, trace):
        g, accesses = trace
        cache = StaticDegreeCache(g, 50)
        assert cache.stats.admissions == 50
        report = replay(accesses, cache)
        assert cache.stats.hits == report.hits
        assert cache.stats.evictions == 0  # pinned contents never change

    def test_bytes_saved_backed_by_cache_books(self, trace):
        g, accesses = trace
        cache = StaticDegreeCache(g, 100)
        report = replay(accesses, cache, feature_dim=32)
        assert report.bytes_saved == cache.stats.hits * 32 * 8

    def test_replay_detects_accounting_drift(self):
        class LyingCache(LRUCache):
            def lookup(self, vertex):
                hit = super().lookup(vertex)
                self.stats.hits += 1  # cook the books
                return hit

        with pytest.raises(RuntimeError, match="accounting drift"):
            replay([1, 2, 1, 2], LyingCache(4))

    def test_stats_snapshot_is_independent(self):
        cache = LRUCache(4)
        snap = cache.stats.snapshot()
        cache.lookup(1)
        assert snap.accesses == 0 and cache.stats.accesses == 1

class TestQuantization:
    def test_round_trip_error_bounded_by_step(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(20, 32))
        for bits in (2, 4, 8):
            codes, lo, scale = quantize(x, bits)
            recon = dequantize(codes, lo, scale)
            assert np.abs(recon - x).max() <= scale.max() / 2 + 1e-12

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(10, 64))
        errors = [
            np.abs(quantize_dequantize(x, bits) - x).max()
            for bits in (1, 2, 4, 8)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_stochastic_rounding_unbiased(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 8))
        total = np.zeros_like(x)
        n = 400
        for i in range(n):
            total += quantize_dequantize(
                x, 2, rng=np.random.default_rng(1000 + i)
            )
        assert np.abs(total / n - x).max() < 0.15

    def test_constant_rows_exact(self):
        x = np.full((3, 5), 2.5)
        assert np.allclose(quantize_dequantize(x, 1), x)

    def test_compressed_bytes_smaller(self):
        shape = (100, 64)
        fp64 = 100 * 64 * 8
        assert compressed_nbytes(shape, 8) < fp64 / 4
        assert compressed_nbytes(shape, 1) < compressed_nbytes(shape, 8)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            quantize(np.ones((2, 2)), 0)

    def test_error_feedback_time_average_unbiased(self):
        """EC-Graph's property: the residual carries over and cancels."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 16))
        q = ErrorCompensatedQuantizer(bits=1)
        acc = np.zeros_like(x)
        n = 300
        for _ in range(n):
            acc += q.compress(x)
        assert np.abs(acc / n - x).max() < 0.05

    def test_error_feedback_beats_plain_low_bit(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(8, 16))
        q = ErrorCompensatedQuantizer(bits=1)
        acc_ef = np.zeros_like(x)
        acc_plain = np.zeros_like(x)
        n = 200
        for _ in range(n):
            acc_ef += q.compress(x)
            acc_plain += quantize_dequantize(x, 1)
        err_ef = np.abs(acc_ef / n - x).max()
        err_plain = np.abs(acc_plain / n - x).max()
        assert err_ef < err_plain


class TestCommPlanning:
    def test_hierarchical_wins_on_nvlink(self):
        """The C12/DGCL claim."""
        top = nvlink_topology(4, 4)
        nbytes = 200 * 1024 * 1024
        flat = flat_ring_allreduce_time(top, nbytes)
        hier = hierarchical_allreduce_time(top, nbytes, gpus_per_host=4)
        assert hier < flat

    def test_hierarchical_loses_on_flat_ethernet(self):
        top = ethernet_topology(16)
        nbytes = 200 * 1024 * 1024
        flat = flat_ring_allreduce_time(top, nbytes)
        hier = hierarchical_allreduce_time(top, nbytes, gpus_per_host=4)
        assert flat <= hier

    def test_broadcast_hierarchy_wins_on_nvlink(self):
        top = nvlink_topology(4, 4)
        nbytes = 100 * 1024 * 1024
        assert hierarchical_broadcast_time(top, 0, nbytes, 4) < flat_broadcast_time(
            top, 0, nbytes
        )

    def test_single_host_equal(self):
        top = nvlink_topology(1, 4)
        nbytes = 10**8
        flat = flat_ring_allreduce_time(top, nbytes)
        hier = hierarchical_allreduce_time(top, nbytes, gpus_per_host=4)
        # One host: the hierarchy degenerates to the same intra-host ring
        # plus an NVLink broadcast — same order of magnitude, no cross-host
        # advantage to exploit.
        assert flat <= hier < 2 * flat

    def test_device_count_mismatch_rejected(self):
        top = nvlink_topology(2, 4)
        with pytest.raises(ValueError):
            hierarchical_allreduce_time(top, 100, gpus_per_host=3)


class TestServerless:
    def test_dorylus_value_claim(self):
        """cpu+lambda beats GPU on value-per-dollar for graph-heavy work."""
        workload = Workload(graph_ops=5e9, tensor_flops=2e12, epochs=100)
        costs = estimate_costs(workload)
        assert (
            costs["cpu+lambda"].value_per_dollar
            > costs["gpu"].value_per_dollar
        )

    def test_gpu_fastest_on_tensor_heavy(self):
        workload = Workload(graph_ops=1e8, tensor_flops=5e13, epochs=10)
        costs = estimate_costs(workload)
        assert costs["gpu"].time_seconds < costs["cpu"].time_seconds
        assert costs["gpu"].time_seconds < costs["cpu+lambda"].time_seconds

    def test_hybrid_faster_than_pure_cpu(self):
        workload = Workload(graph_ops=5e9, tensor_flops=2e12, epochs=50)
        costs = estimate_costs(workload)
        assert costs["cpu+lambda"].time_seconds < costs["cpu"].time_seconds

    def test_costs_scale_with_epochs(self):
        w1 = Workload(graph_ops=1e9, tensor_flops=1e12, epochs=10)
        w2 = Workload(graph_ops=1e9, tensor_flops=1e12, epochs=20)
        c1, c2 = estimate_costs(w1), estimate_costs(w2)
        for name in c1:
            assert c2[name].dollars == pytest.approx(2 * c1[name].dollars)


class TestOffload:
    @pytest.fixture(scope="class")
    def graph(self):
        return barabasi_albert(1000, 6, seed=0)

    def test_plan_fits_budget(self, graph):
        dims = [64, 32, 8]
        budget = naive_footprint(graph, dims) // 10
        plan = plan_offload(graph, dims, budget)
        assert plan.device_bytes_per_chunk <= budget
        assert plan.num_chunks > 1

    def test_big_budget_single_chunk(self, graph):
        dims = [64, 32, 8]
        plan = plan_offload(graph, dims, naive_footprint(graph, dims) * 2)
        assert plan.num_chunks == 1

    def test_transfer_volume_grows_with_pressure(self, graph):
        dims = [64, 32, 8]
        naive = naive_footprint(graph, dims)
        loose = plan_offload(graph, dims, naive)
        tight = plan_offload(graph, dims, naive // 20)
        assert tight.transfer_bytes_per_epoch > loose.transfer_bytes_per_epoch

    def test_impossible_budget_raises(self, graph):
        with pytest.raises(DeviceMemoryExceeded):
            plan_offload(graph, [64, 32, 8], device_budget_bytes=10)

    def test_host_holds_everything(self, graph):
        dims = [16, 8]
        plan = plan_offload(graph, dims, naive_footprint(graph, dims))
        assert plan.host_bytes == naive_footprint(graph, dims)
