"""Staleness: SSP utilization, stale gradients, Sancus gate, delayed halos."""

import numpy as np
import pytest

from repro.gnn.models import NodeClassifier
from repro.gnn.staleness import (
    SancusGate,
    simulate_staleness,
    train_delayed_halo,
    train_stale_gradients,
)
from repro.gnn.train import train_full_graph
from repro.graph.generators import planted_partition
from repro.graph.partition import hash_partition


@pytest.fixture(scope="module")
def task():
    g, labels = planted_partition(3, 24, p_in=0.2, p_out=0.01, seed=3)
    n = g.num_vertices
    rng = np.random.default_rng(2)
    features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[:36]] = True
    return g, labels, features, train_mask, ~train_mask


class TestSSPSimulation:
    def test_utilization_increases_with_staleness(self):
        """The C9 utilization claim."""
        traces = [
            simulate_staleness(8, 60, staleness=s, seed=1) for s in (0, 1, 4)
        ]
        utils = [t.utilization for t in traces]
        assert utils[0] < utils[1] <= utils[2] + 1e-9

    def test_makespan_not_worse_with_staleness(self):
        bsp = simulate_staleness(8, 60, staleness=0, seed=2)
        ssp = simulate_staleness(8, 60, staleness=3, seed=2)
        assert ssp.makespan <= bsp.makespan

    def test_busy_time_independent_of_policy(self):
        a = simulate_staleness(4, 40, staleness=0, seed=3)
        b = simulate_staleness(4, 40, staleness=5, seed=3)
        assert a.busy_time == pytest.approx(b.busy_time)

    def test_homogeneous_workers_no_idle(self):
        trace = simulate_staleness(4, 20, staleness=0, speed_spread=0.0, seed=0)
        assert trace.idle_time == pytest.approx(0.0)

    def test_single_worker_fully_utilized(self):
        trace = simulate_staleness(1, 30, staleness=0, seed=5)
        assert trace.utilization == pytest.approx(1.0)


class TestStaleGradients:
    def test_staleness_zero_is_exact(self, task):
        g, labels, features, train_mask, val_mask = task
        reference = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, epochs=10, lr=0.05,
        )
        stale = train_stale_gradients(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, staleness=0, epochs=10, lr=0.05,
        )
        assert np.allclose(reference.losses, stale.losses)

    def test_bounded_staleness_still_converges(self, task):
        """The C9 convergence claim."""
        g, labels, features, train_mask, val_mask = task
        stale = train_stale_gradients(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, staleness=3, epochs=60, lr=0.05,
        )
        assert stale.losses[-1] < stale.losses[0] * 0.75
        assert stale.final_val_accuracy > 0.5

    def test_staleness_perturbs_trajectory(self, task):
        g, labels, features, train_mask, val_mask = task
        a = train_stale_gradients(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, staleness=0, epochs=15, lr=0.05,
        )
        b = train_stale_gradients(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, staleness=4, epochs=15, lr=0.05,
        )
        assert not np.allclose(a.losses, b.losses)


class TestSancusGate:
    def test_first_call_broadcasts(self):
        gate = SancusGate(threshold=0.1)
        assert gate.should_broadcast(np.ones(4))
        assert gate.broadcasts == 1

    def test_small_changes_skipped(self):
        gate = SancusGate(threshold=0.5)
        base = np.ones(16)
        gate.should_broadcast(base)
        for _ in range(5):
            assert not gate.should_broadcast(base + 1e-4)
        assert gate.skips == 5

    def test_large_change_broadcasts(self):
        gate = SancusGate(threshold=0.1)
        gate.should_broadcast(np.ones(4))
        assert gate.should_broadcast(np.ones(4) * 5)
        assert gate.broadcasts == 2

    def test_drift_accumulates_until_broadcast(self):
        # Repeated tiny drifts against the *last broadcast* eventually fire.
        gate = SancusGate(threshold=0.1)
        base = np.ones(16)
        gate.should_broadcast(base)
        fired = [gate.should_broadcast(base * (1 + 0.03 * k)) for k in range(1, 8)]
        assert any(fired)


class TestDelayedHalo:
    def test_refresh_every_one_is_exact(self, task):
        g, labels, features, train_mask, val_mask = task
        partition = hash_partition(g, 3)
        reference = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, epochs=8, lr=0.05,
        )
        report, exchanges, saved = train_delayed_halo(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels,
            train_mask, val_mask, refresh_every=1, epochs=8, lr=0.05,
        )
        assert np.allclose(report.losses, reference.losses)
        assert saved == 0

    def test_delays_save_exchanges(self, task):
        g, labels, features, train_mask, _ = task
        partition = hash_partition(g, 3)
        _, exchanges, saved = train_delayed_halo(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels,
            train_mask, refresh_every=4, epochs=16, lr=0.05,
        )
        assert exchanges == 4
        assert saved == 12

    def test_still_learns_with_delay(self, task):
        """DistGNN's cd-r trade: fewer syncs, bounded quality loss."""
        g, labels, features, train_mask, val_mask = task
        partition = hash_partition(g, 3)
        report, *_ = train_delayed_halo(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels,
            train_mask, val_mask, refresh_every=4, epochs=30, lr=0.05,
        )
        assert report.losses[-1] < report.losses[0]
        assert report.final_val_accuracy > 0.5


class TestHistoricalEmbeddings:
    """Sancus made operational: gated historical halo activations."""

    def test_zero_threshold_is_exact_sync(self, task):
        from repro.gnn.historical import train_historical
        from repro.gnn.train import train_full_graph

        g, labels, features, train_mask, val_mask = task
        partition = hash_partition(g, 4)
        reference = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, epochs=10, lr=0.05,
        )
        hist = train_historical(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features,
            labels, train_mask, val_mask, drift_threshold=0.0,
            epochs=10, lr=0.05,
        )
        assert np.allclose(reference.losses, hist.report.losses)
        assert hist.skips == 0

    def test_higher_threshold_fewer_broadcasts(self, task):
        from repro.gnn.historical import train_historical

        g, labels, features, train_mask, _ = task
        partition = hash_partition(g, 4)
        counts = []
        for threshold in (0.02, 0.2, 0.8):
            hist = train_historical(
                NodeClassifier(3, 8, 3, seed=0), g, partition, features,
                labels, train_mask, drift_threshold=threshold,
                epochs=25, lr=0.05,
            )
            counts.append(hist.broadcasts)
        assert counts == sorted(counts, reverse=True)

    def test_halo_bytes_proportional_to_broadcasts(self, task):
        from repro.gnn.historical import train_historical

        g, labels, features, train_mask, _ = task
        partition = hash_partition(g, 4)
        hist = train_historical(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features,
            labels, train_mask, drift_threshold=0.2, epochs=20, lr=0.05,
        )
        from repro.gnn.distributed import halo_sets

        halos = halo_sets(g, partition)
        remote_count = len(set().union(*halos)) if halos else 0
        per_broadcast = remote_count * 8 * 8  # rows * hidden * float64
        assert hist.halo_bytes == hist.broadcasts * per_broadcast

    def test_still_converges_with_skipping(self, task):
        from repro.gnn.historical import train_historical

        g, labels, features, train_mask, val_mask = task
        partition = hash_partition(g, 4)
        hist = train_historical(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features,
            labels, train_mask, val_mask, drift_threshold=0.3,
            epochs=40, lr=0.05,
        )
        assert hist.skips > hist.broadcasts
        assert hist.report.losses[-1] < hist.report.losses[0]
        assert hist.report.final_val_accuracy > 0.5
