"""Models, optimizers, and the two training regimes."""

import numpy as np
import pytest

from repro.gnn.layers import GraphTensors
from repro.gnn.models import (
    Adam,
    GraphClassifier,
    NodeClassifier,
    SGD,
    accuracy,
)
from repro.gnn.sampling import NeighborSampler, khop_subgraph, sample_neighbors
from repro.gnn.tensor import Parameter, Tensor
from repro.gnn.train import train_full_graph, train_sampled
from repro.graph.generators import planted_partition


@pytest.fixture(scope="module")
def community_task():
    g, labels = planted_partition(3, 30, p_in=0.15, p_out=0.01, seed=1)
    n = g.num_vertices
    rng = np.random.default_rng(0)
    features = np.eye(3)[labels] + rng.normal(0, 1.5, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[:45]] = True
    return g, labels, features, train_mask, ~train_mask


class TestOptimizers:
    def test_sgd_descends_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            ((p * p).sum()).backward()
            opt.step()
        assert abs(float(p.data[0])) < 1e-3

    def test_sgd_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        assert float(p.data[0]) < 1.0

    def test_adam_descends_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            opt.zero_grad()
            ((p * p).sum()).backward()
            opt.step()
        assert abs(float(p.data[0])) < 1e-2

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        Adam([p], lr=0.1).step()  # no grad yet: must not crash
        assert float(p.data[0]) == 1.0


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4)
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_masked(self):
        logits = np.eye(4)
        labels = np.array([0, 1, 0, 0])
        mask = np.array([True, True, False, False])
        assert accuracy(logits, labels, mask) == 1.0


class TestNodeClassifier:
    @pytest.mark.parametrize("kind", ["gcn", "sage", "gat"])
    def test_learns_planted_communities(self, kind, community_task):
        g, labels, features, train_mask, val_mask = community_task
        model = NodeClassifier(3, 16, 3, num_layers=2, layer=kind, seed=0)
        report = train_full_graph(
            model, g, features, labels, train_mask, val_mask,
            epochs=30, lr=0.05,
        )
        assert report.losses[-1] < report.losses[0]
        assert report.final_val_accuracy > 0.55

    def test_unknown_layer_kind(self):
        with pytest.raises(ValueError):
            NodeClassifier(3, 4, 2, layer="mlp")

    def test_predict_shape(self, community_task):
        g, labels, features, *_ = community_task
        model = NodeClassifier(3, 8, 3, seed=1)
        pred = model.predict(GraphTensors(g), Tensor(features))
        assert pred.shape == (g.num_vertices,)

    def test_forward_layer_composes_to_call(self, community_task):
        g, _, features, *_ = community_task
        model = NodeClassifier(3, 8, 3, seed=2)
        gt = GraphTensors(g)
        x = Tensor(features)
        h = x
        for i in range(model.num_layers):
            h = model.forward_layer(i, gt, h)
        assert np.allclose(h.data, model(gt, x).data)


class TestGraphClassifier:
    def test_forward_and_predict(self, community_task):
        g, _, features, *_ = community_task
        model = GraphClassifier(3, 8, 2, seed=0)
        gt = GraphTensors(g)
        logits = model(gt, Tensor(features))
        assert logits.shape == (1, 2)
        assert model.predict(gt, Tensor(features)) in (0, 1)

    def test_trainable(self, community_task):
        g, _, features, *_ = community_task
        model = GraphClassifier(3, 8, 2, seed=0)
        gt = GraphTensors(g)
        opt = Adam(model.parameters(), lr=0.05)
        first = None
        for _ in range(15):
            opt.zero_grad()
            loss = model(gt, Tensor(features)).cross_entropy(np.array([1]))
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
        assert float(loss.data) < first


class TestSampling:
    def test_block_contains_seeds(self, community_task):
        g, *_ = community_task
        block = sample_neighbors(g, [0, 5, 9], fanouts=[3, 3])
        assert set(block.node_ids[block.seed_local]) == {0, 5, 9}

    def test_fanout_bounds_block_size(self, community_task):
        g, *_ = community_task
        small = sample_neighbors(g, [0], fanouts=[2, 2])
        # 1 seed + <=2 hop1 + <=4 hop2
        assert small.gathered_nodes <= 7

    def test_block_edges_exist_in_parent(self, community_task):
        g, *_ = community_task
        block = sample_neighbors(g, [0, 1], fanouts=[4, 4])
        for u, v in block.graph.edges():
            gu, gv = int(block.node_ids[u]), int(block.node_ids[v])
            assert g.has_edge(gu, gv)

    def test_full_fanout_is_khop(self, community_task):
        g, *_ = community_task
        block = khop_subgraph(g, 3, k=2)
        from repro.graph.properties import bfs_levels

        levels = bfs_levels(g, 3)
        expected = {v for v in g.vertices() if 0 <= levels[v] <= 2}
        assert set(int(i) for i in block.node_ids) == expected

    def test_batches_cover_all_train_nodes(self, community_task):
        g, *_ = community_task
        sampler = NeighborSampler(g, fanouts=[3], seed=0)
        nodes = list(range(0, 90, 3))
        blocks = sampler.batches(nodes, batch_size=8)
        seeds = [
            int(b.node_ids[i]) for b in blocks for i in b.seed_local
        ]
        assert sorted(seeds) == sorted(nodes)

    def test_labels_carried_into_block(self, community_task):
        g, labels, *_ = community_task
        block = sample_neighbors(g, [0], fanouts=[3])
        for local, global_id in enumerate(block.node_ids):
            assert block.graph.vertex_label(local) == g.vertex_label(int(global_id))


class TestTrainers:
    def test_full_graph_report_complete(self, community_task):
        g, labels, features, train_mask, val_mask = community_task
        model = NodeClassifier(3, 8, 3, seed=3)
        report = train_full_graph(
            model, g, features, labels, train_mask, val_mask, epochs=5
        )
        assert report.steps == 5
        assert len(report.losses) == 5
        assert len(report.val_accuracy) == 5
        assert report.gathered_features == 5 * g.num_vertices

    def test_sampled_gathers_less_than_full(self, community_task):
        """The C7 claim: sampling bounds per-step data volume."""
        g, labels, features, train_mask, val_mask = community_task
        full = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, epochs=4,
        )
        sampled = train_sampled(
            NodeClassifier(3, 8, 3, layer="sage", seed=0), g, features,
            labels, train_mask, val_mask, epochs=4, batch_size=16,
            fanouts=(3, 3),
        )
        per_step_full = full.gathered_features / full.steps
        per_step_sampled = sampled.gathered_features / sampled.steps
        assert per_step_sampled < per_step_full

    def test_sampled_learns(self, community_task):
        g, labels, features, train_mask, val_mask = community_task
        report = train_sampled(
            NodeClassifier(3, 16, 3, layer="sage", seed=0), g, features,
            labels, train_mask, val_mask, epochs=8, batch_size=16,
            fanouts=(5, 5), lr=0.05,
        )
        assert report.final_val_accuracy > 0.45
        assert report.losses[-1] < report.losses[0]


class TestLayerwiseSampling:
    def test_block_size_additive_not_multiplicative(self, community_task):
        """The FastGCN fix for neighbor explosion."""
        import numpy as np

        from repro.gnn.sampling import layerwise_sample, sample_neighbors
        from repro.graph.generators import barabasi_albert

        g = barabasi_albert(800, 6, seed=2)
        seeds = list(range(0, 800, 40))
        rng = np.random.default_rng(0)
        nodewise = sample_neighbors(g, seeds, fanouts=(10, 10), rng=rng)
        layerwise = layerwise_sample(
            g, seeds, nodes_per_layer=(40, 40), rng=rng
        )
        assert layerwise.gathered_nodes <= len(seeds) + 80
        assert layerwise.gathered_nodes < nodewise.gathered_nodes

    def test_edges_exist_in_parent(self, community_task):
        import numpy as np

        from repro.gnn.sampling import layerwise_sample

        g, *_ = community_task
        block = layerwise_sample(
            g, [0, 5, 9], nodes_per_layer=(12, 12),
            rng=np.random.default_rng(1),
        )
        for u, v in block.graph.edges():
            assert g.has_edge(int(block.node_ids[u]), int(block.node_ids[v]))

    def test_seeds_present(self, community_task):
        import numpy as np

        from repro.gnn.sampling import layerwise_sample

        g, *_ = community_task
        block = layerwise_sample(
            g, [3, 7], nodes_per_layer=(8,), rng=np.random.default_rng(2)
        )
        assert set(block.node_ids[block.seed_local]) == {3, 7}

    def test_trainable_block(self, community_task):
        import numpy as np

        from repro.gnn.layers import GraphTensors
        from repro.gnn.models import Adam, NodeClassifier
        from repro.gnn.sampling import layerwise_sample
        from repro.gnn.tensor import Tensor

        g, labels, features, *_ = community_task
        block = layerwise_sample(
            g, list(range(0, 90, 9)), nodes_per_layer=(30, 30),
            rng=np.random.default_rng(3),
        )
        model = NodeClassifier(3, 8, 3, layer="sage", seed=0)
        opt = Adam(model.parameters(), lr=0.05)
        gt = block.tensors()
        x = Tensor(features[block.node_ids])
        y = labels[block.node_ids[block.seed_local]]
        first = None
        for _ in range(10):
            opt.zero_grad()
            loss = model(gt, x).gather_rows(block.seed_local).cross_entropy(y)
            loss.backward()
            opt.step()
            first = first if first is not None else float(loss.data)
        assert float(loss.data) < first
