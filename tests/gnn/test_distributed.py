"""Distributed GNN training: exactness, traffic, quantized halos."""

import numpy as np
import pytest

from repro.gnn.distributed import DistributedTrainer, halo_sets
from repro.gnn.models import NodeClassifier
from repro.gnn.train import train_full_graph
from repro.graph.generators import planted_partition
from repro.graph.partition import (
    bfs_voronoi_partition,
    hash_partition,
    metis_like_partition,
)


@pytest.fixture(scope="module")
def task():
    g, labels = planted_partition(3, 24, p_in=0.2, p_out=0.01, seed=2)
    n = g.num_vertices
    rng = np.random.default_rng(1)
    features = np.eye(3)[labels] + rng.normal(0, 1.2, size=(n, 3))
    train_mask = np.zeros(n, dtype=bool)
    train_mask[rng.permutation(n)[:36]] = True
    return g, labels, features, train_mask, ~train_mask


class TestHaloSets:
    def test_halos_are_remote_neighbors(self, task):
        g, *_ = task
        partition = hash_partition(g, 3)
        halos = halo_sets(g, partition)
        for worker, halo in enumerate(halos):
            for v in halo:
                assert partition.assignment[v] != worker
                # v neighbors some vertex of this worker.
                assert any(
                    partition.assignment[int(w)] == worker
                    for w in g.neighbors(v)
                )

    def test_single_worker_empty_halos(self, task):
        g, *_ = task
        halos = halo_sets(g, hash_partition(g, 1))
        assert halos == [set()]


class TestSyncExactness:
    def test_identical_to_single_process(self, task):
        g, labels, features, train_mask, val_mask = task
        reference = train_full_graph(
            NodeClassifier(3, 8, 3, seed=0), g, features, labels,
            train_mask, val_mask, epochs=8, lr=0.05,
        )
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 4),
            features, labels, lr=0.05,
        )
        report = trainer.train(train_mask, val_mask, epochs=8)
        assert np.allclose(report.losses, reference.losses)
        assert report.val_accuracy == reference.val_accuracy

    def test_partition_choice_does_not_change_learning(self, task):
        g, labels, features, train_mask, val_mask = task
        reports = []
        for partition in (
            hash_partition(g, 4),
            metis_like_partition(g, 4, seed=0),
        ):
            trainer = DistributedTrainer(
                NodeClassifier(3, 8, 3, seed=0), g, partition,
                features, labels, lr=0.05,
            )
            reports.append(trainer.train(train_mask, val_mask, epochs=5))
        assert np.allclose(reports[0].losses, reports[1].losses)


class TestTraffic:
    def test_better_partition_less_halo_traffic(self, task):
        """The C8 claim."""
        g, labels, features, train_mask, val_mask = task
        byte_counts = {}
        for name, partition in [
            ("hash", hash_partition(g, 4)),
            ("metis", metis_like_partition(g, 4, seed=0)),
        ]:
            trainer = DistributedTrainer(
                NodeClassifier(3, 8, 3, seed=0), g, partition,
                features, labels, lr=0.05,
            )
            trainer.train(train_mask, epochs=3)
            byte_counts[name] = trainer.bytes_by_tag().get("halo", 0)
        assert byte_counts["metis"] < byte_counts["hash"]

    def test_traffic_tags_present(self, task):
        g, labels, features, train_mask, _ = task
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels,
        )
        trainer.train(train_mask, epochs=2)
        tags = trainer.bytes_by_tag()
        assert tags.get("halo", 0) > 0
        assert tags.get("grad-sync", 0) > 0

    def test_traffic_scales_with_epochs(self, task):
        g, labels, features, train_mask, _ = task

        def run(epochs):
            trainer = DistributedTrainer(
                NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
                features, labels,
            )
            trainer.train(train_mask, epochs=epochs)
            return trainer.remote_bytes

        assert run(4) == 2 * run(2)

    def test_voronoi_partition_works_too(self, task):
        g, labels, features, train_mask, _ = task
        seeds = np.nonzero(train_mask)[0][:12]
        partition = bfs_voronoi_partition(g, 3, seeds=list(seeds))
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, partition, features, labels
        )
        report = trainer.train(train_mask, epochs=2)
        assert report.steps == 2


class TestQuantizedHalo:
    def test_bits_reduce_accounted_bytes(self, task):
        g, labels, features, train_mask, _ = task

        def halo_bytes(bits):
            trainer = DistributedTrainer(
                NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
                features, labels, halo_bits=bits,
            )
            trainer.train(train_mask, epochs=2)
            return trainer.bytes_by_tag()["halo"]

        assert halo_bytes(8) < halo_bytes(None)

    def test_quantization_changes_loss_slightly(self, task):
        g, labels, features, train_mask, val_mask = task
        exact = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels, lr=0.05,
        )
        r_exact = exact.train(train_mask, val_mask, epochs=8)
        quantized = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels, lr=0.05, halo_bits=4,
        )
        r_quant = quantized.train(train_mask, val_mask, epochs=8)
        # Lossy but still learns: losses differ, accuracy stays sane.
        assert not np.allclose(r_exact.losses, r_quant.losses)
        assert r_quant.final_val_accuracy >= r_exact.final_val_accuracy - 0.25

    def test_error_feedback_state_kept(self, task):
        g, labels, features, train_mask, _ = task
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels, halo_bits=2, error_feedback=True,
        )
        trainer.train(train_mask, epochs=3)
        assert trainer._residual is not None
        assert np.abs(trainer._residual).max() > 0


class TestQuantizedGradients:
    def test_bits_reduce_sync_bytes(self, task):
        g, labels, features, train_mask, _ = task

        def sync_bytes(bits):
            trainer = DistributedTrainer(
                NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
                features, labels, grad_bits=bits,
            )
            trainer.train(train_mask, epochs=2)
            return trainer.bytes_by_tag()["grad-sync"]

        full = sync_bytes(None)
        int4 = sync_bytes(4)
        int2 = sync_bytes(2)
        assert int2 < int4 < full
        assert int4 == pytest.approx(full * 4 / 64, rel=0.02)

    def test_quantized_gradients_still_learn(self, task):
        """The Sylvie/EC-Graph gradient-compression claim."""
        g, labels, features, train_mask, val_mask = task
        trainer = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels, lr=0.05, grad_bits=2,
        )
        report = trainer.train(train_mask, val_mask, epochs=20)
        assert report.losses[-1] < report.losses[0]
        assert report.final_val_accuracy > 0.6

    def test_quantization_perturbs_but_tracks_exact(self, task):
        g, labels, features, train_mask, _ = task
        exact = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels, lr=0.05,
        ).train(train_mask, epochs=10)
        quant = DistributedTrainer(
            NodeClassifier(3, 8, 3, seed=0), g, hash_partition(g, 3),
            features, labels, lr=0.05, grad_bits=4,
        ).train(train_mask, epochs=10)
        assert not np.allclose(exact.losses, quant.losses)
        assert abs(exact.losses[-1] - quant.losses[-1]) < 0.5
