"""DESIGN.md's experiment index must match the benchmark suite."""

import os
import re

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..")


def _design_text() -> str:
    with open(os.path.join(ROOT, "DESIGN.md")) as handle:
        return handle.read()


class TestExperimentIndex:
    def test_every_indexed_bench_exists(self):
        text = _design_text()
        bench_refs = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
        assert bench_refs, "experiment index lists no benches?"
        for ref in bench_refs:
            assert os.path.exists(os.path.join(ROOT, "benchmarks", ref)), ref

    def test_every_bench_file_indexed(self):
        text = _design_text()
        on_disk = {
            f
            for f in os.listdir(os.path.join(ROOT, "benchmarks"))
            if f.startswith("bench_") and f.endswith(".py")
        }
        indexed = set(re.findall(r"`benchmarks/(bench_\w+\.py)`", text))
        assert on_disk == indexed

    def test_every_experiment_in_experiments_md(self):
        """Each experiment id of DESIGN.md appears in EXPERIMENTS.md."""
        design = _design_text()
        ids = set(re.findall(r"^\| (T\d|F\d|C\d+|X\d) \|", design, re.M))
        with open(os.path.join(ROOT, "EXPERIMENTS.md")) as handle:
            experiments = handle.read()
        recorded = set(re.findall(r"^\| (T\d|F\d|C\d+|X\d) \|", experiments, re.M))
        assert ids == recorded

    def test_inventory_modules_importable(self):
        """Every `repro.x.y` module named in DESIGN.md imports."""
        import importlib

        design = _design_text()
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", design))
        for name in sorted(modules):
            importlib.import_module(name)
