"""Serving stored graphs: catalog loading and manifest-backed epochs."""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.graph.store import StoreCatalog, StoredGraph, build_store
from repro.serve import GraphRegistry, Request, Server, builtin_endpoints


@pytest.fixture
def catalog_root(tmp_path):
    build_store(barabasi_albert(60, 3, seed=5), tmp_path / "social",
                partition="hash", num_parts=3)
    build_store(erdos_renyi(40, 0.2, seed=7), tmp_path / "mesh")
    return tmp_path


class TestLoadCatalog:
    def test_registers_every_store(self, catalog_root):
        graphs = GraphRegistry()
        records = graphs.load_catalog(catalog_root)
        assert sorted(r.name for r in records) == ["mesh", "social"]
        assert isinstance(graphs.get("social").graph, StoredGraph)

    def test_epoch_is_manifest_version(self, catalog_root):
        graphs = GraphRegistry()
        graphs.load_catalog(catalog_root)
        assert graphs.epoch("social") == \
            StoreCatalog(catalog_root).manifest("social").version

    def test_bump_persists_across_reload(self, catalog_root):
        graphs = GraphRegistry()
        graphs.load_catalog(catalog_root)
        bumped = graphs.bump_epoch("social")
        graphs.get("social").graph.close()
        # A fresh registry (a restarted server) sees the bumped epoch.
        fresh = GraphRegistry()
        fresh.load_catalog(catalog_root)
        assert fresh.epoch("social") == bumped
        fresh.get("social").graph.close()

    def test_cache_budget_reaches_stored_graphs(self, catalog_root):
        graphs = GraphRegistry()
        graphs.load_catalog(catalog_root, cache_budget=64)
        assert graphs.get("social").graph.cache.budget == 64

    def test_register_by_store_path(self, catalog_root):
        graphs = GraphRegistry()
        record = graphs.register("g", str(catalog_root / "social"))
        assert isinstance(record.graph, StoredGraph)
        assert record.epoch == record.graph.version


class TestServingStoredGraphs:
    def test_request_against_stored_record(self, catalog_root):
        graphs = GraphRegistry()
        graphs.load_catalog(catalog_root)
        server = Server(graphs, endpoints=builtin_endpoints(), num_workers=1)
        server.submit(Request(
            endpoint="tlav.pagerank", params={"iterations": 5},
            graph="social",
        ))
        (response,) = server.run()
        assert response.status == "ok"
        reference = __import__(
            "repro.tlav.algorithms", fromlist=["pagerank"]
        ).pagerank(barabasi_albert(60, 3, seed=5), iterations=5)
        np.testing.assert_array_equal(response.value, reference)

    def test_replace_in_memory_with_stored_keeps_epoch_monotonic(
        self, catalog_root
    ):
        graphs = GraphRegistry()
        graphs.register("g", barabasi_albert(30, 2, seed=1))
        graphs.bump_epoch("g")
        graphs.bump_epoch("g")
        old = graphs.epoch("g")
        graphs.replace("g", str(catalog_root / "mesh"))
        assert graphs.epoch("g") > old

    def test_replace_stored_with_in_memory_keeps_epoch_monotonic(
        self, catalog_root
    ):
        graphs = GraphRegistry()
        graphs.load_catalog(catalog_root)
        old = graphs.epoch("mesh")
        graphs.replace("mesh", barabasi_albert(30, 2, seed=1))
        assert graphs.epoch("mesh") > old
