"""Circuit breaker state machine and its ride through the scheduler."""

import pytest

from repro.graph.generators import barabasi_albert
from repro.obs import MetricsRegistry
from repro.serve.breaker import (
    BREAKER_STATES,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
)
from repro.serve.endpoints import Endpoint, EndpointRegistry, GraphRegistry
from repro.serve.scheduler import Request, Server


def _breaker(**overrides):
    config = dict(
        window=4, failure_threshold=0.5, min_samples=2,
        open_ops=500, half_open_probes=1,
    )
    config.update(overrides)
    return CircuitBreaker("test.ep", BreakerConfig(**config))


class TestConfig:
    @pytest.mark.parametrize("bad", [
        dict(window=0),
        dict(failure_threshold=0.0),
        dict(failure_threshold=1.5),
        dict(min_samples=0),
        dict(open_ops=0),
        dict(half_open_probes=0),
    ])
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            BreakerConfig(**bad)


class TestStateMachine:
    def test_closed_allows_traffic(self):
        breaker = _breaker()
        assert breaker.state == "closed"
        assert breaker.allow(0) == "execute"

    def test_opens_at_failure_threshold(self):
        breaker = _breaker()
        breaker.record_failure(100)
        assert breaker.state == "closed"  # below min_samples
        breaker.record_failure(200)
        assert breaker.state == "open"
        assert breaker.opened_at == 200

    def test_successes_keep_it_closed(self):
        breaker = _breaker()
        for clock in range(0, 1000, 100):
            breaker.record_success(clock)
            breaker.record_failure(clock + 50)
        # 50% failures with threshold 0.5 over a window of 4: opens
        # only once the window majority tips; interleaved S/F alternates
        # around the threshold, so the breaker must have opened at the
        # first window where failures/len >= 0.5.
        assert breaker.state == "open"

    def test_minority_failures_never_open(self):
        breaker = _breaker(window=8, failure_threshold=0.75)
        for clock in range(0, 800, 100):
            (breaker.record_failure if clock % 300 == 0
             else breaker.record_success)(clock)
        assert breaker.state == "closed"

    def test_open_rejects_until_cooldown(self):
        breaker = _breaker()
        breaker.record_failure(0)
        breaker.record_failure(10)
        assert breaker.state == "open"
        assert breaker.allow(10 + 499) == "reject"
        assert int(breaker.obs.counter("serve.breaker.rejected").total) == 1

    def test_cooldown_elapse_probes_half_open(self):
        breaker = _breaker()
        breaker.record_failure(0)
        breaker.record_failure(10)
        assert breaker.allow(10 + 500) == "probe"
        assert breaker.state == "half_open"
        # A serial event loop keeps one probe in flight at a time.
        assert breaker.allow(10 + 501) == "probe"

    def test_probe_success_closes_and_resets_window(self):
        breaker = _breaker()
        breaker.record_failure(0)
        breaker.record_failure(10)
        breaker.allow(510)
        breaker.record_success(520)
        assert breaker.state == "closed"
        # The window was cleared: one more failure is below min_samples.
        breaker.record_failure(530)
        assert breaker.state == "closed"

    def test_probe_failure_reopens(self):
        breaker = _breaker()
        breaker.record_failure(0)
        breaker.record_failure(10)
        breaker.allow(510)
        breaker.record_failure(520)
        assert breaker.state == "open"
        assert breaker.opened_at == 520
        assert breaker.allow(520 + 499) == "reject"

    def test_multi_probe_closing(self):
        breaker = _breaker(half_open_probes=2)
        breaker.record_failure(0)
        breaker.record_failure(10)
        breaker.allow(510)
        breaker.record_success(520)
        assert breaker.state == "half_open"
        breaker.record_success(530)
        assert breaker.state == "closed"

    def test_transition_metrics(self):
        obs = MetricsRegistry()
        breaker = CircuitBreaker(
            "test.ep",
            BreakerConfig(window=4, min_samples=2, open_ops=500),
            obs=obs,
        )
        breaker.record_failure(0)
        breaker.record_failure(10)
        breaker.allow(510)
        breaker.record_success(520)
        series = obs.counter("serve.breaker.transitions").series()
        by_state = {
            state: sum(v for k, v in series.items() if f"to={state}" in k)
            for state in ("open", "half_open", "closed")
        }
        assert by_state == {"open": 1, "half_open": 1, "closed": 1}
        gauge = obs.gauge("serve.breaker.state").series()
        assert list(gauge.values()) == [BREAKER_STATES["closed"]]


class TestBoard:
    def test_one_breaker_per_endpoint(self):
        board = BreakerBoard(BreakerConfig(window=4))
        a = board.get("ep.a")
        assert board.get("ep.a") is a
        assert board.get("ep.b") is not a
        assert set(board.snapshot()) == {"ep.a", "ep.b"}


class _Flaky:
    """An endpoint handler that fails while ``broken`` is set."""

    def __init__(self):
        self.broken = False

    def __call__(self, record, params, executor):
        if self.broken:
            raise RuntimeError("dependency down")
        return ("v", params.get("x", 0)), 100


@pytest.fixture
def flaky_server():
    flaky = _Flaky()
    endpoints = EndpointRegistry()
    endpoints.register(Endpoint("test.flaky", "test", flaky))
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(20, 2, seed=3))
    server = Server(
        graphs,
        endpoints=endpoints,
        num_workers=1,
        breaker=BreakerConfig(
            window=4, failure_threshold=0.5, min_samples=2,
            open_ops=500, half_open_probes=1,
        ),
        degrade=True,
        max_stale_epochs=4,
    )
    return server, graphs, flaky


class TestThroughScheduler:
    def test_full_cycle_closed_open_half_open_closed(self, flaky_server):
        server, graphs, flaky = flaky_server
        request = dict(endpoint="test.flaky", params={"x": 1})

        # Closed: a healthy request populates the cache.
        server.submit(Request(**request, arrival=0))
        (warm,) = server.run()
        assert warm.ok and not warm.degraded

        # Epoch bump: the cached answer is now stale-only fodder.
        graphs.bump_epoch("default")
        flaky.broken = True
        server.submit(Request(**request, arrival=200))
        server.submit(Request(**request, arrival=400))
        first, second = server.run()
        # Organic failures surface as errors and trip the breaker.
        assert {first.status, second.status} <= {"error", "degraded"}
        assert server.breakers.get("test.flaky").state == "open"

        # Open: the ladder answers stale instead of touching the engine.
        server.submit(Request(**request, arrival=server.clock + 10))
        (stale,) = server.run()
        assert stale.status == "degraded"
        assert stale.degraded_reason == "breaker_open"
        assert stale.staleness == 1
        assert stale.value == warm.value

        # Half-open after the cooldown: a healthy probe closes it.
        flaky.broken = False
        server.submit(Request(**request, arrival=server.clock + 600))
        (probe,) = server.run()
        assert probe.ok
        assert server.breakers.get("test.flaky").state == "closed"

        series = server.obs.counter("serve.breaker.transitions").series()
        by_state = {
            state: sum(v for k, v in series.items() if f"to={state}" in k)
            for state in ("open", "half_open", "closed")
        }
        assert by_state["open"] >= 1
        assert by_state["half_open"] >= 1
        assert by_state["closed"] >= 1

    def test_ledger_includes_degraded(self, flaky_server):
        server, graphs, flaky = flaky_server
        request = dict(endpoint="test.flaky", params={"x": 1})
        server.submit(Request(**request, arrival=0))
        server.run()
        graphs.bump_epoch("default")
        flaky.broken = True
        for i in range(4):
            server.submit(Request(**request, arrival=200 + i * 100))
        server.run()
        stats = server.stats
        assert stats.degraded > 0
        assert stats.admitted == (
            stats.completed + stats.shed + stats.expired + stats.degraded
        )
        assert stats.in_flight == 0
