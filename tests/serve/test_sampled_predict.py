"""Sampled ``gnn.predict``: bounded cost, determinism, exact footprints.

On stored (paged) graphs — or graphs too large for a per-request full
forward — serve answers ``gnn.predict`` via ``infer_sampled``: the
per-request cost is bounded by ``batch x fanout``, not ``|E|``, and
the partition footprint is exact, so PR 9's partition-scoped cache
invalidation applies to inference answers too.
"""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert
from repro.graph.store import build_store
from repro.serve.endpoints import (
    SAMPLED_FANOUTS,
    SAMPLED_PREDICT_MAX_FULL,
    GraphRegistry,
    builtin_endpoints,
)
from repro.serve.loadgen import run_scenario, scenario_requests
from repro.serve.scheduler import Request, Server

N = 120
NUM_PARTS = 4


def _sampled_cost_bound(num_seeds, fanouts, num_layers):
    """Worst-case message count of one sampled predict, times layers.

    Per seed the 2-layer block holds at most ``1 + f1 + f1*f2`` nodes;
    each sampled edge appears in both directions (undirected) and every
    block node carries a self-loop, so messages are at most
    ``2*(f1 + f1*f2) + (1 + f1 + f1*f2)`` per seed.
    """
    f1, f2 = fanouts
    sampled_edges = f1 + f1 * f2
    block_nodes = 1 + sampled_edges
    per_seed = 2 * sampled_edges + block_nodes
    return num_seeds * per_seed * num_layers


@pytest.fixture
def graphs(tmp_path):
    rng = np.random.default_rng(11)
    build_store(
        barabasi_albert(N, 3, seed=7),
        tmp_path / "stored",
        partition="hash",
        num_parts=NUM_PARTS,
        features=rng.normal(size=(N, 8)),
        name="stored",
    )
    registry = GraphRegistry()
    registry.register("stored", tmp_path / "stored")
    registry.register("small", barabasi_albert(60, 3, seed=5))
    return registry


@pytest.fixture
def predict():
    return builtin_endpoints().get("gnn.predict")


class TestModeSelection:
    def test_stored_graph_with_nodes_goes_sampled(self, graphs, predict):
        record = graphs.get("stored")
        assert predict.partitions_read(record, {"nodes": [1, 2]}) is not None

    def test_small_in_memory_graph_stays_full(self, graphs, predict):
        record = graphs.get("small")
        assert record.graph.num_vertices <= SAMPLED_PREDICT_MAX_FULL
        assert predict.partitions_read(record, {"nodes": [1, 2]}) is None

    def test_all_nodes_request_stays_full(self, graphs, predict):
        # Predicting every node has no cheaper path than one forward.
        record = graphs.get("stored")
        assert predict.partitions_read(record, {}) is None

    def test_mode_param_overrides_auto(self, graphs, predict):
        small = graphs.get("small")
        parts = predict.partitions_read(
            small, {"nodes": [0, 1], "mode": "sampled"}
        )
        # Sampled mode on an in-memory graph: no partition assignment,
        # so the footprint stays conservative (None = whole graph).
        assert parts is None
        _, cost = predict.run(small, {"nodes": [0, 1], "mode": "sampled"})
        bound = _sampled_cost_bound(2, SAMPLED_FANOUTS, small.model.num_layers)
        assert cost <= bound


class TestBoundedCost:
    def test_cost_bounded_by_batch_times_fanout(self, graphs, predict):
        record = graphs.get("stored")
        nodes = [3, 17, 42, 99]
        result, cost = predict.run(record, {"nodes": nodes})
        assert len(result) == len(nodes)
        assert all(isinstance(p, int) for p in result)
        bound = _sampled_cost_bound(
            len(nodes), SAMPLED_FANOUTS, record.model.num_layers
        )
        assert 1 <= cost <= bound

    def test_sampled_much_cheaper_than_full(self, graphs, predict):
        record = graphs.get("stored")
        nodes = [3, 17, 42, 99]
        _, sampled_cost = predict.run(record, {"nodes": nodes})
        _, full_cost = predict.run(record, {"nodes": nodes, "mode": "full"})
        assert sampled_cost < full_cost

    def test_cost_scales_with_fanout_param(self, graphs, predict):
        record = graphs.get("stored")
        nodes = [3, 17, 42, 99]
        _, small_cost = predict.run(
            record, {"nodes": nodes, "fanouts": [1, 1]}
        )
        bound = _sampled_cost_bound(
            len(nodes), (1, 1), record.model.num_layers
        )
        assert small_cost <= bound


class TestDeterminism:
    def test_repeat_requests_identical(self, graphs, predict):
        record = graphs.get("stored")
        params = {"nodes": [5, 9, 33]}
        first = predict.run(record, params)
        second = predict.run(record, params)
        assert first == second

    def test_footprint_stable_across_calls(self, graphs, predict):
        record = graphs.get("stored")
        params = {"nodes": [5, 9, 33]}
        assert predict.partitions_read(
            record, params
        ) == predict.partitions_read(record, params)

    def test_distinct_node_sets_may_differ(self, graphs, predict):
        record = graphs.get("stored")
        a, _ = predict.run(record, {"nodes": list(range(30))})
        b, _ = predict.run(record, {"nodes": list(range(30, 60))})
        assert len(a) == len(b) == 30  # both answered, independently


class TestFootprint:
    def test_footprint_valid_partition_subset(self, graphs, predict):
        record = graphs.get("stored")
        parts = predict.partitions_read(record, {"nodes": [3, 17, 42]})
        assert parts is not None and parts
        assert parts <= set(range(NUM_PARTS))

    def test_footprint_covers_seed_owners(self, graphs, predict):
        record = graphs.get("stored")
        nodes = [3, 17, 42, 99]
        parts = predict.partitions_read(record, {"nodes": nodes})
        assignment = np.asarray(record.graph.assignment)
        owners = {int(p) for p in assignment[nodes]}
        assert owners <= parts

    def test_batch_mixes_full_and_sampled(self, graphs, predict):
        record = graphs.get("stored")
        params = [
            {"nodes": [1, 2]},            # sampled (stored + nodes)
            {},                            # full (every node)
            {"nodes": [7], "mode": "full"},
        ]
        batched, cost = predict.run_batch(record, params)
        singles = [predict.run(record, p)[0] for p in params]
        assert batched == singles
        assert cost >= 1


class TestServed:
    def test_served_equals_direct(self, graphs, predict):
        record = graphs.get("stored")
        params = {"nodes": [3, 17, 42, 99]}
        direct, direct_cost = predict.run(record, params)

        server = Server(graphs, endpoints=builtin_endpoints(), num_workers=1)
        server.submit(
            Request(endpoint="gnn.predict", graph="stored", params=params)
        )
        (response,) = server.run()
        assert response.ok
        assert response.value == direct
        assert response.cost == direct_cost
        bound = _sampled_cost_bound(
            4, SAMPLED_FANOUTS, record.model.num_layers
        )
        assert response.cost <= bound

    def test_mixed_scenario_has_stored_predicts(self):
        spec = scenario_requests("mixed", seed=0)
        stored = [
            r
            for wave in spec["waves"]
            for r in wave["requests"]
            if r.endpoint == "gnn.predict" and r.graph == "stored"
        ]
        assert stored
        assert all(r.params.get("nodes") for r in stored)

    def test_mixed_scenario_answers_stored_predicts(self):
        report = run_scenario("mixed", seed=0)
        assert report["overall"]["ledger_ok"]
        gnn = report["endpoints"]["gnn.predict"]
        assert gnn["ok"] > 0
