"""Endpoint/graph registries and the served-engine contract."""

import numpy as np
import pytest

from repro.graph.delta import random_edge_updates
from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import count_matches
from repro.matching.cliques import count_k_cliques
from repro.matching.pattern import triangle_pattern
from repro.serve.endpoints import (
    Endpoint,
    EndpointRegistry,
    GraphRegistry,
    builtin_endpoints,
    canonical_params,
    named_pattern,
)
from repro.tlav.algorithms import bfs, pagerank, wcc


@pytest.fixture
def graphs():
    registry = GraphRegistry()
    registry.register("default", barabasi_albert(60, 3, seed=5))
    return registry


class TestCanonicalParams:
    def test_order_independent(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params(
            {"b": 2, "a": 1}
        )

    def test_numpy_scalars_normalized(self):
        assert canonical_params({"x": np.int64(3)}) == canonical_params({"x": 3})
        assert canonical_params({"x": np.float64(0.5)}) == canonical_params(
            {"x": 0.5}
        )

    def test_lists_and_tuples_collapse(self):
        assert canonical_params({"nodes": [1, 2]}) == canonical_params(
            {"nodes": (1, 2)}
        )

    def test_distinct_params_distinct(self):
        assert canonical_params({"k": 3}) != canonical_params({"k": 4})

    def test_hashable(self):
        {canonical_params({"nested": {"a": [1]}}): True}


class TestGraphRegistry:
    def test_epoch_bumps_on_replace(self, graphs):
        assert graphs.epoch("default") == 0
        graphs.replace("default", barabasi_albert(60, 3, seed=6))
        assert graphs.epoch("default") == 1

    def test_bump_epoch_declares_mutation(self, graphs):
        assert graphs.bump_epoch("default") == 1
        assert graphs.bump_epoch("default") == 2

    def test_subscribers_notified(self, graphs):
        seen = []
        graphs.subscribe(lambda name, epoch: seen.append((name, epoch)))
        graphs.replace("default", barabasi_albert(60, 3, seed=7))
        graphs.bump_epoch("default")
        assert seen == [("default", 1), ("default", 2)]

    def test_duplicate_register_rejected(self, graphs):
        with pytest.raises(ValueError):
            graphs.register("default", barabasi_albert(10, 2, seed=0))

    def test_unknown_graph_rejected(self, graphs):
        with pytest.raises(KeyError):
            graphs.get("nope")

    def test_derived_state_rebuilt_after_bump(self, graphs):
        record = graphs.get("default")
        gt_before = record.tensors()
        planner_before = record.planner()
        assert record.tensors() is gt_before  # cached within an epoch
        graphs.bump_epoch("default")
        assert record.tensors() is not gt_before
        assert record.planner() is not planner_before

    def test_ensure_gnn_deterministic(self, graphs):
        record = graphs.get("default")
        record.ensure_gnn()
        feats = record.features.copy()
        other = GraphRegistry()
        other.register("default", barabasi_albert(60, 3, seed=5))
        twin = other.get("default")
        twin.ensure_gnn()
        np.testing.assert_array_equal(feats, twin.features)


class TestEndpointRegistry:
    def test_builtin_covers_every_family(self):
        registry = builtin_endpoints()
        assert registry.families() == ["gnn", "graph", "matching", "tlag", "tlav"]

    def test_duplicate_rejected(self):
        registry = EndpointRegistry()
        ep = Endpoint("x", "test", lambda rec, p, ex: (1, 1))
        registry.register(ep)
        with pytest.raises(ValueError):
            registry.register(Endpoint("x", "test", lambda rec, p, ex: (1, 1)))

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(KeyError):
            builtin_endpoints().get("tlav.sssp")

    def test_cost_clamped_to_one(self, graphs):
        ep = Endpoint("zero", "test", lambda rec, p, ex: ("v", 0))
        _, cost = ep.run(graphs.get("default"), {})
        assert cost == 1

    def test_run_batch_requires_merge(self):
        ep = Endpoint("solo", "test", lambda rec, p, ex: (1, 1))
        assert not ep.merge_batch
        with pytest.raises(TypeError):
            ep.run_batch(None, [{}])

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError):
            named_pattern("pentagon")


class TestBuiltinEndpointsMatchEngines:
    """The serve contract: results are the direct engine answers."""

    def test_pagerank(self, graphs):
        record = graphs.get("default")
        result, cost = builtin_endpoints().get("tlav.pagerank").run(
            record, {"iterations": 5}
        )
        np.testing.assert_array_equal(
            result, pagerank(record.graph, iterations=5)
        )
        assert cost == 5 * record.graph.indices.size

    def test_bfs(self, graphs):
        record = graphs.get("default")
        result, _ = builtin_endpoints().get("tlav.bfs").run(
            record, {"source": 3}
        )
        np.testing.assert_array_equal(result, bfs(record.graph, 3))

    def test_wcc(self, graphs):
        record = graphs.get("default")
        result, _ = builtin_endpoints().get("tlav.wcc").run(record, {})
        np.testing.assert_array_equal(result, wcc(record.graph))

    def test_matching_count(self, graphs):
        record = graphs.get("default")
        result, cost = builtin_endpoints().get("matching.count").run(
            record, {"pattern": "triangle"}
        )
        assert result == count_matches(record.graph, triangle_pattern())
        assert cost >= 1

    def test_cliques(self, graphs):
        record = graphs.get("default")
        result, _ = builtin_endpoints().get("matching.cliques").run(
            record, {"k": 3}
        )
        assert result == count_k_cliques(record.graph, 3)

    def test_subgraph_query_matches_count(self, graphs):
        record = graphs.get("default")
        tlag, _ = builtin_endpoints().get("tlag.subgraph_query").run(
            record, {"pattern": "triangle"}
        )
        assert tlag == count_matches(record.graph, triangle_pattern())

    def test_gnn_predict_batch_equals_singles(self, graphs):
        record = graphs.get("default")
        ep = builtin_endpoints().get("gnn.predict")
        assert ep.merge_batch
        params = [{"nodes": [0, 1]}, {"nodes": [5]}, {"nodes": [2, 3, 4]}]
        batched, _ = ep.run_batch(record, params)
        singles = [ep.run(record, p)[0] for p in params]
        assert batched == singles


class TestApplyUpdates:
    def _registry(self, num_parts=4):
        from repro.graph.partition import hash_partition
        from repro.graph.store import InMemoryGraph

        g = barabasi_albert(40, 2, seed=21)
        part = hash_partition(g, num_parts)
        graphs = GraphRegistry()
        graphs.register("default", InMemoryGraph(g, partition=part))
        return graphs, g, part

    @staticmethod
    def _non_edge(g):
        return next(
            (u, v)
            for u in range(g.num_vertices)
            for v in range(u + 1, g.num_vertices)
            if not g.has_edge(u, v)
        )

    def test_bumps_epoch_per_batch(self):
        graphs, g, _ = self._registry()
        u, v = self._non_edge(g)
        graphs.apply_updates("default", inserts=np.array([[u, v]]))
        assert graphs.get("default").epoch == 1
        graphs.apply_updates("default", deletes=np.array([[u, v]]))
        assert graphs.get("default").epoch == 2

    def test_mutation_visible_through_handle(self):
        graphs, g, _ = self._registry()
        u, v = self._non_edge(g)
        graphs.apply_updates("default", inserts=np.array([[u, v]]))
        record = graphs.get("default")
        assert v in record.graph.neighbors(u)
        assert u in record.graph.neighbors(v)

    def test_partition_layout_survives_mutation(self):
        graphs, g, part = self._registry()
        u, v = self._non_edge(g)
        graphs.apply_updates("default", inserts=np.array([[u, v]]))
        handle = graphs.get("default").graph
        assert handle.num_parts == part.num_parts
        assert np.array_equal(handle.assignment, part.assignment)

    def test_listener_receives_dirty_partitions(self):
        graphs, g, part = self._registry()
        seen = []
        graphs.subscribe(
            lambda name, epoch, dirty=None: seen.append((name, epoch, dirty))
        )
        u, v = self._non_edge(g)
        delta = graphs.apply_updates("default", inserts=np.array([[u, v]]))
        assert seen == [("default", 1, delta.dirty_partitions(part.assignment))]
        assert seen[0][2] == frozenset(
            int(part.assignment[w]) for w in (u, v)
        )

    def test_legacy_two_arg_listener_still_works(self):
        graphs, g, _ = self._registry()
        seen = []
        graphs.subscribe(lambda name, epoch: seen.append((name, epoch)))
        u, v = self._non_edge(g)
        graphs.apply_updates("default", inserts=np.array([[u, v]]))
        assert seen == [("default", 1)]

    def test_unpartitioned_graph_dirties_partition_zero(self):
        graphs = GraphRegistry()
        g = barabasi_albert(20, 2, seed=22)
        graphs.register("default", g)
        u, v = self._non_edge(g)
        seen = []
        graphs.subscribe(
            lambda name, epoch, dirty=None: seen.append(dirty)
        )
        graphs.apply_updates("default", inserts=np.array([[u, v]]))
        assert seen == [frozenset({0})]

    def test_noop_batch_reports_empty_dirty_set_but_bumps(self):
        graphs, g, _ = self._registry()
        present = (0, int(g.neighbors(0)[0]))
        seen = []
        graphs.subscribe(lambda name, epoch, dirty=None: seen.append(dirty))
        delta = graphs.apply_updates(
            "default", inserts=np.array([present])
        )
        assert not delta.changed
        assert seen == [frozenset()]
        assert graphs.get("default").epoch == 1

    def test_stored_graph_mutation_becomes_overlay(self, tmp_path):
        from repro.graph.store import build_store

        g = barabasi_albert(30, 2, seed=23)
        path = str(tmp_path / "store")
        build_store(g, path, partition="hash", num_parts=3)
        graphs = GraphRegistry()
        graphs.register("stored", path)
        record = graphs.get("stored")
        before = record.epoch
        assignment = np.asarray(record.graph.assignment).copy()
        u, v = self._non_edge(g)
        delta = graphs.apply_updates("stored", inserts=np.array([[u, v]]))
        record = graphs.get("stored")
        assert record.epoch == before + 1
        assert v in record.graph.neighbors(u)
        # Stored assignment frozen into the in-memory overlay.
        assert np.array_equal(record.graph.assignment, assignment)
        assert record.dirty_partitions(delta) == frozenset(
            int(assignment[w]) for w in (u, v)
        )


class TestNeighborsEndpoint:
    def test_neighbors_and_footprint(self):
        from repro.graph.partition import hash_partition
        from repro.graph.store import InMemoryGraph
        from repro.serve.endpoints import builtin_endpoints

        g = barabasi_albert(30, 2, seed=24)
        part = hash_partition(g, 5)
        graphs = GraphRegistry()
        graphs.register("default", InMemoryGraph(g, partition=part))
        record = graphs.get("default")
        ep = builtin_endpoints().get("graph.neighbors")
        assert ep.family == "graph"
        value, cost = ep.run(record, {"node": 7}, None)
        assert value == [int(w) for w in g.neighbors(7)]
        assert cost >= 1
        assert ep.partitions_read(record, {"node": 7}) == frozenset(
            {int(part.assignment[7])}
        )

    def test_footprint_is_none_when_unpartitioned(self):
        from repro.serve.endpoints import builtin_endpoints

        graphs = GraphRegistry()
        graphs.register("default", barabasi_albert(20, 2, seed=25))
        record = graphs.get("default")
        ep = builtin_endpoints().get("graph.neighbors")
        # InMemoryGraph without a Partition: part_of exists and maps
        # everything to 0, so the footprint is exact, not None.
        assert ep.partitions_read(record, {"node": 3}) == frozenset({0})


class TestEpochMonotonicityProperty:
    def test_strictly_monotonic_across_storage_kinds(self, tmp_path):
        """Property: every mutating registry operation — bump_epoch,
        replace (to in-memory or stored), apply_updates — strictly
        increases the record's epoch, across randomized interleavings
        that swap the backing store between in-memory and on-disk."""
        from repro.graph.store import build_store

        rng = np.random.default_rng(7)
        base = barabasi_albert(24, 2, seed=26)
        stores = []
        for i in range(2):
            path = str(tmp_path / f"store{i}")
            build_store(
                barabasi_albert(24, 2, seed=30 + i), path,
                partition="hash", num_parts=2,
            )
            stores.append(path)
        graphs = GraphRegistry()
        graphs.register("default", base)
        history = [graphs.get("default").epoch]
        for step in range(40):
            op = int(rng.integers(4))
            if op == 0:
                graphs.bump_epoch("default")
            elif op == 1:
                graphs.replace(
                    "default", barabasi_albert(24, 2, seed=int(rng.integers(99)))
                )
            elif op == 2:
                graphs.replace("default", stores[int(rng.integers(2))])
            else:
                live = graphs.get("default").graph.to_graph()
                batches = random_edge_updates(
                    live, 1, edge_fraction=0.02, seed=int(rng.integers(99))
                )
                ins, dels = batches[0]
                graphs.apply_updates("default", inserts=ins, deletes=dels)
            epoch = graphs.get("default").epoch
            assert epoch > history[-1], (
                f"step {step} op {op}: epoch {epoch} did not increase "
                f"past {history[-1]}"
            )
            history.append(epoch)
