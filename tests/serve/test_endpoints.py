"""Endpoint/graph registries and the served-engine contract."""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert
from repro.matching.backtrack import count_matches
from repro.matching.cliques import count_k_cliques
from repro.matching.pattern import triangle_pattern
from repro.serve.endpoints import (
    Endpoint,
    EndpointRegistry,
    GraphRegistry,
    builtin_endpoints,
    canonical_params,
    named_pattern,
)
from repro.tlav.algorithms import bfs, pagerank, wcc


@pytest.fixture
def graphs():
    registry = GraphRegistry()
    registry.register("default", barabasi_albert(60, 3, seed=5))
    return registry


class TestCanonicalParams:
    def test_order_independent(self):
        assert canonical_params({"a": 1, "b": 2}) == canonical_params(
            {"b": 2, "a": 1}
        )

    def test_numpy_scalars_normalized(self):
        assert canonical_params({"x": np.int64(3)}) == canonical_params({"x": 3})
        assert canonical_params({"x": np.float64(0.5)}) == canonical_params(
            {"x": 0.5}
        )

    def test_lists_and_tuples_collapse(self):
        assert canonical_params({"nodes": [1, 2]}) == canonical_params(
            {"nodes": (1, 2)}
        )

    def test_distinct_params_distinct(self):
        assert canonical_params({"k": 3}) != canonical_params({"k": 4})

    def test_hashable(self):
        {canonical_params({"nested": {"a": [1]}}): True}


class TestGraphRegistry:
    def test_epoch_bumps_on_replace(self, graphs):
        assert graphs.epoch("default") == 0
        graphs.replace("default", barabasi_albert(60, 3, seed=6))
        assert graphs.epoch("default") == 1

    def test_bump_epoch_declares_mutation(self, graphs):
        assert graphs.bump_epoch("default") == 1
        assert graphs.bump_epoch("default") == 2

    def test_subscribers_notified(self, graphs):
        seen = []
        graphs.subscribe(lambda name, epoch: seen.append((name, epoch)))
        graphs.replace("default", barabasi_albert(60, 3, seed=7))
        graphs.bump_epoch("default")
        assert seen == [("default", 1), ("default", 2)]

    def test_duplicate_register_rejected(self, graphs):
        with pytest.raises(ValueError):
            graphs.register("default", barabasi_albert(10, 2, seed=0))

    def test_unknown_graph_rejected(self, graphs):
        with pytest.raises(KeyError):
            graphs.get("nope")

    def test_derived_state_rebuilt_after_bump(self, graphs):
        record = graphs.get("default")
        gt_before = record.tensors()
        planner_before = record.planner()
        assert record.tensors() is gt_before  # cached within an epoch
        graphs.bump_epoch("default")
        assert record.tensors() is not gt_before
        assert record.planner() is not planner_before

    def test_ensure_gnn_deterministic(self, graphs):
        record = graphs.get("default")
        record.ensure_gnn()
        feats = record.features.copy()
        other = GraphRegistry()
        other.register("default", barabasi_albert(60, 3, seed=5))
        twin = other.get("default")
        twin.ensure_gnn()
        np.testing.assert_array_equal(feats, twin.features)


class TestEndpointRegistry:
    def test_builtin_covers_every_family(self):
        registry = builtin_endpoints()
        assert registry.families() == ["gnn", "matching", "tlag", "tlav"]

    def test_duplicate_rejected(self):
        registry = EndpointRegistry()
        ep = Endpoint("x", "test", lambda rec, p, ex: (1, 1))
        registry.register(ep)
        with pytest.raises(ValueError):
            registry.register(Endpoint("x", "test", lambda rec, p, ex: (1, 1)))

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(KeyError):
            builtin_endpoints().get("tlav.sssp")

    def test_cost_clamped_to_one(self, graphs):
        ep = Endpoint("zero", "test", lambda rec, p, ex: ("v", 0))
        _, cost = ep.run(graphs.get("default"), {})
        assert cost == 1

    def test_run_batch_requires_merge(self):
        ep = Endpoint("solo", "test", lambda rec, p, ex: (1, 1))
        assert not ep.merge_batch
        with pytest.raises(TypeError):
            ep.run_batch(None, [{}])

    def test_unknown_pattern_rejected(self):
        with pytest.raises(KeyError):
            named_pattern("pentagon")


class TestBuiltinEndpointsMatchEngines:
    """The serve contract: results are the direct engine answers."""

    def test_pagerank(self, graphs):
        record = graphs.get("default")
        result, cost = builtin_endpoints().get("tlav.pagerank").run(
            record, {"iterations": 5}
        )
        np.testing.assert_array_equal(
            result, pagerank(record.graph, iterations=5)
        )
        assert cost == 5 * record.graph.indices.size

    def test_bfs(self, graphs):
        record = graphs.get("default")
        result, _ = builtin_endpoints().get("tlav.bfs").run(
            record, {"source": 3}
        )
        np.testing.assert_array_equal(result, bfs(record.graph, 3))

    def test_wcc(self, graphs):
        record = graphs.get("default")
        result, _ = builtin_endpoints().get("tlav.wcc").run(record, {})
        np.testing.assert_array_equal(result, wcc(record.graph))

    def test_matching_count(self, graphs):
        record = graphs.get("default")
        result, cost = builtin_endpoints().get("matching.count").run(
            record, {"pattern": "triangle"}
        )
        assert result == count_matches(record.graph, triangle_pattern())
        assert cost >= 1

    def test_cliques(self, graphs):
        record = graphs.get("default")
        result, _ = builtin_endpoints().get("matching.cliques").run(
            record, {"k": 3}
        )
        assert result == count_k_cliques(record.graph, 3)

    def test_subgraph_query_matches_count(self, graphs):
        record = graphs.get("default")
        tlag, _ = builtin_endpoints().get("tlag.subgraph_query").run(
            record, {"pattern": "triangle"}
        )
        assert tlag == count_matches(record.graph, triangle_pattern())

    def test_gnn_predict_batch_equals_singles(self, graphs):
        record = graphs.get("default")
        ep = builtin_endpoints().get("gnn.predict")
        assert ep.merge_batch
        params = [{"nodes": [0, 1]}, {"nodes": [5]}, {"nodes": [2, 3, 4]}]
        batched, _ = ep.run_batch(record, params)
        singles = [ep.run(record, p)[0] for p in params]
        assert batched == singles
