"""The ``python -m repro serve`` verb."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestServeCLI:
    def test_smoke_text_report(self, capsys):
        assert main(["serve", "--scenario", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenario smoke" in out
        assert "p50" in out and "p95" in out and "p99" in out
        assert "cache hit rate" in out
        assert "ledger          OK" in out
        # At least one endpoint from every engine family in the table.
        for endpoint in ("tlav.pagerank", "matching.count", "gnn.predict",
                         "tlag.subgraph_query"):
            assert endpoint in out

    def test_smoke_json_report(self, capsys):
        assert main(["serve", "--scenario", "smoke", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "smoke"
        assert report["overall"]["ledger_ok"] is True
        assert report["overall"]["deadline_misses"] >= 0
        assert report["overall"]["qps_per_kops"] > 0
        assert report["request_spans"] == report["overall"]["completed"]
        assert "serve.latency_ops" in report["metrics"]
        assert "serve.cache.hits" in report["metrics"]
        for summary in report["endpoints"].values():
            assert {"p50", "p95", "p99", "deadline_misses"} <= set(summary)

    def test_json_deterministic_at_fixed_seed(self, capsys):
        assert main(["serve", "--scenario", "smoke", "--json", "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["serve", "--scenario", "smoke", "--json", "--seed", "5"]) == 0
        assert capsys.readouterr().out == first

    def test_burst_sheds_and_expires(self, capsys):
        assert main(["serve", "--scenario", "burst", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        overall = next(l for l in out.splitlines() if l.startswith("overall"))
        assert "shed=0" not in overall
        assert "expired=0" not in overall

    def test_no_cache_flag(self, capsys):
        assert main(["serve", "--scenario", "smoke", "--json", "--no-cache"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cache"] is False
        assert report["overall"]["cache_hits"] == 0

    def test_tuning_flags_respected(self, capsys):
        assert main(["serve", "--scenario", "smoke", "--json", "--workers", "3",
                     "--queue-bound", "8", "--batch-window", "32",
                     "--max-batch", "4"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workers"] == 3
        assert report["queue_bound"] == 8
        assert report["batch_window"] == 32
        assert report["max_batch"] == 4

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--scenario", "flood"])
