"""Micro-batch formation and execution."""

import pytest

from repro.graph.generators import barabasi_albert
from repro.serve.batcher import MicroBatcher
from repro.serve.endpoints import (
    Endpoint,
    GraphRegistry,
    builtin_endpoints,
    canonical_params,
)
from repro.serve.scheduler import Request


@pytest.fixture
def record():
    graphs = GraphRegistry()
    return graphs.register("default", barabasi_albert(40, 3, seed=2))


def _requests(endpoint, params_list, graph="default"):
    reqs = [
        Request(endpoint=endpoint, params=p, graph=graph, arrival=i)
        for i, p in enumerate(params_list)
    ]
    for i, r in enumerate(reqs):
        r.id = i
    return reqs


class TestBatchFormation:
    def test_duplicates_coalesce(self):
        batcher = MicroBatcher(window=10, max_batch=8)
        ep = Endpoint("test.dup", "test", lambda rec, p, ex: (p["x"], 10))
        reqs = _requests("test.dup", [{"x": 1}, {"x": 1}, {"x": 2}, {"x": 1}])
        canon = canonical_params(reqs[0].params)
        batch = batcher.collect(reqs[0], reqs, ep, 0, canon)
        # Same canonical params ride along; {"x": 2} stays queued.
        assert [r.id for r in batch] == [0, 1, 3]

    def test_merge_endpoint_ignores_params(self, record):
        batcher = MicroBatcher(window=10, max_batch=8)
        ep = builtin_endpoints().get("gnn.predict")
        reqs = _requests(
            "gnn.predict", [{"nodes": [0]}, {"nodes": [1]}, {"nodes": [2]}]
        )
        canon = canonical_params(reqs[0].params)
        batch = batcher.collect(reqs[0], reqs, ep, 0, canon)
        assert [r.id for r in batch] == [0, 1, 2]

    def test_max_batch_caps_membership(self):
        batcher = MicroBatcher(window=10, max_batch=2)
        ep = Endpoint("test.dup", "test", lambda rec, p, ex: (p["x"], 10))
        reqs = _requests("test.dup", [{"x": 1}] * 5)
        batch = batcher.collect(
            reqs[0], reqs, ep, 0, canonical_params(reqs[0].params)
        )
        assert [r.id for r in batch] == [0, 1]

    def test_epoch_in_key_blocks_cross_version(self):
        batcher = MicroBatcher()
        ep = Endpoint("test.dup", "test", lambda rec, p, ex: (p["x"], 10))
        canon = canonical_params({"x": 1})
        assert batcher.batch_key(ep, "default", 0, canon) != batcher.batch_key(
            ep, "default", 1, canon
        )

    def test_dispatch_time_window(self):
        assert MicroBatcher(window=0).dispatch_time(clock=100, head_arrival=90) == 100
        assert MicroBatcher(window=50).dispatch_time(clock=100, head_arrival=90) == 140
        # A window already elapsed never moves the clock backwards.
        assert MicroBatcher(window=5).dispatch_time(clock=100, head_arrival=10) == 100

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(window=-1)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)


class TestBatchExecution:
    def test_duplicate_batch_runs_engine_once(self, record):
        calls = []

        def run(rec, params, ex):
            calls.append(params)
            return params["x"] * 2, 10

        ep = Endpoint("test.dup", "test", run)
        reqs = _requests("test.dup", [{"x": 3}] * 4)
        values, cost = MicroBatcher().execute(ep, record, reqs)
        assert values == [6, 6, 6, 6]
        assert len(calls) == 1
        assert cost == 10

    def test_merge_batch_equals_singles(self, record):
        ep = builtin_endpoints().get("gnn.predict")
        reqs = _requests(
            "gnn.predict", [{"nodes": [0, 1]}, {"nodes": [7]}, {"nodes": [3, 9]}]
        )
        batched, _ = MicroBatcher().execute(ep, record, reqs)
        singles = [ep.run(record, r.params)[0] for r in reqs]
        assert batched == singles
