"""Versioned LRU result cache."""

import pytest

from repro.graph.generators import barabasi_albert
from repro.serve.cache import ResultCache
from repro.serve.endpoints import GraphRegistry, canonical_params


def _key(epoch=0, **params):
    return ResultCache.key("ep", "default", epoch, canonical_params(params))


class TestLookupAndPut:
    def test_miss_then_hit(self):
        cache = ResultCache()
        hit, _ = cache.lookup(_key(x=1))
        assert not hit
        cache.put(_key(x=1), "answer")
        hit, value = cache.lookup(_key(x=1))
        assert hit and value == "answer"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_epoch_is_part_of_identity(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "old")
        hit, _ = cache.lookup(_key(epoch=1, x=1))
        assert not hit

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(_key(x=1), "a")
        cache.put(_key(x=2), "b")
        cache.lookup(_key(x=1))  # refresh x=1
        cache.put(_key(x=3), "c")  # evicts x=2, the stalest
        assert _key(x=1) in cache
        assert _key(x=2) not in cache
        assert _key(x=3) in cache
        assert cache.as_dict()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestInvalidation:
    def test_invalidate_graph_drops_stale_epochs_only(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "old")
        cache.put(_key(epoch=1, x=1), "new")
        dropped = cache.invalidate_graph("default", current_epoch=1)
        assert dropped == 1
        assert _key(epoch=1, x=1) in cache
        assert _key(epoch=0, x=1) not in cache

    def test_attach_reclaims_on_registry_bump(self):
        graphs = GraphRegistry()
        graphs.register("default", barabasi_albert(20, 2, seed=1))
        cache = ResultCache().attach(graphs)
        cache.put(_key(epoch=0, x=1), "stale-to-be")
        graphs.bump_epoch("default")
        assert len(cache) == 0
        assert cache.as_dict()["invalidated"] == 1

    def test_other_graphs_untouched(self):
        cache = ResultCache()
        other = ResultCache.key("ep", "mesh", 0, canonical_params({}))
        cache.put(other, "keep")
        cache.put(_key(x=1), "drop")
        cache.invalidate_graph("default", current_epoch=5)
        assert other in cache
        assert len(cache) == 1


class TestStaleWhileRevalidate:
    def test_stale_lookup_needs_a_prior_epoch(self):
        cache = ResultCache(max_stale_epochs=2)
        found, _, _ = cache.lookup_stale("ep", "default", 1, canonical_params({"x": 1}))
        assert not found
        cache.put(_key(epoch=1, x=1), "current")
        # An entry at the *current* epoch is never served as stale.
        found, _, _ = cache.lookup_stale("ep", "default", 1, canonical_params({"x": 1}))
        assert not found
        assert cache.as_dict()["stale_misses"] == 2

    def test_newest_prior_epoch_wins(self):
        cache = ResultCache(max_stale_epochs=4)
        cache.put(_key(epoch=0, x=1), "older")
        cache.put(_key(epoch=2, x=1), "newer")
        found, value, staleness = cache.lookup_stale(
            "ep", "default", 3, canonical_params({"x": 1})
        )
        assert found and value == "newer"
        assert staleness == 1
        assert cache.as_dict()["stale_hits"] == 1

    def test_staleness_is_epoch_distance(self):
        cache = ResultCache(max_stale_epochs=8)
        cache.put(_key(epoch=2, x=1), "v")
        found, _, staleness = cache.lookup_stale(
            "ep", "default", 7, canonical_params({"x": 1})
        )
        assert found and staleness == 5

    def test_params_must_match_exactly(self):
        cache = ResultCache(max_stale_epochs=2)
        cache.put(_key(epoch=0, x=1), "v")
        found, _, _ = cache.lookup_stale(
            "ep", "default", 1, canonical_params({"x": 2})
        )
        assert not found

    def test_retention_floor_bounds_staleness(self):
        """invalidate_graph keeps only the max_stale_epochs newest prior
        epochs, so a stale answer can never exceed the bound."""
        cache = ResultCache(max_stale_epochs=2)
        for epoch in range(5):
            cache.put(_key(epoch=epoch, x=1), f"e{epoch}")
        cache.invalidate_graph("default", current_epoch=5)
        # Floor is 5 - 2 = 3: epochs 0-2 reclaimed, 3-4 retained.
        assert _key(epoch=2, x=1) not in cache
        assert _key(epoch=3, x=1) in cache
        assert _key(epoch=4, x=1) in cache
        found, value, staleness = cache.lookup_stale(
            "ep", "default", 5, canonical_params({"x": 1})
        )
        assert found and value == "e4"
        assert 1 <= staleness <= cache.max_stale_epochs

    def test_zero_stale_epochs_disables_the_ladder(self):
        cache = ResultCache(max_stale_epochs=0)
        cache.put(_key(epoch=0, x=1), "v")
        cache.invalidate_graph("default", current_epoch=1)
        found, _, _ = cache.lookup_stale(
            "ep", "default", 1, canonical_params({"x": 1})
        )
        assert not found

    def test_negative_stale_epochs_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_stale_epochs=-1)


class TestUnattachedStalenessBound:
    def test_lookup_stale_enforces_bound_without_registry(self):
        """Regression: an *unattached* cache (no registry eagerly
        reclaiming old epochs) must still refuse answers older than
        max_stale_epochs — the bound lives inside lookup_stale, not
        only in invalidate_graph's retention floor."""
        cache = ResultCache(max_stale_epochs=2)
        cache.put(_key(epoch=0, x=1), "ancient")
        # No invalidate_graph call: the entry is still resident.
        found, _, _ = cache.lookup_stale(
            "ep", "default", 5, canonical_params({"x": 1})
        )
        assert not found, "epoch 0 is 5 behind; bound is 2"
        # Within the bound it is served.
        found, value, staleness = cache.lookup_stale(
            "ep", "default", 2, canonical_params({"x": 1})
        )
        assert found and value == "ancient" and staleness == 2

    def test_bound_is_inclusive(self):
        cache = ResultCache(max_stale_epochs=3)
        cache.put(_key(epoch=4, x=1), "v")
        found, _, staleness = cache.lookup_stale(
            "ep", "default", 7, canonical_params({"x": 1})
        )
        assert found and staleness == 3
        found, _, _ = cache.lookup_stale(
            "ep", "default", 8, canonical_params({"x": 1})
        )
        assert not found


class TestInvalidateWithoutCurrentEpoch:
    def test_floor_resolves_from_newest_cached_epoch(self):
        cache = ResultCache(max_stale_epochs=2)
        for epoch in range(6):
            cache.put(_key(epoch=epoch, x=1), f"e{epoch}")
        reclaimed = cache.invalidate_graph("default")
        # Newest cached epoch is 5 -> floor 3: epochs 0-2 reclaimed,
        # 3-4 retained as the stale tail, 5 untouched (current).
        assert reclaimed == 3
        assert _key(epoch=5, x=1) in cache
        assert _key(epoch=4, x=1) in cache
        assert _key(epoch=3, x=1) in cache
        assert _key(epoch=2, x=1) not in cache

    def test_counters_account_reclaimed_vs_retained(self):
        cache = ResultCache(max_stale_epochs=1)
        for epoch in range(4):
            cache.put(_key(epoch=epoch, x=1), f"e{epoch}")
        cache.invalidate_graph("default")
        d = cache.as_dict()
        assert d["invalidated"] == 2  # epochs 0, 1
        assert d["retained"] == 1     # epoch 2
        assert len(cache) == 2        # epochs 2, 3

    def test_unknown_graph_is_a_noop(self):
        cache = ResultCache()
        assert cache.invalidate_graph("nope") == 0


class TestPartitionScopedInvalidation:
    def test_disjoint_footprint_promoted_to_new_epoch(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "clean", partitions={2})
        cache.put(_key(epoch=0, x=2), "dirty", partitions={0, 2})
        cache.put(_key(epoch=0, x=3), "whole-graph")  # None footprint
        cache.invalidate_graph("default", current_epoch=1,
                               dirty_partitions={0})
        hit, value = cache.lookup(_key(epoch=1, x=1))
        assert hit and value == "clean"
        hit, _ = cache.lookup(_key(epoch=1, x=2))
        assert not hit
        hit, _ = cache.lookup(_key(epoch=1, x=3))
        assert not hit
        assert cache.as_dict()["promoted"] == 1

    def test_empty_dirty_set_promotes_everything(self):
        """An empty dirty set is the registry's proof the batch was a
        structural no-op: even whole-graph entries stay fresh."""
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "a", partitions={3})
        cache.put(_key(epoch=0, x=2), "b")
        cache.invalidate_graph("default", current_epoch=1,
                               dirty_partitions=frozenset())
        assert cache.lookup(_key(epoch=1, x=1))[0]
        assert cache.lookup(_key(epoch=1, x=2))[0]
        assert cache.as_dict()["promoted"] == 2

    def test_no_dirty_info_means_no_promotion(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "a", partitions={3})
        cache.invalidate_graph("default", current_epoch=1)
        assert not cache.lookup(_key(epoch=1, x=1))[0]
        assert cache.as_dict()["promoted"] == 0

    def test_partition_scoped_off_disables_promotion(self):
        cache = ResultCache(partition_scoped=False)
        cache.put(_key(epoch=0, x=1), "a", partitions={3})
        cache.invalidate_graph("default", current_epoch=1,
                               dirty_partitions={0})
        assert not cache.lookup(_key(epoch=1, x=1))[0]

    def test_promotion_does_not_clobber_existing_entry(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "old", partitions={5})
        cache.put(_key(epoch=1, x=1), "already-fresh", partitions={5})
        cache.invalidate_graph("default", current_epoch=1,
                               dirty_partitions={0})
        hit, value = cache.lookup(_key(epoch=1, x=1))
        assert hit and value == "already-fresh"
        assert cache.index_consistent()
        # The displaced candidate is accounted, not silently dropped.
        assert cache.as_dict()["invalidated"] == 1
        assert cache.as_dict()["promoted"] == 0

    def test_multi_bump_does_not_resurrect_dirtied_entry(self):
        """Regression: an entry whose footprint was dirtied at epoch N
        must never be promoted by a *later* batch whose dirty set is
        disjoint (or empty) — only the immediately preceding epoch is
        judged against each batch."""
        cache = ResultCache(max_stale_epochs=8)
        cache.put(_key(epoch=1, x=1), "pre-mutation", partitions={3})
        # Batch 1 dirties partition 3: correctly not promoted.
        cache.invalidate_graph("default", current_epoch=2,
                               dirty_partitions={3})
        assert not cache.lookup(_key(epoch=2, x=1))[0]
        # Batch 2 dirties a disjoint partition: must not re-key the
        # stale-tail survivor to the current epoch.
        cache.invalidate_graph("default", current_epoch=3,
                               dirty_partitions={7})
        assert not cache.lookup(_key(epoch=3, x=1))[0]
        # A structural no-op batch must not resurrect it either.
        cache.invalidate_graph("default", current_epoch=4,
                               dirty_partitions=frozenset())
        assert not cache.lookup(_key(epoch=4, x=1))[0]
        assert cache.as_dict()["promoted"] == 0
        # It remains reachable only via the degraded stale path.
        found, value, staleness = cache.lookup_stale(
            "ep", "default", 4, canonical_params({"x": 1})
        )
        assert found and value == "pre-mutation" and staleness == 3

    def test_clean_entry_rides_consecutive_disjoint_batches(self):
        """An entry untouched by every batch is re-promoted each bump
        and stays fresh across the whole chain."""
        cache = ResultCache(max_stale_epochs=4)
        cache.put(_key(epoch=0, x=1), "clean", partitions={2})
        for cur in (1, 2, 3):
            cache.invalidate_graph("default", current_epoch=cur,
                                   dirty_partitions={9})
        hit, value = cache.lookup(_key(epoch=3, x=1))
        assert hit and value == "clean"
        assert cache.as_dict()["promoted"] == 3

    def test_stale_tail_entry_never_promoted(self):
        """Only epoch cur-1 is judged against a batch; an older retained
        entry stays in the stale tail even with a disjoint footprint."""
        cache = ResultCache(max_stale_epochs=4)
        cache.put(_key(epoch=0, x=1), "tail", partitions={2})
        cache.put(_key(epoch=2, x=1), "prev", partitions={2})
        cache.invalidate_graph("default", current_epoch=3,
                               dirty_partitions={9})
        hit, value = cache.lookup(_key(epoch=3, x=1))
        assert hit and value == "prev"
        assert _key(epoch=0, x=1) in cache  # retained, not re-keyed
        assert cache.as_dict()["promoted"] == 1

    def test_attached_registry_reports_dirty_partitions(self):
        import numpy as np

        from repro.graph.partition import hash_partition
        from repro.graph.store import InMemoryGraph

        g = barabasi_albert(40, 2, seed=9)
        part = hash_partition(g, 8)
        graphs = GraphRegistry()
        graphs.register("default", InMemoryGraph(g, partition=part))
        cache = ResultCache(max_stale_epochs=2).attach(graphs)
        clean_part = int(part.assignment[20])
        dirty_pair = next(
            (u, v)
            for u in range(g.num_vertices)
            for v in range(u + 1, g.num_vertices)
            if not g.has_edge(u, v)
        )
        dirty_parts = {int(part.assignment[v]) for v in dirty_pair}
        if clean_part in dirty_parts:  # keep the fixture meaningful
            clean_part = next(
                p for p in range(8) if p not in dirty_parts
            )
        cache.put(_key(epoch=0, x=1), "clean", partitions={clean_part})
        cache.put(_key(epoch=0, x=2), "dirty", partitions=dirty_parts)
        graphs.apply_updates(
            "default", inserts=np.array([dirty_pair]), deletes=()
        )
        assert cache.lookup(_key(epoch=1, x=1))[0]
        assert not cache.lookup(_key(epoch=1, x=2))[0]


class TestIndexAccounting:
    def test_randomized_operations_keep_index_consistent(self):
        import numpy as np

        rng = np.random.default_rng(42)
        cache = ResultCache(capacity=16, max_stale_epochs=2)
        graphs = ["g0", "g1", "g2"]
        epochs = {g: 0 for g in graphs}
        for step in range(600):
            op = rng.integers(4)
            g = graphs[int(rng.integers(len(graphs)))]
            if op == 0:
                key = ResultCache.key(
                    "ep", g, epochs[g],
                    canonical_params({"x": int(rng.integers(6))}),
                )
                parts = (
                    None if rng.integers(2) == 0
                    else {int(p) for p in rng.integers(0, 4, 2)}
                )
                cache.put(key, step, partitions=parts)
            elif op == 1:
                key = ResultCache.key(
                    "ep", g, epochs[g],
                    canonical_params({"x": int(rng.integers(6))}),
                )
                cache.lookup(key)
            elif op == 2:
                cache.lookup_stale(
                    "ep", g, epochs[g],
                    canonical_params({"x": int(rng.integers(6))}),
                )
            else:
                epochs[g] += 1
                dirty = (
                    None if rng.integers(2) == 0
                    else {int(p) for p in rng.integers(0, 4, 1)}
                )
                cache.invalidate_graph(
                    g, current_epoch=epochs[g], dirty_partitions=dirty
                )
            assert cache.index_consistent(), f"index drifted at step {step}"
        assert len(cache) <= cache.capacity


class TestHitRateAccounting:
    def test_stale_hits_do_not_inflate_fresh_hit_rate(self):
        cache = ResultCache(max_stale_epochs=4)
        cache.put(_key(epoch=0, x=1), "v")
        cache.lookup(_key(epoch=1, x=1))  # fresh miss
        found, _, _ = cache.lookup_stale(
            "ep", "default", 1, canonical_params({"x": 1})
        )
        assert found
        assert cache.hit_rate == 0.0  # 0 fresh hits / 1 fresh miss
        assert cache.stale_hit_rate == 1.0
        d = cache.as_dict()
        assert d["hit_rate"] == 0.0
        assert d["stale_hits"] == 1 and d["stale_misses"] == 0
        assert d["stale_hit_rate"] == 1.0

    def test_as_dict_mirrors_counters(self):
        cache = ResultCache(max_stale_epochs=1)
        cache.put(_key(epoch=0, x=1), "v", partitions={1})
        cache.lookup(_key(epoch=0, x=1))
        cache.invalidate_graph("default", current_epoch=1,
                               dirty_partitions={1})
        d = cache.as_dict()
        assert d["hits"] == cache.hits == 1
        assert d["retained"] == 1 and d["promoted"] == 0
        assert d["partition_scoped"] is True
        assert d["max_stale_epochs"] == 1
