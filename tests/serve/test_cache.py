"""Versioned LRU result cache."""

import pytest

from repro.graph.generators import barabasi_albert
from repro.serve.cache import ResultCache
from repro.serve.endpoints import GraphRegistry, canonical_params


def _key(epoch=0, **params):
    return ResultCache.key("ep", "default", epoch, canonical_params(params))


class TestLookupAndPut:
    def test_miss_then_hit(self):
        cache = ResultCache()
        hit, _ = cache.lookup(_key(x=1))
        assert not hit
        cache.put(_key(x=1), "answer")
        hit, value = cache.lookup(_key(x=1))
        assert hit and value == "answer"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_epoch_is_part_of_identity(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "old")
        hit, _ = cache.lookup(_key(epoch=1, x=1))
        assert not hit

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(_key(x=1), "a")
        cache.put(_key(x=2), "b")
        cache.lookup(_key(x=1))  # refresh x=1
        cache.put(_key(x=3), "c")  # evicts x=2, the stalest
        assert _key(x=1) in cache
        assert _key(x=2) not in cache
        assert _key(x=3) in cache
        assert cache.as_dict()["evictions"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestInvalidation:
    def test_invalidate_graph_drops_stale_epochs_only(self):
        cache = ResultCache()
        cache.put(_key(epoch=0, x=1), "old")
        cache.put(_key(epoch=1, x=1), "new")
        dropped = cache.invalidate_graph("default", current_epoch=1)
        assert dropped == 1
        assert _key(epoch=1, x=1) in cache
        assert _key(epoch=0, x=1) not in cache

    def test_attach_reclaims_on_registry_bump(self):
        graphs = GraphRegistry()
        graphs.register("default", barabasi_albert(20, 2, seed=1))
        cache = ResultCache().attach(graphs)
        cache.put(_key(epoch=0, x=1), "stale-to-be")
        graphs.bump_epoch("default")
        assert len(cache) == 0
        assert cache.as_dict()["invalidated"] == 1

    def test_other_graphs_untouched(self):
        cache = ResultCache()
        other = ResultCache.key("ep", "mesh", 0, canonical_params({}))
        cache.put(other, "keep")
        cache.put(_key(x=1), "drop")
        cache.invalidate_graph("default", current_epoch=5)
        assert other in cache
        assert len(cache) == 1


class TestStaleWhileRevalidate:
    def test_stale_lookup_needs_a_prior_epoch(self):
        cache = ResultCache(max_stale_epochs=2)
        found, _, _ = cache.lookup_stale("ep", "default", 1, canonical_params({"x": 1}))
        assert not found
        cache.put(_key(epoch=1, x=1), "current")
        # An entry at the *current* epoch is never served as stale.
        found, _, _ = cache.lookup_stale("ep", "default", 1, canonical_params({"x": 1}))
        assert not found
        assert cache.as_dict()["stale_misses"] == 2

    def test_newest_prior_epoch_wins(self):
        cache = ResultCache(max_stale_epochs=4)
        cache.put(_key(epoch=0, x=1), "older")
        cache.put(_key(epoch=2, x=1), "newer")
        found, value, staleness = cache.lookup_stale(
            "ep", "default", 3, canonical_params({"x": 1})
        )
        assert found and value == "newer"
        assert staleness == 1
        assert cache.as_dict()["stale_hits"] == 1

    def test_staleness_is_epoch_distance(self):
        cache = ResultCache(max_stale_epochs=8)
        cache.put(_key(epoch=2, x=1), "v")
        found, _, staleness = cache.lookup_stale(
            "ep", "default", 7, canonical_params({"x": 1})
        )
        assert found and staleness == 5

    def test_params_must_match_exactly(self):
        cache = ResultCache(max_stale_epochs=2)
        cache.put(_key(epoch=0, x=1), "v")
        found, _, _ = cache.lookup_stale(
            "ep", "default", 1, canonical_params({"x": 2})
        )
        assert not found

    def test_retention_floor_bounds_staleness(self):
        """invalidate_graph keeps only the max_stale_epochs newest prior
        epochs, so a stale answer can never exceed the bound."""
        cache = ResultCache(max_stale_epochs=2)
        for epoch in range(5):
            cache.put(_key(epoch=epoch, x=1), f"e{epoch}")
        cache.invalidate_graph("default", current_epoch=5)
        # Floor is 5 - 2 = 3: epochs 0-2 reclaimed, 3-4 retained.
        assert _key(epoch=2, x=1) not in cache
        assert _key(epoch=3, x=1) in cache
        assert _key(epoch=4, x=1) in cache
        found, value, staleness = cache.lookup_stale(
            "ep", "default", 5, canonical_params({"x": 1})
        )
        assert found and value == "e4"
        assert 1 <= staleness <= cache.max_stale_epochs

    def test_zero_stale_epochs_disables_the_ladder(self):
        cache = ResultCache(max_stale_epochs=0)
        cache.put(_key(epoch=0, x=1), "v")
        cache.invalidate_graph("default", current_epoch=1)
        found, _, _ = cache.lookup_stale(
            "ep", "default", 1, canonical_params({"x": 1})
        )
        assert not found

    def test_negative_stale_epochs_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(max_stale_epochs=-1)
