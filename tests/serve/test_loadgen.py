"""Load generators and the named serving scenarios."""

import pytest

from repro.serve.loadgen import (
    SCENARIOS,
    ClosedLoop,
    MixEntry,
    open_loop,
    run_scenario,
    scenario_requests,
)

_MIX = [
    MixEntry("tlav.bfs", lambda r: {"source": int(r.integers(50))}, weight=2.0),
    MixEntry("matching.count", lambda r: {"pattern": "triangle"}, weight=1.0),
]


class TestOpenLoop:
    def test_deterministic_at_fixed_seed(self):
        a = open_loop(_MIX, 20, 100, tenants=("t1", "t2"), seed=7)
        b = open_loop(_MIX, 20, 100, tenants=("t1", "t2"), seed=7)
        assert [(r.endpoint, r.arrival, r.tenant, r.params) for r in a] == [
            (r.endpoint, r.arrival, r.tenant, r.params) for r in b
        ]

    def test_seed_changes_stream(self):
        a = open_loop(_MIX, 20, 100, seed=7)
        b = open_loop(_MIX, 20, 100, seed=8)
        assert [r.arrival for r in a] != [r.arrival for r in b]

    def test_arrivals_strictly_increase(self):
        arrivals = [r.arrival for r in open_loop(_MIX, 30, 50, seed=1)]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_deadline_slack_applied(self):
        mix = [MixEntry("tlav.bfs", lambda r: {"source": 0}, deadline_slack=500)]
        (req,) = open_loop(mix, 1, 10, seed=0)
        assert req.deadline == req.arrival + 500


class TestClosedLoop:
    def test_one_initial_request_per_client(self):
        loop = ClosedLoop(_MIX, clients=("a", "b"), requests_per_client=3, seed=1)
        initial = loop.initial_requests()
        assert [r.tenant for r in initial] == ["a", "b"]

    def test_budget_limits_followups(self):
        loop = ClosedLoop(
            _MIX, clients=("a",), requests_per_client=3, think_ops=10, seed=1,
        )
        (first,) = loop.initial_requests()

        class FakeResponse:
            def __init__(self, tenant, completed):
                self.request = type("R", (), {"tenant": tenant})()
                self.completed = completed

        follow1 = loop.feedback(FakeResponse("a", 100))
        follow2 = loop.feedback(FakeResponse("a", 300))
        assert follow1.arrival == 110 and follow2.arrival == 310
        assert loop.feedback(FakeResponse("a", 500)) is None  # budget spent
        assert loop.submitted == 3


class TestScenarios:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_requests("nope")

    def test_all_scenarios_build(self):
        for name in SCENARIOS:
            spec = scenario_requests(name, seed=0)
            assert spec["waves"] and "default" in spec["graphs"]

    def test_smoke_report_shape(self):
        report = run_scenario("smoke", seed=0)
        overall = report["overall"]
        assert overall["ledger_ok"]
        assert overall["in_flight"] == 0
        assert overall["qps_per_kops"] > 0
        # One endpoint from every engine family, each quoting tail latency.
        families = {name.split(".")[0] for name in report["endpoints"]}
        assert families == {"tlav", "matching", "gnn", "tlag"}
        for summary in report["endpoints"].values():
            assert summary["p50"] <= summary["p95"] <= summary["p99"]

    def test_smoke_deterministic_at_fixed_seed(self):
        assert run_scenario("smoke", seed=3) == run_scenario("smoke", seed=3)

    def test_burst_exercises_slo_machinery(self):
        report = run_scenario("burst", seed=0)
        overall = report["overall"]
        assert overall["shed"] > 0
        assert overall["expired"] > 0
        assert overall["deadline_misses"] > 0
        assert overall["ledger_ok"]

    def test_mixed_survives_epoch_bump(self):
        report = run_scenario("mixed", seed=0)
        assert report["overall"]["ledger_ok"]
        assert report["overall"]["cache_hits"] >= 0
        # Closed-loop tenants did real work alongside the open loop.
        assert report["tenants"]["dan"] > 0 and report["tenants"]["erin"] > 0

    def test_cache_off_run_has_no_hits(self):
        report = run_scenario("smoke", seed=0, cache=False)
        assert report["overall"]["cache_hits"] == 0
        assert report["overall"]["ledger_ok"]

    def test_cache_improves_hit_rate_on_smoke(self):
        report = run_scenario("smoke", seed=0)
        assert report["overall"]["cache_hit_rate"] > 0


class TestTemporalScenario:
    def test_temporal_is_deterministic_and_ledger_clean(self):
        report = run_scenario("temporal", seed=0)
        assert report["overall"]["ledger_ok"]
        assert report == run_scenario("temporal", seed=0)

    def test_temporal_promotes_across_mutation_batches(self):
        """The hot graph.neighbors set keeps hitting after epoch bumps
        because clean-footprint entries are promoted, not reclaimed."""
        report = run_scenario("temporal", seed=0)
        assert report["overall"]["cache_hit_rate"] > 0
        assert "graph.neighbors" in report["endpoints"]
        assert report["endpoints"]["graph.neighbors"]["cache_hits"] > 0

    def test_update_stream_hooks_apply_in_order(self):
        import numpy as np

        from repro.graph.generators import barabasi_albert
        from repro.serve.endpoints import GraphRegistry
        from repro.serve.loadgen import update_stream

        g = barabasi_albert(40, 2, seed=3)
        graphs = GraphRegistry()
        graphs.register("default", g)
        hooks = update_stream(g, num_batches=4, edge_fraction=0.02, seed=5)
        for hook in hooks:
            delta = hook(graphs)
            assert delta.changed
        assert graphs.get("default").epoch == 4


class TestMutateSoak:
    def test_mutate_soak_contract_holds(self):
        from repro.serve.soak import run_mutate_soak

        report = run_mutate_soak(seed=0, num_batches=8)
        assert report["ok"], report["assertions"]
        assert report["final_epoch"] == 8
        assert report["cache"]["promoted"] > 0
        assert report["pagerank_max_err"] < 1e-6
