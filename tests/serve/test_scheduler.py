"""Scheduler edges: deadlines, shedding, fairness, caching, batching."""

import pytest

from repro.graph.generators import barabasi_albert
from repro.resilience import RetryPolicy
from repro.serve.endpoints import Endpoint, EndpointRegistry, GraphRegistry
from repro.serve.scheduler import Request, Server


def _test_endpoints():
    """Fixed-cost endpoints so clock arithmetic is exact in tests."""
    registry = EndpointRegistry()
    registry.register(Endpoint(
        "test.work", "test",
        lambda rec, p, ex: (("w", p.get("x", 0)), int(p.get("cost", 100))),
    ))

    def boom(rec, p, ex):
        raise ValueError("engine down")

    registry.register(Endpoint("test.boom", "test", boom))
    return registry


@pytest.fixture
def graphs():
    registry = GraphRegistry()
    registry.register("default", barabasi_albert(20, 2, seed=3))
    return registry


def _server(graphs, **kwargs):
    kwargs.setdefault("endpoints", _test_endpoints())
    kwargs.setdefault("num_workers", 1)
    return Server(graphs, **kwargs)


class TestBasics:
    def test_single_request_lifecycle(self, graphs):
        server = _server(graphs)
        server.submit(Request(endpoint="test.work", params={"x": 7, "cost": 50}))
        (response,) = server.run()
        assert response.ok
        assert response.value == ("w", 7)
        assert response.cost == 50
        assert response.latency == 50
        assert server.stats.in_flight == 0

    def test_unknown_endpoint_rejected(self, graphs):
        with pytest.raises(KeyError):
            _server(graphs).submit(Request(endpoint="test.missing"))

    def test_unknown_graph_rejected(self, graphs):
        with pytest.raises(KeyError):
            _server(graphs).submit(Request(endpoint="test.work", graph="mesh"))

    def test_responses_in_id_order(self, graphs):
        server = _server(graphs, num_workers=2)
        for i in range(5):
            server.submit(Request(
                endpoint="test.work", params={"x": i, "cost": 10 * (5 - i)},
            ))
        responses = server.run()
        assert [r.request.id for r in responses] == list(range(5))


class TestDeadlines:
    def test_expiry_mid_queue(self, graphs):
        """A queued request whose deadline passes while a long request
        holds the only worker is dropped as expired, never executed."""
        server = _server(graphs)
        server.submit(Request(
            endpoint="test.work", params={"cost": 10_000}, arrival=0,
        ))
        server.submit(Request(
            endpoint="test.work", params={"x": 1}, arrival=0, deadline=100,
        ))
        slow, expired = server.run()
        assert slow.ok
        assert expired.status == "expired"
        assert expired.deadline_missed
        assert expired.value is None
        assert server.stats.expired == 1
        assert server.stats.deadline_misses == 1

    def test_late_completion_counts_miss_but_answers(self, graphs):
        server = _server(graphs)
        server.submit(Request(
            endpoint="test.work", params={"cost": 10_000}, arrival=0,
        ))
        server.submit(Request(
            endpoint="test.work", params={"x": 1}, arrival=0, deadline=10_050,
        ))
        _, late = server.run()
        assert late.ok  # still answered ...
        assert late.deadline_missed  # ... but counted as a miss
        assert late.completed == 10_100
        assert server.stats.deadline_misses == 1

    def test_deadline_met_is_clean(self, graphs):
        server = _server(graphs)
        server.submit(Request(
            endpoint="test.work", params={"cost": 50}, deadline=100,
        ))
        (response,) = server.run()
        assert response.ok and not response.deadline_missed
        assert server.stats.deadline_misses == 0


class TestBackpressure:
    def test_burst_beyond_bound_sheds(self, graphs):
        server = _server(graphs, queue_bound=2)
        for i in range(5):
            server.submit(Request(
                endpoint="test.work", params={"x": i}, arrival=0,
            ))
        responses = server.run()
        assert [r.status for r in responses] == ["ok", "ok", "shed", "shed", "shed"]
        assert server.stats.shed == 3
        assert server.stats.peak_queue_depth <= 2

    def test_drained_queue_readmits(self, graphs):
        """Shedding is instantaneous backpressure, not a permanent ban:
        arrivals after the queue drains are admitted again."""
        server = _server(graphs, queue_bound=1)
        server.submit(Request(endpoint="test.work", params={"cost": 10}, arrival=0))
        server.submit(Request(endpoint="test.work", params={"x": 1}, arrival=500))
        responses = server.run()
        assert [r.status for r in responses] == ["ok", "ok"]

    def test_ledger_holds_under_mixed_outcomes(self, graphs):
        server = _server(graphs, queue_bound=3)
        for i in range(8):
            server.submit(Request(
                endpoint="test.work", params={"x": i, "cost": 1_000},
                arrival=0, deadline=1_500,
            ))
        server.run()
        stats = server.stats
        assert stats.in_flight == 0
        assert stats.admitted == stats.completed + stats.shed + stats.expired
        assert stats.admitted == 8


class TestFairnessAndPriority:
    def test_least_served_tenant_interleaves(self, graphs):
        """Max-min fairness: a light tenant's requests overtake a heavy
        tenant's backlog instead of waiting behind all of it."""
        server = _server(graphs, enable_cache=False, max_batch=1)
        for i in range(3):
            server.submit(Request(
                endpoint="test.work", params={"x": i, "cost": 1_000},
                tenant="hog",
            ))
        for i in range(3):
            server.submit(Request(
                endpoint="test.work", params={"x": i, "cost": 10},
                tenant="mouse",
            ))
        responses = server.run()
        mouse_last = max(
            r.completed for r in responses if r.request.tenant == "mouse"
        )
        hog_second = sorted(
            r.completed for r in responses if r.request.tenant == "hog"
        )[1]
        assert mouse_last < hog_second
        work = server.tenant_work
        assert work["hog"] == 3_000 and work["mouse"] == 30

    def test_priority_lane_overtakes_fifo(self, graphs):
        server = _server(graphs)
        server.submit(Request(endpoint="test.work", params={"cost": 1_000}))
        server.submit(Request(
            endpoint="test.work", params={"x": 1, "cost": 10},
            arrival=10, priority=0,
        ))
        server.submit(Request(
            endpoint="test.work", params={"x": 2, "cost": 10},
            arrival=20, priority=1,
        ))
        _, low, high = server.run()
        assert high.completed < low.completed


class TestCache:
    def test_hit_is_cheap_and_equal(self, graphs):
        server = _server(graphs)
        server.submit(Request(endpoint="test.work", params={"x": 5}, arrival=0))
        (cold,) = server.run()
        server.submit(Request(
            endpoint="test.work", params={"x": 5}, arrival=server.clock,
        ))
        (hot,) = server.run()
        assert not cold.cache_hit and hot.cache_hit
        assert hot.value == cold.value
        assert hot.cost == 1
        assert server.cache.hits == 1

    def test_epoch_bump_invalidates(self, graphs):
        server = _server(graphs)
        request = dict(endpoint="test.work", params={"x": 5})
        server.submit(Request(**request, arrival=0))
        server.run()
        server.submit(Request(**request, arrival=server.clock))
        (hot,) = server.run()
        assert hot.cache_hit

        graphs.bump_epoch("default")
        assert len(server.cache) == 0  # eagerly reclaimed
        server.submit(Request(**request, arrival=server.clock))
        (fresh,) = server.run()
        assert not fresh.cache_hit  # epoch is in the key: forced re-miss

    def test_disabled_cache_never_hits(self, graphs):
        server = _server(graphs, enable_cache=False)
        for arrival in (0, 1_000):
            server.submit(Request(
                endpoint="test.work", params={"x": 5}, arrival=arrival,
            ))
        responses = server.run()
        assert not any(r.cache_hit for r in responses)
        assert server.cache is None


class TestBatching:
    def test_window_coalesces_duplicates(self, graphs):
        server = _server(
            graphs, batch_window=200, max_batch=4, enable_cache=False,
        )
        for arrival in (0, 50, 100):
            server.submit(Request(
                endpoint="test.work", params={"x": 9}, arrival=arrival,
            ))
        responses = server.run()
        assert [r.batch_size for r in responses] == [3, 3, 3]
        assert all(r.value == ("w", 9) for r in responses)
        # One engine call charged once; members share the dispatch clock.
        assert len({r.completed for r in responses}) == 1

    def test_any_batch_cut_matches_unbatched(self, graphs):
        """Batcher determinism: values and statuses are identical for
        every batch cut the window/size cap can produce."""
        stream = [
            Request(endpoint="test.work", params={"x": i % 2}, arrival=i * 40,
                    tenant=("a", "b")[i % 2])
            for i in range(6)
        ]

        def run_with(max_batch, window):
            graphs_local = GraphRegistry()
            graphs_local.register("default", barabasi_albert(20, 2, seed=3))
            server = _server(
                graphs_local, batch_window=window, max_batch=max_batch,
                enable_cache=False,
            )
            for req in stream:
                server.submit(Request(
                    endpoint=req.endpoint, params=dict(req.params),
                    arrival=req.arrival, tenant=req.tenant,
                ))
            return [(r.status, r.value) for r in server.run()]

        baseline = run_with(max_batch=1, window=0)
        for max_batch in (2, 3, 8):
            assert run_with(max_batch, window=200) == baseline


class TestErrorsAndFeedback:
    def test_exhausted_retries_yield_error_response(self, graphs):
        server = _server(graphs, retry=RetryPolicy(max_attempts=2))
        server.submit(Request(endpoint="test.boom"))
        (response,) = server.run()
        assert response.status == "error"
        assert "ValueError" in response.error
        assert server.stats.completed == 1  # errors are terminal, not lost
        assert server.stats.in_flight == 0

    def test_closed_loop_feedback_submits_followup(self, graphs):
        server = _server(graphs)

        def feedback(response):
            if response.request.params.get("x") == 0:
                return Request(
                    endpoint="test.work", params={"x": 1, "cost": 10},
                    arrival=0,  # too early: must be clamped to completion
                )
            return None

        server.submit(Request(endpoint="test.work", params={"x": 0, "cost": 50}))
        first, follow = server.run(feedback=feedback)
        assert follow.request.arrival >= first.completed
        assert follow.ok
        assert server.stats.admitted == 2
