"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestCLI:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "G-thinker" in out
        assert "Dorylus" in out

    def test_generate_and_analyze(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        assert main(["generate", "ba", path, "--n", "120", "--m", "3"]) == 0
        assert main(["analyze", path]) == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "max core" in out
        assert "graphlets" in out

    def test_analyze_json(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        main(["generate", "ba", path, "--n", "120", "--m", "3"])
        capsys.readouterr()
        assert main(["analyze", path, "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["num_vertices"] == 120
        assert profile["degree"]["min"] >= 1
        assert "triangles" in profile
        assert "graphlets" in profile

    def test_analyze_parallel_flags(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        main(["generate", "ba", path, "--n", "150", "--m", "3"])
        capsys.readouterr()
        assert main(["analyze", path, "--backend", "thread",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "backend=thread" in out
        assert "workers=2" in out
        assert "efficiency=" in out

    def test_analyze_parallel_json_profile(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        main(["generate", "er", path, "--n", "100", "--p", "0.08"])
        capsys.readouterr()
        # Default (auto) baseline and a threaded run must count identically.
        assert main(["analyze", path, "--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert main(["analyze", path, "--json", "--backend", "thread",
                     "--workers", "2"]) == 0
        threaded = json.loads(capsys.readouterr().out)
        assert default["parallel"]["backend"] == "auto"
        assert "cost_model" in default["parallel"]
        assert threaded["parallel"]["backend"] == "thread"
        assert threaded["parallel"]["workers"] == 2
        assert threaded["triangles"] == default["triangles"]
        assert 0.0 < threaded["parallel"]["efficiency"] <= 1.0

    def test_analyze_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "g.txt", "--backend", "gpu"])

    def test_obs_demo(self, capsys):
        assert main(["obs-demo", "--workers", "3"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        metrics = snapshot["metrics"]
        # All three engines reported into the one shared registry.
        assert "tlag.tasks_executed" in metrics
        assert "tlav.supersteps" in metrics
        assert "cluster.messages" in metrics
        assert "core.pipeline.stages" in metrics
        (root,) = snapshot["spans"]
        assert root["name"] == "obs-demo"
        child_names = {c["name"] for c in root["children"]}
        assert "tlag.run" in child_names
        assert "stage:pagerank" in child_names
        assert snapshot["workload"]["workers"] == 3

    def test_generate_all_kinds(self, tmp_path):
        for kind in ("er", "ba", "rmat", "ws", "grid"):
            path = str(tmp_path / f"{kind}.txt")
            args = ["generate", kind, path, "--n", "30", "--m", "2",
                    "--p", "0.1", "--scale", "5"]
            assert main(args) == 0

    def test_match_planned_vs_worst_same_count(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        main(["generate", "er", path, "--n", "60", "--p", "0.15"])
        capsys.readouterr()
        assert main(["match", path, "triangle", "--order", "planned"]) == 0
        planned = capsys.readouterr().out
        assert main(["match", path, "triangle", "--order", "worst"]) == 0
        worst = capsys.readouterr().out
        count_planned = int(planned.split("instances:")[1].split()[0])
        count_worst = int(worst.split("instances:")[1].split()[0])
        assert count_planned == count_worst

    def test_unknown_pattern_rejected(self, tmp_path):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["match", "g.txt", "pentagon"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestChaosCLI:
    def test_chaos_all_scenarios_recover(self, capsys):
        assert main(["chaos", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        for scenario in ("executor", "network", "tlav", "tlag", "gnn",
                         "lambda"):
            assert f"{scenario}" in out
        assert "FAILED" not in out
        assert "fault seed 7" in out

    def test_chaos_json_report(self, capsys):
        assert main(["chaos", "--scenario", "tlav", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["fault_seed"] == 0
        assert report["scenarios"]["tlav"]["ok"] is True
        assert "resilience.faults_injected" in report["resilience_metrics"]
        assert any(
            s["attrs"]["engine"] == "tlav" for s in report["recover_spans"]
        )

    def test_chaos_single_scenario(self, capsys):
        assert main(["chaos", "--scenario", "network"]) == 0
        out = capsys.readouterr().out
        assert "retransmits=" in out
        assert "tlav" not in out

    def test_chaos_seed_defaults_to_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "13")
        assert main(["chaos", "--scenario", "lambda"]) == 0
        assert "fault seed 13" in capsys.readouterr().out

    def test_analyze_chaos_reports_recovery(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        main(["generate", "ba", path, "--n", "150", "--m", "3"])
        capsys.readouterr()
        # Failure-free profile as reference ...
        assert main(["analyze", path, "--json"]) == 0
        reference = json.loads(capsys.readouterr().out)
        assert reference["resilience"]["faults_injected"] == 0
        # ... and the chaotic run must still report the same triangles.
        assert main(["analyze", path, "--json", "--chaos",
                     "--backend", "thread", "--workers", "2"]) == 0
        chaotic = json.loads(capsys.readouterr().out)
        assert chaotic["triangles"] == reference["triangles"]
        res = chaotic["resilience"]
        assert res["faults_injected"] == 1
        assert res["redispatched_chunks"] == 1
        assert res["recover_spans"][0]["attrs"]["engine"] == "executor"


class TestMinibatchCLI:
    def test_text_mode_reports_pipeline(self, capsys):
        assert main(["minibatch", "--n", "60", "--epochs", "2",
                     "--fanout", "2"]) == 0
        out = capsys.readouterr().out
        assert "minibatch" in out
        assert "overlap speedup" in out
        assert "hit rate" in out
        assert "coverage" in out and "OK" in out

    def test_json_mode_smoke_contract(self, capsys):
        assert main(["minibatch", "--n", "60", "--epochs", "2",
                     "--fanout", "2", "--prefetch", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["steps"] == 2 * report["batches_per_epoch"]
        assert len(report["losses"]) == report["steps"]
        assert report["schedule"]["overlap_speedup"] >= 1.0
        assert "gnn.loader.batches" in report["metrics"]
        assert "gnn.cache.hits" in report["metrics"]

    def test_cache_kinds_and_full_eval(self, capsys):
        assert main(["minibatch", "--n", "60", "--epochs", "1",
                     "--fanout", "2", "--cache", "static",
                     "--full-eval", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["full_eval"] is True
        assert main(["minibatch", "--n", "60", "--epochs", "1",
                     "--fanout", "2", "--cache", "none", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["cache_report"]["hits"] == 0
