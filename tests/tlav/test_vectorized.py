"""Dense (frontier-at-a-time) supersteps vs the per-vertex engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import barabasi_albert, erdos_renyi, grid_graph
from repro.obs import MetricsRegistry
from repro.tlav import bfs_dense, pagerank_dense, wcc_dense
from repro.tlav.algorithms import bfs, pagerank, wcc


class TestPageRankDense:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_to_engine(self, seed):
        # Not merely allclose: the dense scatter replays the engine's
        # additions in the same order (see repro.tlav.vectorized).
        g = erdos_renyi(120, 0.05, seed=seed)
        assert np.array_equal(
            pagerank_dense(g, iterations=12), pagerank(g, iterations=12)
        )

    def test_bit_identical_with_dangling_vertices(self):
        # A directed graph guarantees sinks, exercising the aggregator
        # fold order.
        g = erdos_renyi(80, 0.04, seed=5, directed=True)
        assert np.array_equal(pagerank_dense(g), pagerank(g))

    def test_bit_identical_on_skewed_graph(self, small_ba):
        assert np.array_equal(pagerank_dense(small_ba), pagerank(small_ba))

    def test_scores_sum_to_one(self, small_er):
        assert pagerank_dense(small_er).sum() == pytest.approx(1.0)

    def test_records_superstep_counters(self, small_er):
        obs = MetricsRegistry()
        pagerank_dense(small_er, iterations=7, obs=obs)
        assert obs.get("tlav.dense.supersteps").total == 7
        assert (
            obs.get("tlav.dense.edges_processed").total
            == 7 * small_er.indices.size
        )


class TestBFSDense:
    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_equals_engine_bfs(self, seed):
        g = erdos_renyi(60, 0.06, seed=seed)
        assert np.array_equal(bfs_dense(g, 0), bfs(g, 0))

    def test_unreachable_vertices_stay_minus_one(self):
        g = grid_graph(4, 4)
        levels = bfs_dense(g, 0)
        assert levels.min() >= 0  # grid is connected
        sparse = erdos_renyi(40, 0.01, seed=3)
        assert np.array_equal(bfs_dense(sparse, 0), bfs(sparse, 0))


class TestWCCDense:
    @given(st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_equals_engine_wcc(self, seed):
        g = erdos_renyi(50, 0.03, seed=seed)
        assert np.array_equal(wcc_dense(g), wcc(g))

    def test_skewed_graph(self):
        g = barabasi_albert(200, 2, seed=9)
        assert np.array_equal(wcc_dense(g), wcc(g))
