"""Personalized PageRank and weighted shortest paths vs oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import Graph, GraphBuilder
from repro.graph.generators import barabasi_albert, cycle_graph, star_graph
from repro.graph.weighted import dijkstra, edge_label_weight
from repro.tlav.algorithms import SSSPProgram
from repro.tlav.engine import PregelEngine
from repro.tlav.ppr import ppr_forward_push, ppr_power_iteration
from tests.conftest import to_networkx


class TestPPRPowerIteration:
    def test_sums_to_one(self, small_ba):
        scores = ppr_power_iteration(small_ba, 0, iterations=200)
        assert scores.sum() == pytest.approx(1.0)

    def test_source_gets_most_mass(self, small_ba):
        scores = ppr_power_iteration(small_ba, 5, alpha=0.3, iterations=200)
        assert scores[5] == max(scores)

    def test_matches_networkx(self, small_er):
        ours = ppr_power_iteration(small_er, 3, alpha=0.15, iterations=300)
        theirs = nx.pagerank(
            to_networkx(small_er), alpha=0.85,
            personalization={3: 1.0}, max_iter=500, tol=1e-12,
        )
        for v in small_er.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-6)

    def test_alpha_one_is_delta(self, small_ba):
        scores = ppr_power_iteration(small_ba, 2, alpha=1.0, iterations=10)
        assert scores[2] == pytest.approx(1.0)

    def test_invalid_source(self, small_ba):
        with pytest.raises(ValueError):
            ppr_power_iteration(small_ba, 10**6)


class TestForwardPush:
    def test_per_vertex_error_bound(self, small_ba):
        """The ACL guarantee: |est - exact| <= eps * degree."""
        epsilon = 1e-5
        exact = ppr_power_iteration(small_ba, 7, alpha=0.15, iterations=400)
        approx, _ = ppr_forward_push(small_ba, 7, alpha=0.15, epsilon=epsilon)
        deg = small_ba.degrees()
        for v in small_ba.vertices():
            bound = epsilon * max(int(deg[v]), 1) + 1e-12
            assert abs(approx.get(v, 0.0) - exact[v]) <= bound * 1.05

    def test_locality_with_loose_epsilon(self):
        g = barabasi_albert(2000, 3, seed=5)
        _, touched = ppr_forward_push(g, 0, alpha=0.2, epsilon=1e-3)
        assert touched < g.num_vertices / 2  # local computation

    def test_tighter_epsilon_touches_more(self, small_ba):
        _, loose = ppr_forward_push(small_ba, 0, epsilon=1e-2)
        _, tight = ppr_forward_push(small_ba, 0, epsilon=1e-6)
        assert tight >= loose

    def test_star_graph_hub_seed(self):
        g = star_graph(20)
        approx, _ = ppr_forward_push(g, 0, alpha=0.2, epsilon=1e-7)
        exact = ppr_power_iteration(g, 0, alpha=0.2, iterations=500)
        assert approx[0] == pytest.approx(exact[0], abs=1e-4)


class TestWeightedSSSP:
    @pytest.fixture
    def weighted_graph(self):
        rng = np.random.default_rng(1)
        base = barabasi_albert(70, 3, seed=4)
        builder = GraphBuilder()
        for u, v in base.edges():
            builder.add_edge(u, v, label=int(rng.integers(1, 9)))
        return builder.build(num_vertices=70)

    def test_dijkstra_matches_networkx(self, weighted_graph):
        ref = dijkstra(weighted_graph, 0, weight=edge_label_weight(weighted_graph))
        G = nx.Graph()
        for u, v in weighted_graph.edges():
            G.add_edge(u, v, weight=weighted_graph.edge_label(u, v))
        theirs = nx.single_source_dijkstra_path_length(G, 0)
        for v in weighted_graph.vertices():
            assert ref[v] == pytest.approx(theirs.get(v, np.inf))

    def test_tlav_sssp_matches_dijkstra(self, weighted_graph):
        w = edge_label_weight(weighted_graph)
        ref = dijkstra(weighted_graph, 0, weight=w)
        engine = PregelEngine(
            weighted_graph, SSSPProgram(0, weight=w), max_supersteps=2000
        )
        assert np.allclose(engine.run(), ref)

    def test_unweighted_dijkstra_is_bfs(self, small_er):
        from repro.graph.properties import bfs_levels

        ref = dijkstra(small_er, 0)
        levels = bfs_levels(small_er, 0)
        for v in small_er.vertices():
            expected = levels[v] if levels[v] >= 0 else np.inf
            assert ref[v] == pytest.approx(expected)

    def test_negative_weight_rejected(self, small_er):
        with pytest.raises(ValueError):
            dijkstra(small_er, 0, weight=lambda u, v: -1.0)

    def test_invalid_source(self, small_er):
        with pytest.raises(ValueError):
            dijkstra(small_er, -1)
