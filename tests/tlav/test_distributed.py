"""Distributed TLAV execution: correctness vs the single-process engine
and partition-sensitive traffic accounting."""

import numpy as np
import pytest

from repro.graph.generators import barabasi_albert, grid_graph
from repro.graph.partition import (
    hash_partition,
    metis_like_partition,
    range_partition,
)
from repro.tlav.algorithms import (
    BFSProgram,
    PageRankProgram,
    SSSPProgram,
    WCCProgram,
    pagerank,
    wcc,
)
from repro.tlav.distributed import DistributedPregel, run_distributed
from repro.tlav.engine import Aggregator, PregelEngine


@pytest.fixture
def graph():
    return barabasi_albert(150, 3, seed=4)


class TestCorrectness:
    @pytest.mark.parametrize("num_parts", [1, 2, 4, 7])
    def test_wcc_matches_single_process(self, graph, num_parts):
        partition = hash_partition(graph, num_parts)
        values, _ = run_distributed(graph, WCCProgram(), partition)
        expected = wcc(graph)
        assert values == expected.tolist()

    def test_bfs_matches(self, graph):
        partition = metis_like_partition(graph, 3, seed=0)
        values, _ = run_distributed(
            graph, BFSProgram(0), partition, max_supersteps=200
        )
        single = PregelEngine(graph, BFSProgram(0), max_supersteps=200).run()
        assert values == single

    def test_pagerank_matches(self, graph):
        partition = range_partition(graph, 4)
        aggs = {"dangling": Aggregator(reduce=lambda a, b: a + b)}
        values, _ = run_distributed(
            graph,
            PageRankProgram(iterations=10),
            partition,
            aggregators=aggs,
            max_supersteps=12,
        )
        expected = pagerank(graph, iterations=10)
        assert np.allclose(values, expected)

    def test_sssp_matches(self, graph):
        partition = hash_partition(graph, 5)
        values, _ = run_distributed(
            graph, SSSPProgram(0), partition, max_supersteps=300
        )
        single = PregelEngine(graph, SSSPProgram(0), max_supersteps=300).run()
        assert values == single


class TestTraffic:
    def test_single_worker_all_local(self, graph):
        partition = hash_partition(graph, 1)
        _, stats = run_distributed(graph, WCCProgram(), partition)
        assert stats.messages_remote == 0
        assert stats.messages_local > 0

    def test_better_partition_less_remote_traffic(self):
        g = grid_graph(12, 12)
        _, stats_hash = run_distributed(g, WCCProgram(), hash_partition(g, 4))
        _, stats_metis = run_distributed(
            g, WCCProgram(), metis_like_partition(g, 4, seed=0)
        )
        assert stats_metis.bytes_remote < stats_hash.bytes_remote

    def test_combiner_reduces_remote_messages(self, graph):
        partition = hash_partition(graph, 4)
        engine_on = DistributedPregel(
            graph, WCCProgram(), partition, combine_remote=True
        )
        engine_on.run()
        engine_off = DistributedPregel(
            graph, WCCProgram(), partition, combine_remote=False
        )
        engine_off.run()
        # Same answers...
        assert engine_on.values == engine_off.values
        # ...less traffic with combining.
        assert (
            engine_on.network.stats.bytes_remote
            <= engine_off.network.stats.bytes_remote
        )

    def test_link_matrix_dimensions(self, graph):
        partition = hash_partition(graph, 3)
        _, stats = run_distributed(graph, WCCProgram(), partition)
        assert stats.link_bytes.shape == (3, 3)
        assert np.all(np.diag(stats.link_bytes) == 0)
