"""Block-centric (Blogel-style) computation tests."""

import numpy as np

from repro.graph.csr import Graph
from repro.graph.generators import grid_graph, path_graph
from repro.graph.partition import metis_like_partition, range_partition
from repro.graph.properties import connected_components
from repro.tlav.blocks import block_quotient_graph, wcc_blocks
from repro.tlav.engine import PregelEngine
from repro.tlav.algorithms import WCCProgram


class TestQuotientGraph:
    def test_quotient_edges(self):
        g = path_graph(4)
        partition = range_partition(g, 2)  # {0,1} {2,3}
        quotient = block_quotient_graph(g, partition)
        assert quotient[0] == {1}
        assert quotient[1] == {0}

    def test_no_cross_edges(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        partition = range_partition(g, 2)
        quotient = block_quotient_graph(g, partition)
        assert quotient[0] == set() and quotient[1] == set()


class TestBlockWCC:
    def test_matches_serial_components(self):
        g = Graph.from_edges([(0, 1), (1, 2), (4, 5)], num_vertices=7)
        partition = range_partition(g, 3)
        labels, rounds = wcc_blocks(g, partition)
        serial = connected_components(g)
        assert np.array_equal(labels, serial)

    def test_matches_on_grid(self):
        g = grid_graph(8, 8)
        partition = metis_like_partition(g, 4, seed=0)
        labels, _ = wcc_blocks(g, partition)
        assert np.array_equal(labels, connected_components(g))

    def test_fewer_rounds_than_tlav_on_long_path(self):
        # Blogel's claim: block-level rounds << vertex-level supersteps
        # on high-diameter graphs.
        g = path_graph(60)
        partition = range_partition(g, 4)
        _, block_rounds = wcc_blocks(g, partition)
        engine = PregelEngine(g, WCCProgram(), max_supersteps=200)
        engine.run()
        tlav_supersteps = engine.superstep
        assert block_rounds < tlav_supersteps / 5

    def test_single_block_one_round(self):
        g = grid_graph(4, 4)
        partition = range_partition(g, 1)
        labels, rounds = wcc_blocks(g, partition)
        assert rounds == 1  # everything local, one no-change round
        assert np.array_equal(labels, connected_components(g))
