"""Incremental maintainers vs from-scratch recompute.

The acceptance stream at the bottom drives a seeded 50-batch update
stream through the same run functions the ``tlav.incremental.*`` check
oracles use, asserting equivalence at *every* epoch.
"""

import numpy as np
import pytest

from repro.graph.delta import apply_edge_updates, random_edge_updates
from repro.graph.generators import barabasi_albert, erdos_renyi
from repro.tlav import bfs, wcc
from repro.tlav.incremental import (
    IncrementalBFS,
    IncrementalPageRank,
    IncrementalWCC,
)
from repro.tlav.checks import (
    _check_incremental_bfs,
    _check_incremental_pagerank,
    _check_incremental_wcc,
)


class TestIncrementalPageRank:
    def test_initial_solve_matches_fresh(self):
        g = barabasi_albert(80, 3, seed=0)
        a = IncrementalPageRank(g, tol=1e-10).scores()
        b = IncrementalPageRank(g, tol=1e-10).scores()
        assert np.array_equal(a, b)
        assert abs(a.sum() - 1.0) < 1e-12

    def test_tracks_scratch_across_batches(self):
        g = barabasi_albert(60, 3, seed=1)
        inc = IncrementalPageRank(g, tol=1e-10)
        for ins, dels in random_edge_updates(g, 8, 0.02, seed=2):
            inc.apply(ins, dels)
            g, _ = apply_edge_updates(g, inserts=ins, deletes=dels)
            scratch = IncrementalPageRank(g, tol=1e-10).scores()
            assert float(np.max(np.abs(inc.scores() - scratch))) < 1e-6

    def test_epoch_and_stats(self):
        g = barabasi_albert(30, 2, seed=3)
        inc = IncrementalPageRank(g)
        assert inc.epoch == 0
        batches = random_edge_updates(g, 3, 0.02, seed=4)
        for ins, dels in batches:
            inc.apply(ins, dels)
        d = inc.as_dict()
        assert d["epoch"] == inc.epoch == 3
        assert d["pushes"] > 0


class TestIncrementalWCC:
    def test_insert_merges_and_delete_splits(self):
        # Two disjoint triangles: {0,1,2} and {3,4,5}.
        from repro.graph.csr import Graph

        src = np.array([0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5])
        dst = np.array([1, 2, 0, 2, 0, 1, 4, 5, 3, 5, 3, 4])
        order = np.lexsort((dst, src))
        indptr = np.zeros(7, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=6), out=indptr[1:])
        g = Graph(indptr, dst[order], directed=False)
        inc = IncrementalWCC(g)
        assert len(set(inc.labels.tolist())) == 2
        inc.apply(inserts=np.array([[2, 3]]), deletes=())
        assert len(set(inc.labels.tolist())) == 1
        inc.apply(inserts=(), deletes=np.array([[2, 3]]))
        assert len(set(inc.labels.tolist())) == 2
        assert np.array_equal(inc.labels, np.array([0, 0, 0, 3, 3, 3]))

    def test_tracks_scratch_across_batches(self):
        g = erdos_renyi(70, 0.03, seed=5)
        inc = IncrementalWCC(g)
        for ins, dels in random_edge_updates(g, 10, 0.05, seed=6):
            inc.apply(ins, dels)
            g, _ = apply_edge_updates(g, inserts=ins, deletes=dels)
            assert np.array_equal(inc.labels, wcc(g))


class TestIncrementalBFS:
    def test_tracks_scratch_across_batches(self):
        g = barabasi_albert(60, 2, seed=7)
        inc = IncrementalBFS(g, source=0)
        assert np.array_equal(inc.levels, bfs(g, 0))
        for ins, dels in random_edge_updates(g, 10, 0.03, seed=8):
            inc.apply(ins, dels)
            g, _ = apply_edge_updates(g, inserts=ins, deletes=dels)
            assert np.array_equal(inc.levels, bfs(g, 0))

    def test_unreachable_is_minus_one(self):
        g = erdos_renyi(20, 0.0, seed=9)  # no edges
        inc = IncrementalBFS(g, source=0)
        levels = inc.levels
        assert levels[0] == 0
        assert np.all(levels[1:] == -1)
        inc.apply(inserts=np.array([[0, 5]]), deletes=())
        assert inc.levels[5] == 1


class TestFiftyBatchAcceptanceStream:
    """ISSUE acceptance: all three oracles green at every epoch of a
    seeded 50-batch update stream, via the oracle run functions."""

    PARAMS = {
        "kind": "ba", "n": 64, "m": 3, "graph_seed": 17,
        "batches": 50, "update_seed": 23, "edge_frac": 0.01,
    }

    def test_pagerank_oracle_50_batches(self):
        assert _check_incremental_pagerank(dict(self.PARAMS)) == []

    def test_wcc_oracle_50_batches(self):
        assert _check_incremental_wcc(dict(self.PARAMS)) == []

    def test_bfs_oracle_50_batches(self):
        assert _check_incremental_bfs(dict(self.PARAMS, source=11)) == []
