"""The presenter-lineage TLAV systems: Pregel+ mirroring, LWCP fault
tolerance, GraphD out-of-core, Quegel query batching."""

import os

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, grid_graph, path_graph
from repro.graph.io import save_adjacency
from repro.graph.partition import hash_partition, metis_like_partition
from repro.graph.properties import bfs_levels
from repro.tlav import (
    CheckpointedEngine,
    OutOfCoreEngine,
    PointQuery,
    QuegelEngine,
    message_cost,
    mirroring_plan,
    optimal_threshold,
    pagerank,
    wcc,
)
from repro.tlav.algorithms import PageRankProgram, SSSPProgram, WCCProgram
from repro.tlav.engine import Aggregator


@pytest.fixture
def graph():
    return barabasi_albert(150, 3, seed=6)


class TestMirroring:
    def test_plan_selects_by_degree(self, graph):
        partition = hash_partition(graph, 4)
        plan = mirroring_plan(graph, partition, degree_threshold=10)
        for v in plan.mirrors:
            assert graph.degree(v) >= 10

    def test_mirrors_only_on_remote_neighbor_workers(self, graph):
        partition = hash_partition(graph, 4)
        plan = mirroring_plan(graph, partition, degree_threshold=5)
        for v, workers in plan.mirrors.items():
            own = int(partition.assignment[v])
            assert own not in workers
            neighbor_workers = {
                int(partition.assignment[int(w)]) for w in graph.neighbors(v)
            }
            assert workers <= neighbor_workers

    def test_mirroring_never_increases_messages(self, graph):
        partition = hash_partition(graph, 4)
        for threshold in (2, 5, 10, 50):
            plan = mirroring_plan(graph, partition, threshold)
            baseline, with_plan = message_cost(graph, partition, plan)
            assert with_plan <= baseline

    def test_hub_mirroring_cuts_traffic(self, graph):
        """The Pregel+ claim: mirroring hubs reduces broadcast traffic."""
        partition = hash_partition(graph, 8)
        plan = mirroring_plan(graph, partition, degree_threshold=10)
        baseline, with_plan = message_cost(graph, partition, plan)
        assert plan.num_mirrored_vertices > 0
        assert with_plan < baseline

    def test_threshold_infinity_is_baseline(self, graph):
        partition = hash_partition(graph, 4)
        plan = mirroring_plan(graph, partition, degree_threshold=10**9)
        baseline, with_plan = message_cost(graph, partition, plan)
        assert with_plan == baseline

    def test_budget_limits_choice(self, graph):
        partition = hash_partition(graph, 4)
        unlimited, sweep = optimal_threshold(graph, partition, [2, 10, 10**9])
        assert unlimited == 2  # message-count-optimal: mirror everything
        tight, _ = optimal_threshold(
            graph, partition, [2, 10, 10**9],
            mirror_budget=sweep[10][1],
        )
        assert tight == 10  # the budget rules out full mirroring

    def test_impossible_budget_raises(self, graph):
        partition = hash_partition(graph, 4)
        with pytest.raises(ValueError):
            optimal_threshold(graph, partition, [2], mirror_budget=-1)


class TestFaultTolerance:
    def test_recovery_reproduces_failure_free_run(self, graph):
        reference = wcc(graph)
        for mode in ("light", "full"):
            engine = CheckpointedEngine(
                graph, WCCProgram(), checkpoint_interval=2, mode=mode
            )
            engine.inject_failure(3)
            values = engine.run()
            assert values == reference.tolist()
            assert engine.stats.failures == 1

    def test_no_failure_no_replay(self, graph):
        engine = CheckpointedEngine(graph, WCCProgram(), checkpoint_interval=3)
        engine.run()
        assert engine.stats.supersteps_replayed == 0
        assert engine.stats.checkpoints_taken >= 1

    def test_light_checkpoints_smaller_than_full(self, graph):
        """The LWCP claim: state-only checkpoints are cheaper."""
        agg = {"dangling": Aggregator(reduce=lambda a, b: a + b)}
        light = CheckpointedEngine(
            graph, PageRankProgram(iterations=8), checkpoint_interval=2,
            mode="light", aggregators=agg, max_supersteps=10,
        )
        light.run()
        full = CheckpointedEngine(
            graph, PageRankProgram(iterations=8), checkpoint_interval=2,
            mode="full", aggregators=agg, max_supersteps=10,
        )
        full.run()
        assert light.stats.checkpoint_bytes < full.stats.checkpoint_bytes

    def test_replay_bounded_by_interval(self, graph):
        engine = CheckpointedEngine(
            graph, WCCProgram(), checkpoint_interval=4
        )
        engine.inject_failure(6)
        engine.run()
        assert engine.stats.supersteps_replayed <= 4

    def test_failure_at_checkpoint_boundary_free(self, graph):
        engine = CheckpointedEngine(graph, WCCProgram(), checkpoint_interval=2)
        engine.inject_failure(2)
        values = engine.run()
        assert values == wcc(graph).tolist()
        assert engine.stats.supersteps_replayed == 0

    def test_invalid_configuration(self, graph):
        with pytest.raises(ValueError):
            CheckpointedEngine(graph, WCCProgram(), checkpoint_interval=0)
        with pytest.raises(ValueError):
            CheckpointedEngine(graph, WCCProgram(), mode="exotic")


@pytest.mark.filterwarnings("ignore:OutOfCoreEngine is deprecated")
class TestOutOfCore:
    @pytest.fixture
    def edge_file(self, graph, tmp_path):
        path = tmp_path / "graph.adj"
        save_adjacency(graph, path)
        return str(path)

    def test_construction_warns_deprecation(self, graph, edge_file):
        with pytest.warns(DeprecationWarning, match="repro.graph.store"):
            OutOfCoreEngine(
                edge_file, graph.num_vertices, WCCProgram(),
                max_supersteps=1,
            )

    def test_pagerank_matches_in_memory(self, graph, edge_file):
        agg = {"dangling": Aggregator(reduce=lambda a, b: a + b)}
        engine = OutOfCoreEngine(
            edge_file, graph.num_vertices, PageRankProgram(iterations=8),
            aggregators=agg, max_supersteps=10,
        )
        values = engine.run()
        assert np.allclose(values, pagerank(graph, iterations=8))

    def test_wcc_matches_in_memory(self, graph, edge_file):
        engine = OutOfCoreEngine(
            edge_file, graph.num_vertices, WCCProgram(), max_supersteps=200
        )
        values = engine.run()
        assert values == wcc(graph).tolist()

    def test_spilling_under_small_buffer(self, graph, edge_file):
        """GraphD's regime: bounded memory forces message spills."""
        engine = OutOfCoreEngine(
            edge_file, graph.num_vertices, WCCProgram(),
            max_supersteps=200, message_buffer_limit=50,
        )
        values = engine.run()
        assert values == wcc(graph).tolist()
        assert engine.io.message_bytes_spilled > 0
        assert engine.io.peak_buffered_messages <= 50

    def test_no_spill_with_big_buffer(self, graph, edge_file):
        engine = OutOfCoreEngine(
            edge_file, graph.num_vertices, WCCProgram(),
            max_supersteps=200, message_buffer_limit=10**9,
        )
        engine.run()
        assert engine.io.message_bytes_spilled == 0

    def test_edge_bytes_scale_with_supersteps(self, graph, edge_file):
        engine = OutOfCoreEngine(
            edge_file, graph.num_vertices, WCCProgram(), max_supersteps=200
        )
        engine.run()
        size = os.path.getsize(edge_file)
        # The whole edge file is streamed once per superstep.
        assert engine.io.edge_bytes_read >= size * engine.io.supersteps * 0.9


class TestQuegel:
    def test_distances_match_bfs(self, graph):
        engine = QuegelEngine(graph)
        rng = np.random.default_rng(1)
        pairs = [
            (int(rng.integers(150)), int(rng.integers(150))) for _ in range(6)
        ]
        for s, t in pairs:
            engine.submit(PointQuery(s, t))
        outcomes, _ = engine.run()
        for (s, t), outcome in zip(pairs, outcomes):
            expected = bfs_levels(graph, s)[t]
            got = outcome.distance if outcome.distance is not None else -1
            assert got == expected

    def test_unreachable_target(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        engine = QuegelEngine(g)
        engine.submit(PointQuery(0, 3))
        outcomes, _ = engine.run()
        assert outcomes[0].distance is None

    def test_source_equals_target(self, graph):
        engine = QuegelEngine(graph)
        engine.submit(PointQuery(5, 5))
        outcomes, _ = engine.run()
        assert outcomes[0].distance == 0

    def test_shared_overhead_beats_sequential(self, graph):
        """The Quegel claim: batching shares per-superstep overhead."""
        engine = QuegelEngine(graph, superstep_overhead=1.0)
        for s in range(0, 60, 10):
            engine.submit(PointQuery(s, s + 5))
        _, accounting = engine.run()
        assert accounting["shared_overhead"] < accounting["sequential_overhead"]
        assert accounting["overhead_saving"] > 0

    def test_out_of_range_query_rejected(self, graph):
        engine = QuegelEngine(graph)
        with pytest.raises(ValueError):
            engine.submit(PointQuery(0, 10**6))

    def test_queries_touch_few_vertices(self, graph):
        # Nearby targets retire early, touching a fraction of the graph.
        engine = QuegelEngine(graph)
        engine.submit(PointQuery(0, int(graph.neighbors(0)[0])))
        outcomes, _ = engine.run()
        assert outcomes[0].supersteps_used == 1


@pytest.mark.filterwarnings("ignore:OutOfCoreEngine is deprecated")
class TestOutOfCoreContract:
    """Regression: the streaming context honours the engine contract.

    Pre-fix ``_StreamContext.neighbors()`` returned a plain list, so
    any program using array operations (RandomWalkProgram reads
    ``nbrs.size``) crashed on the out-of-core engine.  Pinned in the
    differential corpus as ``tlav-ooc-neighbors-contract.json``.
    """

    @pytest.fixture
    def small_graph(self):
        return barabasi_albert(24, 2, seed=9)

    @pytest.fixture
    def small_edge_file(self, small_graph, tmp_path):
        path = tmp_path / "small.adj"
        save_adjacency(small_graph, path)
        return str(path)

    def test_neighbors_is_int64_ndarray(self, small_graph, small_edge_file):
        from repro.tlav.engine import VertexProgram

        seen = {}

        class ProbeProgram(VertexProgram):
            def init(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                seen[ctx.vertex] = ctx.neighbors()

        engine = OutOfCoreEngine(
            small_edge_file, small_graph.num_vertices, ProbeProgram(),
            max_supersteps=1,
        )
        engine.run()
        nbrs = seen[0]
        assert isinstance(nbrs, np.ndarray)
        assert nbrs.dtype == np.int64
        assert nbrs.tolist() == small_graph.neighbors(0).tolist()

    def test_random_walks_match_in_memory_engine(
        self, small_graph, small_edge_file
    ):
        from repro.tlav.algorithms import RandomWalkProgram, random_walks

        reference = random_walks(
            small_graph, walk_length=4, walks_per_vertex=2, seed=3
        )
        engine = OutOfCoreEngine(
            small_edge_file, small_graph.num_vertices,
            RandomWalkProgram(4, 2, 3),
            max_supersteps=7, message_buffer_limit=8,
        )
        values = engine.run()
        walks = [list(p) for collected in values for p in collected]
        assert walks == reference

    def test_message_buffer_limit_validated(self, small_graph, small_edge_file):
        from repro.tlav.algorithms import WCCProgram

        with pytest.raises(ValueError, match="message_buffer_limit"):
            OutOfCoreEngine(
                small_edge_file, small_graph.num_vertices, WCCProgram(),
                message_buffer_limit=0,
            )

    def test_spill_bytes_read_equals_spilled(self, small_graph, small_edge_file):
        from repro.tlav.algorithms import WCCProgram

        engine = OutOfCoreEngine(
            small_edge_file, small_graph.num_vertices, WCCProgram(),
            max_supersteps=100, message_buffer_limit=1,
        )
        engine.run()
        assert engine.io.message_bytes_spilled > 0
        assert engine.io.message_bytes_read == engine.io.message_bytes_spilled
        assert engine.io.peak_buffered_messages <= 1
