"""The presenter-lineage TLAV systems: Pregel+ mirroring, LWCP fault
tolerance, GraphD-style bounded-memory paging (via the shard store),
Quegel query batching."""

import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import barabasi_albert, grid_graph, path_graph
from repro.graph.partition import hash_partition, metis_like_partition
from repro.graph.properties import bfs_levels
from repro.graph.store import build_store, open_store
from repro.tlav import (
    CheckpointedEngine,
    PointQuery,
    QuegelEngine,
    message_cost,
    mirroring_plan,
    optimal_threshold,
    pagerank,
    wcc,
)
from repro.tlav.algorithms import PageRankProgram, SSSPProgram, WCCProgram
from repro.tlav.engine import Aggregator, PregelEngine


@pytest.fixture
def graph():
    return barabasi_albert(150, 3, seed=6)


class TestMirroring:
    def test_plan_selects_by_degree(self, graph):
        partition = hash_partition(graph, 4)
        plan = mirroring_plan(graph, partition, degree_threshold=10)
        for v in plan.mirrors:
            assert graph.degree(v) >= 10

    def test_mirrors_only_on_remote_neighbor_workers(self, graph):
        partition = hash_partition(graph, 4)
        plan = mirroring_plan(graph, partition, degree_threshold=5)
        for v, workers in plan.mirrors.items():
            own = int(partition.assignment[v])
            assert own not in workers
            neighbor_workers = {
                int(partition.assignment[int(w)]) for w in graph.neighbors(v)
            }
            assert workers <= neighbor_workers

    def test_mirroring_never_increases_messages(self, graph):
        partition = hash_partition(graph, 4)
        for threshold in (2, 5, 10, 50):
            plan = mirroring_plan(graph, partition, threshold)
            baseline, with_plan = message_cost(graph, partition, plan)
            assert with_plan <= baseline

    def test_hub_mirroring_cuts_traffic(self, graph):
        """The Pregel+ claim: mirroring hubs reduces broadcast traffic."""
        partition = hash_partition(graph, 8)
        plan = mirroring_plan(graph, partition, degree_threshold=10)
        baseline, with_plan = message_cost(graph, partition, plan)
        assert plan.num_mirrored_vertices > 0
        assert with_plan < baseline

    def test_threshold_infinity_is_baseline(self, graph):
        partition = hash_partition(graph, 4)
        plan = mirroring_plan(graph, partition, degree_threshold=10**9)
        baseline, with_plan = message_cost(graph, partition, plan)
        assert with_plan == baseline

    def test_budget_limits_choice(self, graph):
        partition = hash_partition(graph, 4)
        unlimited, sweep = optimal_threshold(graph, partition, [2, 10, 10**9])
        assert unlimited == 2  # message-count-optimal: mirror everything
        tight, _ = optimal_threshold(
            graph, partition, [2, 10, 10**9],
            mirror_budget=sweep[10][1],
        )
        assert tight == 10  # the budget rules out full mirroring

    def test_impossible_budget_raises(self, graph):
        partition = hash_partition(graph, 4)
        with pytest.raises(ValueError):
            optimal_threshold(graph, partition, [2], mirror_budget=-1)


class TestFaultTolerance:
    def test_recovery_reproduces_failure_free_run(self, graph):
        reference = wcc(graph)
        for mode in ("light", "full"):
            engine = CheckpointedEngine(
                graph, WCCProgram(), checkpoint_interval=2, mode=mode
            )
            engine.inject_failure(3)
            values = engine.run()
            assert values == reference.tolist()
            assert engine.stats.failures == 1

    def test_no_failure_no_replay(self, graph):
        engine = CheckpointedEngine(graph, WCCProgram(), checkpoint_interval=3)
        engine.run()
        assert engine.stats.supersteps_replayed == 0
        assert engine.stats.checkpoints_taken >= 1

    def test_light_checkpoints_smaller_than_full(self, graph):
        """The LWCP claim: state-only checkpoints are cheaper."""
        agg = {"dangling": Aggregator(reduce=lambda a, b: a + b)}
        light = CheckpointedEngine(
            graph, PageRankProgram(iterations=8), checkpoint_interval=2,
            mode="light", aggregators=agg, max_supersteps=10,
        )
        light.run()
        full = CheckpointedEngine(
            graph, PageRankProgram(iterations=8), checkpoint_interval=2,
            mode="full", aggregators=agg, max_supersteps=10,
        )
        full.run()
        assert light.stats.checkpoint_bytes < full.stats.checkpoint_bytes

    def test_replay_bounded_by_interval(self, graph):
        engine = CheckpointedEngine(
            graph, WCCProgram(), checkpoint_interval=4
        )
        engine.inject_failure(6)
        engine.run()
        assert engine.stats.supersteps_replayed <= 4

    def test_failure_at_checkpoint_boundary_free(self, graph):
        engine = CheckpointedEngine(graph, WCCProgram(), checkpoint_interval=2)
        engine.inject_failure(2)
        values = engine.run()
        assert values == wcc(graph).tolist()
        assert engine.stats.supersteps_replayed == 0

    def test_invalid_configuration(self, graph):
        with pytest.raises(ValueError):
            CheckpointedEngine(graph, WCCProgram(), checkpoint_interval=0)
        with pytest.raises(ValueError):
            CheckpointedEngine(graph, WCCProgram(), mode="exotic")


class TestStoredEngine:
    """GraphD's regime via the shard store: bounded memory forces paging."""

    @pytest.fixture
    def store_path(self, graph, tmp_path):
        path = str(tmp_path / "store")
        build_store(graph, path, partition="hash", num_parts=4)
        return path

    def test_pagerank_matches_in_memory(self, graph, store_path):
        with open_store(store_path, cache_budget=0) as stored:
            values = pagerank(stored, iterations=8)
        assert np.allclose(values, pagerank(graph, iterations=8))

    def test_wcc_matches_in_memory(self, graph, store_path):
        with open_store(store_path, cache_budget=0) as stored:
            values = wcc(stored)
        assert np.asarray(values).tolist() == wcc(graph).tolist()

    def test_zero_budget_keeps_one_shard_resident(self, graph, store_path):
        with open_store(store_path, cache_budget=0) as stored:
            wcc(stored)
            stats = stored.cache.stats
            assert stats.evictions > 0
            assert len(stored.cache) <= 1

    def test_unbounded_budget_pages_each_shard_once(self, graph, store_path):
        with open_store(store_path) as stored:
            wcc(stored)
            stats = stored.cache.stats
            assert stats.evictions == 0
            assert stats.bytes_paged == stored.cache.resident_bytes
            assert stats.hits > stats.misses  # the cache actually serves

    def test_paged_bytes_scale_with_supersteps(self, graph, store_path):
        # One full structure pass = what the unbounded cache pages in total.
        with open_store(store_path) as stored:
            engine = PregelEngine(stored, WCCProgram(), max_supersteps=200)
            engine.run()
            one_pass = stored.cache.stats.bytes_paged
            supersteps = engine.superstep
        with open_store(store_path, cache_budget=0) as paged:
            engine = PregelEngine(paged, WCCProgram(), max_supersteps=200)
            engine.run()
            # The whole structure is re-paged (at least) once per superstep.
            assert paged.cache.stats.bytes_paged >= supersteps * one_pass


class TestQuegel:
    def test_distances_match_bfs(self, graph):
        engine = QuegelEngine(graph)
        rng = np.random.default_rng(1)
        pairs = [
            (int(rng.integers(150)), int(rng.integers(150))) for _ in range(6)
        ]
        for s, t in pairs:
            engine.submit(PointQuery(s, t))
        outcomes, _ = engine.run()
        for (s, t), outcome in zip(pairs, outcomes):
            expected = bfs_levels(graph, s)[t]
            got = outcome.distance if outcome.distance is not None else -1
            assert got == expected

    def test_unreachable_target(self):
        g = Graph.from_edges([(0, 1)], num_vertices=4)
        engine = QuegelEngine(g)
        engine.submit(PointQuery(0, 3))
        outcomes, _ = engine.run()
        assert outcomes[0].distance is None

    def test_source_equals_target(self, graph):
        engine = QuegelEngine(graph)
        engine.submit(PointQuery(5, 5))
        outcomes, _ = engine.run()
        assert outcomes[0].distance == 0

    def test_shared_overhead_beats_sequential(self, graph):
        """The Quegel claim: batching shares per-superstep overhead."""
        engine = QuegelEngine(graph, superstep_overhead=1.0)
        for s in range(0, 60, 10):
            engine.submit(PointQuery(s, s + 5))
        _, accounting = engine.run()
        assert accounting["shared_overhead"] < accounting["sequential_overhead"]
        assert accounting["overhead_saving"] > 0

    def test_out_of_range_query_rejected(self, graph):
        engine = QuegelEngine(graph)
        with pytest.raises(ValueError):
            engine.submit(PointQuery(0, 10**6))

    def test_queries_touch_few_vertices(self, graph):
        # Nearby targets retire early, touching a fraction of the graph.
        engine = QuegelEngine(graph)
        engine.submit(PointQuery(0, int(graph.neighbors(0)[0])))
        outcomes, _ = engine.run()
        assert outcomes[0].supersteps_used == 1


class TestStoredEngineContract:
    """Regression: paging handles honour the engine contract.

    Pre-fix, the retired out-of-core engine's ``neighbors()`` returned
    a plain list, so any program using array operations
    (RandomWalkProgram reads ``nbrs.size``) crashed.  Pinned in the
    differential corpus as ``tlav-stored-neighbors-contract.json``;
    the stored-graph handle must keep the contract under paging.
    """

    @pytest.fixture
    def small_graph(self):
        return barabasi_albert(24, 2, seed=9)

    @pytest.fixture
    def small_store(self, small_graph, tmp_path):
        path = str(tmp_path / "small-store")
        build_store(small_graph, path, partition="hash", num_parts=2)
        return path

    def test_neighbors_is_int64_ndarray(self, small_graph, small_store):
        from repro.tlav.engine import VertexProgram

        seen = {}

        class ProbeProgram(VertexProgram):
            def init(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                seen[ctx.vertex] = ctx.neighbors()

        with open_store(small_store, cache_budget=0) as stored:
            engine = PregelEngine(stored, ProbeProgram(), max_supersteps=1)
            engine.run()
        nbrs = seen[0]
        assert isinstance(nbrs, np.ndarray)
        assert nbrs.dtype == np.int64
        assert nbrs.tolist() == small_graph.neighbors(0).tolist()

    def test_random_walks_match_in_memory_engine(
        self, small_graph, small_store
    ):
        from repro.tlav.algorithms import random_walks

        reference = random_walks(
            small_graph, walk_length=4, walks_per_vertex=2, seed=3
        )
        with open_store(small_store, cache_budget=0) as stored:
            walks = random_walks(
                stored, walk_length=4, walks_per_vertex=2, seed=3
            )
        assert walks == reference

    def test_paging_ledger_balances(self, small_graph, small_store):
        with open_store(small_store, cache_budget=0) as stored:
            wcc(stored)
            stats = stored.cache.stats
            assert stats.misses - stats.evictions == len(stored.cache)
            assert stats.bytes_paged > 0
