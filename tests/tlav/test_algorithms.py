"""TLAV vertex programs, cross-checked against serial oracles."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.graph.csr import Graph
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    star_graph,
)
from repro.graph.properties import bfs_levels, connected_components
from repro.matching.triangles import triangle_count
from repro.tlav import (
    bfs,
    label_propagation,
    pagerank,
    random_walks,
    sssp,
    triangle_count_tlav,
    wcc,
)
from tests.conftest import to_networkx


class TestPageRank:
    def test_sums_to_one(self, small_ba):
        pr = pagerank(small_ba, iterations=20)
        assert pr.sum() == pytest.approx(1.0)

    def test_uniform_on_cycle(self):
        pr = pagerank(cycle_graph(10), iterations=30)
        assert np.allclose(pr, 0.1, atol=1e-6)

    def test_hub_ranks_highest(self):
        pr = pagerank(star_graph(10), iterations=30)
        assert pr[0] == max(pr)

    def test_matches_networkx(self, small_er):
        ours = pagerank(small_er, iterations=60)
        theirs = nx.pagerank(to_networkx(small_er), alpha=0.85, max_iter=200)
        for v in small_er.vertices():
            assert ours[v] == pytest.approx(theirs[v], abs=1e-4)

    def test_dangling_mass_redistributed(self):
        # Vertex 2 is isolated (dangling): probability must not leak.
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        pr = pagerank(g, iterations=40)
        assert pr.sum() == pytest.approx(1.0)


class TestSSSPAndBFS:
    def test_sssp_matches_bfs_levels(self, small_er):
        dist = sssp(small_er, 0)
        levels = bfs_levels(small_er, 0)
        for v in small_er.vertices():
            if levels[v] >= 0:
                assert dist[v] == levels[v]
            else:
                assert math.isinf(dist[v])

    def test_bfs_program_matches_serial(self, small_ba):
        ours = bfs(small_ba, 5)
        serial = bfs_levels(small_ba, 5)
        assert np.array_equal(ours, serial)

    def test_bfs_unreachable(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        assert bfs(g, 0)[2] == -1

    def test_sssp_source_zero(self, small_er):
        assert sssp(small_er, 3)[3] == 0.0


class TestWCC:
    def test_matches_serial_components(self):
        g = Graph.from_edges([(0, 1), (2, 3), (3, 4)], num_vertices=6)
        ours = wcc(g)
        serial = connected_components(g)
        # Same partition into groups (labels are min member in both).
        assert np.array_equal(ours, serial)

    def test_single_component(self, small_ba):
        assert len(set(wcc(small_ba).tolist())) == 1


class TestLabelPropagation:
    def test_two_cliques_get_two_labels(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        edges += [(i, j) for i in range(5, 10) for j in range(i + 1, 10)]
        edges.append((4, 5))  # weak bridge
        g = Graph.from_edges(edges)
        labels = label_propagation(g, iterations=10)
        # Members of each clique agree with each other.
        assert len(set(labels[:4].tolist())) == 1
        assert len(set(labels[6:].tolist())) == 1

    def test_converges_to_some_labeling(self, small_er):
        labels = label_propagation(small_er, iterations=5)
        assert labels.shape == (small_er.num_vertices,)


class TestRandomWalks:
    def test_walk_count_and_length(self, small_er):
        walks = random_walks(small_er, walk_length=6, walks_per_vertex=2, seed=0)
        assert len(walks) == 2 * small_er.num_vertices
        assert all(len(w) == 7 for w in walks)

    def test_walks_follow_edges(self, small_er):
        walks = random_walks(small_er, walk_length=5, walks_per_vertex=1, seed=1)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert small_er.has_edge(a, b)

    def test_isolated_vertex_walk_stops(self):
        g = Graph.from_edges([(0, 1)], num_vertices=3)
        walks = random_walks(g, walk_length=4, walks_per_vertex=1, seed=0)
        by_start = {w[0]: w for w in walks}
        assert by_start[2] == [2]


class TestTriangleTLAV:
    def test_counts_match_serial(self, small_er):
        count, _ = triangle_count_tlav(small_er)
        assert count == triangle_count(small_er)

    def test_complete_graph(self):
        count, _ = triangle_count_tlav(complete_graph(6))
        assert count == 20

    def test_message_blowup_vs_serial_work(self):
        # The C1 claim: TLAV messages dwarf the serial algorithm's work
        # on a skewed graph.
        from repro.graph.generators import barabasi_albert
        from repro.matching.triangles import triangle_count_with_work

        g = barabasi_albert(300, 4, seed=0)
        count_tlav, messages = triangle_count_tlav(g)
        count_serial, work = triangle_count_with_work(g)
        assert count_tlav == count_serial
        assert messages > work  # the quadratic-degree blow-up


class TestLubyMIS:
    def test_independence(self, small_ba):
        from repro.tlav import luby_mis

        mis = luby_mis(small_ba, seed=0)
        for u, v in small_ba.edges():
            assert not (mis[u] and mis[v])

    def test_maximality(self, small_ba):
        from repro.tlav import luby_mis

        mis = luby_mis(small_ba, seed=0)
        for v in small_ba.vertices():
            if not mis[v]:
                assert any(mis[int(w)] for w in small_ba.neighbors(v))

    def test_complete_graph_single_member(self):
        from repro.tlav import luby_mis

        assert luby_mis(complete_graph(6), seed=1).sum() == 1

    def test_edgeless_graph_everyone(self):
        from repro.tlav import luby_mis

        g = Graph.from_edges([], num_vertices=5)
        assert luby_mis(g, seed=0).sum() == 5

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_different_seeds_valid(self, seed, small_er):
        from repro.tlav import luby_mis

        mis = luby_mis(small_er, seed=seed)
        for u, v in small_er.edges():
            assert not (mis[u] and mis[v])
