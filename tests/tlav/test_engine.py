"""Tests for the Pregel-style BSP engine."""

from typing import List

import pytest

from repro.graph.csr import Graph
from repro.graph.generators import path_graph
from repro.tlav.engine import (
    Aggregator,
    PregelEngine,
    VertexContext,
    VertexProgram,
)


class EchoProgram(VertexProgram):
    """Each vertex forwards a counter once, then halts."""

    def init(self, vertex, graph):
        return 0

    def compute(self, ctx: VertexContext, messages: List[int]) -> None:
        if ctx.superstep == 0:
            ctx.send_to_neighbors(1)
        else:
            ctx.value = sum(messages)
        ctx.vote_to_halt()


class SumCombineProgram(VertexProgram):
    def init(self, vertex, graph):
        return 0

    def combine(self, a, b):
        return a + b

    def compute(self, ctx, messages):
        if ctx.superstep == 0:
            for w in ctx.neighbors():
                ctx.send(int(w), 1)
                ctx.send(int(w), 2)
        else:
            ctx.value = sum(messages)
        ctx.vote_to_halt()


class TestBSPSemantics:
    def test_messages_delivered_next_superstep(self):
        g = path_graph(3)
        engine = PregelEngine(g, EchoProgram())
        values = engine.run()
        assert values == [1, 2, 1]  # in-degree of each vertex

    def test_superstep_counter(self):
        g = path_graph(3)
        engine = PregelEngine(g, EchoProgram())
        engine.run()
        assert engine.superstep == 2

    def test_halt_and_reactivation(self):
        g = path_graph(2)
        engine = PregelEngine(g, EchoProgram())
        assert engine.step()  # superstep 0: all halt, but messages pending
        assert engine.step()  # superstep 1: reactivated by messages
        assert not engine.step()  # done

    def test_combiner_reduces_deliveries(self):
        g = path_graph(3)
        engine = PregelEngine(g, SumCombineProgram())
        values = engine.run()
        # Each endpoint got 1+2=3 from one neighbor; middle from two.
        assert values == [3, 6, 3]
        # Combined: one delivered message per (src worker, dst).
        assert engine.total_messages_delivered < engine.total_messages

    def test_send_out_of_range_raises(self):
        class BadProgram(VertexProgram):
            def init(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.send(999, 1)

        g = path_graph(2)
        engine = PregelEngine(g, BadProgram())
        with pytest.raises(ValueError):
            engine.step()

    def test_max_supersteps_halts(self):
        class ForeverProgram(VertexProgram):
            def init(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.send_to_neighbors(1)  # never halts

        g = path_graph(3)
        engine = PregelEngine(g, ForeverProgram(), max_supersteps=5)
        engine.run()
        assert engine.superstep == 5

    def test_history_records_active_counts(self):
        g = path_graph(4)
        engine = PregelEngine(g, EchoProgram())
        engine.run()
        assert engine.history[0].active_vertices == 4
        assert engine.history[0].messages_sent == 6  # 2*num_edges


class TestAggregators:
    def test_aggregate_visible_next_superstep(self):
        class AggProgram(VertexProgram):
            def init(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                if ctx.superstep == 0:
                    ctx.aggregate("total", 1)
                    ctx.send_to_neighbors(0)  # keep alive
                else:
                    ctx.value = ctx.aggregated("total")
                ctx.vote_to_halt()

        g = path_graph(3)
        engine = PregelEngine(
            g,
            AggProgram(),
            aggregators={"total": Aggregator(reduce=lambda a, b: a + b)},
        )
        values = engine.run()
        assert values == [3, 3, 3]

    def test_unknown_aggregator_raises(self):
        class BadAgg(VertexProgram):
            def init(self, vertex, graph):
                return 0

            def compute(self, ctx, messages):
                ctx.aggregate("nope", 1)

        g = path_graph(2)
        engine = PregelEngine(g, BadAgg())
        with pytest.raises(KeyError):
            engine.step()

    def test_aggregated_default(self):
        class ReadAgg(VertexProgram):
            def init(self, vertex, graph):
                return None

            def compute(self, ctx, messages):
                ctx.value = ctx.aggregated("missing", default=-1)
                ctx.vote_to_halt()

        g = path_graph(2)
        engine = PregelEngine(g, ReadAgg())
        values = engine.run()
        assert values == [-1, -1]
