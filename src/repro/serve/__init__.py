"""Multi-tenant serving layer over every engine family.

The tutorial's interactive-query thread (G-thinkerQ's shared-server
argument, reproduced for subgraph matching in
:mod:`repro.tlag.query`) and the GNN-systems survey's convergence of
graph-processing schedulers with DL serving both call for the same
missing piece: a *front door* that multiplexes concurrent requests
from many tenants across all of the repository's engines.  This
package is that front door:

* :mod:`~repro.serve.endpoints` — the **endpoint registry** exposing
  one named handler per engine family (TLAV analytics, subgraph
  matching, GNN node inference, TLAG subgraph queries) plus the
  **graph registry** whose *epoch* bumps whenever a graph is mutated
  or replaced;
* :mod:`~repro.serve.scheduler` — the request lifecycle: bounded
  admission queues with backpressure shedding, per-tenant fair sharing
  (generalizing :class:`repro.tlag.query.QueryServer`'s least-served
  policy), priority lanes, and deadline enforcement, all on the same
  simulated-ops clock the engines use;
* :mod:`~repro.serve.batcher` — the **micro-batcher** that coalesces
  compatible queued requests (same endpoint + graph epoch + canonical
  params, or mergeable GNN inference) into one engine call;
* :mod:`~repro.serve.cache` — the **versioned result cache** keyed by
  ``(endpoint, graph, epoch, canonical_params)``, invalidated by
  construction when the graph registry bumps an epoch;
* :mod:`~repro.serve.loadgen` — deterministic closed-loop and
  open-loop (seeded Poisson) load generators and the named scenarios
  behind ``python -m repro serve --scenario ...``;
* :mod:`~repro.serve.breaker` — **per-endpoint circuit breakers**
  (closed/open/half-open on a failure-rate window, cooldowns in
  simulated ops) that drive the degradation ladder: an open breaker or
  a shedding queue answers from the epoch-versioned cache in
  stale-while-revalidate mode (``degraded=True`` + staleness);
* :mod:`~repro.serve.soak` — the storage-aware chaos soak behind
  ``python -m repro chaos --scenario serve-soak``: injected endpoint
  failures, worker crashes, and store I/O faults against the seeded
  load generator, with ledger and clean-vs-chaos equivalence checks;
  plus the **mutate soak** (``--scenario mutate-soak``) that streams
  seeded edge-update batches through ``GraphRegistry.apply_updates``
  interleaved with query waves, holding incremental PageRank/WCC/BFS
  maintainers in lockstep and checking them against from-scratch
  recompute, served-answer currency, and cache-index consistency;
* :mod:`~repro.serve.checks` — serve-path oracles for
  ``repro check --subsystem serve``: served == direct, cache hit ==
  cold miss, batched == unbatched, the admission ledger invariant,
  and the soak's degraded-ledger/equivalence oracles.

Everything reports through :mod:`repro.obs`: per-endpoint latency
histograms (p50/p95/p99 in simulated ops), queue-depth and in-flight
gauges, cache hit rates, shed and deadline-miss counters, and one
``serve.request`` span per request.
"""

from .batcher import MicroBatcher
from .breaker import BreakerBoard, BreakerConfig, CircuitBreaker
from .cache import ResultCache
from .endpoints import (
    Endpoint,
    EndpointRegistry,
    GraphRecord,
    GraphRegistry,
    builtin_endpoints,
    canonical_params,
)
from .loadgen import (
    SCENARIOS,
    ClosedLoop,
    open_loop,
    run_scenario,
    scenario_requests,
    update_stream,
)
from .scheduler import Request, Response, Server, ServeStats
from .soak import run_mutate_soak, run_serve_soak

__all__ = [
    "SCENARIOS",
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "ClosedLoop",
    "Endpoint",
    "EndpointRegistry",
    "GraphRecord",
    "GraphRegistry",
    "MicroBatcher",
    "Request",
    "Response",
    "ResultCache",
    "ServeStats",
    "Server",
    "builtin_endpoints",
    "canonical_params",
    "open_loop",
    "run_mutate_soak",
    "run_scenario",
    "run_serve_soak",
    "scenario_requests",
    "update_stream",
]
