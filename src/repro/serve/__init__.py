"""Multi-tenant serving layer over every engine family.

The tutorial's interactive-query thread (G-thinkerQ's shared-server
argument, reproduced for subgraph matching in
:mod:`repro.tlag.query`) and the GNN-systems survey's convergence of
graph-processing schedulers with DL serving both call for the same
missing piece: a *front door* that multiplexes concurrent requests
from many tenants across all of the repository's engines.  This
package is that front door:

* :mod:`~repro.serve.endpoints` — the **endpoint registry** exposing
  one named handler per engine family (TLAV analytics, subgraph
  matching, GNN node inference, TLAG subgraph queries) plus the
  **graph registry** whose *epoch* bumps whenever a graph is mutated
  or replaced;
* :mod:`~repro.serve.scheduler` — the request lifecycle: bounded
  admission queues with backpressure shedding, per-tenant fair sharing
  (generalizing :class:`repro.tlag.query.QueryServer`'s least-served
  policy), priority lanes, and deadline enforcement, all on the same
  simulated-ops clock the engines use;
* :mod:`~repro.serve.batcher` — the **micro-batcher** that coalesces
  compatible queued requests (same endpoint + graph epoch + canonical
  params, or mergeable GNN inference) into one engine call;
* :mod:`~repro.serve.cache` — the **versioned result cache** keyed by
  ``(endpoint, graph, epoch, canonical_params)``, invalidated by
  construction when the graph registry bumps an epoch;
* :mod:`~repro.serve.loadgen` — deterministic closed-loop and
  open-loop (seeded Poisson) load generators and the named scenarios
  behind ``python -m repro serve --scenario ...``;
* :mod:`~repro.serve.checks` — serve-path oracles for
  ``repro check --subsystem serve``: served == direct, cache hit ==
  cold miss, batched == unbatched, and the admission ledger invariant.

Everything reports through :mod:`repro.obs`: per-endpoint latency
histograms (p50/p95/p99 in simulated ops), queue-depth and in-flight
gauges, cache hit rates, shed and deadline-miss counters, and one
``serve.request`` span per request.
"""

from .batcher import MicroBatcher
from .cache import ResultCache
from .endpoints import (
    Endpoint,
    EndpointRegistry,
    GraphRecord,
    GraphRegistry,
    builtin_endpoints,
    canonical_params,
)
from .loadgen import (
    SCENARIOS,
    ClosedLoop,
    open_loop,
    run_scenario,
    scenario_requests,
)
from .scheduler import Request, Response, Server, ServeStats

__all__ = [
    "SCENARIOS",
    "ClosedLoop",
    "Endpoint",
    "EndpointRegistry",
    "GraphRecord",
    "GraphRegistry",
    "MicroBatcher",
    "Request",
    "Response",
    "ResultCache",
    "ServeStats",
    "Server",
    "builtin_endpoints",
    "canonical_params",
    "open_loop",
    "run_scenario",
    "scenario_requests",
]
