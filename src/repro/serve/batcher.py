"""Micro-batching: coalesce compatible queued requests into one engine call.

Two requests are *compatible* when they name the same endpoint, the
same graph **at the same epoch**, and either identical canonical
params (duplicate coalescing — the engine runs once and every member
receives the same answer) or any params on a ``merge_batch`` endpoint
(GNN inference: one full-graph forward pass is sliced per request).

Batching is a latency/throughput trade the scheduler exposes as a
**batch window**: a worker may delay dispatch until
``head.arrival + window`` simulated ops so later compatible arrivals
can ride along.  Correctness is not traded: the batched answer for
every member is bit-identical to an unbatched run, whatever the batch
cut — the oracle ``serve.batched_vs_unbatched`` in
:mod:`repro.serve.checks` enforces exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from .endpoints import Endpoint, GraphRecord

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Batch formation + execution policy (window, size cap)."""

    def __init__(self, window: int = 0, max_batch: int = 8) -> None:
        if window < 0:
            raise ValueError("batch window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.window = int(window)
        self.max_batch = int(max_batch)

    def batch_key(
        self, endpoint: Endpoint, graph: str, epoch: int, canon: Tuple
    ) -> Tuple:
        """Compatibility class of a request (None collapses params)."""
        return (
            endpoint.name,
            graph,
            int(epoch),
            None if endpoint.merge_batch else canon,
        )

    def dispatch_time(self, clock: int, head_arrival: int) -> int:
        """When the worker should fire: now, or after the batch window."""
        if self.window == 0:
            return clock
        return max(clock, head_arrival + self.window)

    def collect(
        self,
        head,
        queue: Sequence,
        endpoint: Endpoint,
        epoch: int,
        canon: Tuple,
    ) -> List:
        """FIFO-ordered compatible members of ``queue`` behind ``head``."""
        batch = [head]
        key = self.batch_key(endpoint, head.graph, epoch, canon)
        for req in queue:
            if req is head or len(batch) >= self.max_batch:
                continue
            if req.endpoint != head.endpoint or req.graph != head.graph:
                continue
            if key == self.batch_key(
                endpoint, req.graph, epoch, endpoint.canonicalize(req.params)
            ):
                batch.append(req)
        return batch[: self.max_batch]

    def execute(
        self,
        endpoint: Endpoint,
        record: GraphRecord,
        batch: Sequence,
        executor=None,
    ) -> Tuple[List[Any], int]:
        """One engine call for the whole batch: ``(values, cost)``.

        Duplicate-coalescing endpoints run once per *distinct* canonical
        params (one distinct set by construction of the batch key);
        merge endpoints run their ``run_batch``.
        """
        if endpoint.merge_batch:
            values, cost = endpoint.run_batch(
                record, [req.params for req in batch], executor=executor
            )
            return list(values), cost
        result, cost = endpoint.run(record, batch[0].params, executor=executor)
        return [result] * len(batch), cost
