"""Deterministic load generation and the named serving scenarios.

Two classic shapes, both seeded and fully deterministic:

* :func:`open_loop` — Poisson arrivals (exponential inter-arrival times
  drawn from one ``numpy`` generator) over a weighted endpoint mix;
  offered load does not react to the server, so queues grow when the
  system saturates — the regime where admission control and shedding
  earn their keep;
* :class:`ClosedLoop` — each client (tenant) keeps exactly one request
  outstanding and submits the next one ``think_ops`` after the previous
  response, via the server's ``feedback`` hook; offered load self-limits,
  the classic interactive regime.

:func:`run_scenario` drives the named scenarios behind
``python -m repro serve --scenario ...`` and returns the JSON-shaped
report: per-endpoint latency percentiles (exact, over simulated-ops
response times), throughput, cache hit rate, shed/expired/deadline-miss
counts, and the admission ledger.  At a fixed seed the whole report is
reproducible bit-for-bit, which is what lets CI pin it as an artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.delta import random_edge_updates
from ..graph.generators import barabasi_albert, watts_strogatz
from ..graph.partition import hash_partition
from ..graph.store import InMemoryGraph
from ..obs import MetricsRegistry, Tracer
from .endpoints import EndpointRegistry, GraphRegistry, builtin_endpoints
from .scheduler import Request, Response, Server

__all__ = [
    "MixEntry",
    "ClosedLoop",
    "open_loop",
    "update_stream",
    "SCENARIOS",
    "scenario_requests",
    "run_scenario",
]


@dataclass
class MixEntry:
    """One endpoint in a workload mix."""

    endpoint: str
    gen_params: Callable[[np.random.Generator], Dict]
    weight: float = 1.0
    graph: str = "default"
    priority: int = 0
    deadline_slack: Optional[int] = None  # deadline = arrival + slack


def _pick(rng: np.random.Generator, mix: Sequence[MixEntry]) -> MixEntry:
    weights = np.array([m.weight for m in mix], dtype=np.float64)
    return mix[int(rng.choice(len(mix), p=weights / weights.sum()))]


def _make_request(
    rng: np.random.Generator, entry: MixEntry, tenant: str, arrival: int
) -> Request:
    return Request(
        endpoint=entry.endpoint,
        params=entry.gen_params(rng),
        graph=entry.graph,
        tenant=tenant,
        priority=entry.priority,
        arrival=arrival,
        deadline=(
            None if entry.deadline_slack is None
            else arrival + entry.deadline_slack
        ),
    )


def open_loop(
    mix: Sequence[MixEntry],
    num_requests: int,
    mean_interarrival: float,
    tenants: Sequence[str] = ("default",),
    seed: int = 0,
    start: int = 0,
) -> List[Request]:
    """Seeded Poisson arrival stream over a weighted endpoint mix."""
    rng = np.random.default_rng(seed)
    requests: List[Request] = []
    t = start
    for _ in range(num_requests):
        t += 1 + int(rng.exponential(mean_interarrival))
        entry = _pick(rng, mix)
        tenant = str(tenants[int(rng.integers(len(tenants)))])
        requests.append(_make_request(rng, entry, tenant, t))
    return requests


class ClosedLoop:
    """N clients, one outstanding request each, deterministic think time.

    Submit :meth:`initial_requests`, then pass :meth:`feedback` to
    :meth:`repro.serve.Server.run`: each completion for a client
    triggers its next request ``think_ops`` later, until the client's
    budget is spent.
    """

    def __init__(
        self,
        mix: Sequence[MixEntry],
        clients: Sequence[str],
        requests_per_client: int,
        think_ops: int = 100,
        seed: int = 0,
        start: int = 0,
    ) -> None:
        self.mix = list(mix)
        self.clients = list(clients)
        self.think_ops = think_ops
        self._rng = np.random.default_rng(seed)
        self._remaining = {c: requests_per_client - 1 for c in clients}
        self._start = start
        self.submitted = 0

    def initial_requests(self) -> List[Request]:
        requests = []
        for i, client in enumerate(self.clients):
            entry = _pick(self._rng, self.mix)
            requests.append(_make_request(
                self._rng, entry, client, self._start + i
            ))
            self.submitted += 1
        return requests

    def feedback(self, response: Response) -> Optional[Request]:
        client = response.request.tenant
        if self._remaining.get(client, 0) <= 0:
            return None
        self._remaining[client] -= 1
        self.submitted += 1
        entry = _pick(self._rng, self.mix)
        return _make_request(
            self._rng, entry, client,
            response.completed + self.think_ops,
        )


# ----------------------------------------------------------------------
# Named scenarios
# ----------------------------------------------------------------------


def _family_mix(
    n: int, rng_patterns: Sequence[str] = ("triangle", "diamond")
) -> List[MixEntry]:
    """A mix touching every engine family on the ``default`` graph."""
    return [
        MixEntry("tlav.pagerank", lambda r: {"iterations": 5}, weight=1.5),
        MixEntry(
            "tlav.bfs",
            lambda r: {"source": int(r.integers(n))},
            weight=2.0, priority=1, deadline_slack=200_000,
        ),
        MixEntry("tlav.wcc", lambda r: {}, weight=1.0),
        MixEntry(
            "matching.count",
            lambda r: {"pattern": str(r.choice(list(rng_patterns)))},
            weight=2.0,
        ),
        MixEntry("matching.cliques", lambda r: {"k": 3}, weight=1.0),
        MixEntry(
            "gnn.predict",
            lambda r: {"nodes": sorted(int(v) for v in r.choice(n, 4, replace=False))},
            weight=2.5, priority=1, deadline_slack=300_000,
        ),
        MixEntry(
            "tlag.subgraph_query",
            lambda r: {"pattern": str(r.choice(["triangle", "tailed-triangle"]))},
            weight=1.5,
        ),
    ]


def _build_smoke(seed: int) -> Dict[str, Any]:
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(120, 3, seed=1))
    mix = _family_mix(120)
    requests = open_loop(
        mix, num_requests=48, mean_interarrival=300,
        tenants=("alice", "bob"), seed=seed,
    )
    return {
        "graphs": graphs,
        "waves": [{"requests": requests}],
        "server": {"num_workers": 2, "queue_bound": 64, "batch_window": 64},
    }


#: Vertex count of the mixed scenario's stored graph — above the
#: sampled-predict threshold, so ``gnn.predict`` answers on it via
#: fanout-bounded sampled inference rather than a full forward.
_STORED_N = 600


def _stored_graph_dir(seed: int) -> str:
    """Build (once per process) the mixed scenario's on-disk store."""
    import atexit
    import os
    import shutil
    import tempfile

    from ..graph.store import build_store

    cached = _stored_graph_dir.__dict__.get("path")
    if cached is not None and os.path.exists(cached):
        return cached
    root = tempfile.mkdtemp(prefix="repro-serve-stored-")
    atexit.register(shutil.rmtree, root, ignore_errors=True)
    path = os.path.join(root, "stored")
    graph = barabasi_albert(_STORED_N, 3, seed=6)
    features = np.random.default_rng(6).normal(size=(_STORED_N, 8))
    build_store(
        graph, path, partition="hash", num_parts=8,
        features=features, name="stored",
    )
    _stored_graph_dir.__dict__["path"] = path
    return path


def _build_mixed(seed: int) -> Dict[str, Any]:
    """Two in-memory graphs plus a stored one, open + closed loops,
    an epoch bump between waves.  ``gnn.predict`` against the stored
    graph exercises the sampled-inference serving path (bounded cost,
    partition-exact footprints)."""
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(160, 3, seed=2))
    graphs.register("mesh", watts_strogatz(144, 4, 0.1, seed=3))
    graphs.register("stored", _stored_graph_dir(seed))
    mix = _family_mix(160) + [
        MixEntry(
            "tlav.pagerank", lambda r: {"iterations": 4},
            weight=1.0, graph="mesh",
        ),
        MixEntry(
            "matching.count", lambda r: {"pattern": "c4"},
            weight=1.0, graph="mesh",
        ),
        MixEntry(
            "gnn.predict",
            lambda r: {"nodes": sorted(
                int(v) for v in r.choice(_STORED_N, 4, replace=False)
            )},
            weight=2.0, graph="stored", priority=1, deadline_slack=400_000,
        ),
    ]
    wave1 = open_loop(
        mix, num_requests=40, mean_interarrival=500,
        tenants=("alice", "bob", "carol"), seed=seed,
    )
    closed = ClosedLoop(
        mix, clients=("dan", "erin"), requests_per_client=6,
        think_ops=400, seed=seed + 1,
    )
    wave2 = open_loop(
        mix, num_requests=24, mean_interarrival=500,
        tenants=("alice", "bob", "carol"), seed=seed + 2,
    )
    return {
        "graphs": graphs,
        "waves": [
            {"requests": wave1 + closed.initial_requests(),
             "feedback": closed.feedback},
            # The default graph is replaced between waves: every cached
            # result for it is invalidated by the epoch bump.
            {"before": lambda g: g.replace(
                "default", barabasi_albert(160, 3, seed=12)
            ), "requests": wave2},
        ],
        "server": {"num_workers": 4, "queue_bound": 48, "batch_window": 128},
    }


def _build_burst(seed: int) -> Dict[str, Any]:
    """Overload: a tight burst against a small bound — shedding regime."""
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(120, 3, seed=4))
    mix = [
        MixEntry(
            "tlav.bfs", lambda r: {"source": int(r.integers(120))},
            weight=3.0, priority=1, deadline_slack=2_000,
        ),
        MixEntry("tlav.pagerank", lambda r: {"iterations": 6}, weight=1.0),
        MixEntry(
            "matching.count",
            lambda r: {"pattern": str(r.choice(["triangle", "diamond", "house"]))},
            weight=2.0, deadline_slack=6_000,
        ),
        MixEntry(
            "gnn.predict",
            lambda r: {"nodes": [int(r.integers(120))]},
            weight=3.0, priority=1, deadline_slack=2_500,
        ),
        MixEntry(
            "tlag.subgraph_query", lambda r: {"pattern": "triangle"},
            weight=1.0,
        ),
    ]
    requests = open_loop(
        mix, num_requests=96, mean_interarrival=40,
        tenants=("alice", "bob", "carol", "dan"), seed=seed,
    )
    return {
        "graphs": graphs,
        "waves": [{"requests": requests}],
        "server": {"num_workers": 2, "queue_bound": 16, "batch_window": 32},
    }


def update_stream(
    graph,
    num_batches: int,
    edge_fraction: float = 0.01,
    seed: int = 0,
    name: str = "default",
) -> List[Callable[[GraphRegistry], Any]]:
    """Seeded edge-mutation batches as wave ``before`` hooks.

    Each hook calls ``GraphRegistry.apply_updates(name, ...)`` with one
    pre-generated batch (deletes sampled from the live edge set, inserts
    from its complement), so interleaving them with query waves gives a
    deterministic temporal workload: the registry bumps the graph's
    epoch per batch and reports the dirty partitions to the cache.
    """
    batches = random_edge_updates(
        graph, num_batches, edge_fraction=edge_fraction, seed=seed
    )
    return [
        (lambda g, ins=ins, dels=dels: g.apply_updates(
            name, inserts=ins, deletes=dels
        ))
        for ins, dels in batches
    ]


def _build_temporal(seed: int) -> Dict[str, Any]:
    """Interleaved update/query streams over a partitioned dynamic graph.

    Heavy on ``graph.neighbors`` (partition-exact footprint) so the
    cache's partition-scoped promotion is load-bearing: each mutation
    batch dirties a couple of the 8 partitions and the rest of the
    cached adjacency answers carry over to the new epoch.
    """
    base = barabasi_albert(240, 3, seed=5)
    n = base.num_vertices
    graphs = GraphRegistry()
    # 32 partitions over 240 vertices: a trickle batch touches a small
    # fraction of them, so most cached footprints stay clean per epoch.
    graphs.register(
        "default",
        InMemoryGraph(base, partition=hash_partition(base, 32), name="default"),
    )
    mix = [
        # Hot set of 48 vertices: adjacency queries repeat, so promoted
        # entries actually get re-hit after each mutation batch.
        MixEntry(
            "graph.neighbors",
            lambda r: {"node": int(r.integers(48))},
            weight=6.0, deadline_slack=150_000,
        ),
        MixEntry("tlav.pagerank", lambda r: {"iterations": 4}, weight=1.0),
        MixEntry(
            "tlav.bfs",
            lambda r: {"source": int(r.integers(n))},
            weight=1.5, priority=1, deadline_slack=250_000,
        ),
        MixEntry("matching.count", lambda r: {"pattern": "triangle"}, weight=0.5),
    ]
    hooks = update_stream(
        base, num_batches=6, edge_fraction=0.004, seed=seed + 9
    )
    waves: List[Dict[str, Any]] = [
        {"requests": open_loop(
            mix, num_requests=24, mean_interarrival=400,
            tenants=("alice", "bob"), seed=seed,
        )},
    ]
    for i, hook in enumerate(hooks[:-1]):
        waves.append({
            "before": hook,
            "requests": open_loop(
                mix, num_requests=16, mean_interarrival=400,
                tenants=("alice", "bob"), seed=seed + 10 + i,
            ),
        })
    closed = ClosedLoop(
        mix, clients=("dan", "erin"), requests_per_client=6,
        think_ops=300, seed=seed + 1,
    )
    waves.append({
        "before": hooks[-1],
        "requests": closed.initial_requests(),
        "feedback": closed.feedback,
    })
    return {
        "graphs": graphs,
        "waves": waves,
        "server": {"num_workers": 2, "queue_bound": 64, "batch_window": 64},
    }


SCENARIOS: Dict[str, Callable[[int], Dict[str, Any]]] = {
    "smoke": _build_smoke,
    "mixed": _build_mixed,
    "burst": _build_burst,
    "temporal": _build_temporal,
}


def scenario_requests(name: str, seed: int = 0) -> Dict[str, Any]:
    """Build (graphs, waves, server kwargs) for a named scenario."""
    try:
        build = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
    return build(seed)


# ----------------------------------------------------------------------
# Scenario runner + report
# ----------------------------------------------------------------------


def _exact_percentile(sorted_latencies: Sequence[int], q: float) -> int:
    """Exact order-statistic percentile (deterministic integer)."""
    if not sorted_latencies:
        return 0
    rank = max(1, int(np.ceil(q * len(sorted_latencies))))
    return int(sorted_latencies[rank - 1])


def summarize(
    responses: Sequence[Response], server: Server, makespan: int
) -> Dict[str, Any]:
    """The report dict a scenario run produces."""
    by_endpoint: Dict[str, List[Response]] = {}
    for response in responses:
        by_endpoint.setdefault(response.request.endpoint, []).append(response)

    endpoints: Dict[str, Any] = {}
    for name in sorted(by_endpoint):
        group = by_endpoint[name]
        served = sorted(r.latency for r in group if r.status in ("ok", "error"))
        endpoints[name] = {
            "count": len(group),
            "ok": sum(1 for r in group if r.ok),
            "shed": sum(1 for r in group if r.status == "shed"),
            "expired": sum(1 for r in group if r.status == "expired"),
            "errors": sum(1 for r in group if r.status == "error"),
            "degraded": sum(1 for r in group if r.degraded),
            "deadline_misses": sum(1 for r in group if r.deadline_missed),
            "cache_hits": sum(1 for r in group if r.cache_hit),
            "p50": _exact_percentile(served, 0.50),
            "p95": _exact_percentile(served, 0.95),
            "p99": _exact_percentile(served, 0.99),
            "mean": (
                round(float(np.mean(served)), 1) if served else 0.0
            ),
            "mean_batch_size": (
                round(float(np.mean([r.batch_size for r in group if r.ok])), 2)
                if any(r.ok for r in group) else 0.0
            ),
        }

    stats = server.stats
    cache = server.cache
    completed = stats.completed
    qps = 1000.0 * completed / makespan if makespan > 0 else 0.0
    return {
        "endpoints": endpoints,
        "overall": {
            "admitted": stats.admitted,
            "completed": completed,
            "shed": stats.shed,
            "expired": stats.expired,
            "degraded": stats.degraded,
            "in_flight": stats.in_flight,
            "deadline_misses": stats.deadline_misses,
            "peak_queue_depth": stats.peak_queue_depth,
            "makespan_ops": makespan,
            "qps_per_kops": round(qps, 3),
            "cache_hits": cache.hits if cache else 0,
            "cache_hit_rate": round(cache.hit_rate, 4) if cache else 0.0,
            "ledger_ok": (
                stats.in_flight == 0
                and stats.admitted
                == completed + stats.shed + stats.expired + stats.degraded
            ),
        },
        "tenants": {
            t: int(w) for t, w in sorted(server.tenant_work.items())
        },
    }


def run_scenario(
    name: str,
    seed: int = 0,
    workers: Optional[int] = None,
    queue_bound: Optional[int] = None,
    batch_window: Optional[int] = None,
    max_batch: int = 8,
    cache: bool = True,
    endpoints: Optional[EndpointRegistry] = None,
    obs: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    **server_extra: Any,
) -> Dict[str, Any]:
    """Run one named scenario end to end; returns the JSON-shaped report.

    Extra keyword arguments (``degrade``, ``breaker``, ``injector``,
    ``default_timeout_ops``, ...) pass straight through to
    :class:`~repro.serve.Server` — the soak and the degradation bench
    use these to turn the graceful-degradation ladder on.
    """
    spec = scenario_requests(name, seed)
    server_kwargs = dict(spec.get("server", {}))
    if workers is not None:
        server_kwargs["num_workers"] = workers
    if queue_bound is not None:
        server_kwargs["queue_bound"] = queue_bound
    if batch_window is not None:
        server_kwargs["batch_window"] = batch_window
    server_kwargs["max_batch"] = max_batch
    server_kwargs.update(server_extra)
    server = Server(
        spec["graphs"],
        endpoints=endpoints if endpoints is not None else builtin_endpoints(),
        enable_cache=cache, obs=obs, tracer=tracer, **server_kwargs,
    )
    responses: List[Response] = []
    for wave in spec["waves"]:
        before = wave.get("before")
        if before is not None:
            before(spec["graphs"])
        for request in wave["requests"]:
            server.submit(request)
        responses.extend(server.run(feedback=wave.get("feedback")))

    arrivals = [r.request.arrival for r in responses]
    completions = [r.completed for r in responses]
    makespan = (max(completions) - min(arrivals)) if responses else 0
    report = {
        "scenario": name,
        "seed": seed,
        "workers": server.num_workers,
        "queue_bound": server.queue_bound,
        "batch_window": server.batcher.window,
        "max_batch": server.batcher.max_batch,
        "cache": cache,
        "requests": len(responses),
    }
    report.update(summarize(responses, server, makespan))
    return report
