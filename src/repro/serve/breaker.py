"""Per-endpoint circuit breakers for the serving layer.

A :class:`CircuitBreaker` guards one endpoint.  It watches a sliding
window of execution outcomes and walks the classic three-state
machine, with all time measured on the server's **simulated** clock
(ops, not wall seconds) so every transition is deterministic at a
fixed seed:

* **closed** — traffic flows; outcomes land in the window.  When the
  window holds at least ``min_samples`` outcomes and the failure rate
  reaches ``failure_threshold``, the breaker opens.
* **open** — calls are rejected without touching the engine (the
  scheduler answers from the stale cache instead — the degradation
  ladder).  After ``open_ops`` simulated ops the next request is let
  through as a probe.
* **half-open** — the probe executes.  Success closes the breaker
  (window reset); failure re-opens it for another ``open_ops``.

Transitions are exported as ``serve.breaker.transitions`` counter
increments (labelled ``endpoint``/``to``), a per-endpoint state gauge,
and zero-width ``serve.breaker.transition`` spans on the simulated
timeline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from ..obs import MetricsRegistry, Tracer

__all__ = ["BreakerConfig", "CircuitBreaker", "BreakerBoard", "BREAKER_STATES"]

#: Gauge encoding of the three states (exported per endpoint).
BREAKER_STATES = {"closed": 0.0, "half_open": 0.5, "open": 1.0}


@dataclass(frozen=True)
class BreakerConfig:
    """Knobs for one endpoint's breaker (all times in simulated ops)."""

    window: int = 16          #: sliding outcome window size
    failure_threshold: float = 0.5  #: failure rate that opens the breaker
    min_samples: int = 4      #: outcomes required before the rate is trusted
    open_ops: int = 2_000     #: how long an open breaker rejects traffic
    half_open_probes: int = 1 #: consecutive probe successes needed to close

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.open_ops < 1:
            raise ValueError("open_ops must be >= 1")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One endpoint's breaker; consult :meth:`allow`, report outcomes."""

    def __init__(
        self,
        endpoint: str,
        config: Optional[BreakerConfig] = None,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.endpoint = endpoint
        self.config = config if config is not None else BreakerConfig()
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.state = "closed"
        self.opened_at = 0.0
        self._window: Deque[bool] = deque(maxlen=self.config.window)
        self._probe_successes = 0
        self._c_transitions = self.obs.counter(
            "serve.breaker.transitions",
            "breaker state changes, by endpoint and target state",
        )
        self._c_rejected = self.obs.counter(
            "serve.breaker.rejected", "calls rejected by an open breaker"
        )
        self._g_state = self.obs.gauge(
            "serve.breaker.state",
            "breaker state per endpoint (0 closed, 0.5 half-open, 1 open)",
        )
        self._g_state.set(BREAKER_STATES["closed"], endpoint=endpoint)

    # -- state machine ------------------------------------------------------

    def _transition(self, state: str, clock: float) -> None:
        if state == self.state:
            return
        self.state = state
        self._c_transitions.inc(endpoint=self.endpoint, to=state)
        self._g_state.set(BREAKER_STATES[state], endpoint=self.endpoint)
        if self.tracer is not None:
            with self.tracer.span(
                "serve.breaker.transition", endpoint=self.endpoint, to=state
            ) as span:
                span.set_sim(clock, clock)

    def allow(self, clock: float) -> str:
        """``"execute"`` / ``"probe"`` / ``"reject"`` for a call at ``clock``."""
        if self.state == "closed":
            return "execute"
        if self.state == "open":
            if clock - self.opened_at >= self.config.open_ops:
                self._probe_successes = 0
                self._transition("half_open", clock)
                return "probe"
            self._c_rejected.inc(endpoint=self.endpoint)
            return "reject"
        return "probe"  # half_open: serial event loop -> one probe in flight

    def record_success(self, clock: float) -> None:
        """An engine execution for this endpoint completed in time."""
        if self.state == "half_open":
            self._probe_successes += 1
            if self._probe_successes >= self.config.half_open_probes:
                self._window.clear()
                self._transition("closed", clock)
            return
        self._window.append(True)

    def record_failure(self, clock: float) -> None:
        """An engine execution failed or timed out (after the hedge)."""
        if self.state == "half_open":
            self.opened_at = clock
            self._transition("open", clock)
            return
        self._window.append(False)
        if self.state == "closed" and len(self._window) >= self.config.min_samples:
            failures = sum(1 for ok in self._window if not ok)
            if failures / len(self._window) >= self.config.failure_threshold:
                self.opened_at = clock
                self._transition("open", clock)

    # -- reporting ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        return {
            "endpoint": self.endpoint,
            "state": self.state,
            "opened_at": self.opened_at,
            "window": list(self._window),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CircuitBreaker({self.endpoint!r}, state={self.state!r})"


class BreakerBoard:
    """Lazily creates one :class:`CircuitBreaker` per endpoint."""

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self._breakers: Dict[str, CircuitBreaker] = {}

    def get(self, endpoint: str) -> CircuitBreaker:
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(
                endpoint, self.config, obs=self.obs, tracer=self.tracer
            )
            self._breakers[endpoint] = breaker
        return breaker

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {name: b.snapshot() for name, b in sorted(self._breakers.items())}

    def __iter__(self):
        return iter(self._breakers.values())
