"""Differential checks for the serving layer.

The serving layer must be a *transparent* front door: queueing,
fairness, batching and caching may reorder and coalesce work, but the
bytes a tenant receives must be exactly what a direct engine call
returns.  Four oracle families enforce that:

* ``serve.served_vs_direct.<family>`` — one request through the full
  scheduler equals the endpoint handler called directly, bit for bit,
  for every engine family (tlav, matching, gnn, tlag);
* ``serve.cache_hit_vs_cold`` — a cache hit returns the same bits as
  the cold miss that populated it, and an epoch bump forces a re-miss
  whose answer equals a fresh direct call on the new graph;
* ``serve.batched_vs_unbatched`` — the same request stream served with
  the micro-batcher enabled and disabled yields per-request identical
  values, whatever batch cut the window produced;
* ``serve.queue_accounting`` — the admission ledger:
  ``admitted == completed + shed + expired + degraded`` with zero in
  flight after a drain, response statuses match the counters, and the
  queue never exceeded its bound;
* ``serve.stored.catalog_vs_memory`` — the same request served from a
  catalog-loaded, shard-paged :class:`StoredGraph` record returns the
  in-memory record's bits, and the record's epoch is the on-disk
  manifest version (it survives reopening the catalog);
* ``serve.soak.degraded_ledger`` — under injected endpoint failures
  with breakers and the degradation ladder enabled, the ledger still
  balances, terminal statuses stay mutually exclusive, and every
  degraded answer reports a bounded staleness;
* ``serve.soak.clean_vs_chaos`` — the same warm/bump/storm request
  sequence served fault-free and under chaos agrees on every
  non-degraded answer bit for bit, and each degraded answer equals a
  stale cached value from a prior epoch.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List

import numpy as np

from ..check.invariants import same_bits, same_values
from ..check.registry import BIT_IDENTICAL, invariant, pair
from ..check.workloads import GRAPH_FLOORS, gen_graph_params, make_graph
from ..resilience.faults import FaultPlan
from .breaker import BreakerConfig
from .endpoints import GraphRegistry, builtin_endpoints
from .scheduler import Request, Server

#: Per-family endpoint + parameter draw used by the served-vs-direct
#: oracles.  Params stay JSON-scalar so failing cases are committable.
_FAMILY_DRAWS = {
    "tlav": lambda rng, n: (
        ("tlav.pagerank", {"iterations": int(rng.integers(2, 9))}),
        ("tlav.bfs", {"source": int(rng.integers(n))}),
        ("tlav.wcc", {}),
    )[int(rng.integers(3))],
    "matching": lambda rng, n: (
        ("matching.count",
         {"pattern": str(rng.choice(["triangle", "diamond", "path3", "c4"]))}),
        ("matching.cliques", {"k": int(rng.integers(3, 5))}),
    )[int(rng.integers(2))],
    "gnn": lambda rng, n: (
        "gnn.predict",
        {"nodes": sorted(int(v) for v in rng.integers(0, n, size=3))},
    ),
    "tlag": lambda rng, n: (
        "tlag.subgraph_query",
        {"pattern": str(rng.choice(["triangle", "tailed-triangle", "house"]))},
    ),
}


def _registry_for(params: Dict) -> GraphRegistry:
    graphs = GraphRegistry()
    graphs.register("default", make_graph(params))
    return graphs


def _server(graphs: GraphRegistry, params: Dict, **overrides) -> Server:
    kwargs = dict(
        endpoints=builtin_endpoints(),
        num_workers=max(1, int(params.get("workers", 2))),
        queue_bound=int(params.get("queue_bound", 64)),
        batch_window=int(params.get("batch_window", 0)),
        enable_cache=bool(params.get("cache", True)),
    )
    kwargs.update(overrides)
    return Server(graphs, **kwargs)


def _gen_family(family: str):
    def gen(rng: np.random.Generator) -> Dict:
        params = gen_graph_params(rng, n_range=(8, 48))
        n = max(2, int(params["n"]))
        endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
        params.update(
            endpoint=endpoint, ep_params=ep_params,
            workers=int(rng.integers(1, 4)),
            batch_window=int(rng.integers(0, 3)) * 32,
        )
        return params

    return gen


def _make_served_vs_direct(family: str):
    def run(params: Dict) -> List[str]:
        graphs = _registry_for(params)
        endpoints = builtin_endpoints()
        record = graphs.get("default")
        endpoint = endpoints.get(params["endpoint"])
        direct, _ = endpoint.run(record, dict(params["ep_params"]))

        server = _server(graphs, params, endpoints=endpoints)
        server.submit(Request(
            endpoint=params["endpoint"], params=dict(params["ep_params"]),
        ))
        (response,) = server.run()
        violations = same_values(response.status, "ok", "status")
        violations += same_bits(direct, response.value, "served result")
        return violations

    return run


for _family in ("tlav", "matching", "gnn", "tlag"):
    pair(
        f"serve.served_vs_direct.{_family}",
        "serve",
        BIT_IDENTICAL,
        _gen_family(_family),
        floors=dict(GRAPH_FLOORS),
        description=(
            f"one {_family} request through admission/scheduling/batching "
            "equals the direct engine call"
        ),
    )(_make_served_vs_direct(_family))


def _gen_cache(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    n = max(2, int(params["n"]))
    family = ("tlav", "matching", "gnn", "tlag")[int(rng.integers(4))]
    endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
    params.update(endpoint=endpoint, ep_params=ep_params, workers=1)
    params["bump_seed"] = int(rng.integers(1 << 20))
    return params


@pair(
    "serve.cache_hit_vs_cold",
    "serve",
    BIT_IDENTICAL,
    _gen_cache,
    floors=dict(GRAPH_FLOORS),
)
def _run_cache_hit_vs_cold(params: Dict) -> List[str]:
    """A cache hit equals the cold miss; an epoch bump re-misses and
    equals a fresh direct call on the new graph."""
    graphs = _registry_for(params)
    server = _server(graphs, params, enable_cache=True)
    request = dict(
        endpoint=params["endpoint"], params=dict(params["ep_params"])
    )

    server.submit(Request(**request, arrival=0))
    (cold,) = server.run()
    server.submit(Request(**request, arrival=server.clock))
    (hot,) = server.run()
    violations = same_values(hot.cache_hit, True, "second request cache_hit")
    violations += same_bits(cold.value, hot.value, "hit vs cold result")

    # Replace the graph: the epoch bump must force a re-miss whose
    # answer matches a direct call against the *new* graph.
    new_params = dict(params, graph_seed=params["bump_seed"])
    graphs.replace("default", make_graph(new_params))
    record = graphs.get("default")
    direct, _ = builtin_endpoints().get(params["endpoint"]).run(
        record, dict(params["ep_params"])
    )
    server.submit(Request(**request, arrival=server.clock))
    (fresh,) = server.run()
    violations += same_values(fresh.cache_hit, False, "post-bump cache_hit")
    violations += same_bits(direct, fresh.value, "post-bump result")
    return violations


def _gen_stream(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    n = max(2, int(params["n"]))
    requests = []
    for _ in range(int(rng.integers(4, 13))):
        family = ("tlav", "matching", "gnn", "tlag")[int(rng.integers(4))]
        endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
        requests.append({
            "endpoint": endpoint,
            "params": ep_params,
            "tenant": str(rng.choice(["a", "b"])),
            "priority": int(rng.integers(2)),
            "arrival": int(rng.integers(0, 2000)),
        })
    params.update(
        requests=requests,
        workers=int(rng.integers(1, 4)),
        batch_window=int(rng.integers(1, 5)) * 64,
        max_batch=int(rng.integers(2, 9)),
    )
    return params


def _serve_stream(params: Dict, batching: bool, cache: bool):
    graphs = _registry_for(params)
    server = _server(
        graphs, params, enable_cache=cache,
        batch_window=int(params["batch_window"]) if batching else 0,
        max_batch=int(params["max_batch"]) if batching else 1,
    )
    for spec in params["requests"]:
        server.submit(Request(
            endpoint=spec["endpoint"], params=dict(spec["params"]),
            tenant=spec["tenant"], priority=int(spec["priority"]),
            arrival=int(spec["arrival"]),
        ))
    return server, server.run()


@pair(
    "serve.batched_vs_unbatched",
    "serve",
    BIT_IDENTICAL,
    _gen_stream,
    floors=dict(GRAPH_FLOORS),
)
def _run_batched_vs_unbatched(params: Dict) -> List[str]:
    """Micro-batching must not change any per-request value, whatever
    batch cut the window and size cap produce."""
    _, unbatched = _serve_stream(params, batching=False, cache=False)
    server, batched = _serve_stream(params, batching=True, cache=False)
    violations: List[str] = []
    for a, b in zip(unbatched, batched):
        violations += same_values(b.status, a.status, f"req {a.request.id} status")
        violations += same_bits(a.value, b.value, f"req {a.request.id} value")
    return violations


@invariant(
    "serve.queue_accounting",
    "serve",
    _gen_stream,
    floors=dict(GRAPH_FLOORS),
)
def _run_queue_accounting(params: Dict) -> List[str]:
    """Admission ledger: admitted == completed + shed + expired +
    degraded after a drain, statuses match counters, and the bound was
    never exceeded."""
    queue_bound = 2 + int(params["max_batch"])
    graphs = _registry_for(params)
    server = _server(graphs, params, queue_bound=queue_bound)
    for spec in params["requests"]:
        server.submit(Request(
            endpoint=spec["endpoint"], params=dict(spec["params"]),
            tenant=spec["tenant"], priority=int(spec["priority"]),
            arrival=int(spec["arrival"]),
            deadline=int(spec["arrival"]) + 5_000,
        ))
    responses = server.run()
    return _ledger_violations(
        server, responses, queue_bound=queue_bound
    )


def _ledger_violations(
    server: Server, responses, queue_bound=None
) -> List[str]:
    """The shared admission-ledger assertions, degraded column included."""
    stats = server.stats
    violations: List[str] = []
    by_status: Dict[str, int] = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    completed = by_status.get("ok", 0) + by_status.get("error", 0)
    violations += same_values(stats.admitted, len(responses), "admitted")
    violations += same_values(stats.completed, completed, "completed counter")
    violations += same_values(stats.shed, by_status.get("shed", 0), "shed counter")
    violations += same_values(
        stats.expired, by_status.get("expired", 0), "expired counter"
    )
    violations += same_values(
        stats.degraded, by_status.get("degraded", 0), "degraded counter"
    )
    violations += same_values(stats.in_flight, 0, "in_flight after drain")
    violations += same_values(
        stats.admitted,
        stats.completed + stats.shed + stats.expired + stats.degraded,
        "ledger admitted == completed + shed + expired + degraded",
    )
    # Terminal statuses are mutually exclusive: every response holds
    # exactly one, so the per-status counts must sum to the total.
    violations += same_values(
        sum(by_status.values()), len(responses), "statuses sum to responses"
    )
    if queue_bound is not None and stats.peak_queue_depth > queue_bound:
        violations.append(
            f"queue depth {stats.peak_queue_depth} exceeded bound {queue_bound}"
        )
    return violations


#: Staleness ceiling the soak oracles hand the chaos server.
_SOAK_MAX_STALE = 4


def _gen_soak(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    n = max(2, int(params["n"]))
    # A small closed parameter pool: the warm wave covers it exactly,
    # so every storm request has a stale cache entry to degrade to.
    pool = (
        [{"endpoint": "tlav.pagerank", "params": {"iterations": it}}
         for it in (3, 4, 5)]
        + [{"endpoint": "tlav.bfs", "params": {"source": s}}
           for s in range(min(4, n))]
        + [{"endpoint": "matching.count", "params": {"pattern": p}}
           for p in ("triangle", "path3")]
    )
    storm = []
    arrival = 0
    for _ in range(int(rng.integers(14, 29))):
        arrival += int(rng.integers(40, 200))
        storm.append({
            "pick": int(rng.integers(len(pool))),
            "tenant": str(rng.choice(["a", "b"])),
            "arrival": arrival,
        })
    params.update(
        pool=pool, storm=storm,
        workers=int(rng.integers(1, 3)),
        fault_seed=int(rng.integers(1 << 16)),
        bump_seed=int(rng.integers(1 << 20)),
    )
    return params


def _run_soak_waves(params: Dict, chaos: bool):
    """Warm the pool fault-free, bump the graph epoch, then run the
    storm — with breakers + ladder + injected failures iff ``chaos``."""
    graphs = _registry_for(params)
    overrides = dict(batch_window=0)
    if chaos:
        overrides.update(
            breaker=BreakerConfig(
                window=5, failure_threshold=0.5, min_samples=3,
                open_ops=800, half_open_probes=1,
            ),
            degrade=True,
            max_stale_epochs=_SOAK_MAX_STALE,
        )
    server = _server(graphs, params, **overrides)
    for i, spec in enumerate(params["pool"]):
        server.submit(Request(
            endpoint=spec["endpoint"], params=dict(spec["params"]),
            tenant="warm", arrival=i * 50,
        ))
    warm = server.run()
    graphs.replace(
        "default", make_graph(dict(params, graph_seed=params["bump_seed"]))
    )
    if chaos:
        # Armed only for the storm: the warm wave must populate the
        # cache or there is nothing stale to degrade to.
        server.injector = (
            FaultPlan(seed=int(params["fault_seed"]))
            .fail_endpoint("tlav.pagerank", 0.9)
            .build()
        )
    start = server.clock + 500
    for spec in params["storm"]:
        pick = params["pool"][int(spec["pick"])]
        server.submit(Request(
            endpoint=pick["endpoint"], params=dict(pick["params"]),
            tenant=spec["tenant"], arrival=start + int(spec["arrival"]),
        ))
    return server, warm, server.run()


@invariant(
    "serve.soak.degraded_ledger",
    "serve",
    _gen_soak,
    floors=dict(GRAPH_FLOORS),
    description="Under injected endpoint failures with breakers and the "
    "degradation ladder on, the admission ledger balances (admitted == "
    "completed + shed + expired + degraded, zero in flight), statuses "
    "stay mutually exclusive, and every degraded answer carries a "
    "staleness within the configured bound.",
)
def _run_degraded_ledger(params: Dict) -> List[str]:
    server, warm, storm = _run_soak_waves(params, chaos=True)
    violations = _ledger_violations(server, warm + storm)
    for response in warm:
        violations += same_values(
            response.status, "ok", f"warm req {response.request.id} status"
        )
    for response in storm:
        if response.status != "degraded":
            continue
        if not response.degraded:
            violations.append(
                f"req {response.request.id}: status degraded but "
                f"degraded flag unset"
            )
        if response.degraded_reason is None:
            violations.append(
                f"req {response.request.id}: degraded without a reason"
            )
        if not 1 <= response.staleness <= _SOAK_MAX_STALE:
            violations.append(
                f"req {response.request.id}: staleness "
                f"{response.staleness} outside [1, {_SOAK_MAX_STALE}]"
            )
    return violations


@invariant(
    "serve.soak.clean_vs_chaos",
    "serve",
    _gen_soak,
    floors=dict(GRAPH_FLOORS),
    description="The same warm/bump/storm request sequence served "
    "fault-free and under chaos (failing endpoint, breakers, ladder) "
    "agrees bit for bit on every non-degraded answer; each degraded "
    "answer equals the clean warm-wave value it went stale from.",
)
def _run_clean_vs_chaos(params: Dict) -> List[str]:
    _, clean_warm, clean_storm = _run_soak_waves(params, chaos=False)
    server, chaos_warm, chaos_storm = _run_soak_waves(params, chaos=True)
    violations: List[str] = []
    clean_by_id = {
        r.request.id: r for r in list(clean_warm) + list(clean_storm)
    }
    warm_by_key = {
        (r.request.endpoint, repr(sorted(r.request.params.items()))): r
        for r in clean_warm
    }
    for response in list(chaos_warm) + list(chaos_storm):
        ref = clean_by_id.get(response.request.id)
        if ref is None:
            violations.append(
                f"req {response.request.id}: no clean twin"
            )
            continue
        if response.status == "ok":
            violations += same_values(
                ref.status, "ok", f"req {response.request.id} clean status"
            )
            violations += same_bits(
                ref.value, response.value,
                f"req {response.request.id} ok value vs clean",
            )
        elif response.status == "degraded":
            key = (
                response.request.endpoint,
                repr(sorted(response.request.params.items())),
            )
            stale_ref = warm_by_key.get(key)
            if stale_ref is None:
                violations.append(
                    f"req {response.request.id}: degraded but the warm "
                    f"wave never served {key}"
                )
            else:
                violations += same_bits(
                    stale_ref.value, response.value,
                    f"req {response.request.id} degraded value vs warm",
                )
    return violations


def _gen_stored(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 48))
    n = max(2, int(params["n"]))
    family = ("tlav", "matching", "gnn", "tlag")[int(rng.integers(4))]
    endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
    params.update(
        endpoint=endpoint, ep_params=ep_params, workers=1,
        num_parts=int(rng.integers(2, 5)),
    )
    return params


@pair(
    "serve.stored.catalog_vs_memory",
    "serve",
    BIT_IDENTICAL,
    _gen_stored,
    floors=dict(GRAPH_FLOORS, num_parts=1),
)
def _run_stored_vs_memory(params: Dict) -> List[str]:
    """The same request served from a catalog-loaded, shard-paged
    StoredGraph record returns the in-memory record's bits; the stored
    record's epoch is the manifest version and a bump survives
    reopening the catalog."""
    from ..graph.store import StoreCatalog, build_store

    graph = make_graph(params)
    violations: List[str] = []
    with tempfile.TemporaryDirectory(prefix="check-serve-store-") as tmp:
        manifest = build_store(
            graph, os.path.join(tmp, "g"), partition="hash",
            num_parts=max(1, int(params["num_parts"])),
        )
        graphs = GraphRegistry()
        # Budget below the shard bytes: the served record really pages.
        graphs.load_catalog(tmp, cache_budget=max(1, manifest.shard_bytes // 2))
        graphs.register("mem", graph)
        stored_record = graphs.get("g")
        violations += same_values(
            stored_record.epoch, manifest.version, "stored epoch"
        )

        server = _server(graphs, params)
        request = dict(
            endpoint=params["endpoint"], params=dict(params["ep_params"])
        )
        server.submit(Request(**request, graph="g"))
        server.submit(Request(**request, graph="mem", arrival=1))
        stored_resp, mem_resp = sorted(server.run(), key=lambda r: r.request.id)
        violations += same_values(stored_resp.status, "ok", "stored status")
        violations += same_values(mem_resp.status, "ok", "memory status")
        violations += same_bits(
            mem_resp.value, stored_resp.value, "stored vs memory result"
        )

        # Epoch bump persists to the manifest: a fresh catalog scan
        # (what a restarted server would do) sees the bumped version.
        bumped = graphs.bump_epoch("g")
        reopened = StoreCatalog(tmp).manifest("g").version
        violations += same_values(reopened, bumped, "epoch after reopen")
        stored_record.graph.close()
    return violations
