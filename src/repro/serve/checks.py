"""Differential checks for the serving layer.

The serving layer must be a *transparent* front door: queueing,
fairness, batching and caching may reorder and coalesce work, but the
bytes a tenant receives must be exactly what a direct engine call
returns.  Four oracle families enforce that:

* ``serve.served_vs_direct.<family>`` — one request through the full
  scheduler equals the endpoint handler called directly, bit for bit,
  for every engine family (tlav, matching, gnn, tlag);
* ``serve.cache_hit_vs_cold`` — a cache hit returns the same bits as
  the cold miss that populated it, and an epoch bump forces a re-miss
  whose answer equals a fresh direct call on the new graph;
* ``serve.batched_vs_unbatched`` — the same request stream served with
  the micro-batcher enabled and disabled yields per-request identical
  values, whatever batch cut the window produced;
* ``serve.queue_accounting`` — the admission ledger:
  ``admitted == completed + shed + expired`` with zero in flight after
  a drain, response statuses match the counters, and the queue never
  exceeded its bound;
* ``serve.stored.catalog_vs_memory`` — the same request served from a
  catalog-loaded, shard-paged :class:`StoredGraph` record returns the
  in-memory record's bits, and the record's epoch is the on-disk
  manifest version (it survives reopening the catalog).
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List

import numpy as np

from ..check.invariants import same_bits, same_values
from ..check.registry import BIT_IDENTICAL, invariant, pair
from ..check.workloads import GRAPH_FLOORS, gen_graph_params, make_graph
from .endpoints import GraphRegistry, builtin_endpoints
from .scheduler import Request, Server

#: Per-family endpoint + parameter draw used by the served-vs-direct
#: oracles.  Params stay JSON-scalar so failing cases are committable.
_FAMILY_DRAWS = {
    "tlav": lambda rng, n: (
        ("tlav.pagerank", {"iterations": int(rng.integers(2, 9))}),
        ("tlav.bfs", {"source": int(rng.integers(n))}),
        ("tlav.wcc", {}),
    )[int(rng.integers(3))],
    "matching": lambda rng, n: (
        ("matching.count",
         {"pattern": str(rng.choice(["triangle", "diamond", "path3", "c4"]))}),
        ("matching.cliques", {"k": int(rng.integers(3, 5))}),
    )[int(rng.integers(2))],
    "gnn": lambda rng, n: (
        "gnn.predict",
        {"nodes": sorted(int(v) for v in rng.integers(0, n, size=3))},
    ),
    "tlag": lambda rng, n: (
        "tlag.subgraph_query",
        {"pattern": str(rng.choice(["triangle", "tailed-triangle", "house"]))},
    ),
}


def _registry_for(params: Dict) -> GraphRegistry:
    graphs = GraphRegistry()
    graphs.register("default", make_graph(params))
    return graphs


def _server(graphs: GraphRegistry, params: Dict, **overrides) -> Server:
    kwargs = dict(
        endpoints=builtin_endpoints(),
        num_workers=max(1, int(params.get("workers", 2))),
        queue_bound=int(params.get("queue_bound", 64)),
        batch_window=int(params.get("batch_window", 0)),
        enable_cache=bool(params.get("cache", True)),
    )
    kwargs.update(overrides)
    return Server(graphs, **kwargs)


def _gen_family(family: str):
    def gen(rng: np.random.Generator) -> Dict:
        params = gen_graph_params(rng, n_range=(8, 48))
        n = max(2, int(params["n"]))
        endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
        params.update(
            endpoint=endpoint, ep_params=ep_params,
            workers=int(rng.integers(1, 4)),
            batch_window=int(rng.integers(0, 3)) * 32,
        )
        return params

    return gen


def _make_served_vs_direct(family: str):
    def run(params: Dict) -> List[str]:
        graphs = _registry_for(params)
        endpoints = builtin_endpoints()
        record = graphs.get("default")
        endpoint = endpoints.get(params["endpoint"])
        direct, _ = endpoint.run(record, dict(params["ep_params"]))

        server = _server(graphs, params, endpoints=endpoints)
        server.submit(Request(
            endpoint=params["endpoint"], params=dict(params["ep_params"]),
        ))
        (response,) = server.run()
        violations = same_values(response.status, "ok", "status")
        violations += same_bits(direct, response.value, "served result")
        return violations

    return run


for _family in ("tlav", "matching", "gnn", "tlag"):
    pair(
        f"serve.served_vs_direct.{_family}",
        "serve",
        BIT_IDENTICAL,
        _gen_family(_family),
        floors=dict(GRAPH_FLOORS),
        description=(
            f"one {_family} request through admission/scheduling/batching "
            "equals the direct engine call"
        ),
    )(_make_served_vs_direct(_family))


def _gen_cache(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    n = max(2, int(params["n"]))
    family = ("tlav", "matching", "gnn", "tlag")[int(rng.integers(4))]
    endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
    params.update(endpoint=endpoint, ep_params=ep_params, workers=1)
    params["bump_seed"] = int(rng.integers(1 << 20))
    return params


@pair(
    "serve.cache_hit_vs_cold",
    "serve",
    BIT_IDENTICAL,
    _gen_cache,
    floors=dict(GRAPH_FLOORS),
)
def _run_cache_hit_vs_cold(params: Dict) -> List[str]:
    """A cache hit equals the cold miss; an epoch bump re-misses and
    equals a fresh direct call on the new graph."""
    graphs = _registry_for(params)
    server = _server(graphs, params, enable_cache=True)
    request = dict(
        endpoint=params["endpoint"], params=dict(params["ep_params"])
    )

    server.submit(Request(**request, arrival=0))
    (cold,) = server.run()
    server.submit(Request(**request, arrival=server.clock))
    (hot,) = server.run()
    violations = same_values(hot.cache_hit, True, "second request cache_hit")
    violations += same_bits(cold.value, hot.value, "hit vs cold result")

    # Replace the graph: the epoch bump must force a re-miss whose
    # answer matches a direct call against the *new* graph.
    new_params = dict(params, graph_seed=params["bump_seed"])
    graphs.replace("default", make_graph(new_params))
    record = graphs.get("default")
    direct, _ = builtin_endpoints().get(params["endpoint"]).run(
        record, dict(params["ep_params"])
    )
    server.submit(Request(**request, arrival=server.clock))
    (fresh,) = server.run()
    violations += same_values(fresh.cache_hit, False, "post-bump cache_hit")
    violations += same_bits(direct, fresh.value, "post-bump result")
    return violations


def _gen_stream(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    n = max(2, int(params["n"]))
    requests = []
    for _ in range(int(rng.integers(4, 13))):
        family = ("tlav", "matching", "gnn", "tlag")[int(rng.integers(4))]
        endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
        requests.append({
            "endpoint": endpoint,
            "params": ep_params,
            "tenant": str(rng.choice(["a", "b"])),
            "priority": int(rng.integers(2)),
            "arrival": int(rng.integers(0, 2000)),
        })
    params.update(
        requests=requests,
        workers=int(rng.integers(1, 4)),
        batch_window=int(rng.integers(1, 5)) * 64,
        max_batch=int(rng.integers(2, 9)),
    )
    return params


def _serve_stream(params: Dict, batching: bool, cache: bool):
    graphs = _registry_for(params)
    server = _server(
        graphs, params, enable_cache=cache,
        batch_window=int(params["batch_window"]) if batching else 0,
        max_batch=int(params["max_batch"]) if batching else 1,
    )
    for spec in params["requests"]:
        server.submit(Request(
            endpoint=spec["endpoint"], params=dict(spec["params"]),
            tenant=spec["tenant"], priority=int(spec["priority"]),
            arrival=int(spec["arrival"]),
        ))
    return server, server.run()


@pair(
    "serve.batched_vs_unbatched",
    "serve",
    BIT_IDENTICAL,
    _gen_stream,
    floors=dict(GRAPH_FLOORS),
)
def _run_batched_vs_unbatched(params: Dict) -> List[str]:
    """Micro-batching must not change any per-request value, whatever
    batch cut the window and size cap produce."""
    _, unbatched = _serve_stream(params, batching=False, cache=False)
    server, batched = _serve_stream(params, batching=True, cache=False)
    violations: List[str] = []
    for a, b in zip(unbatched, batched):
        violations += same_values(b.status, a.status, f"req {a.request.id} status")
        violations += same_bits(a.value, b.value, f"req {a.request.id} value")
    return violations


@invariant(
    "serve.queue_accounting",
    "serve",
    _gen_stream,
    floors=dict(GRAPH_FLOORS),
)
def _run_queue_accounting(params: Dict) -> List[str]:
    """Admission ledger: admitted == completed + shed + expired after a
    drain, statuses match counters, and the bound was never exceeded."""
    queue_bound = 2 + int(params["max_batch"])
    graphs = _registry_for(params)
    server = _server(graphs, params, queue_bound=queue_bound)
    for spec in params["requests"]:
        server.submit(Request(
            endpoint=spec["endpoint"], params=dict(spec["params"]),
            tenant=spec["tenant"], priority=int(spec["priority"]),
            arrival=int(spec["arrival"]),
            deadline=int(spec["arrival"]) + 5_000,
        ))
    responses = server.run()
    stats = server.stats
    violations: List[str] = []
    by_status: Dict[str, int] = {}
    for response in responses:
        by_status[response.status] = by_status.get(response.status, 0) + 1
    completed = by_status.get("ok", 0) + by_status.get("error", 0)
    violations += same_values(
        stats.admitted, len(params["requests"]), "admitted"
    )
    violations += same_values(stats.completed, completed, "completed counter")
    violations += same_values(stats.shed, by_status.get("shed", 0), "shed counter")
    violations += same_values(
        stats.expired, by_status.get("expired", 0), "expired counter"
    )
    violations += same_values(stats.in_flight, 0, "in_flight after drain")
    violations += same_values(
        stats.admitted,
        stats.completed + stats.shed + stats.expired,
        "ledger admitted == completed + shed + expired",
    )
    if stats.peak_queue_depth > queue_bound:
        violations.append(
            f"queue depth {stats.peak_queue_depth} exceeded bound {queue_bound}"
        )
    return violations


def _gen_stored(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 48))
    n = max(2, int(params["n"]))
    family = ("tlav", "matching", "gnn", "tlag")[int(rng.integers(4))]
    endpoint, ep_params = _FAMILY_DRAWS[family](rng, n)
    params.update(
        endpoint=endpoint, ep_params=ep_params, workers=1,
        num_parts=int(rng.integers(2, 5)),
    )
    return params


@pair(
    "serve.stored.catalog_vs_memory",
    "serve",
    BIT_IDENTICAL,
    _gen_stored,
    floors=dict(GRAPH_FLOORS, num_parts=1),
)
def _run_stored_vs_memory(params: Dict) -> List[str]:
    """The same request served from a catalog-loaded, shard-paged
    StoredGraph record returns the in-memory record's bits; the stored
    record's epoch is the manifest version and a bump survives
    reopening the catalog."""
    from ..graph.store import StoreCatalog, build_store

    graph = make_graph(params)
    violations: List[str] = []
    with tempfile.TemporaryDirectory(prefix="check-serve-store-") as tmp:
        manifest = build_store(
            graph, os.path.join(tmp, "g"), partition="hash",
            num_parts=max(1, int(params["num_parts"])),
        )
        graphs = GraphRegistry()
        # Budget below the shard bytes: the served record really pages.
        graphs.load_catalog(tmp, cache_budget=max(1, manifest.shard_bytes // 2))
        graphs.register("mem", graph)
        stored_record = graphs.get("g")
        violations += same_values(
            stored_record.epoch, manifest.version, "stored epoch"
        )

        server = _server(graphs, params)
        request = dict(
            endpoint=params["endpoint"], params=dict(params["ep_params"])
        )
        server.submit(Request(**request, graph="g"))
        server.submit(Request(**request, graph="mem", arrival=1))
        stored_resp, mem_resp = sorted(server.run(), key=lambda r: r.request.id)
        violations += same_values(stored_resp.status, "ok", "stored status")
        violations += same_values(mem_resp.status, "ok", "memory status")
        violations += same_bits(
            mem_resp.value, stored_resp.value, "stored vs memory result"
        )

        # Epoch bump persists to the manifest: a fresh catalog scan
        # (what a restarted server would do) sees the bumped version.
        bumped = graphs.bump_epoch("g")
        reopened = StoreCatalog(tmp).manifest("g").version
        violations += same_values(reopened, bumped, "epoch after reopen")
        stored_record.graph.close()
    return violations
