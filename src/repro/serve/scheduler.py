"""The request lifecycle: admission, fair scheduling, dispatch, completion.

:class:`Server` is a discrete-event simulation in the same style as
:class:`repro.tlag.query.QueryServer` and the TLAG task engine: worker
clocks advance by the simulated-ops *cost* each engine call reports, so
latency distributions (and therefore every p50/p95/p99 this layer
quotes) are deterministic at a fixed seed while the engine calls
themselves run for real and return real answers.

The lifecycle of one request:

1. **Admission** — at its arrival time the request enters the bounded
   queue; if the queue already holds ``queue_bound`` requests it is
   **shed** immediately (backpressure beats unbounded latency).
2. **Expiry** — a queued request whose deadline passes before dispatch
   is dropped as ``expired`` (a deadline miss without wasted work).
3. **Selection** — the free worker picks from the highest occupied
   **priority lane**; inside the lane, the tenant with the least work
   served so far (max-min fairness, generalizing QueryServer's
   least-served-query policy); inside the tenant, FIFO.
4. **Cache** — a hit on the versioned result cache completes in one
   simulated op without touching an engine.
5. **Batching** — on a miss the worker may wait out the batch window
   and coalesces compatible queued requests into one engine call.
6. **Execution** — the engine call runs under the
   :class:`~repro.resilience.RetryPolicy` (transient errors retry with
   deterministic backoff; exhausted retries yield an ``error``
   response).  When the endpoint declares a ``timeout_ops`` budget, an
   execution that costs more is treated as a timeout failure and the
   scheduler fires **one deterministic hedged retry** before giving
   up.  Completing after the deadline still returns the answer but
   counts a **deadline miss**.
7. **Degradation** (opt-in via ``degrade=True``) — when the
   endpoint's circuit breaker is open, admission is shedding, or the
   hedged execution still failed, the scheduler answers from the
   epoch-versioned cache in stale-while-revalidate mode: the response
   carries ``degraded=True`` plus its staleness in epochs instead of
   failing outright.

Accounting keeps the ledger invariant the ``serve.queue_accounting``
oracle enforces: ``admitted == completed + shed + expired + degraded
+ in_flight`` at every instant, with ``in_flight == 0`` once
:meth:`Server.run` drains — every request lands in **exactly one**
terminal status (:class:`ServeStats` raises on a double terminal).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..obs import MetricsRegistry, StatsViewMixin, Tracer
from ..resilience import FaultInjector, RetryPolicy
from .batcher import MicroBatcher
from .breaker import BreakerBoard, BreakerConfig
from .cache import ResultCache
from .endpoints import EndpointRegistry, GraphRegistry, builtin_endpoints

__all__ = ["Request", "Response", "ServeStats", "Server"]

#: Simulated ops a cache hit costs (lookup + serialization, not an engine).
CACHE_HIT_COST = 1

OK = "ok"
SHED = "shed"
EXPIRED = "expired"
ERROR = "error"
DEGRADED = "degraded"


@dataclass
class Request:
    """One tenant request against a served endpoint."""

    endpoint: str
    params: Dict[str, Any] = field(default_factory=dict)
    graph: str = "default"
    tenant: str = "default"
    priority: int = 0  # higher = more urgent lane
    arrival: int = 0  # simulated-ops submission time
    deadline: Optional[int] = None  # absolute simulated-ops deadline
    id: int = -1  # assigned at submit()


@dataclass
class Response:
    """Terminal outcome of one request."""

    request: Request
    status: str  # ok | shed | expired | error | degraded
    value: Any = None
    dispatched: Optional[int] = None
    completed: int = 0
    cost: int = 0
    cache_hit: bool = False
    batch_size: int = 1
    deadline_missed: bool = False
    error: Optional[str] = None
    staleness: int = 0  # epochs behind current, for degraded answers
    degraded_reason: Optional[str] = None  # breaker_open | shed | failure

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def degraded(self) -> bool:
        return self.status == DEGRADED

    @property
    def latency(self) -> int:
        """Response time in simulated ops (completion − arrival)."""
        return self.completed - self.request.arrival

    @property
    def queue_wait(self) -> int:
        start = self.dispatched if self.dispatched is not None else self.completed
        return start - self.request.arrival

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.request.id,
            "endpoint": self.request.endpoint,
            "tenant": self.request.tenant,
            "status": self.status,
            "latency": self.latency,
            "queue_wait": self.queue_wait,
            "cost": self.cost,
            "cache_hit": self.cache_hit,
            "batch_size": self.batch_size,
            "deadline_missed": self.deadline_missed,
            "degraded": self.degraded,
            "staleness": self.staleness,
        }


class ServeStats(StatsViewMixin):
    """Registry view over the ``serve.*`` metrics one server emits."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._c_requests = self.registry.counter(
            "serve.requests", "terminal responses, by endpoint and status"
        )
        self._c_admitted = self.registry.counter(
            "serve.admitted", "requests accepted into the system"
        )
        self._c_deadline_miss = self.registry.counter(
            "serve.deadline_miss", "completed responses that finished late"
        )
        self._c_degraded = self.registry.counter(
            "serve.degraded.responses",
            "stale-while-revalidate answers, by endpoint and reason",
        )
        self._h_staleness = self.registry.histogram(
            "serve.degraded.staleness", "epochs behind current, per degraded answer",
            buckets=[0, 1, 2, 4, 8, 16],
        )
        self._c_batches = self.registry.counter(
            "serve.batches", "engine calls that served a coalesced batch"
        )
        self._c_batched_requests = self.registry.counter(
            "serve.batched_requests", "requests that rode in a batch of >= 2"
        )
        self._c_engine_ops = self.registry.counter(
            "serve.engine_ops", "simulated ops charged by engine calls"
        )
        self._g_queue_depth = self.registry.gauge(
            "serve.queue_depth", "peak admission-queue occupancy"
        )
        self._g_in_flight = self.registry.gauge(
            "serve.in_flight", "peak requests admitted but not yet terminal"
        )
        self._h_latency = self.registry.histogram(
            "serve.latency_ops", "response time in simulated ops, by endpoint"
        )
        self._h_queue_wait = self.registry.histogram(
            "serve.queue_wait_ops", "simulated ops spent queued before dispatch"
        )
        self._h_batch_size = self.registry.histogram(
            "serve.batch_size", "requests per engine call",
            buckets=[1, 2, 4, 8, 16, 32],
        )
        self._terminal_ids: Set[int] = set()

    # -- write path (server-only) ------------------------------------------

    def record_admitted(self) -> None:
        self._c_admitted.inc()

    def record_response(self, response: Response) -> None:
        rid = response.request.id
        if rid >= 0:
            # Terminal statuses are mutually exclusive by construction:
            # a request that already landed cannot land again (a second
            # terminal would double-count the queue ledger).
            if rid in self._terminal_ids:
                raise RuntimeError(
                    f"request {rid} already recorded a terminal status; "
                    f"refusing second terminal {response.status!r}"
                )
            self._terminal_ids.add(rid)
        self._c_requests.inc(
            endpoint=response.request.endpoint, status=response.status
        )
        if response.status in (OK, ERROR, DEGRADED):
            self._h_latency.observe(
                response.latency, endpoint=response.request.endpoint
            )
            self._h_queue_wait.observe(response.queue_wait)
            if response.deadline_missed:
                self._c_deadline_miss.inc(endpoint=response.request.endpoint)
        if response.status == DEGRADED:
            self._c_degraded.inc(
                endpoint=response.request.endpoint,
                reason=response.degraded_reason or "unknown",
            )
            self._h_staleness.observe(response.staleness)

    def record_batch(self, size: int, cost: int) -> None:
        self._c_batches.inc()
        self._c_engine_ops.inc(cost)
        self._h_batch_size.observe(size)
        if size >= 2:
            self._c_batched_requests.inc(size)

    def record_queue_depth(self, depth: int) -> None:
        self._g_queue_depth.set_max(depth)

    def record_in_flight(self, count: int) -> None:
        self._g_in_flight.set_max(count)

    # -- read path ---------------------------------------------------------

    def _status_total(self, status: str) -> int:
        return int(sum(
            v for k, v in self._c_requests.series().items()
            if f"status={status}" in k
        ))

    @property
    def admitted(self) -> int:
        return int(self._c_admitted.total)

    @property
    def completed(self) -> int:
        return self._status_total(OK) + self._status_total(ERROR)

    @property
    def shed(self) -> int:
        return self._status_total(SHED)

    @property
    def expired(self) -> int:
        return self._status_total(EXPIRED)

    @property
    def degraded(self) -> int:
        return self._status_total(DEGRADED)

    @property
    def late_completions(self) -> int:
        """Responses that returned an answer past their deadline."""
        return int(self._c_deadline_miss.total)

    @property
    def deadline_misses(self) -> int:
        """Expired in queue or finished late (each counted once — the
        underlying columns are mutually exclusive)."""
        return self.late_completions + self.expired

    @property
    def in_flight(self) -> int:
        """Admitted but not yet terminal — zero once a run drains."""
        return (
            self.admitted - self.completed - self.shed - self.expired
            - self.degraded
        )

    @property
    def peak_queue_depth(self) -> int:
        return int(self._g_queue_depth.value())

    def latency_percentile(self, q: float, endpoint: str) -> float:
        return self._h_latency.percentile(q, endpoint=endpoint)

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "expired": self.expired,
            "degraded": self.degraded,
            "in_flight": self.in_flight,
            "deadline_misses": self.deadline_misses,
            "late_completions": self.late_completions,
            "peak_queue_depth": self.peak_queue_depth,
        }


class Server:
    """Multi-tenant front door over the endpoint and graph registries."""

    def __init__(
        self,
        graphs: GraphRegistry,
        endpoints: Optional[EndpointRegistry] = None,
        num_workers: int = 4,
        queue_bound: int = 64,
        batch_window: int = 0,
        max_batch: int = 8,
        cache_capacity: int = 256,
        enable_cache: bool = True,
        retry: Optional[RetryPolicy] = None,
        executor=None,
        obs: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        breaker: Optional[BreakerConfig] = None,
        degrade: bool = False,
        max_stale_epochs: int = 8,
        default_timeout_ops: Optional[int] = None,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        if default_timeout_ops is not None and default_timeout_ops < 1:
            raise ValueError("default_timeout_ops must be >= 1")
        self.graphs = graphs
        self.endpoints = endpoints if endpoints is not None else builtin_endpoints()
        self.num_workers = num_workers
        self.queue_bound = queue_bound
        self.batcher = MicroBatcher(window=batch_window, max_batch=max_batch)
        self.obs = obs if obs is not None else MetricsRegistry()
        self.tracer = tracer
        self.retry = retry if retry is not None else RetryPolicy(max_attempts=2)
        self.executor = executor
        self.degrade = bool(degrade)
        self.default_timeout_ops = default_timeout_ops
        self.injector = injector
        self.breakers: Optional[BreakerBoard] = (
            BreakerBoard(breaker, obs=self.obs, tracer=tracer)
            if breaker is not None else None
        )
        self.stats = ServeStats(self.obs)
        self.cache: Optional[ResultCache] = (
            ResultCache(
                cache_capacity, obs=self.obs,
                max_stale_epochs=max_stale_epochs if degrade else 0,
            ).attach(graphs)
            if enable_cache else None
        )
        self._arrivals: List[Tuple[int, int, Request]] = []  # heap
        self._queue: List[Request] = []
        self._worker_clocks = [0] * num_workers
        self._next_id = 0
        self._tenant_work: Dict[str, int] = {}

    # -- submission --------------------------------------------------------

    def submit(self, request: Request) -> int:
        """Queue a request for the next :meth:`run`; returns its id."""
        if request.endpoint not in self.endpoints:
            raise KeyError(f"unknown endpoint {request.endpoint!r}")
        if request.graph not in self.graphs:
            raise KeyError(f"unknown graph {request.graph!r}")
        request.id = self._next_id
        self._next_id += 1
        heapq.heappush(
            self._arrivals, (request.arrival, request.id, request)
        )
        self.stats.record_admitted()
        return request.id

    # -- the event loop ----------------------------------------------------

    def run(
        self,
        feedback: Optional[Callable[[Response], Optional[Request]]] = None,
    ) -> List[Response]:
        """Drain every submitted request; returns responses in id order.

        ``feedback`` implements closed loops: called on each terminal
        response, it may return the follow-up request (arrival no
        earlier than the completion it reacts to).
        """
        responses: List[Response] = []

        def finish(response: Response) -> None:
            self.stats.record_response(response)
            if self.tracer is not None:
                with self.tracer.span(
                    "serve.request",
                    endpoint=response.request.endpoint,
                    tenant=response.request.tenant,
                    status=response.status,
                    cache_hit=response.cache_hit,
                ) as span:
                    span.set_sim(response.request.arrival, response.completed)
            responses.append(response)
            if feedback is not None:
                follow = feedback(response)
                if follow is not None:
                    if follow.arrival < response.completed:
                        follow.arrival = response.completed
                    self.submit(follow)

        heap = [(self._worker_clocks[w], w) for w in range(self.num_workers)]
        heapq.heapify(heap)

        while self._arrivals or self._queue:
            clock, w = heapq.heappop(heap)
            self._absorb(clock, finish)
            self._expire(clock, finish)
            if not self._queue:
                if not self._arrivals:
                    heapq.heappush(heap, (clock, w))
                    break
                # Idle worker: jump to the next arrival.
                heapq.heappush(
                    heap, (max(clock, self._arrivals[0][0]), w)
                )
                continue
            busy = sum(1 for t, _ in heap if t > clock) + 1
            self.stats.record_in_flight(len(self._queue) + busy)
            completed = self._dispatch(clock, finish)
            self._worker_clocks[w] = completed
            heapq.heappush(heap, (completed, w))

        for t, w in heap:
            self._worker_clocks[w] = max(self._worker_clocks[w], t)
        responses.sort(key=lambda r: r.request.id)
        return responses

    # -- internals ---------------------------------------------------------

    def _absorb(
        self, clock: int, finish: Callable[[Response], None]
    ) -> None:
        """Admit (or shed) every arrival up to ``clock``, in order.

        With ``degrade=True`` a request the bounded queue would shed is
        first offered a stale-cache answer (degradation ladder rung 1:
        backpressure becomes staleness, not an outright drop).
        """
        while self._arrivals and self._arrivals[0][0] <= clock:
            _, _, request = heapq.heappop(self._arrivals)
            if len(self._queue) >= self.queue_bound:
                stale = self._degraded_response(
                    request, reason="shed", dispatched=request.arrival,
                    completed=request.arrival + CACHE_HIT_COST,
                )
                if stale is not None:
                    self._charge(request.tenant, CACHE_HIT_COST)
                    finish(stale)
                    continue
                finish(Response(
                    request=request, status=SHED, completed=request.arrival,
                ))
                continue
            self._queue.append(request)
            self.stats.record_queue_depth(len(self._queue))

    def _expire(
        self, clock: int, finish: Callable[[Response], None]
    ) -> None:
        """Drop queued requests whose deadline already passed."""
        live: List[Request] = []
        for request in self._queue:
            if request.deadline is not None and request.deadline < clock:
                finish(Response(
                    request=request, status=EXPIRED, completed=clock,
                    deadline_missed=True,
                ))
            else:
                live.append(request)
        self._queue = live

    def _select(self) -> Request:
        """Priority lane, then least-served tenant, then FIFO."""
        lane = max(r.priority for r in self._queue)
        candidates = [r for r in self._queue if r.priority == lane]
        tenant = min(
            (self._tenant_work.get(r.tenant, 0), r.tenant)
            for r in candidates
        )[1]
        return next(r for r in candidates if r.tenant == tenant)

    def _dispatch(
        self, clock: int, finish: Callable[[Response], None]
    ) -> int:
        """Serve one head request (possibly a batch); returns the new
        worker clock."""
        head = self._select()
        endpoint = self.endpoints.get(head.endpoint)
        record = self.graphs.get(head.graph)
        canon = endpoint.canonicalize(head.params)

        if self.cache is not None:
            key = ResultCache.key(head.endpoint, head.graph, record.epoch, canon)
            hit, value = self.cache.lookup(key)
            if hit:
                self._queue.remove(head)
                completed = clock + CACHE_HIT_COST
                self._charge(head.tenant, CACHE_HIT_COST)
                finish(Response(
                    request=head, status=OK, value=value, dispatched=clock,
                    completed=completed, cost=CACHE_HIT_COST, cache_hit=True,
                    deadline_missed=(
                        head.deadline is not None and completed > head.deadline
                    ),
                ))
                return completed

        breaker = (
            self.breakers.get(head.endpoint)
            if self.breakers is not None else None
        )
        if breaker is not None and breaker.allow(clock) == "reject":
            # Ladder rung 2: an open breaker answers from the stale
            # cache without touching the engine at all.
            self._queue.remove(head)
            completed = clock + CACHE_HIT_COST
            self._charge(head.tenant, CACHE_HIT_COST)
            stale = self._degraded_response(
                head, reason="breaker_open", dispatched=clock,
                completed=completed,
            )
            if stale is not None:
                finish(stale)
            else:
                finish(Response(
                    request=head, status=ERROR, dispatched=clock,
                    completed=completed, cost=CACHE_HIT_COST,
                    deadline_missed=(
                        head.deadline is not None and completed > head.deadline
                    ),
                    error=f"BreakerOpen: {head.endpoint} is failing fast",
                ))
            return completed

        t_dispatch = self.batcher.dispatch_time(clock, head.arrival)
        if t_dispatch > clock:
            # Waiting out the batch window lets later arrivals join.
            self._absorb(t_dispatch, finish)
        batch = self.batcher.collect(
            head, self._queue, endpoint, record.epoch, canon
        )
        for request in batch:
            self._queue.remove(request)

        timeout = (
            endpoint.timeout_ops
            if endpoint.timeout_ops is not None else self.default_timeout_ops
        )
        error: Optional[str] = None
        values: List[Any] = [None] * len(batch)
        cost = 0
        for attempt in range(2):  # attempt 1 is the single hedged retry
            if self.injector is not None and self.injector.endpoint_outcome(
                head.endpoint, head.id, attempt
            ) == "fail":
                cost += timeout if timeout is not None else CACHE_HIT_COST
                error = (
                    f"FaultError: injected failure on {head.endpoint} "
                    f"(attempt {attempt})"
                )
                continue
            try:
                values, attempt_cost = self.retry.call(
                    self.batcher.execute, endpoint, record, batch,
                    executor=self.executor, key=("serve", head.id, attempt),
                    obs=self.obs, op=f"serve:{head.endpoint}",
                )
            except Exception as exc:  # exhausted retries: an error response
                values = [None] * len(batch)
                cost += CACHE_HIT_COST
                error = f"{type(exc).__name__}: {exc}"
                break  # organic errors already retried; no hedge
            if timeout is not None and attempt_cost > timeout:
                values = [None] * len(batch)
                cost += timeout  # the hedge fires at the timeout bound
                error = (
                    f"TimeoutError: {head.endpoint} cost {attempt_cost} ops "
                    f"over budget {timeout} (attempt {attempt})"
                )
                continue
            cost += attempt_cost
            error = None
            break

        completed = t_dispatch + cost
        if breaker is not None:
            if error is None:
                breaker.record_success(completed)
            else:
                breaker.record_failure(completed)
        self.stats.record_batch(len(batch), cost)
        share = max(1, cost // len(batch))
        for request, value in zip(batch, values):
            self._charge(request.tenant, share)
            canon_r = endpoint.canonicalize(request.params)
            if self.cache is not None and error is None:
                self.cache.put(
                    ResultCache.key(
                        request.endpoint, request.graph, record.epoch, canon_r
                    ),
                    value,
                    partitions=endpoint.partitions_read(record, request.params),
                )
            if error is not None:
                # Ladder rung 3: a failed (or timed-out, post-hedge)
                # execution falls back to the stale cache per request.
                stale = self._degraded_response(
                    request, reason="failure", dispatched=t_dispatch,
                    completed=completed, cost=share, batch_size=len(batch),
                )
                if stale is not None:
                    finish(stale)
                    continue
            finish(Response(
                request=request,
                status=ERROR if error is not None else OK,
                value=value, dispatched=t_dispatch, completed=completed,
                cost=share, batch_size=len(batch),
                deadline_missed=(
                    request.deadline is not None and completed > request.deadline
                ),
                error=error,
            ))
        return completed

    def _degraded_response(
        self,
        request: Request,
        *,
        reason: str,
        dispatched: int,
        completed: int,
        cost: int = CACHE_HIT_COST,
        batch_size: int = 1,
    ) -> Optional[Response]:
        """Stale-while-revalidate answer for ``request``, or ``None``.

        Only available when the server runs with ``degrade=True``, the
        endpoint is degradable, and the cache retains an entry for these
        params at an epoch within ``max_stale_epochs`` of current.
        """
        if not self.degrade or self.cache is None:
            return None
        endpoint = self.endpoints.get(request.endpoint)
        if not endpoint.degradable:
            return None
        record = self.graphs.get(request.graph)
        canon = endpoint.canonicalize(request.params)
        found, value, staleness = self.cache.lookup_stale(
            request.endpoint, request.graph, record.epoch, canon
        )
        if not found:
            return None
        return Response(
            request=request, status=DEGRADED, value=value,
            dispatched=dispatched, completed=completed, cost=cost,
            batch_size=batch_size, staleness=staleness,
            degraded_reason=reason,
            deadline_missed=(
                request.deadline is not None and completed > request.deadline
            ),
        )

    def _charge(self, tenant: str, ops: int) -> None:
        self._tenant_work[tenant] = self._tenant_work.get(tenant, 0) + ops

    # -- readings ----------------------------------------------------------

    @property
    def tenant_work(self) -> Dict[str, int]:
        """Simulated ops served per tenant (the fairness ledger)."""
        return dict(self._tenant_work)

    @property
    def clock(self) -> int:
        """The latest simulated time any worker has reached."""
        return max(self._worker_clocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Server(workers={self.num_workers}, "
            f"endpoints={len(self.endpoints)}, "
            f"queue_bound={self.queue_bound})"
        )
