"""The storage-aware chaos soak: graceful degradation, end to end.

``python -m repro chaos --scenario serve-soak`` drives one seeded
workload through the whole resilience stack twice — once clean, once
under a deterministic fault plan (injected endpoint failures, a worker
crash inside the parallel executor, and store I/O faults against the
chunked ingest pipeline) — and checks the graceful-degradation
contract the hard way:

* **degraded ledger** — every admitted request lands in exactly one
  terminal column: ``admitted == completed + shed + expired +
  degraded`` with nothing in flight (the ``serve.soak.degraded_ledger``
  oracle);
* **breakers reopen** — the failing endpoint's circuit breaker opens,
  cools down into half-open, and the failing probe reopens it (state
  transitions read back from the ``serve.breaker.transitions`` series);
* **clean-vs-chaos equivalence** — every ``ok`` response in the chaos
  run is **bit-identical** to the clean run's answer for the same
  request id, and every degraded answer's staleness is within the
  configured bound (the ``serve.soak.clean_vs_chaos`` oracle);
* **crash-consistent store** — a chunked ingest crashed at the first,
  middle, and last chunk boundary (plus a torn spill write) resumes to
  a store **byte-identical** to the uninterrupted build; a scheduled
  shard-write I/O error is absorbed by the deterministic retry; and a
  flipped byte in a shard is caught by ``verify_store`` and moved to
  quarantine by ``repair_store``.

Everything is pure-deterministic at a fixed seed: the report this
module returns is reproducible bit-for-bit, which is what lets CI pin
it as an artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..graph.delta import random_edge_updates
from ..graph.generators import barabasi_albert
from ..graph.partition import hash_partition
from ..graph.store import InMemoryGraph, ingest_edge_stream, repair_store, verify_store
from ..obs import MetricsRegistry, Tracer, json_safe
from ..resilience import FaultError, FaultPlan, resolve_fault_seed
from .breaker import BreakerConfig
from .endpoints import GraphRegistry, builtin_endpoints
from .loadgen import MixEntry, open_loop, summarize
from .scheduler import Request, Response, Server

__all__ = ["run_serve_soak", "run_mutate_soak"]


# ----------------------------------------------------------------------
# Serve soak: clean run vs chaos run over the same seeded workload
# ----------------------------------------------------------------------


def _soak_mix(n: int) -> List[MixEntry]:
    """A mix over a small parameter pool, so wave 1 warms a cache entry
    for (nearly) every computation wave 2 will ask for — the degradation
    ladder needs a stale answer to exist before it can serve one."""
    return [
        MixEntry(
            "tlav.pagerank",
            lambda r: {"iterations": int(r.integers(3, 7))},
            weight=2.5,
        ),
        MixEntry(
            "tlav.bfs", lambda r: {"source": int(r.integers(6))}, weight=2.0
        ),
        MixEntry(
            "matching.count",
            lambda r: {"pattern": str(r.choice(["triangle", "diamond"]))},
            weight=1.5,
        ),
        MixEntry(
            "gnn.predict", lambda r: {"nodes": [int(r.integers(6))]}, weight=2.0
        ),
    ]


def _waves(seed: int) -> Tuple[List, List]:
    """(warm wave, fault wave) — regenerated per run so request ids and
    params are identical across the clean and chaos servers."""
    mix = _soak_mix(90)
    warm = open_loop(
        mix, num_requests=36, mean_interarrival=400,
        tenants=("alice", "bob"), seed=seed,
    )
    last = warm[-1].arrival if warm else 0
    # Deterministic coverage tail: one request per parameter the storm
    # can draw, so every storm computation has a warm cache entry to
    # degrade to regardless of what the seeded warm wave happened to hit.
    coverage = (
        [{"endpoint": "tlav.pagerank", "params": {"iterations": i}}
         for i in range(3, 7)]
        + [{"endpoint": "tlav.bfs", "params": {"source": s}} for s in range(6)]
        + [{"endpoint": "matching.count", "params": {"pattern": p}}
           for p in ("triangle", "diamond")]
        + [{"endpoint": "gnn.predict", "params": {"nodes": [v]}}
           for v in range(6)]
    )
    for spec in coverage:
        last += 150
        warm.append(Request(
            endpoint=spec["endpoint"], params=spec["params"],
            tenant="warmup", arrival=last,
        ))
    storm = open_loop(
        mix, num_requests=80, mean_interarrival=180,
        tenants=("alice", "bob", "carol"), seed=seed + 1,
        start=last + 1_000,
    )
    return warm, storm


def _run_waves(
    server: Server,
    graphs: GraphRegistry,
    waves: Tuple[List, List],
    storm_injector=None,
) -> List[Response]:
    """Warm wave, epoch bump, storm wave.

    The bump is what makes wave-2 degradation *stale*: every warm entry
    is now exactly one epoch behind.  ``storm_injector`` arms endpoint
    faults only for the storm — the warm wave must populate the cache
    cleanly or there is nothing stale to degrade to."""
    warm, storm = waves
    responses: List[Response] = []
    for request in warm:
        server.submit(request)
    responses.extend(server.run())
    graphs.replace("default", barabasi_albert(90, 3, seed=12))
    if storm_injector is not None:
        server.injector = storm_injector
    for request in storm:
        server.submit(request)
    responses.extend(server.run())
    return responses


def _canonical_value(value: Any) -> str:
    return json.dumps(json_safe(value), sort_keys=True)


def _breaker_transitions(obs: MetricsRegistry) -> Dict[str, int]:
    series = obs.counter("serve.breaker.transitions").series()
    out: Dict[str, int] = {}
    for state in ("closed", "open", "half_open"):
        out[state] = int(sum(
            v for k, v in series.items() if f"to={state}" in k
        ))
    return out


def run_serve_part(
    seed: int,
    workers: int = 2,
    backend: Optional[str] = None,
    obs: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    max_stale_epochs: int = 8,
) -> Dict[str, Any]:
    """Clean run vs chaos run of the same workload; returns the report."""
    from ..parallel import ParallelExecutor

    clean_obs = MetricsRegistry()
    chaos_obs = obs if obs is not None else MetricsRegistry()
    server_kwargs = dict(
        num_workers=2, queue_bound=64, batch_window=32, max_batch=4,
    )

    # -- clean reference (executor attached so both runs take the same
    #    engine implementations; no injector, so values are fault-free)
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(90, 3, seed=11))
    with ParallelExecutor(
        backend=backend, workers=workers, obs=clean_obs
    ) as executor:
        clean_server = Server(
            graphs, endpoints=builtin_endpoints(), obs=clean_obs,
            executor=executor, **server_kwargs,
        )
        clean = _run_waves(clean_server, graphs, _waves(seed))

    # -- chaos run: endpoint failures + a worker crash + the ladder on
    plan = (
        FaultPlan(seed=seed)
        .fail_endpoint("tlav.pagerank", 0.95)
        .fail_endpoint("matching.count", 0.35)
        .crash_worker(chunk=1, times=2)
    )
    injector = plan.build(chaos_obs)
    graphs = GraphRegistry()
    graphs.register("default", barabasi_albert(90, 3, seed=11))
    with ParallelExecutor(
        backend=backend, workers=workers, obs=chaos_obs, injector=injector,
        tracer=tracer,
    ) as executor:
        chaos_server = Server(
            graphs, endpoints=builtin_endpoints(), obs=chaos_obs,
            tracer=tracer, executor=executor,
            breaker=BreakerConfig(
                window=6, failure_threshold=0.5, min_samples=3,
                open_ops=1_500, half_open_probes=1,
            ),
            degrade=True, max_stale_epochs=max_stale_epochs,
            default_timeout_ops=3_000,
            **server_kwargs,
        )
        chaos = _run_waves(
            chaos_server, graphs, _waves(seed), storm_injector=injector
        )

    # -- assertions --------------------------------------------------------
    stats = chaos_server.stats
    ledger_ok = (
        stats.in_flight == 0
        and stats.admitted
        == stats.completed + stats.shed + stats.expired + stats.degraded
    )
    transitions = _breaker_transitions(chaos_obs)
    breakers_reopened = (
        transitions["open"] >= 2 and transitions["half_open"] >= 1
    )
    clean_values = {r.request.id: _canonical_value(r.value) for r in clean}
    chaos_ok = [r for r in chaos if r.ok]
    ok_match = all(
        _canonical_value(r.value) == clean_values.get(r.request.id)
        for r in chaos_ok
    )
    degraded = [r for r in chaos if r.degraded]
    staleness_bounded = all(
        1 <= r.staleness <= max_stale_epochs for r in degraded
    )
    assertions = {
        "ledger_ok": ledger_ok,
        "clean_all_ok": all(r.ok for r in clean),
        "breakers_reopened": breakers_reopened,
        "ok_matches_clean": ok_match,
        "degraded_seen": len(degraded) > 0,
        "staleness_bounded": staleness_bounded,
    }
    makespan = max((r.completed for r in chaos), default=0) - min(
        (r.request.arrival for r in chaos), default=0
    )
    reasons: Dict[str, int] = {}
    for r in degraded:
        key = r.degraded_reason or "unknown"
        reasons[key] = reasons.get(key, 0) + 1
    return {
        "ok": all(assertions.values()),
        "assertions": assertions,
        "requests": len(chaos),
        "clean": {
            "ok": sum(1 for r in clean if r.ok),
            "errors": sum(1 for r in clean if r.status == "error"),
        },
        "chaos": {
            k: v for k, v in summarize(chaos, chaos_server, makespan)[
                "overall"
            ].items()
        },
        "degraded_reasons": reasons,
        "breaker_transitions": transitions,
        "max_staleness": max((r.staleness for r in degraded), default=0),
        "endpoint_faults": int(sum(
            v
            for k, v in chaos_obs.counter(
                "resilience.faults_injected"
            ).series().items()
            if "kind=endpoint_failure" in k
        )),
    }


# ----------------------------------------------------------------------
# Store soak: crash/resume byte-identity + integrity quarantine
# ----------------------------------------------------------------------


def _soak_edges(seed: int) -> List[Tuple[int, int]]:
    """A deterministic shuffled undirected edge list (one pair per edge)."""
    graph = barabasi_albert(300, 3, seed=7)
    pairs = []
    for u in range(graph.num_vertices):
        for v in graph.indices[graph.indptr[u]: graph.indptr[u + 1]]:
            if u < int(v):
                pairs.append((u, int(v)))
    order = np.random.default_rng(seed).permutation(len(pairs))
    return [pairs[i] for i in order]


def _tree_digest(root: str) -> str:
    """SHA-256 over every file (relative path + bytes), sorted."""
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for fname in sorted(filenames):
            full = os.path.join(dirpath, fname)
            rel = os.path.relpath(full, root)
            digest.update(rel.encode() + b"\0")
            with open(full, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\1")
    return digest.hexdigest()


def run_store_part(
    seed: int,
    obs: Optional[MetricsRegistry] = None,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    """Crash the chunked ingest at chosen boundaries; resume; compare."""
    obs = obs if obs is not None else MetricsRegistry()
    edges = _soak_edges(seed)
    chunk_edges = 120
    n_chunks = -(-2 * len(edges) // (2 * chunk_edges))
    kwargs = dict(
        num_vertices=300, partition="hash", num_parts=3, seed=seed,
        chunk_edges=chunk_edges, name="soak",
    )
    own_dir = workdir is None
    root = workdir or tempfile.mkdtemp(prefix="repro-soak-")
    try:
        ref_dir = os.path.join(root, "ref")
        ingest_edge_stream(iter(edges), path=ref_dir, **kwargs)
        ref_digest = _tree_digest(ref_dir)

        crash_points = [0, n_chunks // 2, n_chunks - 1]
        resume_identical: Dict[str, bool] = {}
        for point in crash_points:
            dest = os.path.join(root, f"crash{point}")
            injector = FaultPlan(seed=seed).crash_at_chunk(point).build(obs)
            try:
                ingest_edge_stream(
                    iter(edges), path=dest, injector=injector, **kwargs
                )
                crashed = False
            except FaultError:
                crashed = True
            ingest_edge_stream(iter(edges), path=dest, resume=True, **kwargs)
            resume_identical[f"chunk{point}"] = (
                crashed and _tree_digest(dest) == ref_digest
            )

        torn_dir = os.path.join(root, "torn")
        injector = FaultPlan(seed=seed).torn_write(chunk=1).build(obs)
        try:
            ingest_edge_stream(
                iter(edges), path=torn_dir, injector=injector, **kwargs
            )
            torn = False
        except FaultError:
            torn = True
        ingest_edge_stream(iter(edges), path=torn_dir, resume=True, **kwargs)
        torn_identical = torn and _tree_digest(torn_dir) == ref_digest

        io_dir = os.path.join(root, "io")
        injector = FaultPlan(seed=seed).fail_write("part1/indices.npy").build(obs)
        ingest_edge_stream(iter(edges), path=io_dir, injector=injector, **kwargs)
        io_retried = (
            injector.faults_injected >= 1
            and _tree_digest(io_dir) == ref_digest
        )

        # -- integrity drill: flip a byte, detect, quarantine ---------------
        bad_dir = os.path.join(root, "bad")
        shutil.copytree(ref_dir, bad_dir)
        victim = os.path.join(bad_dir, "part0", "indices.npy")
        with open(victim, "r+b") as handle:
            handle.seek(-8, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-8, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        detected = verify_store(bad_dir)
        try:
            repair_store(bad_dir)
            quarantined: List[str] = []
        except Exception as exc:
            quarantined = list(getattr(exc, "paths", []))
        quarantine_ok = (
            not detected.ok
            and detected.corrupt == ["part0/indices.npy"]
            and quarantined == ["part0/indices.npy"]
            and os.path.exists(
                os.path.join(bad_dir, "_quarantine", "part0", "indices.npy")
            )
            and verify_store(ref_dir).ok
        )

        assertions = {
            "crashes_fired": True,
            **{f"resume_identical_{k}": v for k, v in resume_identical.items()},
            "torn_write_identical": torn_identical,
            "io_error_retried": io_retried,
            "quarantine_ok": quarantine_ok,
        }
        return {
            "ok": all(assertions.values()),
            "assertions": assertions,
            "edges": len(edges),
            "chunks": n_chunks,
            "crash_points": crash_points,
            "ref_digest": ref_digest,
        }
    finally:
        if own_dir:
            shutil.rmtree(root, ignore_errors=True)


# ----------------------------------------------------------------------
# Mutate soak: streaming updates + incremental engines + cache accounting
# ----------------------------------------------------------------------


def run_mutate_soak(
    seed: Optional[int] = None,
    obs: Optional[MetricsRegistry] = None,
    num_batches: int = 30,
) -> Dict[str, Any]:
    """Interleave query waves with a seeded edge-update stream and check
    the dynamic-graph contract at every epoch:

    * **incremental ≡ recompute** — the incremental PageRank / WCC / BFS
      maintainers, fed the same batches in lockstep with the registry,
      match a from-scratch solve on the final graph (WCC and BFS
      bit-identical, PageRank within the push tolerance);
    * **served answers are current** — every ``graph.neighbors`` response
      in the wave after a batch reflects that batch's inserts/deletes;
    * **cache accounting** — the per-graph secondary index stays
      consistent with the entry table at every epoch, promotions only
      happen for entries whose footprint missed the dirty partitions,
      and the admission ledger balances.
    """
    from ..tlav import bfs as scratch_bfs
    from ..tlav import wcc as scratch_wcc
    from ..tlav.incremental import (
        IncrementalBFS,
        IncrementalPageRank,
        IncrementalWCC,
    )

    seed = resolve_fault_seed(seed)
    obs = obs if obs is not None else MetricsRegistry()
    base = barabasi_albert(240, 3, seed=11)
    n = base.num_vertices
    graphs = GraphRegistry()
    graphs.register(
        "default",
        InMemoryGraph(base, partition=hash_partition(base, 32), name="default"),
    )
    server = Server(
        graphs, endpoints=builtin_endpoints(), obs=obs,
        num_workers=2, queue_bound=64, batch_window=64, max_batch=4,
        max_stale_epochs=4,
    )
    inc_pr = IncrementalPageRank(base, tol=1e-10)
    inc_wcc = IncrementalWCC(base)
    inc_bfs = IncrementalBFS(base, source=0)
    batches = random_edge_updates(
        base, num_batches, edge_fraction=0.01, seed=seed + 3
    )
    mix = [
        MixEntry(
            "graph.neighbors",
            lambda r: {"node": int(r.integers(48))},
            weight=5.0,
        ),
        MixEntry("tlav.bfs", lambda r: {"source": 0}, weight=1.0),
        MixEntry("tlav.wcc", lambda r: {}, weight=1.0),
    ]

    responses: List[Response] = []
    index_ok = True
    answers_current = True
    epochs = 0
    for i, (ins, dels) in enumerate(batches):
        delta = graphs.apply_updates("default", inserts=ins, deletes=dels)
        inc_pr.apply(ins, dels)
        inc_wcc.apply(ins, dels)
        inc_bfs.apply(ins, dels)
        epochs += 1
        index_ok = index_ok and server.cache.index_consistent()
        live = graphs.get("default").graph
        wave = open_loop(
            mix, num_requests=8, mean_interarrival=300,
            tenants=("alice", "bob"), seed=seed + 100 + i,
        )
        for request in wave:
            server.submit(request)
        wave_responses = server.run()
        responses.extend(wave_responses)
        for r in wave_responses:
            if r.ok and r.request.endpoint == "graph.neighbors":
                node = int(r.request.params.get("node", 0)) % n
                expect = [int(w) for w in live.neighbors(node)]
                answers_current = answers_current and r.value == expect
        index_ok = index_ok and server.cache.index_consistent()

    final = graphs.get("default").graph.to_graph()
    pr_err = float(np.max(np.abs(
        inc_pr.scores() - IncrementalPageRank(final, tol=1e-10).scores()
    )))
    wcc_match = bool(np.array_equal(inc_wcc.labels, scratch_wcc(final)))
    bfs_match = bool(np.array_equal(inc_bfs.levels, scratch_bfs(final, source=0)))

    stats = server.stats
    cache = server.cache.as_dict()
    assertions = {
        "ledger_ok": (
            stats.in_flight == 0
            and stats.admitted
            == stats.completed + stats.shed + stats.expired + stats.degraded
        ),
        "index_consistent": index_ok,
        "answers_current": answers_current,
        "incremental_pagerank_matches": pr_err < 1e-6,
        "incremental_wcc_matches": wcc_match,
        "incremental_bfs_matches": bfs_match,
        "epoch_advanced_per_batch": graphs.get("default").epoch == num_batches,
        "promotions_seen": cache["promoted"] > 0,
    }
    return {
        "ok": all(assertions.values()),
        "assertions": assertions,
        "batches": epochs,
        "requests": len(responses),
        "final_epoch": int(graphs.get("default").epoch),
        "pagerank_max_err": pr_err,
        "incremental": {
            "pagerank": inc_pr.as_dict(),
            "wcc": inc_wcc.as_dict(),
            "bfs": inc_bfs.as_dict(),
        },
        "cache": cache,
    }


# ----------------------------------------------------------------------
# The whole soak
# ----------------------------------------------------------------------


def run_serve_soak(
    seed: Optional[int] = None,
    workers: int = 2,
    backend: Optional[str] = None,
    obs: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    workdir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run the full serve + store chaos soak; returns the JSON report.

    Deterministic at a fixed ``seed`` (default: ``REPRO_FAULT_SEED``).
    ``workdir`` keeps the store artifacts around for inspection; by
    default they live in a temp directory that is removed on exit.
    """
    seed = resolve_fault_seed(seed)
    obs = obs if obs is not None else MetricsRegistry()
    serve_report = run_serve_part(
        seed, workers=workers, backend=backend, obs=obs, tracer=tracer
    )
    store_report = run_store_part(seed, obs=obs, workdir=workdir)
    return {
        "scenario": "serve-soak",
        "fault_seed": seed,
        "workers": workers,
        "ok": serve_report["ok"] and store_report["ok"],
        "serve": serve_report,
        "store": store_report,
    }
