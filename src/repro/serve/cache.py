"""Versioned LRU result cache for served requests.

Keys are ``(endpoint, graph, epoch, canonical_params)``.  Because the
graph epoch is *inside* the key, a registry epoch bump invalidates every
cached result for that graph by construction — a fresh :meth:`lookup`
can never return a stale entry.  The cache additionally subscribes to
the :class:`~repro.serve.endpoints.GraphRegistry` so bumped entries are
reclaimed instead of waiting for LRU pressure.

With ``max_stale_epochs > 0`` the reclaim keeps a bounded tail of old
epochs behind for the degradation ladder: when a breaker is open or
admission is shedding, the scheduler calls :meth:`lookup_stale` to
answer in stale-while-revalidate mode (the response then carries
``degraded=True`` plus its staleness in epochs).  Entries more than
``max_stale_epochs`` epochs behind are still dropped eagerly.

Hits and misses are counted per endpoint under ``serve.cache.*`` so
the scenario reports can quote a hit rate next to the latency
distribution it produced.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..obs import MetricsRegistry

__all__ = ["ResultCache"]

CacheKey = Tuple[str, str, int, Tuple]


class ResultCache:
    """Bounded LRU over ``(endpoint, graph, epoch, canonical_params)``."""

    def __init__(
        self,
        capacity: int = 256,
        obs: Optional[MetricsRegistry] = None,
        max_stale_epochs: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if max_stale_epochs < 0:
            raise ValueError("max_stale_epochs must be >= 0")
        self.capacity = capacity
        self.max_stale_epochs = int(max_stale_epochs)
        self.registry = obs if obs is not None else MetricsRegistry()
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._c_hits = self.registry.counter(
            "serve.cache.hits", "served from the versioned result cache"
        )
        self._c_misses = self.registry.counter(
            "serve.cache.misses", "cache lookups that fell through to an engine"
        )
        self._c_evictions = self.registry.counter(
            "serve.cache.evictions", "entries dropped by LRU pressure"
        )
        self._c_invalidated = self.registry.counter(
            "serve.cache.invalidated", "entries reclaimed by graph epoch bumps"
        )
        self._c_stale_hits = self.registry.counter(
            "serve.cache.stale_hits", "degraded answers served from stale epochs"
        )
        self._c_stale_misses = self.registry.counter(
            "serve.cache.stale_misses", "stale lookups with nothing to fall back on"
        )

    @staticmethod
    def key(endpoint: str, graph: str, epoch: int, canon: Tuple) -> CacheKey:
        return (endpoint, graph, int(epoch), canon)

    def lookup(self, key: CacheKey) -> Tuple[bool, Any]:
        """``(hit, value)``; counts the outcome under the endpoint label."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._c_hits.inc(endpoint=key[0])
            return True, self._entries[key]
        self._c_misses.inc(endpoint=key[0])
        return False, None

    def put(self, key: CacheKey, value: Any) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._c_evictions.inc()

    def lookup_stale(
        self, endpoint: str, graph: str, current_epoch: int, canon: Tuple
    ) -> Tuple[bool, Any, int]:
        """Newest retained entry at an epoch *before* ``current_epoch``.

        Returns ``(found, value, staleness)`` where ``staleness`` is the
        distance in epochs behind ``current_epoch``; the entry is at
        most ``max_stale_epochs`` behind by construction (older ones
        were reclaimed).  Counts under ``serve.cache.stale_*``.
        """
        best_key = None
        for k in self._entries:
            if k[0] == endpoint and k[1] == graph and k[2] < current_epoch:
                if k[3] == canon and (best_key is None or k[2] > best_key[2]):
                    best_key = k
        if best_key is None:
            self._c_stale_misses.inc(endpoint=endpoint)
            return False, None, 0
        self._entries.move_to_end(best_key)
        self._c_stale_hits.inc(endpoint=endpoint)
        return True, self._entries[best_key], int(current_epoch) - best_key[2]

    def invalidate_graph(self, name: str, current_epoch: Optional[int] = None) -> int:
        """Reclaim entries for ``name`` older than ``current_epoch``
        (keeping the ``max_stale_epochs`` newest epochs behind for
        stale-while-revalidate service)."""
        floor = (
            None
            if current_epoch is None
            else int(current_epoch) - self.max_stale_epochs
        )
        stale = [
            k for k in self._entries
            if k[1] == name and (floor is None or k[2] < floor)
        ]
        for k in stale:
            del self._entries[k]
        if stale:
            self._c_invalidated.inc(len(stale))
        return len(stale)

    def attach(self, graphs) -> "ResultCache":
        """Subscribe to a GraphRegistry's epoch bumps; returns self."""
        graphs.subscribe(
            lambda name, epoch: self.invalidate_graph(name, current_epoch=epoch)
        )
        return self

    # -- readings ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return int(self._c_hits.total)

    @property
    def misses(self) -> int:
        return int(self._c_misses.total)

    @property
    def hit_rate(self) -> float:
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def as_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": int(self._c_evictions.total),
            "invalidated": int(self._c_invalidated.total),
            "max_stale_epochs": self.max_stale_epochs,
            "stale_hits": int(self._c_stale_hits.total),
            "stale_misses": int(self._c_stale_misses.total),
        }
