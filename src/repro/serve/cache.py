"""Versioned LRU result cache with partition-scoped invalidation.

Keys are ``(endpoint, graph, epoch, canonical_params)``.  Because the
graph epoch is *inside* the key, a registry epoch bump invalidates every
cached result for that graph by construction — a fresh :meth:`lookup`
can never return a stale entry.  The cache additionally subscribes to
the :class:`~repro.serve.endpoints.GraphRegistry` so bumped entries are
reclaimed instead of waiting for LRU pressure.

**Partition scoping** keeps a trickle of edge mutations from zeroing
the hit rate.  An entry may record the set of partitions its result
read (:meth:`put`'s ``partitions``; ``None`` means the whole graph).
When a mutation batch reports its dirty partitions through
:meth:`invalidate_graph`, entries **at the immediately preceding
epoch** whose footprint is disjoint from the dirty set are
**promoted**: re-keyed to the new epoch, so the next fresh lookup
still hits.  Each entry is thus judged against every batch exactly
once — an entry that aged into the stale tail was dirtied by some
earlier batch, and a later batch with a disjoint (or empty) dirty set
must not resurrect it as fresh.  Whole-graph entries (and
intersecting ones) age into the stale tail as before.  An *empty*
dirty set is the registry's proof the batch was a structural no-op,
and promotes everything at the preceding epoch.

With ``max_stale_epochs > 0`` the reclaim keeps a bounded tail of old
epochs behind for the degradation ladder: when a breaker is open or
admission is shedding, the scheduler calls :meth:`lookup_stale` to
answer in stale-while-revalidate mode (the response then carries
``degraded=True`` plus its staleness in epochs).  The staleness bound
is enforced *inside* :meth:`lookup_stale` — an unattached cache (no
registry eagerly reclaiming) honors it too, instead of serving
arbitrarily old answers.

A per-graph secondary index (``graph name -> set of keys``) backs
:meth:`lookup_stale` and :meth:`invalidate_graph`, so a mutation batch
walks only the bumped graph's entries, not the whole cache.

Hits and misses are counted per endpoint under ``serve.cache.*`` so
the scenario reports can quote a hit rate next to the latency
distribution it produced; invalidation accounts reclaimed vs retained
vs promoted per bump.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional, Set, Tuple

from ..obs import MetricsRegistry

__all__ = ["ResultCache"]

CacheKey = Tuple[str, str, int, Tuple]


class ResultCache:
    """Bounded LRU over ``(endpoint, graph, epoch, canonical_params)``."""

    def __init__(
        self,
        capacity: int = 256,
        obs: Optional[MetricsRegistry] = None,
        max_stale_epochs: int = 0,
        partition_scoped: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        if max_stale_epochs < 0:
            raise ValueError("max_stale_epochs must be >= 0")
        self.capacity = capacity
        self.max_stale_epochs = int(max_stale_epochs)
        self.partition_scoped = bool(partition_scoped)
        self.registry = obs if obs is not None else MetricsRegistry()
        self._entries: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._footprints: Dict[CacheKey, Optional[frozenset]] = {}
        self._by_graph: Dict[str, Set[CacheKey]] = {}
        self._c_hits = self.registry.counter(
            "serve.cache.hits", "served from the versioned result cache"
        )
        self._c_misses = self.registry.counter(
            "serve.cache.misses", "cache lookups that fell through to an engine"
        )
        self._c_evictions = self.registry.counter(
            "serve.cache.evictions", "entries dropped by LRU pressure"
        )
        self._c_invalidated = self.registry.counter(
            "serve.cache.invalidated", "entries reclaimed by graph epoch bumps"
        )
        self._c_retained = self.registry.counter(
            "serve.cache.retained",
            "stale entries kept behind for stale-while-revalidate",
        )
        self._c_promoted = self.registry.counter(
            "serve.cache.promoted",
            "entries re-keyed to the new epoch (clean partitions)",
        )
        self._c_stale_hits = self.registry.counter(
            "serve.cache.stale_hits", "degraded answers served from stale epochs"
        )
        self._c_stale_misses = self.registry.counter(
            "serve.cache.stale_misses", "stale lookups with nothing to fall back on"
        )

    @staticmethod
    def key(endpoint: str, graph: str, epoch: int, canon: Tuple) -> CacheKey:
        return (endpoint, graph, int(epoch), canon)

    # -- index plumbing ----------------------------------------------------

    def _insert(
        self, key: CacheKey, value: Any, partitions: Optional[frozenset]
    ) -> None:
        self._entries[key] = value
        self._footprints[key] = partitions
        self._by_graph.setdefault(key[1], set()).add(key)

    def _remove(self, key: CacheKey) -> None:
        del self._entries[key]
        del self._footprints[key]
        keys = self._by_graph[key[1]]
        keys.discard(key)
        if not keys:
            del self._by_graph[key[1]]

    def lookup(self, key: CacheKey) -> Tuple[bool, Any]:
        """``(hit, value)``; counts the outcome under the endpoint label."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._c_hits.inc(endpoint=key[0])
            return True, self._entries[key]
        self._c_misses.inc(endpoint=key[0])
        return False, None

    def put(
        self,
        key: CacheKey,
        value: Any,
        partitions: Optional[Iterable[int]] = None,
    ) -> None:
        """Store one result; ``partitions`` is the set of partition ids
        the computation read (``None`` = the whole graph, the
        conservative default every full-graph analytic uses)."""
        footprint = (
            frozenset(int(p) for p in partitions)
            if partitions is not None and self.partition_scoped
            else None
        )
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            self._footprints[key] = footprint
        else:
            self._insert(key, value, footprint)
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            self._remove(oldest)
            self._c_evictions.inc()

    def lookup_stale(
        self, endpoint: str, graph: str, current_epoch: int, canon: Tuple
    ) -> Tuple[bool, Any, int]:
        """Newest retained entry at an epoch *before* ``current_epoch``.

        Returns ``(found, value, staleness)`` where ``staleness`` is the
        distance in epochs behind ``current_epoch``, enforced to be at
        most ``max_stale_epochs`` here — not just by the attached
        registry's eager reclaim.  Counts under ``serve.cache.stale_*``.
        """
        floor = int(current_epoch) - self.max_stale_epochs
        best_key = None
        for k in self._by_graph.get(graph, ()):
            if k[0] == endpoint and floor <= k[2] < current_epoch:
                if k[3] == canon and (best_key is None or k[2] > best_key[2]):
                    best_key = k
        if best_key is None:
            self._c_stale_misses.inc(endpoint=endpoint)
            return False, None, 0
        self._entries.move_to_end(best_key)
        self._c_stale_hits.inc(endpoint=endpoint)
        return True, self._entries[best_key], int(current_epoch) - best_key[2]

    def invalidate_graph(
        self,
        name: str,
        current_epoch: Optional[int] = None,
        dirty_partitions: Optional[Iterable[int]] = None,
    ) -> int:
        """Process one epoch bump for ``name``; returns entries reclaimed.

        Entries at ``current_epoch - 1`` whose recorded partition
        footprint is disjoint from ``dirty_partitions`` are promoted to
        the current epoch (still a fresh answer — no dirty partition
        contributed to them).  Only that epoch is promotable: each
        entry is judged against every batch exactly once, so a
        stale-tail survivor — already dirtied by an earlier batch —
        can never be re-keyed fresh by a later batch whose dirty set
        happens to miss it.  The rest age into the stale tail: the
        ``max_stale_epochs`` newest prior epochs are retained for
        stale-while-revalidate, older ones are reclaimed.  Without
        ``current_epoch`` the floor resolves from the newest cached
        epoch for the graph, so direct callers keep the stale tail
        instead of deleting it wholesale.
        """
        keys = self._by_graph.get(name)
        if not keys:
            return 0
        if current_epoch is None:
            current_epoch = max(k[2] for k in keys)
        cur = int(current_epoch)
        floor = cur - self.max_stale_epochs
        dirty = (
            None if dirty_partitions is None or not self.partition_scoped
            else frozenset(int(p) for p in dirty_partitions)
        )
        reclaimed = retained = promoted = 0
        for k in sorted(keys, key=lambda k: k[2]):
            if k[2] >= cur:
                continue
            footprint = self._footprints[k]
            clean = (
                k[2] == cur - 1
                and dirty is not None
                and (
                    not dirty
                    or (footprint is not None and footprint.isdisjoint(dirty))
                )
            )
            if clean:
                target = (k[0], k[1], cur, k[3])
                value = self._entries[k]
                self._remove(k)
                if target not in self._entries:
                    self._insert(target, value, footprint)
                    promoted += 1
                else:
                    # A genuinely fresh entry already owns the target
                    # key; the displaced candidate is reclaimed.
                    reclaimed += 1
                continue
            if k[2] < floor:
                self._remove(k)
                reclaimed += 1
            else:
                retained += 1
        if reclaimed:
            self._c_invalidated.inc(reclaimed)
        if retained:
            self._c_retained.inc(retained)
        if promoted:
            self._c_promoted.inc(promoted)
        return reclaimed

    def attach(self, graphs) -> "ResultCache":
        """Subscribe to a GraphRegistry's epoch bumps; returns self."""
        graphs.subscribe(
            lambda name, epoch, dirty=None: self.invalidate_graph(
                name, current_epoch=epoch, dirty_partitions=dirty
            )
        )
        return self

    # -- readings ----------------------------------------------------------

    @property
    def hits(self) -> int:
        return int(self._c_hits.total)

    @property
    def misses(self) -> int:
        return int(self._c_misses.total)

    @property
    def stale_hits(self) -> int:
        return int(self._c_stale_hits.total)

    @property
    def stale_misses(self) -> int:
        return int(self._c_stale_misses.total)

    @property
    def hit_rate(self) -> float:
        """Fresh-path hit rate: ``hits / (hits + misses)``.

        Stale (degraded) hits are a different service class and are
        accounted separately — see :attr:`stale_hit_rate`; neither pool
        double-counts the other's lookups.
        """
        looked = self.hits + self.misses
        return self.hits / looked if looked else 0.0

    @property
    def stale_hit_rate(self) -> float:
        looked = self.stale_hits + self.stale_misses
        return self.stale_hits / looked if looked else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def index_consistent(self) -> bool:
        """Secondary index ≡ entries (the accounting tests' oracle)."""
        indexed = set()
        for name, keys in self._by_graph.items():
            if not keys or any(k[1] != name for k in keys):
                return False
            indexed |= keys
        return (
            indexed == set(self._entries)
            and set(self._footprints) == set(self._entries)
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": int(self._c_evictions.total),
            "invalidated": int(self._c_invalidated.total),
            "retained": int(self._c_retained.total),
            "promoted": int(self._c_promoted.total),
            "max_stale_epochs": self.max_stale_epochs,
            "partition_scoped": self.partition_scoped,
            "stale_hits": self.stale_hits,
            "stale_misses": self.stale_misses,
            "stale_hit_rate": self.stale_hit_rate,
        }
