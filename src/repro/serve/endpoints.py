"""Endpoint and graph registries: what the serving layer can run, on what.

An :class:`Endpoint` wraps one engine entry point behind a uniform
contract: ``run(record, params, executor=None) -> (result, cost_ops)``.
The *result* is the real engine answer (the serve-vs-direct oracles in
:mod:`repro.serve.checks` demand bit-identity); the *cost* is the
simulated-ops price the scheduler charges a worker clock, drawn from
the engines' own work counters (candidate scans for matching, edge
traversals for TLAV supersteps, message counts for GNN aggregation) so
latency distributions are deterministic at a fixed seed.

The :class:`GraphRegistry` names the graphs requests may target — a
real multi-graph catalog: each entry is a
:class:`~repro.graph.store.handle.GraphHandle` (a live
:class:`~repro.graph.csr.Graph` wrapped in ``InMemoryGraph``, or a
paged :class:`~repro.graph.store.stored.StoredGraph` registered by
store path or loaded wholesale from a
:class:`~repro.graph.store.catalog.StoreCatalog` via
:meth:`GraphRegistry.load_catalog`).  Each :class:`GraphRecord`
carries an **epoch** that bumps whenever the graph is replaced or
mutated in place; the epoch is part of every result cache key and
every batch key, so a bump invalidates stale cached results *by
construction* (no flush races) and prevents cross-version batching.
For stored graphs the epoch is **backed by the manifest version**: a
bump persists through :meth:`StoredGraph.bump_version`, so reopening
the catalog after a restart sees the same epoch the cache keys were
minted against.  Subscribers (the server's cache) are notified on
bumps so stale entries are also reclaimed eagerly.

**Streaming mutations** enter through
:meth:`GraphRegistry.apply_updates`: one batched edge delta per call
(deletes before inserts, via
:func:`~repro.graph.delta.apply_edge_updates`), one epoch bump per
batch, and a **dirty-partition report** — the partitions owning a
vertex whose adjacency changed — forwarded to subscribers so the
result cache can invalidate partition-scoped entries precisely instead
of zeroing the graph's whole working set.  Endpoints may declare a
``footprint`` (the partitions a result read, resolved per request via
the handles' ``part_of``); full-graph analytics leave it ``None``, the
conservative everything-footprint.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from ..graph.delta import EdgeDelta, apply_edge_updates
from ..graph.partition import Partition
from ..graph.store import InMemoryGraph, StoreCatalog, as_handle
from ..matching import pattern as patterns
from ..matching.backtrack import MatchStats, count_matches
from ..matching.cliques import count_k_cliques
from ..matching.plan import GraphStats, Planner

__all__ = [
    "Endpoint",
    "EndpointRegistry",
    "GraphRecord",
    "GraphRegistry",
    "builtin_endpoints",
    "canonical_params",
    "named_pattern",
]


# ----------------------------------------------------------------------
# Canonical parameters
# ----------------------------------------------------------------------


def _canon_value(value: Any) -> Any:
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return tuple(_canon_value(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((str(k), _canon_value(v)) for k, v in value.items()))
    return value


def canonical_params(params: Dict[str, Any]) -> Tuple:
    """Hashable, order-independent form of a request's parameter dict.

    Two requests with equal canonical params are *the same computation*
    — the unit of result-cache identity and of duplicate coalescing in
    the micro-batcher.
    """
    return tuple(sorted((str(k), _canon_value(v)) for k, v in params.items()))


#: Named patterns a request may ask for (JSON-friendly: params carry
#: the name, not the PatternGraph object).
PATTERNS: Dict[str, Callable[[], "patterns.PatternGraph"]] = {
    "edge": lambda: patterns.path_pattern(2),
    "path3": lambda: patterns.path_pattern(3),
    "triangle": patterns.triangle_pattern,
    "star3": lambda: patterns.star_pattern(3),
    "c4": lambda: patterns.cycle_pattern(4),
    "diamond": patterns.diamond_pattern,
    "tailed-triangle": patterns.tailed_triangle_pattern,
    "house": patterns.house_pattern,
    "k4": lambda: patterns.clique_pattern(4),
}


def named_pattern(name: str) -> "patterns.PatternGraph":
    try:
        return PATTERNS[name]()
    except KeyError:
        raise KeyError(
            f"unknown pattern {name!r}; known: {sorted(PATTERNS)}"
        ) from None


# ----------------------------------------------------------------------
# Graph registry
# ----------------------------------------------------------------------


class GraphRecord:
    """One served graph plus its version epoch and lazy GNN artifacts.

    ``graph`` may be a concrete :class:`~repro.graph.csr.Graph`, any
    handle, or a store-directory path — everything funnels through
    :func:`~repro.graph.store.handle.as_handle`, so ``record.graph``
    is always a handle.  For a stored graph the epoch is the on-disk
    manifest version (bumps persist); for in-memory graphs it is a
    plain session counter starting at 0.
    """

    def __init__(
        self,
        name: str,
        graph: Any,
        features: Optional[np.ndarray] = None,
        model: Optional[Any] = None,
        gnn_seed: int = 0,
        num_classes: int = 3,
    ) -> None:
        self.name = name
        self._epoch = 0
        self._attach(graph, features)
        self.model = model
        self.gnn_seed = gnn_seed
        self.num_classes = num_classes
        self._gt: Optional[Any] = None
        self._gt_epoch = -1
        self._planner: Optional[Planner] = None
        self._planner_epoch = -1

    def _attach(self, graph: Any, features: Optional[np.ndarray]) -> None:
        handle = as_handle(graph, features=features)
        self.graph = handle
        if features is None:
            features = handle.features()
        self.features = features

    # -- version epoch ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Cache/batch-key version; manifest-backed for stored graphs."""
        version = getattr(self.graph, "version", None)
        if version is not None:
            return int(version) + self._epoch
        return self._epoch

    def bump(self) -> int:
        """Advance the epoch; persists via the manifest when stored."""
        bump_version = getattr(self.graph, "bump_version", None)
        if bump_version is not None:
            bump_version()
        else:
            self._epoch += 1
        return self.epoch

    def swap(self, graph: Any, features: Optional[np.ndarray] = None) -> int:
        """Replace the backing graph without dropping the epoch.

        The epoch stays monotonic even when the replacement switches
        storage kinds (in-memory ↔ stored): the ``_epoch`` offset
        absorbs the difference between the old epoch and the new
        handle's manifest version.  The caller (the registry) bumps
        after the swap, so the post-replace epoch strictly increases.
        """
        old = self.epoch
        self._attach(graph, features)
        base = int(getattr(self.graph, "version", 0) or 0)
        self._epoch = max(0, old - base)
        return self.epoch

    def apply_updates(
        self,
        inserts: Any = (),
        deletes: Any = (),
    ) -> EdgeDelta:
        """Apply one batched edge delta to the served snapshot.

        The successor graph keeps the old handle's partition layout (a
        live :class:`Partition`, or a stored graph's assignment frozen
        into one), so partition-scoped dirty tracking survives the
        rebuild.  A mutated stored graph becomes an in-memory overlay —
        the on-disk shards are immutable; persisting a stream is the
        ingest pipeline's job, not the serving path's.  The caller (the
        registry) bumps the epoch afterwards.
        """
        old_handle = self.graph
        new_graph, delta = apply_edge_updates(
            old_handle.to_graph(), inserts, deletes
        )
        partition = getattr(old_handle, "vertex_partition", None)
        if partition is None:
            assignment = getattr(old_handle, "assignment", None)
            if assignment is not None:
                partition = Partition(
                    int(old_handle.num_parts), np.asarray(assignment)
                )
        self.swap(InMemoryGraph(
            new_graph,
            features=self.features,
            partition=partition,
            name=getattr(old_handle, "name", self.name),
        ))
        return delta

    def dirty_partitions(self, delta: EdgeDelta) -> FrozenSet[int]:
        """Partitions owning a vertex the delta touched."""
        return delta.dirty_partitions(
            getattr(self.graph, "assignment", None)
        )

    # -- lazy, epoch-keyed derived state -----------------------------------

    def tensors(self):
        """Edge tensors for GNN inference, rebuilt after an epoch bump."""
        if self._gt is None or self._gt_epoch != self.epoch:
            from ..gnn.layers import GraphTensors

            self._gt = GraphTensors(self.graph)
            self._gt_epoch = self.epoch
        return self._gt

    def planner(self) -> Planner:
        if self._planner is None or self._planner_epoch != self.epoch:
            self._planner = Planner(GraphStats.of(self.graph))
            self._planner_epoch = self.epoch
        return self._planner

    def ensure_gnn(self, in_dim: int = 8) -> None:
        """Materialize deterministic features/model when none were bound."""
        n = self.graph.num_vertices
        if self.features is None or self.features.shape[0] != n:
            rng = np.random.default_rng(self.gnn_seed)
            self.features = rng.normal(size=(n, in_dim))
        if self.model is None:
            from ..gnn.models import NodeClassifier

            self.model = NodeClassifier(
                self.features.shape[1], 16, self.num_classes, seed=self.gnn_seed
            )


class GraphRegistry:
    """Named graph handles with version epochs and bump notification.

    A record may be registered from a live :class:`Graph`, any handle,
    or a store-directory path; :meth:`load_catalog` registers every
    store below a catalog root in one call, turning the registry into
    a served view of the on-disk catalog (epochs = manifest versions).
    """

    def __init__(self) -> None:
        self._records: Dict[str, GraphRecord] = {}
        self._listeners: List[Tuple[Callable[..., None], bool]] = []

    def register(self, name: str, graph: Any, **kwargs: Any) -> GraphRecord:
        if name in self._records:
            raise ValueError(f"graph {name!r} already registered; use replace()")
        record = GraphRecord(name, graph, **kwargs)
        self._records[name] = record
        return record

    def load_catalog(
        self,
        root: Any,
        cache_budget: Optional[int] = None,
        obs: Optional[Any] = None,
    ) -> List[GraphRecord]:
        """Register every store under a catalog root (or StoreCatalog).

        Each entry is opened as a paged :class:`StoredGraph` whose
        epoch is its manifest version; requests can target any of them
        by name immediately.
        """
        catalog = (
            root if isinstance(root, StoreCatalog)
            else StoreCatalog(root, cache_budget=cache_budget, obs=obs)
        )
        return [
            self.register(name, catalog.open(name, cache_budget=cache_budget))
            for name in catalog.names()
        ]

    def get(self, name: str) -> GraphRecord:
        try:
            return self._records[name]
        except KeyError:
            raise KeyError(
                f"unknown graph {name!r}; known: {sorted(self._records)}"
            ) from None

    def epoch(self, name: str) -> int:
        return self.get(name).epoch

    def replace(self, name: str, graph: Any) -> GraphRecord:
        """Swap in a new version of the graph; bumps the epoch."""
        record = self.get(name)
        record.swap(graph)
        self._bump(record)
        return record

    def bump_epoch(self, name: str) -> int:
        """Declare an in-place mutation of the named graph."""
        record = self.get(name)
        self._bump(record)
        return record.epoch

    def apply_updates(
        self,
        name: str,
        inserts: Any = (),
        deletes: Any = (),
    ) -> EdgeDelta:
        """Apply one batched edge-stream mutation to a served graph.

        One epoch bump per batch; subscribers receive the set of dirty
        partitions alongside the new epoch, so a partition-scoped cache
        reclaims only entries whose footprint the batch actually
        touched.  Returns the effective :class:`EdgeDelta`.
        """
        record = self.get(name)
        delta = record.apply_updates(inserts, deletes)
        self._bump(record, dirty=record.dirty_partitions(delta))
        return delta

    def _bump(
        self,
        record: GraphRecord,
        dirty: Optional[FrozenSet[int]] = None,
    ) -> None:
        record.bump()
        for listener, takes_dirty in self._listeners:
            if takes_dirty:
                listener(record.name, record.epoch, dirty)
            else:
                listener(record.name, record.epoch)

    def subscribe(self, callback: Callable[..., None]) -> None:
        """``callback(name, new_epoch[, dirty_partitions])`` per bump.

        Two-argument callbacks stay supported (they simply never see
        the dirty-partition report a mutation batch carries); arity is
        resolved once here, not per notification.
        """
        takes_dirty = True
        try:
            sig = inspect.signature(callback)
            positional = [
                p for p in sig.parameters.values()
                if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
            ]
            has_var = any(
                p.kind == p.VAR_POSITIONAL for p in sig.parameters.values()
            )
            takes_dirty = has_var or len(positional) >= 3
        except (TypeError, ValueError):  # builtins without signatures
            pass
        self._listeners.append((callback, takes_dirty))

    def names(self) -> List[str]:
        return sorted(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def __iter__(self) -> Iterator[GraphRecord]:
        return iter(self._records.values())


# ----------------------------------------------------------------------
# Endpoints
# ----------------------------------------------------------------------


class Endpoint:
    """One served engine entry point.

    ``run(record, params, executor=None)`` returns ``(result, cost)``
    where ``cost`` is the simulated ops the scheduler charges.  When
    ``merge_batch`` is set the endpoint also supports
    ``run_batch(record, params_list, executor=None)`` returning
    ``(results, cost)`` — one engine call serving requests whose params
    *differ* (DL-serving style micro-batching; GNN node inference
    shares the full-graph forward pass across every request).

    ``timeout_ops`` caps one execution's simulated cost — the scheduler
    treats a longer run as a timeout failure (and fires its one hedged
    retry).  ``degradable=False`` opts the endpoint out of the
    stale-cache degradation ladder (it fails hard instead).

    ``footprint(record, params)`` declares the partitions one result
    reads — the result cache records it so a mutation batch that
    dirties other partitions leaves the entry servable.  ``None`` (the
    default, and the only sound answer for full-graph analytics) means
    *every* partition: any mutation invalidates.  A footprint must be
    conservative — report every partition the answer could depend on —
    or promoted entries would serve wrong answers as fresh.
    """

    def __init__(
        self,
        name: str,
        family: str,
        run: Callable[..., Tuple[Any, int]],
        run_batch: Optional[Callable[..., Tuple[List[Any], int]]] = None,
        description: str = "",
        timeout_ops: Optional[int] = None,
        degradable: bool = True,
        footprint: Optional[Callable[..., Optional[Any]]] = None,
    ) -> None:
        if timeout_ops is not None and timeout_ops < 1:
            raise ValueError("timeout_ops must be >= 1")
        self.name = name
        self.family = family
        self._run = run
        self._run_batch = run_batch
        self.description = description
        self.timeout_ops = timeout_ops
        self.degradable = degradable
        self._footprint = footprint

    @property
    def merge_batch(self) -> bool:
        return self._run_batch is not None

    def run(self, record: GraphRecord, params: Dict, executor=None) -> Tuple[Any, int]:
        result, cost = self._run(record, params, executor)
        return result, max(1, int(cost))

    def run_batch(
        self, record: GraphRecord, params_list: List[Dict], executor=None
    ) -> Tuple[List[Any], int]:
        if self._run_batch is None:
            raise TypeError(f"endpoint {self.name!r} does not merge batches")
        results, cost = self._run_batch(record, params_list, executor)
        return results, max(1, int(cost))

    def canonicalize(self, params: Dict) -> Tuple:
        return canonical_params(params)

    def partitions_read(
        self, record: GraphRecord, params: Dict
    ) -> Optional[FrozenSet[int]]:
        """Partition footprint of one request, or ``None`` (whole graph)."""
        if self._footprint is None:
            return None
        parts = self._footprint(record, params)
        if parts is None:
            return None
        return frozenset(int(p) for p in parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Endpoint({self.name!r}, family={self.family!r})"


class EndpointRegistry:
    """Name-keyed collection of :class:`Endpoint` declarations."""

    def __init__(self) -> None:
        self._endpoints: Dict[str, Endpoint] = {}

    def register(self, endpoint: Endpoint) -> Endpoint:
        if endpoint.name in self._endpoints:
            raise ValueError(f"duplicate endpoint {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        return endpoint

    def get(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise KeyError(
                f"unknown endpoint {name!r}; known: {sorted(self._endpoints)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._endpoints)

    def families(self) -> List[str]:
        return sorted({e.family for e in self._endpoints.values()})

    def __contains__(self, name: str) -> bool:
        return name in self._endpoints

    def __iter__(self) -> Iterator[Endpoint]:
        return iter(
            sorted(self._endpoints.values(), key=lambda e: e.name)
        )

    def __len__(self) -> int:
        return len(self._endpoints)


# ----------------------------------------------------------------------
# Built-in endpoints: one or more per engine family
# ----------------------------------------------------------------------


def _run_pagerank(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    from ..tlav.algorithms import pagerank
    from ..tlav.vectorized import pagerank_dense

    iterations = int(params.get("iterations", 20))
    damping = float(params.get("damping", 0.85))
    if executor is not None:
        values = pagerank_dense(
            record.graph, damping=damping, iterations=iterations, executor=executor
        )
    else:
        values = pagerank(record.graph, damping=damping, iterations=iterations)
    cost = iterations * max(record.graph.num_edge_slots, 1)
    return values, cost


def _run_bfs(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    from ..tlav.algorithms import bfs

    source = int(params.get("source", 0)) % max(record.graph.num_vertices, 1)
    levels = bfs(record.graph, source)
    # Every edge is examined once per direction plus the frontier scans.
    cost = record.graph.num_edge_slots + record.graph.num_vertices
    return levels, cost


def _run_wcc(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    from ..tlav.algorithms import wcc

    labels = wcc(record.graph)
    rounds = int(np.log2(max(record.graph.num_vertices, 2))) + 1
    cost = rounds * (record.graph.num_edge_slots + record.graph.num_vertices)
    return labels, cost


def _run_count(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    pattern = named_pattern(str(params.get("pattern", "triangle")))
    stats = MatchStats()
    count = count_matches(record.graph, pattern, stats=stats, executor=executor)
    return count, max(stats.candidates_scanned, 1)


def _run_cliques(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    k = max(2, int(params.get("k", 3)))
    count = count_k_cliques(record.graph, k)
    cost = record.graph.num_edge_slots + count * k
    return count, cost


def _gnn_predictions(record: GraphRecord) -> Tuple[np.ndarray, int]:
    from ..gnn.tensor import Tensor

    record.ensure_gnn()
    gt = record.tensors()
    predicted = record.model.predict(gt, Tensor(record.features))
    cost = gt.num_messages * record.model.num_layers
    return predicted, cost


def _slice_nodes(predicted: np.ndarray, params: Dict, n: int) -> List[int]:
    nodes = params.get("nodes")
    if nodes is None:
        return [int(v) for v in predicted]
    return [int(predicted[int(v) % max(n, 1)]) for v in nodes]


#: Default fanouts for sampled serving inference.
SAMPLED_FANOUTS = (3, 3)

#: Above this vertex count a full forward per request is no longer
#: admitted when the request names specific nodes — sampled inference
#: bounds the cost by batch x fanout instead of |E|.
SAMPLED_PREDICT_MAX_FULL = 512


def _predict_mode(record: GraphRecord, params: Dict) -> str:
    """``full`` | ``sampled``; ``mode`` param overrides the auto rule.

    Auto picks sampled inference when the request names nodes and the
    graph is stored (paged, assumed big) or simply too large for a
    per-request full forward.  Requests for *every* node keep the
    full-graph path — there is no cheaper way to answer them.
    """
    mode = str(params.get("mode", "auto"))
    if mode in ("full", "sampled"):
        return mode
    if params.get("nodes") is None:
        return "full"
    if getattr(record.graph, "version", None) is not None:  # stored graph
        return "sampled"
    if record.graph.num_vertices > SAMPLED_PREDICT_MAX_FULL:
        return "sampled"
    return "full"


def _sampled_spec(record: GraphRecord, params: Dict):
    """The deterministic sampling plan of one sampled-predict request.

    The seed is derived from the graph's GNN seed and the canonical
    params only — *not* the epoch — so a cache entry promoted across an
    epoch bump (clean partition footprint) stays bit-identical with a
    recompute: same seed over unchanged adjacency resamples the same
    blocks.
    """
    import zlib

    n = max(record.graph.num_vertices, 1)
    raw = params.get("nodes")
    if raw is None:
        nodes = np.arange(n, dtype=np.int64)
    else:
        nodes = np.asarray([int(v) % n for v in raw], dtype=np.int64)
    fanouts = tuple(int(f) for f in params.get("fanouts", SAMPLED_FANOUTS))
    batch_size = max(1, int(params.get("batch_size", 64)))
    seed = zlib.crc32(
        repr((record.gnn_seed, canonical_params(params))).encode()
    )
    return nodes, fanouts, batch_size, seed


def _run_predict_sampled(record: GraphRecord, params: Dict) -> Tuple[Any, int]:
    from ..gnn.dataloader import InferReport, infer_sampled

    record.ensure_gnn()
    nodes, fanouts, batch_size, seed = _sampled_spec(record, params)
    rep = InferReport()
    preds = infer_sampled(
        record.model,
        record.graph,
        features=record.features,
        nodes=nodes,
        batch_size=batch_size,
        fanouts=fanouts,
        seed=seed,
        report=rep,
    )
    cost = rep.messages * record.model.num_layers
    return [int(p) for p in preds], max(1, cost)


def _run_predict(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    if _predict_mode(record, params) == "sampled":
        return _run_predict_sampled(record, params)
    predicted, cost = _gnn_predictions(record)
    return _slice_nodes(predicted, params, record.graph.num_vertices), cost


def _run_predict_batch(
    record: GraphRecord, params_list: List[Dict], executor
) -> Tuple[List[Any], int]:
    """One full-graph forward serves every full-mode request in the
    batch; sampled-mode requests each pay their own (fanout-bounded)
    sampled inference."""
    results: List[Any] = [None] * len(params_list)
    cost = 0
    full_idx = [
        i for i, p in enumerate(params_list)
        if _predict_mode(record, p) == "full"
    ]
    if full_idx:
        predicted, full_cost = _gnn_predictions(record)
        cost += full_cost
        n = record.graph.num_vertices
        for i in full_idx:
            results[i] = _slice_nodes(predicted, params_list[i], n)
    for i, params in enumerate(params_list):
        if results[i] is None:
            result, sampled_cost = _run_predict_sampled(record, params)
            results[i] = result
            cost += sampled_cost
    return results, cost


def _predict_footprint(record: GraphRecord, params: Dict):
    """Exact partition footprint of a sampled-predict request.

    Re-deriving the deterministic block stream (same seed, no forward
    pass) yields exactly the nodes the answer read; the partitions
    owning them are the complete dependency set.  Full-mode requests
    read everything — ``None``.
    """
    if _predict_mode(record, params) != "sampled":
        return None
    assignment = getattr(record.graph, "assignment", None)
    if assignment is None:
        return None
    from ..gnn.dataloader import sampled_inference_blocks

    nodes, fanouts, batch_size, seed = _sampled_spec(record, params)
    assignment = np.asarray(assignment)
    parts: set = set()
    for block in sampled_inference_blocks(
        record.graph, nodes, fanouts, seed, batch_size
    ):
        parts.update(int(p) for p in np.unique(assignment[block.node_ids]))
    return parts


def _run_neighbors(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    """Partition-local 1-hop retrieval: one vertex's adjacency list.

    The cheapest served computation, and the one whose result provably
    depends on a single partition — the shard owning the vertex holds
    its adjacency, and any mutation touching that list dirties the
    owner partition by construction.  The footprint below is therefore
    exact, which is what lets the partition-scoped cache keep these
    entries hot across an unrelated update trickle.
    """
    n = max(record.graph.num_vertices, 1)
    v = int(params.get("node", 0)) % n
    nbrs = record.graph.neighbors(v)
    return [int(w) for w in nbrs], max(1, int(nbrs.size))


def _neighbors_footprint(record: GraphRecord, params: Dict):
    n = max(record.graph.num_vertices, 1)
    v = int(params.get("node", 0)) % n
    part_of = getattr(record.graph, "part_of", None)
    return None if part_of is None else {part_of(v)}


def _run_subgraph_query(record: GraphRecord, params: Dict, executor) -> Tuple[Any, int]:
    """TLAG interactive subgraph query (the G-thinkerQ backend).

    The same compile path :class:`repro.tlag.query.QueryServer` uses:
    plan the matching order for this graph's statistics, then count with
    symmetry breaking; the cost is the candidate scans the matcher did —
    the ops unit QueryServer charges its simulated workers.
    """
    pattern = named_pattern(str(params.get("pattern", "triangle")))
    order = record.planner().plan(pattern).order
    stats = MatchStats()
    count = count_matches(
        record.graph, pattern, order=order, stats=stats, executor=executor
    )
    return count, max(stats.candidates_scanned, 1)


def builtin_endpoints() -> EndpointRegistry:
    """The default registry: at least one endpoint per engine family."""
    registry = EndpointRegistry()
    registry.register(Endpoint(
        "tlav.pagerank", "tlav", _run_pagerank,
        description="PageRank scores (params: iterations, damping)",
    ))
    registry.register(Endpoint(
        "tlav.bfs", "tlav", _run_bfs,
        description="BFS levels from a source vertex (params: source)",
    ))
    registry.register(Endpoint(
        "tlav.wcc", "tlav", _run_wcc,
        description="weakly connected component labels",
    ))
    registry.register(Endpoint(
        "matching.count", "matching", _run_count,
        description="embedding count of a named pattern (params: pattern)",
    ))
    registry.register(Endpoint(
        "matching.cliques", "matching", _run_cliques,
        description="k-clique count (params: k)",
    ))
    registry.register(Endpoint(
        "gnn.predict", "gnn", _run_predict, run_batch=_run_predict_batch,
        description="node-classification inference (params: nodes, mode, "
                    "fanouts); stored/large graphs answer via sampled "
                    "inference with a partition-exact cache footprint",
        footprint=_predict_footprint,
    ))
    registry.register(Endpoint(
        "tlag.subgraph_query", "tlag", _run_subgraph_query,
        description="planned interactive subgraph query (params: pattern)",
    ))
    registry.register(Endpoint(
        "graph.neighbors", "graph", _run_neighbors,
        description="1-hop adjacency of a vertex (params: node); "
                    "partition-exact cache footprint",
        footprint=_neighbors_footprint,
    ))
    return registry
