"""Execution of the differential check suites.

:func:`run_suite` draws seeded workloads for every registered check,
runs them, optionally shrinks failures to minimal reproducers, and
returns a :class:`CheckReport` that renders to the ``repro check``
CLI table or ``--json`` payload.  :func:`run_corpus` replays the
pinned reproducers committed under ``tests/check/corpus/`` — every bug
the harness ever flushed out stays a permanent regression test.

All outcomes are also published through :mod:`repro.obs` as ``check.*``
metrics (``check.cases`` / ``check.failures`` counters tagged by
subsystem, a ``check.ok`` gauge, and one ``check.case`` span per
executed case), so CI dashboards see the gate the same way they see
every other engine.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..obs import MetricsRegistry, StatsViewMixin, Tracer, json_safe
from .registry import CheckRegistry, Check, REGISTRY, case_rng, load_all
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "CaseResult",
    "CheckReport",
    "run_case",
    "run_suite",
    "run_corpus",
    "save_case",
    "load_case",
    "default_corpus_dir",
]


@dataclass
class CaseResult:
    """One executed (check, params) case."""

    check: str
    subsystem: str
    kind: str
    relation: str
    params: Dict
    violations: List[str] = field(default_factory=list)
    error: Optional[str] = None
    seconds: float = 0.0
    case: int = 0
    source: str = "generated"  # or "corpus"
    shrunk: Optional[Dict] = None
    shrink_evals: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "check": self.check,
            "subsystem": self.subsystem,
            "kind": self.kind,
            "relation": self.relation,
            "params": self.params,
            "ok": self.ok,
            "violations": self.violations,
            "error": self.error,
            "seconds": round(self.seconds, 4),
            "case": self.case,
            "source": self.source,
        }
        if self.shrunk is not None:
            out["shrunk"] = self.shrunk
            out["shrink_evals"] = self.shrink_evals
        return out


@dataclass
class CheckReport(StatsViewMixin):
    """Aggregated outcome of a suite or corpus run."""

    suite: str
    seed: int
    results: List[CaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def cases(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> int:
        return sum(not r.ok for r in self.results)

    @property
    def pairs_run(self) -> int:
        return len({r.check for r in self.results if r.kind == "pair"})

    @property
    def invariants_run(self) -> int:
        return len({r.check for r in self.results if r.kind == "invariant"})

    def subsystems(self) -> List[str]:
        return sorted({r.subsystem for r in self.results})

    def failing(self) -> List[CaseResult]:
        return [r for r in self.results if not r.ok]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "seed": self.seed,
            "ok": self.ok,
            "cases": self.cases,
            "failures": self.failures,
            "pairs_run": self.pairs_run,
            "invariants_run": self.invariants_run,
            "subsystems": self.subsystems(),
            "results": [r.as_dict() for r in self.results],
        }

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Fold another report in (suites joined by '+')."""
        if other.suite not in self.suite.split("+"):
            self.suite = f"{self.suite}+{other.suite}"
        self.results.extend(other.results)
        return self


def run_case(
    check: Check,
    params: Dict,
    case: int = 0,
    source: str = "generated",
    obs: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> CaseResult:
    """Execute one check on pinned params; exceptions become failures."""
    result = CaseResult(
        check=check.name, subsystem=check.subsystem, kind=check.kind,
        relation=check.relation, params=dict(params), case=case, source=source,
    )
    span = (
        tracer.span("check.case", check=check.name, case=case)
        if tracer is not None else None
    )
    start = time.perf_counter()
    try:
        result.violations = list(check.run(dict(params)))
    except Exception as exc:
        result.error = f"{type(exc).__name__}: {exc}"
    result.seconds = time.perf_counter() - start
    if span is not None:
        span.set("ok", result.ok)
        span.__exit__(None, None, None)
    if obs is not None:
        obs.counter("check.cases", "differential cases executed").inc(
            tag=check.subsystem
        )
        if not result.ok:
            obs.counter("check.failures", "differential cases failed").inc(
                tag=check.subsystem
            )
    return result


def run_suite(
    suite: str = "full",
    seed: int = 0,
    cases: int = 1,
    shrink_failures: bool = False,
    names: Optional[Sequence[str]] = None,
    subsystems: Optional[Sequence[str]] = None,
    registry: Optional[CheckRegistry] = None,
    obs: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    max_shrink_evals: int = 120,
) -> CheckReport:
    """Run every selected check on ``cases`` seeded workloads each."""
    registry = registry if registry is not None else load_all()
    report = CheckReport(suite=suite, seed=seed)
    for check in registry.select(
        suite=None if names else suite, names=names, subsystems=subsystems
    ):
        for case in range(cases):
            params = check.gen(case_rng(check.name, seed, case))
            result = run_case(
                check, params, case=case, obs=obs, tracer=tracer
            )
            if not result.ok and shrink_failures and check.floors:
                shrunk: ShrinkResult = shrink_case(
                    check, params, max_evals=max_shrink_evals
                )
                result.shrunk = shrunk.params
                result.shrink_evals = shrunk.evals
            report.results.append(result)
    _publish(report, obs)
    return report


def _publish(report: CheckReport, obs: Optional[MetricsRegistry]) -> None:
    if obs is None:
        return
    obs.gauge("check.ok", "1 when the last check run passed").set(
        1.0 if report.ok else 0.0
    )
    obs.gauge("check.pairs_run", "distinct oracle pairs executed").set(
        float(report.pairs_run)
    )
    obs.gauge("check.invariants_run", "distinct invariants executed").set(
        float(report.invariants_run)
    )


# ----------------------------------------------------------------------
# Corpus: pinned minimal reproducers
# ----------------------------------------------------------------------


def default_corpus_dir() -> str:
    """``tests/check/corpus`` relative to a repo checkout, if present."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "check", "corpus")


def save_case(
    path: str, check: str, params: Dict, note: str = ""
) -> str:
    """Write one corpus reproducer as JSON; returns the path."""
    payload = {"check": check, "params": json_safe(params), "note": note}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_case(path: str) -> Dict:
    with open(path) as handle:
        payload = json.load(handle)
    for key in ("check", "params"):
        if key not in payload:
            raise ValueError(f"corpus file {path} missing {key!r}")
    return payload


def run_corpus(
    corpus_dir: Optional[str] = None,
    registry: Optional[CheckRegistry] = None,
    obs: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
) -> CheckReport:
    """Replay every pinned reproducer in ``corpus_dir``."""
    registry = registry if registry is not None else load_all()
    corpus_dir = corpus_dir or default_corpus_dir()
    report = CheckReport(suite="corpus", seed=-1)
    if not os.path.isdir(corpus_dir):
        return report
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        payload = load_case(os.path.join(corpus_dir, name))
        check = registry.get(payload["check"])
        result = run_case(
            check, payload["params"], source=f"corpus:{name}",
            obs=obs, tracer=tracer,
        )
        report.results.append(result)
    _publish(report, obs)
    return report
