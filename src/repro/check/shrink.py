"""Greedy shrinking of failing differential cases.

When an oracle pair fails on a randomly generated workload, the raw
parameters are usually far larger than needed to show the bug.  The
shrinker reduces every *shrinkable* parameter (those the check declared
a floor for) toward its floor, keeping any reduction under which the
check still fails, until no single-parameter reduction fails — a local
minimum, which in practice is a minimal reproducer small enough to
read, commit to ``tests/check/corpus/``, and debug by hand.

The strategy is delta-debugging flavoured but deliberately simple:

1. for each shrinkable parameter (alphabetical, for determinism), try
   in order: the floor itself, the midpoint toward the floor, and one
   step down;
2. the first candidate that still fails is accepted and the scan
   restarts;
3. stop at a fixpoint or after ``max_evals`` check executions.

Seeds are intentionally *not* shrunk — they select the workload rather
than size it, and replaying a reproducer requires them pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .registry import Check

__all__ = ["ShrinkResult", "shrink_case"]


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing case."""

    params: Dict
    violations: List[str]
    evals: int
    steps: int
    trail: List[Dict] = field(default_factory=list)


def _candidates(value, floor) -> List:
    """Smaller values to try for one parameter, most aggressive first."""
    out: List = []
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return out
    if isinstance(value, int):
        floor = int(floor)
        if value <= floor:
            return out
        mid = (value + floor) // 2
        for cand in (floor, mid, value - 1):
            if floor <= cand < value and cand not in out:
                out.append(cand)
    else:
        floor = float(floor)
        if value <= floor:
            return out
        for cand in (floor, (value + floor) / 2.0):
            if floor <= cand < value and cand not in out:
                out.append(cand)
    return out


def shrink_case(
    check: Check,
    params: Dict,
    max_evals: int = 200,
    still_fails: Optional[Callable[[Dict], Tuple[bool, List[str]]]] = None,
) -> ShrinkResult:
    """Greedily minimize ``params`` while ``check`` keeps failing.

    ``still_fails`` may override the failure predicate (the runner
    passes one that reuses its exception handling); the default treats
    a non-empty violation list *or* any exception as failing.
    """

    def default_predicate(p: Dict) -> Tuple[bool, List[str]]:
        try:
            violations = check.run(dict(p))
        except Exception as exc:  # a crash is a failure too
            return True, [f"exception: {type(exc).__name__}: {exc}"]
        return bool(violations), list(violations)

    predicate = still_fails or default_predicate

    failing, last_violations = predicate(params)
    evals = 1
    if not failing:
        # Not actually failing (flaky caller?) — nothing to shrink.
        return ShrinkResult(dict(params), [], evals, steps=0)

    current = dict(params)
    trail: List[Dict] = []
    steps = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for name in sorted(check.floors):
            if name not in current:
                continue
            for cand in _candidates(current[name], check.floors[name]):
                if evals >= max_evals:
                    break
                trial = dict(current)
                trial[name] = cand
                fails, violations = predicate(trial)
                evals += 1
                if fails:
                    current = trial
                    last_violations = violations
                    trail.append({name: cand})
                    steps += 1
                    improved = True
                    break
            if improved:
                break
    return ShrinkResult(current, last_violations, evals, steps, trail)
