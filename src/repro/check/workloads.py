"""Randomized workloads for the differential suite.

Checks draw *parameter dicts* (JSON-serializable, so failing cases can
be committed to the corpus verbatim) and rebuild concrete graphs from
them through :func:`make_graph`.  Rebuild-from-params rather than
passing graph objects keeps every case replayable across processes and
shrinkable one scalar at a time.

``make_graph`` clamps structurally-dependent parameters (``m < n`` for
Barabási–Albert, even ``k < n`` for Watts–Strogatz) instead of raising,
so the shrinker can lower ``n`` through any combination without turning
a differential failure into a generator error.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

import numpy as np

from ..graph.csr import Graph
from ..graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    watts_strogatz,
)

__all__ = ["GRAPH_KINDS", "gen_graph_params", "make_graph"]

GRAPH_KINDS = ("er", "ba", "ws", "grid")

#: Shrink floors for the parameters gen_graph_params emits.
GRAPH_FLOORS = {"n": 4}


def gen_graph_params(
    rng: np.random.Generator,
    n_range: Tuple[int, int] = (8, 96),
    kinds: Sequence[str] = ("er", "ba", "ws"),
) -> Dict:
    """Draw one random graph configuration."""
    kind = str(kinds[int(rng.integers(len(kinds)))])
    n = int(rng.integers(n_range[0], n_range[1] + 1))
    params: Dict = {"kind": kind, "n": n, "graph_seed": int(rng.integers(1 << 20))}
    if kind == "er":
        params["p"] = round(float(rng.uniform(0.03, 0.25)), 4)
    elif kind == "ba":
        params["m"] = int(rng.integers(1, 4))
    elif kind == "ws":
        params["k"] = 2 * int(rng.integers(1, 4))
        params["p"] = round(float(rng.uniform(0.0, 0.3)), 4)
    return params


def make_graph(params: Dict) -> Graph:
    """Rebuild the graph a parameter dict describes (clamped, total)."""
    kind = params["kind"]
    n = max(int(params["n"]), 2)
    seed = int(params.get("graph_seed", 0))
    if kind == "er":
        return erdos_renyi(n, float(params.get("p", 0.1)), seed=seed)
    if kind == "ba":
        m = max(1, min(int(params.get("m", 2)), n - 1))
        return barabasi_albert(n, m, seed=seed)
    if kind == "ws":
        k = int(params.get("k", 2))
        k = max(2, min(k - (k % 2), n - 1 - ((n - 1) % 2 == 0 and 0 or 1)))
        # k must be even and < n:
        k = max(2, min(k - (k % 2), (n - 1) - ((n - 1) % 2)))
        if k >= n:
            return erdos_renyi(n, 0.3, seed=seed)
        return watts_strogatz(n, k, float(params.get("p", 0.1)), seed=seed)
    if kind == "grid":
        side = max(2, int(math.isqrt(n)))
        return grid_graph(side, side)
    raise ValueError(f"unknown graph kind {kind!r}")
