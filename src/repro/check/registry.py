"""Oracle registry for differential correctness checking.

The tutorial's central claim is that every engine family computes the
*same answers* by different means; this repository reproduces that with
redundant implementations (in-memory vs out-of-core vs vectorized vs
distributed TLAV, interpreted vs compiled matching, serial vs parallel
backends).  GraphD [55] and the quantization literature both define
correctness against the in-memory/exact reference — bit-identical where
the computation is deterministic, bounded-error where it is lossy.

This module is the *declaration* layer: every redundant-implementation
pair in the codebase registers itself here as a :class:`Check`, naming

* the **equivalence relation** it promises (``bit_identical``,
  ``permutation`` of an unordered result set, ``bounded_error`` for
  quantization/staleness, or ``invariant`` for single-implementation
  structural properties such as CSR well-formedness);
* a seeded **workload generator** drawing parameters from
  :mod:`repro.graph.generators`;
* **shrink floors** — the per-parameter minimums the greedy shrinker in
  :mod:`repro.check.shrink` may reduce a failing workload toward.

Checks live in per-subsystem ``checks`` modules
(``repro.tlav.checks``, ``repro.matching.checks``, ...) so each engine
family owns its own oracle declarations; :func:`load_all` imports them
all and returns the populated global :data:`REGISTRY`.
"""

from __future__ import annotations

import importlib
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BIT_IDENTICAL",
    "PERMUTATION",
    "BOUNDED_ERROR",
    "INVARIANT",
    "Check",
    "CheckRegistry",
    "REGISTRY",
    "pair",
    "invariant",
    "load_all",
    "case_rng",
]

# Equivalence relations an oracle pair may promise.
BIT_IDENTICAL = "bit_identical"
PERMUTATION = "permutation"
BOUNDED_ERROR = "bounded_error"
# Structural property of a single implementation (not a pair).
INVARIANT = "invariant"

_RELATIONS = (BIT_IDENTICAL, PERMUTATION, BOUNDED_ERROR, INVARIANT)

SUITES = ("quick", "full")

#: Modules that declare checks.  Importing them populates REGISTRY.
CHECK_MODULES = (
    "repro.graph.checks",
    "repro.graph.store.checks",
    "repro.tlav.checks",
    "repro.tlag.checks",
    "repro.matching.checks",
    "repro.gnn.checks",
    "repro.parallel.checks",
    "repro.resilience.checks",
    "repro.serve.checks",
)


@dataclass
class Check:
    """One registered differential check.

    ``gen(rng)`` draws a workload parameter dict; ``run(params)``
    executes both sides (or the invariant) and returns a list of
    violation messages — empty means the equivalence held.  Any
    exception raised by ``run`` is itself a violation (a crash on one
    side of a pair is the strongest kind of divergence).
    """

    name: str
    subsystem: str
    relation: str
    gen: Callable[[np.random.Generator], Dict]
    run: Callable[[Dict], List[str]]
    floors: Dict[str, float] = field(default_factory=dict)
    suites: Tuple[str, ...] = SUITES
    description: str = ""

    @property
    def kind(self) -> str:
        return "invariant" if self.relation == INVARIANT else "pair"

    def __post_init__(self) -> None:
        if self.relation not in _RELATIONS:
            raise ValueError(f"unknown relation {self.relation!r}")
        for suite in self.suites:
            if suite not in SUITES:
                raise ValueError(f"unknown suite {suite!r}")


class CheckRegistry:
    """Name-keyed collection of :class:`Check` declarations."""

    def __init__(self) -> None:
        self._checks: Dict[str, Check] = {}

    # -- registration ------------------------------------------------------

    def add(self, check: Check) -> Check:
        if check.name in self._checks:
            raise ValueError(f"duplicate check {check.name!r}")
        self._checks[check.name] = check
        return check

    def pair(
        self,
        name: str,
        subsystem: str,
        relation: str,
        gen: Callable[[np.random.Generator], Dict],
        floors: Optional[Dict[str, float]] = None,
        suites: Tuple[str, ...] = SUITES,
        description: str = "",
    ) -> Callable[[Callable[[Dict], List[str]]], Callable[[Dict], List[str]]]:
        """Decorator registering an oracle-pair ``run`` function."""
        if relation == INVARIANT:
            raise ValueError("use .invariant() for invariant checks")

        def deco(run: Callable[[Dict], List[str]]):
            self.add(Check(
                name=name, subsystem=subsystem, relation=relation, gen=gen,
                run=run, floors=dict(floors or {}), suites=suites,
                description=description or (run.__doc__ or "").strip(),
            ))
            return run

        return deco

    def invariant(
        self,
        name: str,
        subsystem: str,
        gen: Callable[[np.random.Generator], Dict],
        floors: Optional[Dict[str, float]] = None,
        suites: Tuple[str, ...] = SUITES,
        description: str = "",
    ) -> Callable[[Callable[[Dict], List[str]]], Callable[[Dict], List[str]]]:
        """Decorator registering a structural-invariant ``run`` function."""

        def deco(run: Callable[[Dict], List[str]]):
            self.add(Check(
                name=name, subsystem=subsystem, relation=INVARIANT, gen=gen,
                run=run, floors=dict(floors or {}), suites=suites,
                description=description or (run.__doc__ or "").strip(),
            ))
            return run

        return deco

    # -- lookup ------------------------------------------------------------

    def get(self, name: str) -> Check:
        try:
            return self._checks[name]
        except KeyError:
            raise KeyError(
                f"unknown check {name!r}; known: {sorted(self._checks)}"
            ) from None

    def select(
        self,
        suite: Optional[str] = None,
        names: Optional[Sequence[str]] = None,
        subsystems: Optional[Sequence[str]] = None,
    ) -> List[Check]:
        """Checks filtered by suite membership, name, and subsystem."""
        chosen = [self.get(n) for n in names] if names else list(self)
        if suite is not None:
            chosen = [c for c in chosen if suite in c.suites]
        if subsystems:
            chosen = [c for c in chosen if c.subsystem in subsystems]
        return chosen

    def pairs(self, suite: Optional[str] = None) -> List[Check]:
        return [c for c in self.select(suite) if c.kind == "pair"]

    def invariants(self, suite: Optional[str] = None) -> List[Check]:
        return [c for c in self.select(suite) if c.kind == "invariant"]

    def subsystems(self) -> List[str]:
        return sorted({c.subsystem for c in self})

    def __iter__(self) -> Iterator[Check]:
        return iter(sorted(self._checks.values(), key=lambda c: c.name))

    def __len__(self) -> int:
        return len(self._checks)

    def __contains__(self, name: str) -> bool:
        return name in self._checks


#: The process-wide registry every ``checks`` module populates.
REGISTRY = CheckRegistry()

pair = REGISTRY.pair
invariant = REGISTRY.invariant


def load_all() -> CheckRegistry:
    """Import every subsystem's ``checks`` module; returns REGISTRY."""
    for module in CHECK_MODULES:
        importlib.import_module(module)
    return REGISTRY


def case_rng(check_name: str, seed: int, case: int = 0) -> np.random.Generator:
    """Deterministic per-(check, seed, case) generator.

    Keyed on a stable hash of the check's *name* rather than its
    position in the registry, so adding or removing checks never
    perturbs the workloads other checks draw.
    """
    return np.random.default_rng(
        [np.uint32(zlib.crc32(check_name.encode())), np.uint32(seed), np.uint32(case)]
    )
