"""Differential correctness harness.

Every engine family in this repository exists at least twice — an
in-memory reference plus out-of-core, vectorized, distributed, parallel
or compiled re-implementations of the *same* computation.  This package
turns that redundancy into an enforced oracle relation:

* :mod:`repro.check.registry` — declarations: every redundant pair and
  structural invariant, with its equivalence relation (bit-identical,
  permutation, bounded-error) and shrink floors;
* :mod:`repro.check.invariants` — the shared comparators and the
  structural invariants (CSR well-formedness, partition-metric
  consistency, stats-merge equality);
* :mod:`repro.check.shrink` — greedy minimization of failing cases to
  committable reproducers;
* :mod:`repro.check.runner` — suite/corpus execution, reporting, and
  ``check.*`` observability.

Run it via ``python -m repro check --suite quick --seed 0`` (the CI
gate) or ``--suite full`` for every registered pair.
"""

from .invariants import (
    bounded_error,
    csr_well_formed,
    partition_consistent,
    same_bits,
    same_multiset,
    same_stats,
    same_values,
)
from .registry import (
    BIT_IDENTICAL,
    BOUNDED_ERROR,
    INVARIANT,
    PERMUTATION,
    REGISTRY,
    Check,
    CheckRegistry,
    case_rng,
    invariant,
    load_all,
    pair,
)
from .runner import (
    CaseResult,
    CheckReport,
    default_corpus_dir,
    load_case,
    run_case,
    run_corpus,
    run_suite,
    save_case,
)
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "BIT_IDENTICAL",
    "BOUNDED_ERROR",
    "INVARIANT",
    "PERMUTATION",
    "REGISTRY",
    "CaseResult",
    "Check",
    "CheckRegistry",
    "CheckReport",
    "ShrinkResult",
    "bounded_error",
    "case_rng",
    "csr_well_formed",
    "default_corpus_dir",
    "invariant",
    "load_all",
    "load_case",
    "pair",
    "partition_consistent",
    "run_case",
    "run_corpus",
    "run_suite",
    "same_bits",
    "same_multiset",
    "same_stats",
    "same_values",
    "save_case",
    "shrink_case",
]
