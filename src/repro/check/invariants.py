"""Comparators and structural invariants shared by the check suite.

Comparators return a list of violation messages (empty = equivalence
held), one per detected discrepancy, so a check can report several
independent mismatches from one workload.  The structural invariants
cover the properties the harness enforces on *every* generated
workload: CSR well-formedness, partition-metric consistency (the
edge-cut ↔ replication tie of the vertex-cut satellite), per-worker
stats merges, and checkpoint round-trips.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..graph.csr import Graph
from ..graph.partition import (
    Partition,
    balance,
    edge_cut_fraction,
    replication_factor,
)

__all__ = [
    "same_bits",
    "same_values",
    "same_multiset",
    "bounded_error",
    "same_stats",
    "csr_well_formed",
    "partition_consistent",
]


def _fmt(value: Any, limit: int = 80) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# ----------------------------------------------------------------------
# Comparators
# ----------------------------------------------------------------------


def same_bits(reference: Any, candidate: Any, label: str = "result") -> List[str]:
    """Bit-identical equality: exact values, and exact dtype for arrays."""
    ref_arr = isinstance(reference, np.ndarray)
    cand_arr = isinstance(candidate, np.ndarray)
    if ref_arr or cand_arr:
        if not (ref_arr and cand_arr):
            return [f"{label}: type mismatch {type(reference).__name__} "
                    f"vs {type(candidate).__name__}"]
        if reference.dtype != candidate.dtype:
            return [f"{label}: dtype {reference.dtype} vs {candidate.dtype}"]
        if reference.shape != candidate.shape:
            return [f"{label}: shape {reference.shape} vs {candidate.shape}"]
        if not np.array_equal(reference, candidate):
            bad = np.flatnonzero(
                np.asarray(reference).ravel() != np.asarray(candidate).ravel()
            )
            i = int(bad[0])
            return [f"{label}: {bad.size} differing entries; first at flat index "
                    f"{i}: {reference.ravel()[i]!r} vs {candidate.ravel()[i]!r}"]
        return []
    return same_values(reference, candidate, label)


def same_values(reference: Any, candidate: Any, label: str = "result") -> List[str]:
    """Plain ``==`` equality with a first-difference diagnostic."""
    if isinstance(reference, (list, tuple)) and isinstance(candidate, (list, tuple)):
        if len(reference) != len(candidate):
            return [f"{label}: length {len(reference)} vs {len(candidate)}"]
        for i, (a, b) in enumerate(zip(reference, candidate)):
            if a != b:
                return [f"{label}[{i}]: {_fmt(a)} vs {_fmt(b)}"]
        return []
    if reference != candidate:
        return [f"{label}: {_fmt(reference)} vs {_fmt(candidate)}"]
    return []


def same_multiset(
    reference: Sequence, candidate: Sequence, label: str = "result"
) -> List[str]:
    """Permutation equality: the same results in any order."""
    ref_sorted = sorted(reference)
    cand_sorted = sorted(candidate)
    if len(ref_sorted) != len(cand_sorted):
        return [f"{label}: {len(ref_sorted)} vs {len(cand_sorted)} items"]
    for i, (a, b) in enumerate(zip(ref_sorted, cand_sorted)):
        if a != b:
            return [f"{label}: multisets differ; first sorted mismatch at "
                    f"{i}: {_fmt(a)} vs {_fmt(b)}"]
    return []


def bounded_error(
    reference: Any,
    candidate: Any,
    atol: float,
    label: str = "result",
    rtol: float = 0.0,
) -> List[str]:
    """Bounded-error equality for lossy pairs (quantization, staleness)."""
    ref = np.asarray(reference, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64)
    if ref.shape != cand.shape:
        return [f"{label}: shape {ref.shape} vs {cand.shape}"]
    err = np.abs(ref - cand)
    bound = atol + rtol * np.abs(ref)
    bad = np.flatnonzero((err > bound).ravel())
    if bad.size:
        i = int(bad[0])
        return [f"{label}: {bad.size} entries exceed tolerance "
                f"(atol={atol}, rtol={rtol}); worst |err|="
                f"{float(err.max()):.3e} at flat index {i}"]
    return []


def same_stats(
    reference: Any, candidate: Any, label: str = "stats",
    ignore: Sequence[str] = (),
) -> List[str]:
    """StatsView equality via ``as_dict()`` (merged == serial checks)."""
    ref_d: Dict[str, Any] = reference.as_dict()
    cand_d: Dict[str, Any] = candidate.as_dict()
    out: List[str] = []
    for key in sorted(set(ref_d) | set(cand_d)):
        if key in ignore:
            continue
        a, b = ref_d.get(key), cand_d.get(key)
        if isinstance(a, float) or isinstance(b, float):
            if a is None or b is None or abs(a - b) > 1e-12:
                out.append(f"{label}.{key}: {a!r} vs {b!r}")
        elif a != b:
            out.append(f"{label}.{key}: {a!r} vs {b!r}")
    return out


# ----------------------------------------------------------------------
# Structural invariants
# ----------------------------------------------------------------------


def csr_well_formed(graph: Graph, label: str = "graph") -> List[str]:
    """The CSR contract every kernel in the repo leans on.

    ``indptr`` monotone from 0 to ``len(indices)``; neighbor ids in
    range and sorted per row; degrees consistent; undirected graphs
    symmetric with an even directed-slot count.
    """
    out: List[str] = []
    indptr, indices = graph.indptr, graph.indices
    n = graph.num_vertices
    if len(indptr) != n + 1:
        return [f"{label}: indptr has {len(indptr)} entries for {n} vertices"]
    if indptr[0] != 0:
        out.append(f"{label}: indptr[0] == {indptr[0]}, expected 0")
    if np.any(np.diff(indptr) < 0):
        out.append(f"{label}: indptr not monotone")
    if indptr[-1] != len(indices):
        out.append(f"{label}: indptr[-1] == {indptr[-1]} != "
                   f"len(indices) == {len(indices)}")
    if indices.size and (indices.min() < 0 or indices.max() >= n):
        out.append(f"{label}: neighbor id out of range "
                   f"[{indices.min()}, {indices.max()}] for n={n}")
    if out:
        return out  # row checks below assume a sane indptr
    for v in range(n):
        row = indices[indptr[v]: indptr[v + 1]]
        if row.size > 1 and np.any(np.diff(row) < 0):
            out.append(f"{label}: neighbors of {v} not sorted")
            break
    degrees = graph.degrees()
    if not np.array_equal(degrees, np.diff(indptr)):
        out.append(f"{label}: degrees() disagrees with indptr diffs")
    if not graph.directed:
        if len(indices) % 2:
            out.append(f"{label}: undirected graph with odd slot count")
        for v in range(n):
            for w in indices[indptr[v]: indptr[v + 1]]:
                if not graph.has_edge(int(w), v):
                    out.append(f"{label}: edge ({v}, {int(w)}) not symmetric")
                    return out
    return out


def partition_consistent(
    graph: Graph, partition: Partition, label: str = "partition"
) -> List[str]:
    """Consistency of a partition and its quality metrics.

    Beyond coverage and balance this ties the two communication metrics
    together, which is exactly what the vertex-cut bug violated:

    * **vertex-cut** partitions pay communication through *replication*,
      never through cut edges — every edge lives whole on its assigned
      worker, which by construction holds replicas of both endpoints, so
      ``edge_cut_fraction`` must be 0 and ``replication_factor >= 1``;
    * **vertex** partitions pay through the halo: each cut edge adds at
      most one replica to each endpoint, so
      ``(replication_factor - 1) * |V| <= 2 * cut_edges``.
    """
    out: List[str] = []
    n = graph.num_vertices
    if len(partition.assignment) != n:
        return [f"{label}: assignment covers {len(partition.assignment)} "
                f"of {n} vertices"]
    sizes = partition.sizes()
    if int(sizes.sum()) != n:
        out.append(f"{label}: part sizes sum to {int(sizes.sum())} != {n}")
    if n and balance(partition) < 1.0 - 1e-9:
        out.append(f"{label}: balance {balance(partition):.3f} < 1")
    cut = edge_cut_fraction(graph, partition)
    rf = replication_factor(graph, partition)
    if not 0.0 <= cut <= 1.0:
        out.append(f"{label}: edge_cut_fraction {cut:.3f} outside [0, 1]")
    if partition.edge_assignment is not None:
        if len(partition.edge_assignment) != graph.num_edges:
            out.append(f"{label}: edge_assignment covers "
                       f"{len(partition.edge_assignment)} of "
                       f"{graph.num_edges} edges")
        for (u, v), k in partition.edge_assignment.items():
            if not 0 <= k < partition.num_parts:
                out.append(f"{label}: edge ({u}, {v}) assigned to "
                           f"out-of-range worker {k}")
                break
        if graph.num_edges and cut != 0.0:
            out.append(
                f"{label}: vertex-cut edge_cut_fraction {cut:.3f} != 0 — "
                f"every edge is local to its assigned worker; the cut "
                f"cost is already paid by replication_factor {rf:.3f}"
            )
        if n and rf < 1.0 - 1e-9:
            out.append(f"{label}: replication_factor {rf:.3f} < 1")
    elif graph.num_edges:
        cut_edges = cut * graph.num_edges
        if (rf - 1.0) * n > 2.0 * cut_edges + 1e-6:
            out.append(
                f"{label}: replication_factor {rf:.3f} implies more halo "
                f"than {cut_edges:.0f} cut edges can induce"
            )
    return out
