"""Simulated cluster: workers, links, and traffic accounting.

Stands in for the multi-machine testbeds of the surveyed systems (see
DESIGN.md, *Substitutions*).  The tutorial's distributed claims are about
communication volume, balance, and overlap — quantities this simulator
measures exactly.
"""

from .comm import CommStats, Message, Network
from .links import LinkTopology, ethernet_topology, nvlink_topology

__all__ = [
    "CommStats",
    "Message",
    "Network",
    "LinkTopology",
    "ethernet_topology",
    "nvlink_topology",
]
