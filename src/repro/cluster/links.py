"""Heterogeneous link topologies and transfer-time modeling.

DGCL [6] generates communication plans from the measured link speeds of
the cluster: NVLink between GPUs on one host is an order of magnitude
faster than cross-host Ethernet/InfiniBand.  This module models a
cluster as a bandwidth matrix and prices a traffic matrix against it —
the substrate for the DGCL-style planner in
:mod:`repro.gnn.comm_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..obs import MetricsRegistry

__all__ = [
    "LinkTopology",
    "ethernet_topology",
    "nvlink_topology",
]


@dataclass
class LinkTopology:
    """A cluster of devices connected by links of known bandwidth.

    ``bandwidth[i, j]`` is GB/s from device ``i`` to device ``j``
    (``inf`` on the diagonal: local copies are free in this model).
    ``latency[i, j]`` is the per-message setup cost in microseconds.
    When ``obs`` is set, every priced transfer is recorded into the
    ``cluster.transfer_seconds`` histogram of that registry.
    """

    bandwidth: np.ndarray
    latency: Optional[np.ndarray] = None
    name: str = ""
    obs: Optional[MetricsRegistry] = None

    def __post_init__(self) -> None:
        self.bandwidth = np.asarray(self.bandwidth, dtype=np.float64)
        if self.bandwidth.ndim != 2 or self.bandwidth.shape[0] != self.bandwidth.shape[1]:
            raise ValueError("bandwidth must be a square matrix")
        if self.latency is None:
            self.latency = np.zeros_like(self.bandwidth)
        else:
            self.latency = np.asarray(self.latency, dtype=np.float64)

    @property
    def num_devices(self) -> int:
        return self.bandwidth.shape[0]

    def transfer_time(self, src: int, dst: int, nbytes: int) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dst`` directly."""
        if src == dst:
            return 0.0
        bw = self.bandwidth[src, dst]
        if bw <= 0:
            return float("inf")
        seconds = float(self.latency[src, dst] * 1e-6 + nbytes / (bw * 1e9))
        if self.obs is not None:
            self.obs.histogram(
                "cluster.transfer_seconds", "priced link transfer times"
            ).observe(seconds, topology=self.name or "unnamed")
        return seconds

    def price_traffic(self, link_bytes: np.ndarray) -> float:
        """Total serialized transfer time of a traffic matrix (seconds).

        A pessimistic (fully serialized) model; relative comparisons
        between plans are what the benches report.
        """
        total = 0.0
        n = self.num_devices
        for i in range(n):
            for j in range(n):
                if i != j and link_bytes[i, j] > 0:
                    total += self.transfer_time(i, j, int(link_bytes[i, j]))
        return total

    def bottleneck_time(self, link_bytes: np.ndarray) -> float:
        """Makespan under perfect per-link parallelism: the slowest link."""
        worst = 0.0
        n = self.num_devices
        for i in range(n):
            for j in range(n):
                if i != j and link_bytes[i, j] > 0:
                    worst = max(worst, self.transfer_time(i, j, int(link_bytes[i, j])))
        return worst


def ethernet_topology(num_devices: int, gbps: float = 10.0, latency_us: float = 50.0) -> LinkTopology:
    """Flat commodity-Ethernet cluster: every pair sees the same bandwidth."""
    bw = np.full((num_devices, num_devices), gbps / 8.0)  # GB/s from Gb/s
    np.fill_diagonal(bw, np.inf)
    lat = np.full((num_devices, num_devices), latency_us)
    np.fill_diagonal(lat, 0.0)
    return LinkTopology(bw, lat, name=f"ethernet-{gbps:g}Gbps")


def nvlink_topology(
    num_hosts: int,
    gpus_per_host: int,
    nvlink_gbs: float = 300.0,
    ethernet_gbps: float = 10.0,
    latency_us: float = 50.0,
    nvlink_latency_us: float = 2.0,
) -> LinkTopology:
    """Hosts with NVLink-connected GPUs, Ethernet between hosts.

    Device ``h * gpus_per_host + g`` is GPU ``g`` of host ``h``.  This is
    the heterogeneous regime DGCL's plans exploit: intra-host NVLink is
    ~two orders of magnitude faster than the cross-host network.
    """
    n = num_hosts * gpus_per_host
    eth = ethernet_gbps / 8.0
    bw = np.full((n, n), eth)
    lat = np.full((n, n), latency_us)
    for h in range(num_hosts):
        lo, hi = h * gpus_per_host, (h + 1) * gpus_per_host
        bw[lo:hi, lo:hi] = nvlink_gbs
        lat[lo:hi, lo:hi] = nvlink_latency_us
    np.fill_diagonal(bw, np.inf)
    np.fill_diagonal(lat, 0.0)
    return LinkTopology(bw, lat, name=f"nvlink-{num_hosts}x{gpus_per_host}")


def host_of(device: int, gpus_per_host: int) -> int:
    """Host index of a device in an NVLink topology."""
    return device // gpus_per_host
