"""Message transport with traffic accounting.

Every distributed engine in this library (the Pregel-like TLAV engine,
the TLAG task engine's work stealing, the distributed GNN trainers)
exchanges data through a :class:`Network`.  The network does not move
real packets — workers are simulated in-process — but it faithfully
accounts *what a real deployment would have sent*: message counts, bytes,
and the per-link matrix that DGCL-style communication planning optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["Message", "CommStats", "Network"]


@dataclass
class Message:
    """A unit of communication between two workers."""

    src: int
    dst: int
    payload: Any
    nbytes: int = 0
    tag: str = ""


@dataclass
class CommStats:
    """Accumulated traffic counters.

    ``local`` counts messages whose source and destination worker are the
    same (these are free in a real deployment); ``remote`` counts
    cross-worker traffic — the quantity the surveyed systems fight to
    reduce.
    """

    num_workers: int
    messages_local: int = 0
    messages_remote: int = 0
    bytes_local: int = 0
    bytes_remote: int = 0
    link_bytes: Optional[np.ndarray] = None
    by_tag: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.link_bytes is None:
            self.link_bytes = np.zeros(
                (self.num_workers, self.num_workers), dtype=np.int64
            )

    def record(self, msg: Message) -> None:
        if msg.src == msg.dst:
            self.messages_local += 1
            self.bytes_local += msg.nbytes
        else:
            self.messages_remote += 1
            self.bytes_remote += msg.nbytes
            self.link_bytes[msg.src, msg.dst] += msg.nbytes
        if msg.tag:
            self.by_tag[msg.tag] = self.by_tag.get(msg.tag, 0) + msg.nbytes

    @property
    def total_messages(self) -> int:
        return self.messages_local + self.messages_remote

    @property
    def total_bytes(self) -> int:
        return self.bytes_local + self.bytes_remote

    def reset(self) -> None:
        self.messages_local = self.messages_remote = 0
        self.bytes_local = self.bytes_remote = 0
        self.link_bytes[:] = 0
        self.by_tag.clear()


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    numpy arrays report their true buffer size; python scalars count as
    8 bytes; containers sum their elements.  The estimate is deliberately
    simple — benches compare *relative* traffic between techniques.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, bool) or payload is None:
        return 1
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in payload)
    if hasattr(payload, "nbytes"):
        return int(payload.nbytes)
    return 16  # opaque object header


class Network:
    """In-process mailbox network between ``num_workers`` workers.

    ``send`` enqueues into the destination's mailbox for the *next*
    delivery round; ``deliver`` swaps the buffers, which gives the BSP
    semantics the TLAV engine needs.  Engines that want immediate
    delivery (the task engine's work stealing) use ``send_now``.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.stats = CommStats(num_workers)
        self._inboxes: List[List[Message]] = [[] for _ in range(num_workers)]
        self._pending: List[List[Message]] = [[] for _ in range(num_workers)]

    def send(self, src: int, dst: int, payload: Any, tag: str = "", nbytes: Optional[int] = None) -> None:
        """Enqueue a message for delivery at the next :meth:`deliver`."""
        msg = Message(src, dst, payload, nbytes if nbytes is not None else payload_nbytes(payload), tag)
        self.stats.record(msg)
        self._pending[dst].append(msg)

    def send_now(self, src: int, dst: int, payload: Any, tag: str = "", nbytes: Optional[int] = None) -> None:
        """Deliver immediately (asynchronous-engine semantics)."""
        msg = Message(src, dst, payload, nbytes if nbytes is not None else payload_nbytes(payload), tag)
        self.stats.record(msg)
        self._inboxes[dst].append(msg)

    def deliver(self) -> int:
        """Flush pending messages into inboxes; returns how many moved."""
        moved = 0
        for dst in range(self.num_workers):
            if self._pending[dst]:
                self._inboxes[dst].extend(self._pending[dst])
                moved += len(self._pending[dst])
                self._pending[dst] = []
        return moved

    def receive(self, worker: int) -> List[Message]:
        """Drain and return worker's inbox."""
        msgs, self._inboxes[worker] = self._inboxes[worker], []
        return msgs

    def has_pending(self) -> bool:
        return any(self._pending) or any(self._inboxes)
