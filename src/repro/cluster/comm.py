"""Message transport with traffic accounting.

Every distributed engine in this library (the Pregel-like TLAV engine,
the TLAG task engine's work stealing, the distributed GNN trainers)
exchanges data through a :class:`Network`.  The network does not move
real packets — workers are simulated in-process — but it faithfully
accounts *what a real deployment would have sent*: message counts, bytes,
and the per-link matrix that DGCL-style communication planning optimizes.

Accounting lives in a :class:`~repro.obs.MetricsRegistry`:
:class:`CommStats` is a *view* over the registry's ``cluster.*``
counters, so its legacy attributes (``bytes_remote``, ``by_tag``, …)
keep working while the same numbers appear in any shared registry
snapshot.  Pass ``registry=`` to :class:`Network` to aggregate several
networks (or a network plus an engine) into one observability surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from ..obs import MetricsRegistry, StatsViewMixin

__all__ = ["Message", "CommStats", "Network"]


@dataclass
class Message:
    """A unit of communication between two workers."""

    src: int
    dst: int
    payload: Any
    nbytes: int = 0
    tag: str = ""


class CommStats(StatsViewMixin):
    """Traffic counters, as a view over a metrics registry.

    ``local`` counts messages whose source and destination worker are the
    same (these are free in a real deployment); ``remote`` counts
    cross-worker traffic — the quantity the surveyed systems fight to
    reduce.  The per-link byte matrix stays a dense ndarray (planners
    consume it wholesale); everything scalar lives in the registry under
    ``cluster.messages`` / ``cluster.bytes`` / ``cluster.bytes_by_tag``.
    """

    def __init__(
        self, num_workers: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.num_workers = num_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self._messages = self.registry.counter(
            "cluster.messages", "messages sent, by locality"
        )
        self._bytes = self.registry.counter(
            "cluster.bytes", "payload bytes sent, by locality"
        )
        self._tag_bytes = self.registry.counter(
            "cluster.bytes_by_tag", "payload bytes sent, by message tag"
        )
        self.link_bytes = np.zeros((num_workers, num_workers), dtype=np.int64)

    def record(self, msg: Message) -> None:
        if msg.src == msg.dst:
            self._messages.inc(1, locality="local")
            self._bytes.inc(msg.nbytes, locality="local")
        else:
            self._messages.inc(1, locality="remote")
            self._bytes.inc(msg.nbytes, locality="remote")
            self.link_bytes[msg.src, msg.dst] += msg.nbytes
        if msg.tag:
            self._tag_bytes.inc(msg.nbytes, tag=msg.tag)

    # -- legacy attribute surface (now registry reads) ---------------------

    @property
    def messages_local(self) -> int:
        return int(self._messages.value(locality="local"))

    @property
    def messages_remote(self) -> int:
        return int(self._messages.value(locality="remote"))

    @property
    def bytes_local(self) -> int:
        return int(self._bytes.value(locality="local"))

    @property
    def bytes_remote(self) -> int:
        return int(self._bytes.value(locality="remote"))

    @property
    def by_tag(self) -> Dict[str, int]:
        return {
            key.split("tag=", 1)[1]: int(v)
            for key, v in self._tag_bytes.series().items()
        }

    @property
    def total_messages(self) -> int:
        return self.messages_local + self.messages_remote

    @property
    def total_bytes(self) -> int:
        return self.bytes_local + self.bytes_remote

    def reset(self) -> None:
        self._messages.reset()
        self._bytes.reset()
        self._tag_bytes.reset()
        self.link_bytes[:] = 0

    # -- StatsView ----------------------------------------------------------

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "num_workers": self.num_workers,
            "messages_local": self.messages_local,
            "messages_remote": self.messages_remote,
            "bytes_local": self.bytes_local,
            "bytes_remote": self.bytes_remote,
            "by_tag": self.by_tag,
            "link_bytes": self.link_bytes,
        }

    def merge(self, other: "CommStats") -> "CommStats":
        """Fold another network's traffic into this view (in place)."""
        self._messages.merge(other._messages)
        self._bytes.merge(other._bytes)
        self._tag_bytes.merge(other._tag_bytes)
        n = max(self.num_workers, other.num_workers)
        if n > self.num_workers:
            grown = np.zeros((n, n), dtype=np.int64)
            grown[: self.num_workers, : self.num_workers] = self.link_bytes
            self.link_bytes = grown
            self.num_workers = n
        m = other.num_workers
        self.link_bytes[:m, :m] += other.link_bytes
        return self


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    numpy arrays report their true buffer size; python scalars count as
    8 bytes; containers sum their elements.  The estimate is deliberately
    simple — benches compare *relative* traffic between techniques.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, bool) or payload is None:
        return 1
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in payload)
    if hasattr(payload, "nbytes"):
        return int(payload.nbytes)
    return 16  # opaque object header


class Network:
    """In-process mailbox network between ``num_workers`` workers.

    ``send`` enqueues into the destination's mailbox for the *next*
    delivery round; ``deliver`` swaps the buffers, which gives the BSP
    semantics the TLAV engine needs.  Engines that want immediate
    delivery (the task engine's work stealing) use ``send_now``.

    ``registry`` lets a caller aggregate this network's traffic
    counters into a shared :class:`~repro.obs.MetricsRegistry`.
    """

    def __init__(
        self, num_workers: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.stats = CommStats(num_workers, registry=registry)
        self._inboxes: List[List[Message]] = [[] for _ in range(num_workers)]
        self._pending: List[List[Message]] = [[] for _ in range(num_workers)]

    @property
    def registry(self) -> MetricsRegistry:
        return self.stats.registry

    def send(self, src: int, dst: int, payload: Any, tag: str = "", nbytes: Optional[int] = None) -> None:
        """Enqueue a message for delivery at the next :meth:`deliver`."""
        msg = Message(src, dst, payload, nbytes if nbytes is not None else payload_nbytes(payload), tag)
        self.stats.record(msg)
        self._pending[dst].append(msg)

    def send_now(self, src: int, dst: int, payload: Any, tag: str = "", nbytes: Optional[int] = None) -> None:
        """Deliver immediately (asynchronous-engine semantics)."""
        msg = Message(src, dst, payload, nbytes if nbytes is not None else payload_nbytes(payload), tag)
        self.stats.record(msg)
        self._inboxes[dst].append(msg)

    def deliver(self) -> int:
        """Flush pending messages into inboxes; returns how many moved."""
        moved = 0
        for dst in range(self.num_workers):
            if self._pending[dst]:
                self._inboxes[dst].extend(self._pending[dst])
                moved += len(self._pending[dst])
                self._pending[dst] = []
        return moved

    def receive(self, worker: int) -> List[Message]:
        """Drain and return worker's inbox."""
        msgs, self._inboxes[worker] = self._inboxes[worker], []
        return msgs

    def has_pending(self) -> bool:
        return any(self._pending) or any(self._inboxes)
