"""Message transport with traffic accounting.

Every distributed engine in this library (the Pregel-like TLAV engine,
the TLAG task engine's work stealing, the distributed GNN trainers)
exchanges data through a :class:`Network`.  The network does not move
real packets — workers are simulated in-process — but it faithfully
accounts *what a real deployment would have sent*: message counts, bytes,
and the per-link matrix that DGCL-style communication planning optimizes.

Accounting lives in a :class:`~repro.obs.MetricsRegistry`:
:class:`CommStats` is a *view* over the registry's ``cluster.*``
counters, so its legacy attributes (``bytes_remote``, ``by_tag``, …)
keep working while the same numbers appear in any shared registry
snapshot.  Pass ``registry=`` to :class:`Network` to aggregate several
networks (or a network plus an engine) into one observability surface.

The network can also run **lossy**: give it a
:class:`~repro.resilience.FaultInjector` and each transmission may be
dropped, duplicated or delayed under the injector's deterministic
schedule.  A :class:`~repro.resilience.RetryPolicy` turns drops into an
ack/retransmit protocol (retransmissions counted, with bytes); the
receiver deduplicates by send sequence number and :meth:`Network.deliver`
stable-sorts each flush by that sequence number, so a lossy run's
delivery *contents and order* match the lossless run exactly — only the
traffic bill changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..obs import MetricsRegistry, StatsViewMixin

__all__ = ["Message", "CommStats", "Network"]


@dataclass
class Message:
    """A unit of communication between two workers.

    ``seq`` is the global send sequence number the :class:`Network`
    stamps: the retransmit/dedup key and the deterministic delivery
    order.
    """

    src: int
    dst: int
    payload: Any
    nbytes: int = 0
    tag: str = ""
    seq: int = -1


class CommStats(StatsViewMixin):
    """Traffic counters, as a view over a metrics registry.

    ``local`` counts messages whose source and destination worker are the
    same (these are free in a real deployment); ``remote`` counts
    cross-worker traffic — the quantity the surveyed systems fight to
    reduce.  The per-link byte matrix stays a dense ndarray (planners
    consume it wholesale); everything scalar lives in the registry under
    ``cluster.messages`` / ``cluster.bytes`` / ``cluster.bytes_by_tag``.
    """

    def __init__(
        self, num_workers: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.num_workers = num_workers
        self.registry = registry if registry is not None else MetricsRegistry()
        self._messages = self.registry.counter(
            "cluster.messages", "messages sent, by locality"
        )
        self._bytes = self.registry.counter(
            "cluster.bytes", "payload bytes sent, by locality"
        )
        self._tag_bytes = self.registry.counter(
            "cluster.bytes_by_tag", "payload bytes sent, by message tag"
        )
        self._faults = self.registry.counter(
            "cluster.link_faults", "lossy-link events, by kind"
        )
        self._retransmits = self.registry.counter(
            "cluster.retransmits", "retransmission attempts after drops"
        )
        self._retransmitted_bytes = self.registry.counter(
            "cluster.retransmitted_bytes", "payload bytes sent again on retry"
        )
        self.link_bytes = np.zeros((num_workers, num_workers), dtype=np.int64)

    def record(self, msg: Message) -> None:
        if msg.src == msg.dst:
            self._messages.inc(1, locality="local")
            self._bytes.inc(msg.nbytes, locality="local")
        else:
            self._messages.inc(1, locality="remote")
            self._bytes.inc(msg.nbytes, locality="remote")
            self.link_bytes[msg.src, msg.dst] += msg.nbytes
        if msg.tag:
            self._tag_bytes.inc(msg.nbytes, tag=msg.tag)

    # -- lossy-link write path ---------------------------------------------

    def record_fault(self, kind: str) -> None:
        """Count one lossy-link event (``drop``/``duplicate``/``delay``/
        ``lost``/``exhausted``)."""
        self._faults.inc(kind=kind)

    def record_retransmit(self, msg: Message) -> None:
        self._retransmits.inc()
        self._retransmitted_bytes.inc(msg.nbytes)

    # -- legacy attribute surface (now registry reads) ---------------------

    @property
    def messages_local(self) -> int:
        return int(self._messages.value(locality="local"))

    @property
    def messages_remote(self) -> int:
        return int(self._messages.value(locality="remote"))

    @property
    def bytes_local(self) -> int:
        return int(self._bytes.value(locality="local"))

    @property
    def bytes_remote(self) -> int:
        return int(self._bytes.value(locality="remote"))

    @property
    def by_tag(self) -> Dict[str, int]:
        return {
            key.split("tag=", 1)[1]: int(v)
            for key, v in self._tag_bytes.series().items()
        }

    @property
    def total_messages(self) -> int:
        return self.messages_local + self.messages_remote

    @property
    def total_bytes(self) -> int:
        return self.bytes_local + self.bytes_remote

    @property
    def retransmits(self) -> int:
        return int(self._retransmits.total)

    @property
    def retransmitted_bytes(self) -> int:
        return int(self._retransmitted_bytes.total)

    @property
    def dropped(self) -> int:
        return int(self._faults.value(kind="drop"))

    @property
    def duplicates(self) -> int:
        return int(self._faults.value(kind="duplicate"))

    @property
    def delayed(self) -> int:
        return int(self._faults.value(kind="delay"))

    @property
    def lost(self) -> int:
        """Messages that exhausted their retries on an unreliable link."""
        return int(self._faults.value(kind="lost"))

    @property
    def retry_exhausted(self) -> int:
        """Messages force-delivered after the retry budget (reliable mode)."""
        return int(self._faults.value(kind="exhausted"))

    def reset(self) -> None:
        self._messages.reset()
        self._bytes.reset()
        self._tag_bytes.reset()
        self._faults.reset()
        self._retransmits.reset()
        self._retransmitted_bytes.reset()
        self.link_bytes[:] = 0

    # -- StatsView ----------------------------------------------------------

    def extra_dict(self) -> Dict[str, Any]:
        return {
            "num_workers": self.num_workers,
            "messages_local": self.messages_local,
            "messages_remote": self.messages_remote,
            "bytes_local": self.bytes_local,
            "bytes_remote": self.bytes_remote,
            "by_tag": self.by_tag,
            "link_bytes": self.link_bytes,
            "dropped": self.dropped,
            "duplicates": self.duplicates,
            "delayed": self.delayed,
            "lost": self.lost,
            "retransmits": self.retransmits,
            "retransmitted_bytes": self.retransmitted_bytes,
            "retry_exhausted": self.retry_exhausted,
        }

    def merge(self, other: "CommStats") -> "CommStats":
        """Fold another network's traffic into this view (in place)."""
        self._messages.merge(other._messages)
        self._bytes.merge(other._bytes)
        self._tag_bytes.merge(other._tag_bytes)
        self._faults.merge(other._faults)
        self._retransmits.merge(other._retransmits)
        self._retransmitted_bytes.merge(other._retransmitted_bytes)
        n = max(self.num_workers, other.num_workers)
        if n > self.num_workers:
            grown = np.zeros((n, n), dtype=np.int64)
            grown[: self.num_workers, : self.num_workers] = self.link_bytes
            self.link_bytes = grown
            self.num_workers = n
        m = other.num_workers
        self.link_bytes[:m, :m] += other.link_bytes
        return self


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    numpy arrays report their true buffer size; python scalars count as
    8 bytes; containers sum their elements.  The estimate is deliberately
    simple — benches compare *relative* traffic between techniques.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, bool) or payload is None:
        return 1
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return sum(payload_nbytes(x) for x in payload)
    if hasattr(payload, "nbytes"):
        return int(payload.nbytes)
    return 16  # opaque object header


class Network:
    """In-process mailbox network between ``num_workers`` workers.

    ``send`` enqueues into the destination's mailbox for the *next*
    delivery round; ``deliver`` swaps the buffers, which gives the BSP
    semantics the TLAV engine needs.  Engines that want immediate
    delivery (the task engine's work stealing) use ``send_now``.

    ``registry`` lets a caller aggregate this network's traffic
    counters into a shared :class:`~repro.obs.MetricsRegistry`.

    Lossy mode
    ----------
    ``injector`` (a :class:`~repro.resilience.FaultInjector`) makes the
    link drop, duplicate or delay individual transmissions under its
    deterministic schedule.  ``retry`` (a
    :class:`~repro.resilience.RetryPolicy`) adds sender-side
    ack/retransmit: a dropped transmission is re-sent (each attempt
    counted, with its bytes) until delivered or the attempt budget runs
    out.  ``reliable=True`` (default) models a transport that escalates
    past the budget and ultimately delivers (counted under
    ``retry_exhausted``); ``reliable=False`` loses the message.  The
    receiver drops duplicate sequence numbers, so engines above see
    exactly-once delivery; delayed messages surface in a *later*
    delivery round (safe for async engines; BSP engines should stick to
    drop/duplicate, which recover within the round).
    """

    def __init__(
        self,
        num_workers: int,
        registry: Optional[MetricsRegistry] = None,
        injector: Optional[Any] = None,
        retry: Optional[Any] = None,
        reliable: bool = True,
    ) -> None:
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.stats = CommStats(num_workers, registry=registry)
        self.injector = injector
        self.retry = retry
        self.reliable = reliable
        self._seq = 0
        self._inboxes: List[List[Message]] = [[] for _ in range(num_workers)]
        self._pending: List[List[Message]] = [[] for _ in range(num_workers)]
        # Lossy-mode state: (rounds_left, msg) per destination, and the
        # receiver-side dedup ledger of seen sequence numbers.
        self._delayed: List[List[Tuple[int, Message]]] = [
            [] for _ in range(num_workers)
        ]
        self._seen: List[Set[int]] = [set() for _ in range(num_workers)]

    @property
    def registry(self) -> MetricsRegistry:
        return self.stats.registry

    def _make(
        self, src: int, dst: int, payload: Any, tag: str, nbytes: Optional[int]
    ) -> Message:
        msg = Message(
            src,
            dst,
            payload,
            nbytes if nbytes is not None else payload_nbytes(payload),
            tag,
            seq=self._seq,
        )
        self._seq += 1
        self.stats.record(msg)
        return msg

    def _transmit(self, msg: Message) -> Tuple[int, int]:
        """Push ``msg`` through the lossy link.

        Returns ``(copies, delay_rounds)``: how many copies reach the
        destination (0 = lost) and how many delivery rounds the first
        copy is held back.
        """
        fate = self.injector.message_fate(msg.seq, attempt=0)
        attempt = 0
        while fate.action == "drop":
            self.stats.record_fault("drop")
            if self.retry is None or attempt + 1 >= self.retry.max_attempts:
                if self.reliable and self.retry is not None:
                    # The transport keeps nacking past our budget and the
                    # message ultimately lands — one more (re)transmission.
                    self.stats.record_fault("exhausted")
                    self.stats.record_retransmit(msg)
                    return 1, 0
                self.stats.record_fault("lost")
                return 0, 0
            attempt += 1
            self.stats.record_retransmit(msg)
            fate = self.injector.message_fate(msg.seq, attempt=attempt)
        if fate.action == "duplicate":
            self.stats.record_fault("duplicate")
            return 2, 0
        if fate.action == "delay":
            self.stats.record_fault("delay")
            return 1, max(1, fate.delay_rounds)
        return 1, 0

    def _enqueue(self, msg: Message, immediate: bool) -> None:
        if self.injector is None:
            (self._inboxes if immediate else self._pending)[msg.dst].append(msg)
            return
        copies, delay_rounds = self._transmit(msg)
        for _ in range(copies):
            if delay_rounds > 0 and not immediate:
                self._delayed[msg.dst].append((delay_rounds, msg))
                delay_rounds = 0  # only the first copy is held back
            elif immediate:
                self._receive_copy(msg)
            else:
                self._pending[msg.dst].append(msg)

    def _receive_copy(self, msg: Message) -> bool:
        """Receiver-side dedup: admit a copy unless its seq was seen."""
        seen = self._seen[msg.dst]
        if msg.seq in seen:
            self.stats.record_fault("deduplicated")
            return False
        seen.add(msg.seq)
        self._inboxes[msg.dst].append(msg)
        return True

    def send(self, src: int, dst: int, payload: Any, tag: str = "", nbytes: Optional[int] = None) -> None:
        """Enqueue a message for delivery at the next :meth:`deliver`."""
        self._enqueue(self._make(src, dst, payload, tag, nbytes), immediate=False)

    def send_now(self, src: int, dst: int, payload: Any, tag: str = "", nbytes: Optional[int] = None) -> None:
        """Deliver immediately (asynchronous-engine semantics)."""
        self._enqueue(self._make(src, dst, payload, tag, nbytes), immediate=True)

    def deliver(self) -> int:
        """Flush pending messages into inboxes; returns how many moved.

        The flush is deterministic under duplication and retransmission:
        matured delayed messages rejoin the round, the batch is
        stable-sorted by send sequence number, and duplicate sequence
        numbers are dropped at the receiver.
        """
        moved = 0
        for dst in range(self.num_workers):
            batch = self._pending[dst]
            self._pending[dst] = []
            if self._delayed[dst]:
                # A message delayed r rounds matures r deliver() calls
                # after the one it would normally have arrived in.
                still_held: List[Tuple[int, Message]] = []
                for rounds_left, msg in self._delayed[dst]:
                    if rounds_left <= 0:
                        batch.append(msg)
                    else:
                        still_held.append((rounds_left - 1, msg))
                self._delayed[dst] = still_held
            if not batch:
                continue
            batch.sort(key=lambda m: m.seq)
            if self.injector is None:
                self._inboxes[dst].extend(batch)
                moved += len(batch)
            else:
                for msg in batch:
                    if self._receive_copy(msg):
                        moved += 1
        return moved

    def receive(self, worker: int) -> List[Message]:
        """Drain and return worker's inbox."""
        msgs, self._inboxes[worker] = self._inboxes[worker], []
        return msgs

    def has_pending(self) -> bool:
        return (
            any(self._pending)
            or any(self._inboxes)
            or any(self._delayed)
        )
