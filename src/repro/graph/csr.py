"""Compressed-sparse-row graph storage.

This is the storage substrate shared by every engine in the library: the
TLAV (Pregel-like) engine, the TLAG subgraph-search engines, the FSM
miners, and the GNN samplers all read adjacency through :class:`Graph`.

Design notes
------------
* Vertices are dense integer ids ``0..n-1``; numpy ``int64`` arrays hold
  the CSR index (``indptr``) and the concatenated adjacency lists
  (``indices``).
* Adjacency lists are kept **sorted**, which gives ``O(log d)`` edge
  lookups via binary search and lets the matching engines intersect
  neighbor lists with merge joins (the core kernel of systems such as
  AutoMine and GraphPi).
* Graphs are immutable after construction.  Mutation happens in
  :class:`GraphBuilder`, which deduplicates edges and drops self-loops
  unless asked otherwise.
* Optional integer vertex labels and edge labels support the labeled
  matching and FSM workloads; unlabeled graphs simply leave them ``None``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Graph", "GraphBuilder"]


class Graph:
    """An immutable graph in CSR form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the neighbors of vertex ``v``
        are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of neighbor ids, sorted within each vertex's slice.
    directed:
        If ``False`` every edge appears in both endpoint's adjacency list.
    vertex_labels:
        Optional ``int64`` array of length ``n``.
    edge_labels:
        Optional ``int64`` array aligned with ``indices`` (the label of the
        edge ``(v, indices[k])`` is ``edge_labels[k]``).  For undirected
        graphs both copies of an edge carry the same label.

    Prefer :class:`GraphBuilder` or :func:`Graph.from_edges` over calling
    this constructor directly.
    """

    __slots__ = ("indptr", "indices", "directed", "vertex_labels", "edge_labels")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        directed: bool = False,
        vertex_labels: Optional[np.ndarray] = None,
        edge_labels: Optional[np.ndarray] = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indptr.size == 0:
            raise ValueError("indptr must be a 1-D array of length n + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self.directed = bool(directed)
        self.vertex_labels = (
            None if vertex_labels is None else np.asarray(vertex_labels, dtype=np.int64)
        )
        if self.vertex_labels is not None and self.vertex_labels.size != self.num_vertices:
            raise ValueError("vertex_labels must have one entry per vertex")
        self.edge_labels = (
            None if edge_labels is None else np.asarray(edge_labels, dtype=np.int64)
        )
        if self.edge_labels is not None and self.edge_labels.size != self.indices.size:
            raise ValueError("edge_labels must align with indices")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_edges(
        edges: Iterable[Tuple[int, int]],
        num_vertices: Optional[int] = None,
        directed: bool = False,
        vertex_labels: Optional[Sequence[int]] = None,
    ) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Duplicate edges and self-loops are dropped.  For undirected graphs
        each input pair is inserted in both directions.
        """
        builder = GraphBuilder(directed=directed)
        for u, v in edges:
            builder.add_edge(int(u), int(v))
        return builder.build(num_vertices=num_vertices, vertex_labels=vertex_labels)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of edges (each undirected edge counted once)."""
        if self.directed:
            return int(self.indices.size)
        return int(self.indices.size) // 2

    def vertices(self) -> range:
        """Iterate vertex ids ``0..n-1``."""
        return range(self.num_vertices)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbor ids of ``v`` (a CSR view; do not mutate)."""
        return self.indices[self.indptr[v]: self.indptr[v + 1]]

    def degree(self, v: int) -> int:
        """Out-degree of ``v`` (degree, for undirected graphs)."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """All (out-)degrees as an ``int64`` array."""
        return np.diff(self.indptr)

    def has_edge(self, u: int, v: int) -> bool:
        """``O(log d)`` membership test via binary search."""
        nbrs = self.neighbors(u)
        k = int(np.searchsorted(nbrs, v))
        return k < nbrs.size and nbrs[k] == v

    def edge_label(self, u: int, v: int) -> int:
        """Label of the edge ``(u, v)``; raises ``KeyError`` if absent."""
        if self.edge_labels is None:
            raise ValueError("graph has no edge labels")
        nbrs = self.neighbors(u)
        k = int(np.searchsorted(nbrs, v))
        if k >= nbrs.size or nbrs[k] != v:
            raise KeyError(f"edge ({u}, {v}) not in graph")
        return int(self.edge_labels[self.indptr[u] + k])

    def vertex_label(self, v: int) -> int:
        """Label of vertex ``v`` (``0`` when the graph is unlabeled)."""
        if self.vertex_labels is None:
            return 0
        return int(self.vertex_labels[v])

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield each edge once (``u < v`` for undirected graphs)."""
        for u in self.vertices():
            for v in self.neighbors(u):
                if self.directed or u < int(v):
                    yield u, int(v)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def reverse(self) -> "Graph":
        """Transpose of a directed graph (self, when undirected)."""
        if not self.directed:
            return self
        builder = GraphBuilder(directed=True)
        for u, v in self.edges():
            builder.add_edge(v, u)
        return builder.build(num_vertices=self.num_vertices)

    def subgraph(self, keep: Sequence[int]) -> Tuple["Graph", np.ndarray]:
        """Vertex-induced subgraph.

        Returns ``(sub, old_ids)`` where ``old_ids[new_id]`` maps the
        compacted ids back to ids in this graph.
        """
        old_ids = np.asarray(sorted(set(int(v) for v in keep)), dtype=np.int64)
        remap = {int(old): new for new, old in enumerate(old_ids)}
        builder = GraphBuilder(directed=self.directed)
        for old in old_ids:
            for w in self.neighbors(int(old)):
                w = int(w)
                if w in remap and (self.directed or old < w):
                    builder.add_edge(remap[int(old)], remap[w])
        labels = None
        if self.vertex_labels is not None:
            labels = self.vertex_labels[old_ids]
        sub = builder.build(num_vertices=old_ids.size, vertex_labels=labels)
        return sub, old_ids

    def orient_by_degree(self) -> "Graph":
        """Degree-ordered orientation of an undirected graph.

        Keeps edge ``(u, v)`` only as ``u -> v`` when ``(deg(u), u) <
        (deg(v), v)``.  This is the classic preprocessing step of serial
        triangle listing (Chu & Cheng) and k-clique counting: every vertex
        ends up with out-degree ``O(sqrt(m))`` on real-world graphs.
        """
        if self.directed:
            raise ValueError("orientation is defined for undirected graphs")
        n = self.num_vertices
        deg = self.degrees()
        # Each undirected edge appears as both (u, v) and (v, u) in the
        # CSR; keep exactly the copy pointing up the (degree, id) order.
        src = np.repeat(np.arange(n, dtype=np.int64), deg)
        dst = self.indices
        keep = (deg[src] < deg[dst]) | ((deg[src] == deg[dst]) & (src < dst))
        src, dst = src[keep], dst[keep]
        # src is CSR-ordered and dst sorted within each source slice, so
        # the filtered arrays are already a valid CSR layout.
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return Graph(indptr, dst, directed=True)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "directed" if self.directed else "undirected"
        return f"Graph(n={self.num_vertices}, m={self.num_edges}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.directed != other.directed:
            return False
        if not np.array_equal(self.indptr, other.indptr):
            return False
        if not np.array_equal(self.indices, other.indices):
            return False
        a, b = self.vertex_labels, other.vertex_labels
        if (a is None) != (b is None) or (a is not None and not np.array_equal(a, b)):
            return False
        a, b = self.edge_labels, other.edge_labels
        if (a is None) != (b is None) or (a is not None and not np.array_equal(a, b)):
            return False
        return True

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.indices.size, self.directed))


class GraphBuilder:
    """Accumulates edges and produces an immutable :class:`Graph`.

    The builder deduplicates parallel edges (keeping the first label seen)
    and drops self-loops by default, mirroring the preprocessing every
    surveyed system applies to its inputs.
    """

    def __init__(self, directed: bool = False, allow_self_loops: bool = False) -> None:
        self.directed = directed
        self.allow_self_loops = allow_self_loops
        self._edges: dict = {}
        self._max_vertex = -1

    def add_edge(self, u: int, v: int, label: int = 0) -> None:
        """Insert edge ``(u, v)``; for undirected builders order is ignored."""
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise ValueError("vertex ids must be non-negative")
        if u == v and not self.allow_self_loops:
            return
        if not self.directed and u > v:
            u, v = v, u
        self._max_vertex = max(self._max_vertex, u, v)
        self._edges.setdefault((u, v), int(label))

    def add_vertex(self, v: int) -> None:
        """Ensure vertex ``v`` exists even if isolated."""
        self._max_vertex = max(self._max_vertex, int(v))

    def __len__(self) -> int:
        return len(self._edges)

    def build(
        self,
        num_vertices: Optional[int] = None,
        vertex_labels: Optional[Sequence[int]] = None,
    ) -> Graph:
        """Freeze the accumulated edges into a :class:`Graph`."""
        n = self._max_vertex + 1 if num_vertices is None else int(num_vertices)
        if n < self._max_vertex + 1:
            raise ValueError(
                f"num_vertices={n} but edges reference vertex {self._max_vertex}"
            )
        has_labels = any(label != 0 for label in self._edges.values())
        srcs, dsts, labels = [], [], []
        for (u, v), label in self._edges.items():
            srcs.append(u)
            dsts.append(v)
            labels.append(label)
            if not self.directed and u != v:
                srcs.append(v)
                dsts.append(u)
                labels.append(label)
        src = np.asarray(srcs, dtype=np.int64)
        dst = np.asarray(dsts, dtype=np.int64)
        lab = np.asarray(labels, dtype=np.int64)
        order = np.lexsort((dst, src))
        src, dst, lab = src[order], dst[order], lab[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        vlab = None
        if vertex_labels is not None:
            vlab = np.asarray(list(vertex_labels), dtype=np.int64)
        return Graph(
            indptr,
            dst,
            directed=self.directed,
            vertex_labels=vlab,
            edge_labels=lab if has_labels else None,
        )
