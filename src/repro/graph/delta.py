"""Batched structural edge deltas over the immutable CSR graph.

:class:`~repro.graph.csr.Graph` is immutable by design, so a streaming
mutation is a *rebuild*: :func:`apply_edge_updates` takes one batch of
edge inserts and deletes and produces the successor snapshot plus an
:class:`EdgeDelta` describing what actually changed — the **effective**
inserts (requested edges that were absent), the effective deletes
(requested edges that were present), and the set of vertices whose
adjacency lists differ between the two snapshots.  Everything downstream
of a mutation batch keys off the effective delta:

* the serve :class:`~repro.serve.endpoints.GraphRegistry` maps touched
  vertices to **dirty partitions** for partition-scoped cache
  invalidation;
* the incremental engines in :mod:`repro.tlav.incremental` repair only
  the state the delta perturbs (Gauss–Southwell residual pushes,
  affected-component relabels, BFS frontier repair).

Semantics of one batch: deletes apply first, then inserts, so an edge
named in both ends up present.  Undirected edges are normalized to
``(min, max)``; self-loops and out-of-range endpoints are rejected —
a mutation batch never grows the vertex set.

:func:`random_edge_updates` is the seeded trickle generator shared by
the temporal load generator, the ``tlav.incremental.*`` check oracles,
and the X8 bench: deletes are sampled from the *current* edge set and
inserts from the complement, so a stream of batches stays consistent
(no delete of an absent edge, no insert of a present one) and is
reproducible bit-for-bit at a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .csr import Graph

__all__ = ["EdgeDelta", "apply_edge_updates", "random_edge_updates"]


@dataclass(frozen=True)
class EdgeDelta:
    """What one mutation batch actually changed.

    ``inserts`` / ``deletes`` are ``(k, 2)`` int64 arrays of the edges
    that were really added / removed (requests that were no-ops are
    dropped); ``touched`` is the ascending array of vertices whose
    adjacency changed.  An empty delta (``changed == False``) still
    counts as a batch — the registry bumps the epoch regardless — but
    carries the proof that the snapshot is bit-identical.
    """

    inserts: np.ndarray
    deletes: np.ndarray
    touched: np.ndarray

    @property
    def changed(self) -> bool:
        return bool(self.inserts.size or self.deletes.size)

    def dirty_partitions(self, assignment: Optional[np.ndarray]) -> frozenset:
        """Partitions owning a touched vertex (all-in-part-0 when
        ``assignment`` is ``None``, i.e. the graph is unpartitioned)."""
        if not self.touched.size:
            return frozenset()
        if assignment is None:
            return frozenset({0})
        return frozenset(
            int(p) for p in np.unique(np.asarray(assignment)[self.touched])
        )


def _as_pairs(edges, n: int, directed: bool, what: str) -> np.ndarray:
    """Validate and canonicalize a batch side to unique ``(k, 2)`` pairs."""
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                     dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    arr = arr.reshape(-1, 2)
    if arr.min() < 0 or arr.max() >= n:
        raise ValueError(
            f"{what} batch names vertex outside 0..{n - 1}; mutation "
            f"batches never grow the vertex set"
        )
    if np.any(arr[:, 0] == arr[:, 1]):
        raise ValueError(f"{what} batch contains a self-loop")
    if not directed:
        arr = np.sort(arr, axis=1)
    return np.unique(arr, axis=0)


def _edge_codes(pairs: np.ndarray, n: int) -> np.ndarray:
    return pairs[:, 0] * np.int64(n) + pairs[:, 1]


def _current_codes(graph: Graph) -> np.ndarray:
    """Sorted codes of the graph's edges (one per undirected edge)."""
    n = graph.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees())
    dst = graph.indices
    if not graph.directed:
        keep = src < dst
        src, dst = src[keep], dst[keep]
    return np.sort(src * np.int64(n) + dst)


def apply_edge_updates(
    graph: Graph,
    inserts: Iterable[Tuple[int, int]] = (),
    deletes: Iterable[Tuple[int, int]] = (),
) -> Tuple[Graph, EdgeDelta]:
    """Apply one batch of edge mutations; returns ``(snapshot, delta)``.

    Deletes apply before inserts.  Requests that do not change the edge
    set (deleting an absent edge, inserting a present one) are dropped
    from the returned :class:`EdgeDelta` — callers repair incremental
    state from the *effective* change only.
    """
    if graph.edge_labels is not None:
        raise ValueError(
            "apply_edge_updates does not preserve edge labels; "
            "mutate unlabeled graphs only"
        )
    n = graph.num_vertices
    ins = _as_pairs(inserts, n, graph.directed, "insert")
    dels = _as_pairs(deletes, n, graph.directed, "delete")
    current = _current_codes(graph)

    del_codes = _edge_codes(dels, n)
    del_mask = np.isin(del_codes, current, assume_unique=True)
    dels = dels[del_mask]
    after_del = current[~np.isin(current, del_codes[del_mask],
                                 assume_unique=True)]

    ins_codes = _edge_codes(ins, n)
    ins_mask = ~np.isin(ins_codes, after_del, assume_unique=True)
    ins = ins[ins_mask]
    codes = np.sort(np.concatenate([after_del, ins_codes[ins_mask]]))

    src = codes // np.int64(n)
    dst = codes % np.int64(n)
    if not graph.directed:
        src, dst = (
            np.concatenate([src, dst]), np.concatenate([dst, src]),
        )
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
    new_graph = Graph(
        indptr, dst, directed=graph.directed,
        vertex_labels=graph.vertex_labels,
    )
    touched = (
        np.unique(np.concatenate([ins.ravel(), dels.ravel()]))
        if ins.size or dels.size else np.empty(0, dtype=np.int64)
    )
    return new_graph, EdgeDelta(inserts=ins, deletes=dels, touched=touched)


def random_edge_updates(
    graph: Graph,
    num_batches: int,
    edge_fraction: float = 0.01,
    seed: int = 0,
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Seeded trickle: ``num_batches`` consistent (inserts, deletes) pairs.

    Each batch deletes ``edge_fraction`` of the *current* edges and
    inserts the same number of fresh non-edges (endpoints drawn
    uniformly), so the edge count stays roughly stationary and every
    delete/insert is effective by construction.  The batch size is
    capped at the size of the non-edge complement, so near-complete
    graphs produce smaller (possibly empty) batches instead of
    sampling forever.  Deterministic at a fixed seed.
    """
    if num_batches < 0:
        raise ValueError("num_batches must be >= 0")
    if graph.directed:
        raise ValueError("random_edge_updates expects an undirected graph")
    n = graph.num_vertices
    max_pairs = n * (n - 1) // 2
    rng = np.random.default_rng(seed)
    present = set(int(c) for c in _current_codes(graph))
    batches: List[Tuple[np.ndarray, np.ndarray]] = []
    for _ in range(int(num_batches)):
        k = max(1, int(round(edge_fraction * len(present))))
        k = min(k, max_pairs - len(present))
        pool = np.sort(np.fromiter(present, dtype=np.int64))
        victims = pool[rng.choice(pool.size, size=min(k, pool.size),
                                  replace=False)]
        dels = np.stack([victims // n, victims % n], axis=1)
        ins_set = set()
        while len(ins_set) < k:
            u = int(rng.integers(n))
            v = int(rng.integers(n))
            if u == v:
                continue
            code = min(u, v) * n + max(u, v)
            if code in present or code in ins_set:
                continue
            ins_set.add(code)
        ins_codes = np.sort(np.fromiter(ins_set, dtype=np.int64))
        ins = np.stack([ins_codes // n, ins_codes % n], axis=1)
        present.difference_update(int(c) for c in victims)
        present.update(int(c) for c in ins_codes)
        batches.append((ins, dels))
    return batches
