"""Differential checks for the graph substrate.

Structural invariants over every generated workload (CSR
well-formedness, partition-metric consistency across *all* five
partitioners — which is the check that flushed out the vertex-cut
``edge_cut_fraction`` bug) plus the I/O round-trip oracle pair.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List

import numpy as np

from ..check.invariants import csr_well_formed, partition_consistent, same_bits
from ..check.registry import BIT_IDENTICAL, invariant, pair
from ..check.workloads import gen_graph_params, make_graph
from .io import load_edge_list, save_edge_list
from .partition import (
    Partition,
    bfs_voronoi_partition,
    hash_partition,
    metis_like_partition,
    range_partition,
    vertex_cut_partition,
)

PARTITIONERS = ("hash", "range", "metis", "bfs_voronoi", "vertex_cut")


def build_partition(graph, params: Dict) -> Partition:
    """Build the partition a parameter dict describes."""
    name = PARTITIONERS[int(params["partitioner"]) % len(PARTITIONERS)]
    parts = max(1, int(params["num_parts"]))
    seed = int(params.get("part_seed", 0))
    n = graph.num_vertices
    if name == "hash":
        return hash_partition(graph, parts, seed=seed)
    if name == "range":
        return range_partition(graph, parts)
    if name == "metis":
        return metis_like_partition(graph, parts, seed=seed)
    if name == "bfs_voronoi":
        stride = max(1, n // max(2 * parts, 1))
        seeds = list(range(0, n, stride))[: max(parts, 1)]
        return bfs_voronoi_partition(graph, parts, seeds or [0], seed=seed)
    return vertex_cut_partition(graph, parts, seed=seed)


def _gen_graph(rng: np.random.Generator) -> Dict:
    return gen_graph_params(rng)


@invariant(
    "graph.csr.well_formed", "graph", gen=_gen_graph, floors={"n": 4},
    description="Generated CSR graphs satisfy the structural contract "
    "every kernel assumes (monotone indptr, sorted in-range rows, "
    "symmetry when undirected).",
)
def _check_csr(params: Dict) -> List[str]:
    return csr_well_formed(make_graph(params))


def _gen_partition(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["num_parts"] = int(rng.integers(2, 6))
    params["partitioner"] = int(rng.integers(len(PARTITIONERS)))
    params["part_seed"] = int(rng.integers(1 << 16))
    return params


@invariant(
    "graph.partition.metrics_consistent", "graph", gen=_gen_partition,
    floors={"n": 4, "num_parts": 2, "partitioner": 0},
    description="Partition coverage/balance plus the edge-cut vs "
    "replication tie: vertex-cut partitions must report zero edge cut "
    "(their cost is replication), vertex partitions must not report "
    "more replication than their cut edges can induce.",
)
def _check_partition(params: Dict) -> List[str]:
    graph = make_graph(params)
    partition = build_partition(graph, params)
    return partition_consistent(graph, partition)


@pair(
    "graph.io.edge_list_roundtrip", "graph", BIT_IDENTICAL,
    gen=_gen_graph, floors={"n": 4},
    description="save_edge_list -> load_edge_list reproduces the exact "
    "CSR (indptr, indices, direction).",
)
def _check_io_roundtrip(params: Dict) -> List[str]:
    graph = make_graph(params)
    with tempfile.TemporaryDirectory(prefix="check-io-") as tmp:
        path = os.path.join(tmp, "graph.edges")
        save_edge_list(graph, path)
        loaded = load_edge_list(path, directed=graph.directed)
    out = same_bits(graph.indptr, loaded.indptr, "indptr")
    out += same_bits(graph.indices, loaded.indices, "indices")
    if graph != loaded:
        out.append("roundtrip: Graph equality failed")
    return out
