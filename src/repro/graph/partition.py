"""Graph partitioners.

The tutorial's Section 3 attributes much of the variance between
distributed GNN systems to how they place graph data:

* **hash** — the baseline every system starts from (DistDGL's default
  before METIS, Euler);
* **metis_like** — a from-scratch multilevel edge-cut partitioner
  (heavy-edge-matching coarsening, greedy initial partition, boundary
  refinement), standing in for METIS [19] as used by DistDGL and DGCL;
* **bfs_voronoi** — the ByteGNN/BGL heuristic: over-partition the graph
  into small blocks by multi-source BFS from training-seed vertices
  (the graph Voronoi diagram of the seeds) and stream blocks to workers
  balancing load;
* **vertex_cut** — a greedy minimum-vertex-cut-flavoured edge
  partitioner in the spirit of DistGNN's communication-reducing setup;
* **range** — contiguous id ranges, the locality-oblivious strawman.

Every partitioner returns a :class:`Partition`, and quality is compared
with :func:`edge_cut_fraction` / :func:`replication_factor` — the same
metrics the systems papers report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .csr import Graph

__all__ = [
    "Partition",
    "hash_partition",
    "range_partition",
    "metis_like_partition",
    "bfs_voronoi_partition",
    "vertex_cut_partition",
    "edge_cut_fraction",
    "replication_factor",
    "replica_sets",
    "balance",
]


@dataclass
class Partition:
    """An assignment of vertices to ``num_parts`` workers.

    ``assignment[v]`` is the worker owning vertex ``v``.  For vertex-cut
    partitioners, ``edge_assignment`` maps each undirected edge ``(u, v)``
    (with ``u < v``) to a worker and vertices may be replicated; the
    ``assignment`` array then records each vertex's *primary* copy.
    """

    num_parts: int
    assignment: np.ndarray
    edge_assignment: Optional[Dict[tuple, int]] = None
    blocks: Optional[List[List[int]]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.assignment = np.asarray(self.assignment, dtype=np.int64)
        if self.assignment.size and (
            self.assignment.min() < 0 or self.assignment.max() >= self.num_parts
        ):
            raise ValueError("assignment references a worker out of range")

    def part(self, k: int) -> np.ndarray:
        """Vertex ids owned by worker ``k``."""
        return np.nonzero(self.assignment == k)[0]

    def sizes(self) -> np.ndarray:
        """Vertices per worker."""
        return np.bincount(self.assignment, minlength=self.num_parts)


def hash_partition(graph: Graph, num_parts: int, seed: int = 0) -> Partition:
    """Pseudo-random assignment by a salted multiplicative hash."""
    n = graph.num_vertices
    ids = np.arange(n, dtype=np.uint64)
    salt = np.uint64(0x9E3779B97F4A7C15 + seed)
    mixed = (ids + salt) * np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(31)
    return Partition(num_parts, (mixed % np.uint64(num_parts)).astype(np.int64))


def range_partition(graph: Graph, num_parts: int) -> Partition:
    """Contiguous, equal-size id ranges."""
    n = graph.num_vertices
    bounds = np.linspace(0, n, num_parts + 1).astype(np.int64)
    assignment = np.zeros(n, dtype=np.int64)
    for k in range(num_parts):
        assignment[bounds[k]: bounds[k + 1]] = k
    return Partition(num_parts, assignment)


# ----------------------------------------------------------------------
# Multilevel edge-cut partitioner (METIS-like)
# ----------------------------------------------------------------------


def metis_like_partition(
    graph: Graph,
    num_parts: int,
    seed: int = 0,
    coarsen_until: int = 64,
    refine_passes: int = 4,
) -> Partition:
    """Multilevel edge-cut partitioning in the METIS style.

    Three phases, as in Karypis & Kumar [19]:

    1. *Coarsening* — repeatedly contract a heavy-edge matching until the
       graph is small (vertex/edge weights accumulate);
    2. *Initial partitioning* — greedy BFS-grown regions on the coarsest
       graph, balanced by accumulated vertex weight;
    3. *Uncoarsening + refinement* — project the partition back up,
       applying boundary-vertex greedy refinement (a light-weight
       Kernighan–Lin/Fiduccia–Mattheyses pass) at every level.
    """
    if num_parts <= 1:
        return Partition(max(num_parts, 1), np.zeros(graph.num_vertices, dtype=np.int64))
    rng = np.random.default_rng(seed)

    # Adjacency with weights, as dict-of-dicts for the coarsening phase.
    adj: List[Dict[int, int]] = [dict() for _ in graph.vertices()]
    for u, v in graph.edges():
        adj[u][v] = adj[u].get(v, 0) + 1
        adj[v][u] = adj[v].get(u, 0) + 1
    vweight = [1] * graph.num_vertices

    levels = []  # (mapping fine->coarse, fine_adj, fine_vweight)
    while len(adj) > max(coarsen_until, 4 * num_parts):
        mapping, coarse_adj, coarse_vw = _contract_heavy_edge_matching(
            adj, vweight, rng
        )
        if len(coarse_adj) == len(adj):  # no contraction possible
            break
        levels.append((mapping, adj, vweight))
        adj, vweight = coarse_adj, coarse_vw

    assignment = _greedy_region_grow(adj, vweight, num_parts, rng)
    assignment = _refine(adj, vweight, assignment, num_parts, refine_passes)

    # Project back through the levels, refining at each.
    for mapping, fine_adj, fine_vw in reversed(levels):
        fine_assignment = np.asarray(
            [assignment[mapping[v]] for v in range(len(fine_adj))], dtype=np.int64
        )
        assignment = _refine(fine_adj, fine_vw, fine_assignment, num_parts, refine_passes)

    return Partition(num_parts, assignment)


def _contract_heavy_edge_matching(adj, vweight, rng):
    """One coarsening level: match each vertex to its heaviest unmatched neighbor."""
    n = len(adj)
    match = [-1] * n
    order = rng.permutation(n)
    for u in order:
        u = int(u)
        if match[u] >= 0:
            continue
        best, best_w = -1, -1
        for v, w in adj[u].items():
            if match[v] < 0 and v != u and w > best_w:
                best, best_w = v, w
        if best >= 0:
            match[u], match[best] = best, u
    mapping = [-1] * n
    next_id = 0
    for u in range(n):
        if mapping[u] >= 0:
            continue
        mapping[u] = next_id
        if match[u] >= 0:
            mapping[match[u]] = next_id
        next_id += 1
    coarse_adj: List[Dict[int, int]] = [dict() for _ in range(next_id)]
    coarse_vw = [0] * next_id
    for u in range(n):
        cu = mapping[u]
        coarse_vw[cu] += vweight[u]
        for v, w in adj[u].items():
            cv = mapping[v]
            if cu != cv:
                coarse_adj[cu][cv] = coarse_adj[cu].get(cv, 0) + w
    return mapping, coarse_adj, coarse_vw


def _greedy_region_grow(adj, vweight, num_parts, rng):
    """BFS-grow balanced regions for the initial partition."""
    n = len(adj)
    total = sum(vweight)
    target = total / num_parts
    assignment = np.full(n, -1, dtype=np.int64)
    unassigned = set(range(n))
    for k in range(num_parts):
        if not unassigned:
            break
        seed_v = int(rng.choice(sorted(unassigned)))
        queue = deque([seed_v])
        weight = 0
        while queue and weight < target:
            u = queue.popleft()
            if assignment[u] >= 0:
                continue
            assignment[u] = k
            unassigned.discard(u)
            weight += vweight[u]
            for v in adj[u]:
                if assignment[v] < 0:
                    queue.append(v)
        # Region ran out of frontier: jump to another unassigned seed.
        while weight < target and unassigned and k < num_parts - 1:
            u = unassigned.pop()
            assignment[u] = k
            weight += vweight[u]
    for u in list(unassigned):
        assignment[u] = num_parts - 1
    return assignment


def _refine(adj, vweight, assignment, num_parts, passes):
    """Greedy boundary refinement with a balance guard."""
    assignment = assignment.copy()
    part_weight = np.zeros(num_parts, dtype=np.int64)
    for u, w in enumerate(vweight):
        part_weight[assignment[u]] += w
    max_weight = int(1.1 * part_weight.sum() / num_parts) + 1
    for _ in range(passes):
        moved = 0
        for u in range(len(adj)):
            here = int(assignment[u])
            # Gain of moving u to each neighboring part.
            link = {}
            for v, w in adj[u].items():
                link[int(assignment[v])] = link.get(int(assignment[v]), 0) + w
            internal = link.get(here, 0)
            best_part, best_gain = here, 0
            for cand, external in link.items():
                if cand == here:
                    continue
                if part_weight[cand] + vweight[u] > max_weight:
                    continue
                gain = external - internal
                if gain > best_gain:
                    best_part, best_gain = cand, gain
            if best_part != here:
                part_weight[here] -= vweight[u]
                part_weight[best_part] += vweight[u]
                assignment[u] = best_part
                moved += 1
        if not moved:
            break
    return assignment


# ----------------------------------------------------------------------
# BFS-Voronoi streaming blocks (ByteGNN / BGL)
# ----------------------------------------------------------------------


def bfs_voronoi_partition(
    graph: Graph,
    num_parts: int,
    seeds: Sequence[int],
    seed: int = 0,
) -> Partition:
    """Over-partition into seed-rooted BFS blocks, then stream to workers.

    ByteGNN [71] and BGL [22] observe that GNN training touches only the
    few-hop neighborhoods of train/validation/test seed vertices, so a
    global minimum edge cut is the wrong objective.  Instead they run
    simultaneous BFS from every seed until the BFS frontiers meet (the
    graph Voronoi diagram of the seeds), producing many small blocks, and
    then greedily stream blocks to the least-loaded worker.

    Vertices unreachable from any seed are swept into the smallest block's
    worker at the end.
    """
    n = graph.num_vertices
    block_of = np.full(n, -1, dtype=np.int64)
    queue = deque()
    for b, s in enumerate(seeds):
        s = int(s)
        if block_of[s] < 0:
            block_of[s] = b
            queue.append(s)
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            w = int(w)
            if block_of[w] < 0:
                block_of[w] = block_of[u]
                queue.append(w)

    num_blocks = len(seeds)
    blocks: List[List[int]] = [[] for _ in range(num_blocks)]
    stragglers: List[int] = []
    for v in range(n):
        if block_of[v] >= 0:
            blocks[int(block_of[v])].append(v)
        else:
            stragglers.append(v)

    # Greedy streaming assignment: largest block first to least-loaded worker.
    order = sorted(range(num_blocks), key=lambda b: -len(blocks[b]))
    load = np.zeros(num_parts, dtype=np.int64)
    assignment = np.zeros(n, dtype=np.int64)
    for b in order:
        k = int(np.argmin(load))
        for v in blocks[b]:
            assignment[v] = k
        load[k] += len(blocks[b])
    for v in stragglers:
        k = int(np.argmin(load))
        assignment[v] = k
        load[k] += 1
    return Partition(num_parts, assignment, blocks=blocks)


# ----------------------------------------------------------------------
# Greedy vertex-cut (DistGNN-flavoured)
# ----------------------------------------------------------------------


def vertex_cut_partition(graph: Graph, num_parts: int, seed: int = 0) -> Partition:
    """Greedy vertex-cut edge partitioning (PowerGraph-style greedy).

    Edges are placed one at a time on the worker that already holds copies
    of the most endpoints (ties broken by load), replicating vertices when
    necessary.  DistGNN [27] argues a minimum *vertex* cut reduces the
    aggregate feature traffic for full-graph GNN training; the greedy rule
    here is the standard streaming approximation.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    replicas: List[set] = [set() for _ in range(n)]
    load = np.zeros(num_parts, dtype=np.int64)
    edge_assignment: Dict[tuple, int] = {}
    edges = list(graph.edges())
    rng.shuffle(edges)
    for u, v in edges:
        ru, rv = replicas[u], replicas[v]
        both = ru & rv
        if both:
            k = min(both, key=lambda c: (load[c], c))
        elif ru or rv:
            candidates = ru | rv
            k = min(candidates, key=lambda c: (load[c], c))
        else:
            k = int(np.argmin(load))
        edge_assignment[(min(u, v), max(u, v))] = int(k)
        ru.add(int(k))
        rv.add(int(k))
        load[k] += 1
    assignment = np.zeros(n, dtype=np.int64)
    for v in range(n):
        if replicas[v]:
            assignment[v] = min(replicas[v])
    return Partition(num_parts, assignment, edge_assignment=edge_assignment)


# ----------------------------------------------------------------------
# Quality metrics
# ----------------------------------------------------------------------


def replica_sets(graph: Graph, partition: Partition) -> List[set]:
    """Workers holding a copy of each vertex, per the partition kind.

    For edge (vertex-cut) partitions the replica set is exactly the
    workers owning one of the vertex's edges; isolated vertices live
    only on their assigned worker.  For vertex partitions a vertex is
    replicated on its owner plus every worker owning a neighbor (the
    halo the GNN gather step must fetch).
    """
    n = graph.num_vertices
    replicas: List[set] = [set() for _ in range(n)]
    if partition.edge_assignment is not None:
        for (u, v), k in partition.edge_assignment.items():
            replicas[u].add(int(k))
            replicas[v].add(int(k))
        for v in range(n):
            if not replicas[v]:
                replicas[v].add(int(partition.assignment[v]))
        return replicas
    for v in range(n):
        replicas[v].add(int(partition.assignment[v]))
        for w in graph.neighbors(v):
            replicas[v].add(int(partition.assignment[int(w)]))
    return replicas


def edge_cut_fraction(graph: Graph, partition: Partition) -> float:
    """Fraction of edges whose endpoints share no worker.

    For vertex partitions this is the classic cut (endpoints assigned
    to different workers).  For vertex-cut (edge) partitions every edge
    is wholly local to the worker it is assigned to — that worker holds
    replicas of both endpoints by construction — so the cut is 0 and
    the communication cost shows up in :func:`replication_factor`
    instead.  (Deciding via ``partition.assignment`` alone reported the
    phantom vertex-hash cut for vertex-cut partitions.)
    """
    if graph.num_edges == 0:
        return 0.0
    if partition.edge_assignment is not None:
        replicas = replica_sets(graph, partition)
        cut = sum(
            1 for u, v in graph.edges() if replicas[u].isdisjoint(replicas[v])
        )
    else:
        cut = sum(
            1
            for u, v in graph.edges()
            if partition.assignment[u] != partition.assignment[v]
        )
    return cut / graph.num_edges


def replication_factor(graph: Graph, partition: Partition) -> float:
    """Average number of workers holding a copy of each vertex.

    For edge partitions this reads the replica sets implied by
    ``edge_assignment``; for vertex partitions a vertex is replicated on
    every worker that owns one of its neighbors (the halo the GNN gather
    step must fetch).
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    return sum(len(r) for r in replica_sets(graph, partition)) / n


def balance(partition: Partition) -> float:
    """Max part size over average part size (1.0 is perfect)."""
    sizes = partition.sizes()
    if sizes.sum() == 0:
        return 1.0
    return float(sizes.max() / (sizes.sum() / partition.num_parts))
