"""Weighted shortest paths.

The TLAV SSSP program accepts a weight function; this module provides
the serial Dijkstra reference the tests compare it against, plus a
convenience for treating integer edge labels as weights.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

import numpy as np

from .csr import Graph

__all__ = ["dijkstra", "edge_label_weight"]


def edge_label_weight(graph: Graph) -> Callable[[int, int], float]:
    """A weight function reading the graph's integer edge labels.

    Unlabeled graphs weigh every edge 1.
    """
    if graph.edge_labels is None:
        return lambda u, v: 1.0
    return lambda u, v: float(graph.edge_label(u, v))


def dijkstra(
    graph: Graph,
    source: int,
    weight: Optional[Callable[[int, int], float]] = None,
) -> np.ndarray:
    """Single-source shortest paths with non-negative weights.

    Returns distances (``inf`` when unreachable).  The oracle for the
    TLAV :class:`~repro.tlav.algorithms.SSSPProgram` under weights.
    """
    n = graph.num_vertices
    if not (0 <= source < n):
        raise ValueError("source out of range")
    weight = weight or (lambda u, v: 1.0)
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    heap = [(0.0, source)]
    done = np.zeros(n, dtype=bool)
    while heap:
        d, v = heapq.heappop(heap)
        if done[v]:
            continue
        done[v] = True
        for w in graph.neighbors(v):
            w = int(w)
            cost = weight(v, w)
            if cost < 0:
                raise ValueError("Dijkstra requires non-negative weights")
            if d + cost < dist[w]:
                dist[w] = d + cost
                heapq.heappush(heap, (float(dist[w]), w))
    return dist
