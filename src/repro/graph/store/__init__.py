"""``repro.graph.store`` — on-disk partitioned graphs behind ``GraphHandle``.

The storage layer the scalability story needs (see DESIGN "Storage
layer"): any partitioner's output materializes to a versioned store
directory (``graph.json`` manifest + per-partition mmap CSR shards +
feature shards + node map), graphs larger than RAM stream in through
the chunked ingest pipeline, and every engine family consumes the
result through the same :class:`GraphHandle` surface it uses for
in-memory graphs.
"""

from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILENAME,
    FileEntry,
    Manifest,
    PartitionMeta,
    StoreError,
    is_store_dir,
    verify_file,
)
from .handle import (
    GraphHandle,
    InMemoryGraph,
    PartitionView,
    as_handle,
    resolve_graph_argument,
)
from .writer import (
    STREAMING_PARTITIONERS,
    build_store,
    ingest_edge_stream,
    streaming_assignment,
)
from .stored import CacheStats, ShardCache, StoredGraph, open_store
from .catalog import StoreCatalog

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "FileEntry",
    "Manifest",
    "PartitionMeta",
    "StoreError",
    "is_store_dir",
    "verify_file",
    "GraphHandle",
    "InMemoryGraph",
    "PartitionView",
    "as_handle",
    "resolve_graph_argument",
    "STREAMING_PARTITIONERS",
    "build_store",
    "ingest_edge_stream",
    "streaming_assignment",
    "CacheStats",
    "ShardCache",
    "StoredGraph",
    "open_store",
    "StoreCatalog",
]
