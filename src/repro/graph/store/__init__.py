"""``repro.graph.store`` — on-disk partitioned graphs behind ``GraphHandle``.

The storage layer the scalability story needs (see DESIGN "Storage
layer"): any partitioner's output materializes to a versioned store
directory (``graph.json`` manifest + per-partition mmap CSR shards +
feature shards + node map), graphs larger than RAM stream in through
the chunked ingest pipeline, and every engine family consumes the
result through the same :class:`GraphHandle` surface it uses for
in-memory graphs.

Durability contract: overwriting builds are atomic (sibling temp dir
+ rename), chunked ingest journals every chunk/partition boundary and
resumes byte-identically after a crash (:mod:`.journal`), and
:func:`verify_store`/:func:`repair_store` sweep CRC32 integrity and
quarantine corrupt shards with typed errors.
"""

from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MANIFEST_FILENAME,
    QUARANTINE_DIRNAME,
    CorruptShardError,
    FileEntry,
    Manifest,
    PartitionMeta,
    StoreError,
    StoreReport,
    is_store_dir,
    repair_store,
    verify_file,
    verify_store,
)
from .journal import INGEST_DIRNAME, IngestJournal
from .handle import (
    GraphHandle,
    InMemoryGraph,
    PartitionView,
    as_handle,
    resolve_graph_argument,
)
from .writer import (
    STREAMING_PARTITIONERS,
    build_store,
    ingest_edge_stream,
    streaming_assignment,
)
from .stored import CacheStats, ShardCache, StoredGraph, open_store
from .catalog import StoreCatalog

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "FileEntry",
    "Manifest",
    "PartitionMeta",
    "StoreError",
    "StoreReport",
    "CorruptShardError",
    "QUARANTINE_DIRNAME",
    "INGEST_DIRNAME",
    "IngestJournal",
    "is_store_dir",
    "verify_file",
    "verify_store",
    "repair_store",
    "GraphHandle",
    "InMemoryGraph",
    "PartitionView",
    "as_handle",
    "resolve_graph_argument",
    "STREAMING_PARTITIONERS",
    "build_store",
    "ingest_edge_stream",
    "streaming_assignment",
    "CacheStats",
    "ShardCache",
    "StoredGraph",
    "open_store",
    "StoreCatalog",
]
