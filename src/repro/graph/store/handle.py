"""The :class:`GraphHandle` protocol and its in-memory implementation.

Every engine family (TLAV per-vertex + dense, TLAG, matching, GNN,
serve) now takes a *handle* — a uniform structural surface over graph
storage — instead of a concrete :class:`~repro.graph.csr.Graph`:

=================  ====================================================
``num_vertices``   vertex count
``neighbors(v)``   int64 array of ``v``'s out-neighbors (sorted)
``degree(v)``      out-degree of one vertex
``degrees()``      int64 array of all out-degrees
``num_edge_slots`` directed adjacency entries (cost-model input)
``features(...)``  float64 feature rows, or ``None``
``partition(i)``   :class:`PartitionView` of one partition's local CSR
``to_graph()``     materialize a concrete :class:`Graph`
=================  ====================================================

:class:`InMemoryGraph` wraps a live :class:`Graph`;
:class:`~repro.graph.store.stored.StoredGraph` pages memory-mapped
shards on demand.  :func:`as_handle` is the single coercion point the
entry-point sweep funnels through: it accepts a handle (pass-through),
a ``Graph``, or a store-directory path.

:func:`resolve_graph_argument` implements the deprecation shim for the
old ``graph=`` keyword spellings (see README "Migrating to handles").
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple

import numpy as np

from ..csr import Graph
from ..partition import Partition
from .format import StoreError, is_store_dir

try:  # pragma: no cover - typing nicety only
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - py<3.8 has no Protocol
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "GraphHandle",
    "PartitionView",
    "InMemoryGraph",
    "as_handle",
    "resolve_graph_argument",
]


@dataclass(frozen=True)
class PartitionView:
    """One partition's local CSR, in global-id vocabulary.

    ``nodes[i]`` is the global id of local vertex ``i``; the slice
    ``indices[indptr[i]:indptr[i+1]]`` holds its neighbors as *global*
    ids, sorted ascending.
    """

    part_id: int
    nodes: np.ndarray  # int64[n_k], ascending global ids
    indptr: np.ndarray  # int64[n_k + 1]
    indices: np.ndarray  # int64[e_k], global neighbor ids

    @property
    def num_vertices(self) -> int:
        return int(self.nodes.size)

    @property
    def num_edge_slots(self) -> int:
        return int(self.indices.size)

    def neighbors(self, global_id: int) -> np.ndarray:
        """Neighbors of a vertex this partition owns, by global id."""
        local = int(np.searchsorted(self.nodes, global_id))
        if local >= self.nodes.size or self.nodes[local] != global_id:
            raise KeyError(
                f"vertex {global_id} is not owned by partition {self.part_id}"
            )
        return self.indices[self.indptr[local]: self.indptr[local + 1]]


@runtime_checkable
class GraphHandle(Protocol):
    """Structural protocol every graph handle satisfies."""

    is_graph_handle: bool

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edge_slots(self) -> int: ...

    @property
    def directed(self) -> bool: ...

    def neighbors(self, v: int) -> np.ndarray: ...

    def degree(self, v: int) -> int: ...

    def degrees(self) -> np.ndarray: ...

    def features(self, ids: Optional[np.ndarray] = None) -> Optional[np.ndarray]: ...

    def partition(self, i: int) -> PartitionView: ...

    def to_graph(self) -> Graph: ...


class InMemoryGraph:
    """A handle over a live :class:`Graph` (plus optional features).

    Delegates every structural query straight to the wrapped CSR —
    zero-copy, zero overhead beyond one attribute hop.  An optional
    :class:`~repro.graph.partition.Partition` gives ``partition(i)``
    real views; without one the whole graph is partition 0.
    """

    is_graph_handle = True

    def __init__(
        self,
        graph: Graph,
        features: Optional[np.ndarray] = None,
        partition: Optional[Partition] = None,
        name: str = "in-memory",
    ) -> None:
        if features is not None:
            features = np.asarray(features, dtype=np.float64)
            if features.ndim != 2 or features.shape[0] != graph.num_vertices:
                raise ValueError(
                    f"features must be (n, d); got {features.shape} for "
                    f"n={graph.num_vertices}"
                )
        self._graph = graph
        self._features = features
        self._partition = partition
        self.name = name

    # -- structural surface (delegation) -----------------------------------

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def num_edge_slots(self) -> int:
        return int(self._graph.indices.size)

    @property
    def directed(self) -> bool:
        return self._graph.directed

    @property
    def indptr(self) -> np.ndarray:
        return self._graph.indptr

    @property
    def indices(self) -> np.ndarray:
        return self._graph.indices

    @property
    def vertex_labels(self) -> Optional[np.ndarray]:
        return self._graph.vertex_labels

    @property
    def edge_labels(self) -> Optional[np.ndarray]:
        return self._graph.edge_labels

    @property
    def num_parts(self) -> int:
        return 1 if self._partition is None else self._partition.num_parts

    @property
    def vertex_partition(self) -> Optional[Partition]:
        """The live :class:`Partition` backing ``partition(i)``, if any."""
        return self._partition

    @property
    def assignment(self) -> Optional[np.ndarray]:
        """Vertex -> owning partition (``None`` when unpartitioned)."""
        return None if self._partition is None else self._partition.assignment

    def part_of(self, v: int) -> int:
        """Partition owning vertex ``v`` (0 when unpartitioned)."""
        if self._partition is None:
            return 0
        return int(self._partition.assignment[v])

    def vertices(self) -> range:
        return self._graph.vertices()

    def neighbors(self, v: int) -> np.ndarray:
        return self._graph.neighbors(v)

    def degree(self, v: int) -> int:
        return self._graph.degree(v)

    def degrees(self) -> np.ndarray:
        return self._graph.degrees()

    def has_edge(self, u: int, v: int) -> bool:
        return self._graph.has_edge(u, v)

    def edge_label(self, u: int, v: int) -> int:
        return self._graph.edge_label(u, v)

    def vertex_label(self, v: int) -> int:
        return self._graph.vertex_label(v)

    def edges(self):
        return self._graph.edges()

    def orient_by_degree(self) -> Graph:
        return self._graph.orient_by_degree()

    def reverse(self) -> Graph:
        return self._graph.reverse()

    def subgraph(self, keep):
        return self._graph.subgraph(keep)

    def features(
        self, ids: Optional[np.ndarray] = None
    ) -> Optional[np.ndarray]:
        if self._features is None:
            return None
        if ids is None:
            return self._features
        return self._features[np.asarray(ids, dtype=np.int64)]

    @property
    def feature_dim(self) -> Optional[int]:
        return None if self._features is None else int(self._features.shape[1])

    def partition(self, i: int) -> PartitionView:
        graph = self._graph
        if self._partition is None:
            if i != 0:
                raise IndexError(
                    f"unpartitioned in-memory graph has only partition 0, not {i}"
                )
            nodes = np.arange(graph.num_vertices, dtype=np.int64)
            return PartitionView(0, nodes, graph.indptr, graph.indices)
        nodes = np.sort(self._partition.part(i)).astype(np.int64)
        indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(graph.degrees()[nodes], out=indptr[1:])
        slices = [graph.neighbors(int(v)) for v in nodes]
        indices = (
            np.concatenate(slices) if slices else np.empty(0, dtype=np.int64)
        )
        return PartitionView(i, nodes, indptr, indices)

    def iter_csr_runs(self) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(lo, hi, indptr_run, indices_run)`` source-major runs.

        The in-memory graph is one run: the whole CSR.  Matches
        :meth:`StoredGraph.iter_csr_runs` so dense supersteps can scatter
        in identical global order over either handle.
        """
        graph = self._graph
        yield 0, graph.num_vertices, graph.indptr, graph.indices

    def to_graph(self) -> Graph:
        return self._graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InMemoryGraph(n={self.num_vertices}, "
            f"slots={self.num_edge_slots}, parts={self.num_parts})"
        )


def as_handle(
    obj: Any,
    *,
    cache_budget: Optional[int] = None,
    obs: Optional["MetricsRegistry"] = None,
    features: Optional[np.ndarray] = None,
) -> "GraphHandle":
    """Coerce anything graph-shaped into a :class:`GraphHandle`.

    Accepts, in priority order:

    * an existing handle (``is_graph_handle`` marker) — returned as-is;
    * a concrete :class:`Graph` — wrapped in :class:`InMemoryGraph`;
    * a store-directory path (``str`` / ``os.PathLike``) — opened as a
      :class:`~repro.graph.store.stored.StoredGraph` with the given
      ``cache_budget`` / ``obs``.

    This is the single coercion point behind every redesigned engine
    entry point, so "engine takes a handle" is one code path, not five.
    """
    if getattr(obj, "is_graph_handle", False):
        return obj
    if isinstance(obj, Graph):
        return InMemoryGraph(obj, features=features)
    if isinstance(obj, (str, os.PathLike)):
        path = os.fspath(obj)
        if not is_store_dir(path):
            raise StoreError(
                f"{path!r} is not a graph store (no graph.json manifest)"
            )
        from .stored import open_store

        return open_store(path, cache_budget=cache_budget, obs=obs)
    raise TypeError(
        f"cannot interpret {type(obj).__name__} as a graph handle; pass a "
        f"Graph, an InMemoryGraph/StoredGraph, or a store directory path"
    )


def resolve_graph_argument(
    func_name: str,
    graph_or_handle: Any,
    legacy_graph: Any,
) -> Any:
    """Fold the deprecated ``graph=`` keyword into the positional slot.

    Entry points migrated by the handle sweep accept
    ``f(graph_or_handle, ...)`` but still honor the pre-store spelling
    ``f(graph=g)`` with a :class:`DeprecationWarning`.  Passing both is
    an error.
    """
    if legacy_graph is not None:
        if graph_or_handle is not None:
            raise TypeError(
                f"{func_name}() got both a positional graph and the "
                f"deprecated graph= keyword"
            )
        warnings.warn(
            f"{func_name}(graph=...) is deprecated; pass the graph or "
            f"handle positionally: {func_name}(graph_or_handle, ...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return legacy_graph
    if graph_or_handle is None:
        raise TypeError(f"{func_name}() missing required graph argument")
    return graph_or_handle
