"""Write-ahead journal making chunked ingest crash-consistent.

:func:`~repro.graph.store.writer.ingest_edge_stream` is a two-pass
pipeline: pass 1 routes edge chunks into per-partition spill files,
pass 2 builds one partition shard at a time.  A crash anywhere in the
middle used to leave an unreadable half-store.  The journal fixes that
with classic WAL discipline, all under ``<root>/_ingest/``:

* **pass 1** — after every chunk flush the spill handles are flushed
  and the journal atomically records ``(chunks committed, input items
  consumed, per-spill byte sizes)``.  On resume, spill files are
  truncated back to the last journaled sizes (discarding any torn
  tail), the already-consumed prefix of the restartable edge iterable
  is skipped, and pass 1 continues from the exact chunk boundary.
* **pass 2** — each partition's shard writes are journaled *after*
  they land and *before* its spill file is removed, so a resumed run
  redoes at most one partition (shard writes are deterministic
  overwrites) and skips completed ones.
* **publish** — the manifest save is already atomic (temp + rename);
  the journal and spill directory are swept only after it lands.

The ``store.journal.resume_vs_oneshot`` oracle pins the contract: a
build crashed at *any* chunk boundary and resumed is **byte-identical**
to the uninterrupted build.

Journal temp files are tracked in a module-level registry with an
``atexit`` sweep, so an interrupted (or ENOSPC-failed) atomic write
never strands ``journal.json.tmp`` litter.
"""

from __future__ import annotations

import atexit
import json
import os
from typing import Any, Dict, List, Optional, Union

from .format import PartitionMeta, StoreError

__all__ = ["INGEST_DIRNAME", "JOURNAL_FILENAME", "IngestJournal"]

INGEST_DIRNAME = "_ingest"
JOURNAL_FILENAME = "journal.json"

PathLike = Union[str, os.PathLike]

# Temp paths from in-flight atomic journal writes; swept at exit so a
# crash (or an ENOSPC mid-dump) cannot strand them.
_LIVE_TMP: set = set()


@atexit.register
def _sweep_tmp() -> None:
    for path in list(_LIVE_TMP):
        try:
            os.remove(path)
        except OSError:
            pass
        _LIVE_TMP.discard(path)


class IngestJournal:
    """Crash-consistent progress record of one chunked ingest.

    The ``fingerprint`` pins every parameter that shapes the output
    bytes; a resume against a journal with a different fingerprint is
    refused (the spills would not line up).
    """

    def __init__(self, root: PathLike, fingerprint: Dict[str, Any]) -> None:
        self.root = os.fspath(root)
        self.fingerprint = dict(fingerprint)
        self.phase = "pass1"  # pass1 | pass2
        self.chunks_committed = 0
        self.items_consumed = 0  # input iterable items consumed at last commit
        self.slots_spilled = 0
        self.spill_bytes: List[int] = []
        self.partitions_done: List[Dict[str, Any]] = []
        self.degrees_done: List[int] = []  # part ids whose degrees are on disk

    # -- paths --------------------------------------------------------------

    @property
    def dir(self) -> str:
        return os.path.join(self.root, INGEST_DIRNAME)

    @property
    def path(self) -> str:
        return os.path.join(self.dir, JOURNAL_FILENAME)

    # -- persistence --------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "phase": self.phase,
            "chunks_committed": self.chunks_committed,
            "items_consumed": self.items_consumed,
            "slots_spilled": self.slots_spilled,
            "spill_bytes": list(self.spill_bytes),
            "partitions_done": list(self.partitions_done),
        }

    def commit(self) -> None:
        """Atomically publish the current progress (temp + rename).

        The ENOSPC path is covered: a failed dump removes the temp file
        before re-raising, and the atexit sweep catches anything a hard
        crash leaves behind.
        """
        os.makedirs(self.dir, exist_ok=True)
        tmp = self.path + ".tmp"
        _LIVE_TMP.add(tmp)
        try:
            with open(tmp, "w") as handle:
                json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
            _LIVE_TMP.discard(tmp)
            raise
        os.replace(tmp, self.path)
        _LIVE_TMP.discard(tmp)

    @staticmethod
    def load(root: PathLike) -> Optional["IngestJournal"]:
        """The journal under ``root``, or ``None`` if no ingest is open."""
        path = os.path.join(os.fspath(root), INGEST_DIRNAME, JOURNAL_FILENAME)
        if not os.path.exists(path):
            return None
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"unreadable ingest journal {path!r}: {exc}") from exc
        journal = IngestJournal(root, data.get("fingerprint", {}))
        journal.phase = str(data.get("phase", "pass1"))
        journal.chunks_committed = int(data.get("chunks_committed", 0))
        journal.items_consumed = int(data.get("items_consumed", 0))
        journal.slots_spilled = int(data.get("slots_spilled", 0))
        journal.spill_bytes = [int(b) for b in data.get("spill_bytes", [])]
        journal.partitions_done = list(data.get("partitions_done", []))
        return journal

    def remove(self) -> None:
        """Drop the journal file (the enclosing dir is swept by the caller)."""
        try:
            os.remove(self.path)
        except OSError:
            pass

    # -- pass-1 bookkeeping -------------------------------------------------

    def commit_chunk(
        self, items_consumed: int, slots_spilled: int, spill_sizes: List[int]
    ) -> None:
        """Record one flushed chunk: the resume point moves forward."""
        self.chunks_committed += 1
        self.items_consumed = int(items_consumed)
        self.slots_spilled = int(slots_spilled)
        self.spill_bytes = [int(b) for b in spill_sizes]
        self.commit()

    def begin_pass2(self) -> None:
        self.phase = "pass2"
        self.commit()

    # -- pass-2 bookkeeping -------------------------------------------------

    def commit_partition(self, meta: PartitionMeta, total_slots: int) -> None:
        """Record one finished partition shard (before its spill is removed)."""
        self.partitions_done.append(
            {"meta": meta.as_dict(), "total_slots": int(total_slots)}
        )
        self.commit()

    def completed_partitions(self) -> Dict[int, PartitionMeta]:
        out: Dict[int, PartitionMeta] = {}
        for entry in self.partitions_done:
            meta = PartitionMeta.from_dict(entry["meta"])
            out[meta.part_id] = meta
        return out

    def matches(self, fingerprint: Dict[str, Any]) -> bool:
        return self.fingerprint == dict(fingerprint)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestJournal(phase={self.phase!r}, "
            f"chunks={self.chunks_committed}, "
            f"parts_done={len(self.partitions_done)})"
        )
