"""Differential checks for the on-disk store (`repro check --subsystem store`).

Every oracle here builds a store whose shard-cache budget is capped
*below* the total shard bytes, so paging actually happens — the
stored-vs-in-memory pairs are exercising the mmap/LRU path, not a
fully-resident copy:

* ``store.pagerank.stored_vs_memory`` / ``store.bfs...`` /
  ``store.wcc...`` — dense analytics over a paged ``StoredGraph`` are
  **bit-identical** to the in-memory graph (the ``iter_csr_runs``
  ordering contract);
* ``store.matching.count_stored_vs_memory`` — the backtracking matcher
  counts the same embeddings through the handle surface;
* ``store.manifest.roundtrip`` — shards re-assemble to the exact
  original CSR, chunked ingest is byte-identical to the one-shot
  build, and the manifest's counts agree with the shards;
* ``store.cache.accounting`` — ``hits + misses == pages requested``,
  bytes paged equal the missed shards' bytes, and the obs counters
  mirror the in-object stats;
* ``store.journal.resume_vs_oneshot`` — an ingest crashed at a random
  journaled chunk boundary (and one torn mid-flush) then resumed is
  **byte-identical**, full tree SHA-256, to the uninterrupted build.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Dict, List

import numpy as np

from ...check.invariants import same_bits, same_values
from ...check.registry import BIT_IDENTICAL, invariant, pair
from ...check.workloads import gen_graph_params, make_graph
from ...matching.backtrack import count_matches
from ...matching.pattern import path_pattern, star_pattern, triangle_pattern
from ...obs import MetricsRegistry
from ...resilience.faults import FaultError, FaultPlan
from ...tlav.vectorized import bfs_dense, pagerank_dense, wcc_dense
from .format import Manifest, verify_file
from .stored import open_store
from .writer import STREAMING_PARTITIONERS, build_store, ingest_edge_stream

#: Partitioners the store oracles rotate through (all one-shot capable).
STORE_PARTITIONERS = ("hash", "range", "metis")


def _gen_store(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 72))
    params["num_parts"] = int(rng.integers(2, 5))
    params["store_partitioner"] = int(rng.integers(len(STORE_PARTITIONERS)))
    params["part_seed"] = int(rng.integers(1 << 16))
    return params


def _build_and_open(graph, params: Dict, tmp: str, obs=None):
    """Materialize ``graph`` and open it with a paging-forcing budget."""
    partitioner = STORE_PARTITIONERS[
        int(params["store_partitioner"]) % len(STORE_PARTITIONERS)
    ]
    manifest = build_store(
        graph,
        os.path.join(tmp, "g"),
        partition=partitioner,
        num_parts=max(1, int(params["num_parts"])),
        seed=int(params.get("part_seed", 0)),
    )
    # Cap the cache below the total shard bytes: paging must happen.
    budget = max(1, manifest.shard_bytes // 2)
    return open_store(os.path.join(tmp, "g"), cache_budget=budget, obs=obs)


@pair(
    "store.pagerank.stored_vs_memory", "store", BIT_IDENTICAL,
    gen=_gen_store, floors={"n": 4, "num_parts": 1, "store_partitioner": 0},
    description="Dense PageRank over a StoredGraph whose shard cache is "
    "capped below total shard bytes equals the in-memory result bit for "
    "bit (the iter_csr_runs scatter-order contract).",
)
def _check_pagerank_stored(params: Dict) -> List[str]:
    graph = make_graph(params)
    with tempfile.TemporaryDirectory(prefix="check-store-") as tmp:
        stored = _build_and_open(graph, params, tmp)
        got = pagerank_dense(stored, iterations=8)
        out = same_bits(pagerank_dense(graph, iterations=8), got, "pagerank")
        if stored.cache.stats.evictions == 0:
            out.append("cache: no evictions — paging never happened")
        stored.close()
    return out


@pair(
    "store.bfs.stored_vs_memory", "store", BIT_IDENTICAL,
    gen=_gen_store, floors={"n": 4, "num_parts": 1, "store_partitioner": 0},
    description="Dense BFS levels from vertex 0 agree exactly between "
    "the paged store and the in-memory graph.",
)
def _check_bfs_stored(params: Dict) -> List[str]:
    graph = make_graph(params)
    with tempfile.TemporaryDirectory(prefix="check-store-") as tmp:
        stored = _build_and_open(graph, params, tmp)
        out = same_bits(bfs_dense(graph, 0), bfs_dense(stored, 0), "bfs")
        stored.close()
    return out


@pair(
    "store.wcc.stored_vs_memory", "store", BIT_IDENTICAL,
    gen=_gen_store, floors={"n": 4, "num_parts": 1, "store_partitioner": 0},
    description="Hash-min WCC labels agree exactly between the paged "
    "store and the in-memory graph.",
)
def _check_wcc_stored(params: Dict) -> List[str]:
    graph = make_graph(params)
    with tempfile.TemporaryDirectory(prefix="check-store-") as tmp:
        stored = _build_and_open(graph, params, tmp)
        out = same_bits(wcc_dense(graph), wcc_dense(stored), "wcc")
        stored.close()
    return out


_MATCH_PATTERNS = (
    ("triangle", triangle_pattern),
    ("path3", lambda: path_pattern(3)),
    ("star3", lambda: star_pattern(3)),
)


def _gen_match(rng: np.random.Generator) -> Dict:
    params = _gen_store(rng)
    params["pattern"] = int(rng.integers(len(_MATCH_PATTERNS)))
    return params


@pair(
    "store.matching.count_stored_vs_memory", "store", BIT_IDENTICAL,
    gen=_gen_match,
    floors={"n": 4, "num_parts": 1, "store_partitioner": 0, "pattern": 0},
    description="The backtracking matcher counts identical embeddings "
    "through the paged handle surface and the concrete Graph.",
)
def _check_matching_stored(params: Dict) -> List[str]:
    graph = make_graph(params)
    name, build = _MATCH_PATTERNS[int(params["pattern"]) % len(_MATCH_PATTERNS)]
    pattern = build()
    with tempfile.TemporaryDirectory(prefix="check-store-") as tmp:
        stored = _build_and_open(graph, params, tmp)
        out = same_values(
            count_matches(graph, pattern),
            count_matches(stored, pattern),
            f"count[{name}]",
        )
        stored.close()
    return out


@invariant(
    "store.manifest.roundtrip", "store", gen=_gen_store,
    floors={"n": 4, "num_parts": 1, "store_partitioner": 0},
    description="Partition shards re-assemble to the exact original CSR; "
    "manifest counts match the shards; every manifest-listed file "
    "verifies; chunked ingest writes byte-identical shards to the "
    "one-shot build under the same streaming partitioner.",
)
def _check_manifest_roundtrip(params: Dict) -> List[str]:
    graph = make_graph(params)
    out: List[str] = []
    partitioner = STORE_PARTITIONERS[
        int(params["store_partitioner"]) % len(STORE_PARTITIONERS)
    ]
    parts = max(1, int(params["num_parts"]))
    seed = int(params.get("part_seed", 0))
    with tempfile.TemporaryDirectory(prefix="check-store-") as tmp:
        root = os.path.join(tmp, "g")
        manifest = build_store(
            graph, root, partition=partitioner, num_parts=parts, seed=seed
        )
        loaded = Manifest.load(root)
        if loaded.as_dict() != manifest.as_dict():
            out.append("manifest: save/load round-trip drifted")
        for entry in loaded.files.values():
            verify_file(root, entry)
        slot_total = 0
        for part in loaded.partitions:
            for entry in part.files.values():
                verify_file(root, entry)
            slot_total += part.num_edge_slots
        if slot_total != loaded.num_edge_slots:
            out.append(
                f"manifest: partition slots sum to {slot_total}, "
                f"manifest says {loaded.num_edge_slots}"
            )
        stored = open_store(root)
        rebuilt = stored.to_graph()
        out += same_bits(graph.indptr, rebuilt.indptr, "indptr")
        out += same_bits(graph.indices, rebuilt.indices, "indices")
        if rebuilt != graph:
            out.append("roundtrip: Graph equality failed")
        stored.close()
        # Chunked == one-shot, byte for byte, when the partitioner can
        # stream (pure function of the vertex id).
        if partitioner in STREAMING_PARTITIONERS and not graph.directed:
            chunked_root = os.path.join(tmp, "chunked")
            one_shot_root = os.path.join(tmp, "one_shot")
            build_store(
                graph, one_shot_root, partition=partitioner,
                num_parts=parts, seed=seed,
            )
            ingest_edge_stream(
                graph.edges(), graph.num_vertices, chunked_root,
                directed=False, partition=partitioner, num_parts=parts,
                seed=seed, chunk_edges=7,
            )
            for part in Manifest.load(one_shot_root).partitions:
                for key, entry in part.files.items():
                    with open(os.path.join(one_shot_root, entry.path), "rb") as a:
                        want = a.read()
                    with open(os.path.join(chunked_root, entry.path), "rb") as b:
                        have = b.read()
                    if want != have:
                        out.append(
                            f"ingest: part{part.part_id}/{key} differs "
                            f"between chunked and one-shot builds"
                        )
    return out


def _tree_digest(root: str) -> str:
    """SHA-256 over every file under ``root`` (relative path + bytes)."""
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for fname in sorted(filenames):
            full = os.path.join(dirpath, fname)
            digest.update(os.path.relpath(full, root).encode() + b"\0")
            with open(full, "rb") as handle:
                digest.update(handle.read())
            digest.update(b"\1")
    return digest.hexdigest()


def _gen_journal(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 48))
    params["num_parts"] = int(rng.integers(1, 4))
    params["stream_partitioner"] = int(rng.integers(len(STREAMING_PARTITIONERS)))
    params["part_seed"] = int(rng.integers(1 << 16))
    params["chunk_edges"] = int(rng.integers(3, 13))
    params["crash_pick"] = int(rng.integers(1 << 16))
    return params


@invariant(
    "store.journal.resume_vs_oneshot", "store", gen=_gen_journal,
    floors={"n": 4, "num_parts": 1, "stream_partitioner": 0,
            "chunk_edges": 2, "crash_pick": 0},
    description="Chunked ingest crashed at a randomly drawn journaled "
    "chunk boundary — and once torn mid-flush — then resumed produces a "
    "store whose full-tree SHA-256 equals the uninterrupted build's.",
)
def _check_journal_resume(params: Dict) -> List[str]:
    graph = make_graph(params)
    out: List[str] = []
    partitioner = STREAMING_PARTITIONERS[
        int(params["stream_partitioner"]) % len(STREAMING_PARTITIONERS)
    ]
    edges = [(int(u), int(v)) for u, v in graph.edges()]
    effective = sum(1 for u, v in edges if u != v)
    if effective == 0:
        return out  # nothing to spill — no chunk boundary to crash on
    chunk_edges = max(2, int(params["chunk_edges"]))
    # Pass 1 flushes once ``2 * chunk_edges`` slots accumulate; an
    # undirected edge contributes two slots, a directed arc one.
    slots_per_edge = 1 if graph.directed else 2
    edges_per_chunk = -(-2 * chunk_edges // slots_per_edge)
    n_chunks = max(1, -(-effective // edges_per_chunk))
    crash_chunk = int(params["crash_pick"]) % n_chunks
    kwargs = dict(
        num_vertices=graph.num_vertices, directed=graph.directed,
        partition=partitioner, num_parts=max(1, int(params["num_parts"])),
        seed=int(params.get("part_seed", 0)), chunk_edges=chunk_edges,
        name="g",
    )
    with tempfile.TemporaryDirectory(prefix="check-journal-") as tmp:
        ref = os.path.join(tmp, "ref")
        ingest_edge_stream(iter(edges), path=ref, **kwargs)
        want = _tree_digest(ref)

        crash_dir = os.path.join(tmp, "crash")
        injector = FaultPlan(seed=0).crash_at_chunk(crash_chunk).build()
        try:
            ingest_edge_stream(
                iter(edges), path=crash_dir, injector=injector, **kwargs
            )
            out.append(
                f"journal: crash_at_chunk({crash_chunk}) never fired "
                f"({n_chunks} chunks expected)"
            )
        except FaultError:
            ingest_edge_stream(iter(edges), path=crash_dir, resume=True, **kwargs)
            if _tree_digest(crash_dir) != want:
                out.append(
                    f"journal: resume after crash at chunk {crash_chunk} is "
                    f"not byte-identical to the one-shot build"
                )

        torn_dir = os.path.join(tmp, "torn")
        injector = FaultPlan(seed=0).torn_write(chunk=0).build()
        try:
            ingest_edge_stream(
                iter(edges), path=torn_dir, injector=injector, **kwargs
            )
            out.append("journal: torn_write(0) never fired")
        except FaultError:
            ingest_edge_stream(iter(edges), path=torn_dir, resume=True, **kwargs)
            if _tree_digest(torn_dir) != want:
                out.append(
                    "journal: resume after a torn spill tail is not "
                    "byte-identical to the one-shot build"
                )
    return out


@invariant(
    "store.cache.accounting", "store", gen=_gen_store,
    floors={"n": 4, "num_parts": 1, "store_partitioner": 0},
    description="Shard-cache accounting: hits + misses equals pages "
    "requested (2 per neighbors() call), bytes_paged sums the missed "
    "shards, and the store.* obs counters mirror the in-object stats.",
)
def _check_cache_accounting(params: Dict) -> List[str]:
    graph = make_graph(params)
    out: List[str] = []
    obs = MetricsRegistry()
    with tempfile.TemporaryDirectory(prefix="check-store-") as tmp:
        stored = _build_and_open(graph, params, tmp, obs=obs)
        n = stored.num_vertices
        requested = 0
        for v in range(0, n, 3):
            stored.neighbors(v)
            requested += 2  # one indptr page + one indices page
        stats = stored.cache.stats
        if stats.hits + stats.misses != requested:
            out.append(
                f"cache: hits({stats.hits}) + misses({stats.misses}) != "
                f"pages requested ({requested})"
            )
        if stats.pages_requested != requested:
            out.append(
                f"cache: pages_requested={stats.pages_requested}, "
                f"expected {requested}"
            )
        counters = {
            "store.shard_hits": stats.hits,
            "store.shard_misses": stats.misses,
            "store.shard_evictions": stats.evictions,
            "store.bytes_paged": stats.bytes_paged,
        }
        for name, want in counters.items():
            metric = obs.counter(name)
            got = sum(metric.series().values())
            if int(got) != int(want):
                out.append(f"obs: {name}={got}, cache stats say {want}")
        budget = stored.cache.budget
        if budget is not None and len(stored.cache) > 1:
            if stored.cache.resident_bytes > max(
                budget, max(e.nbytes for p in stored.manifest.partitions
                            for e in p.files.values())
            ):
                out.append(
                    f"cache: resident {stored.cache.resident_bytes} bytes "
                    f"exceeds budget {budget} with multiple entries"
                )
        stored.close()
        if stored.cache.resident_bytes != 0:
            out.append("cache: close() left resident bytes")
    return out
