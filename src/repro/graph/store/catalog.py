"""A directory of stores, as the serving layer's multi-graph catalog.

A *catalog* is just a directory whose immediate subdirectories are
stores (each holding a ``graph.json``).  :class:`StoreCatalog` scans
it, exposes the manifests without opening any shards, and opens graphs
on demand with a per-catalog default cache budget.  The serve registry
builds on this: a catalog-registered graph's epoch is its manifest
``version``, so invalidation state survives process restarts.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from .format import Manifest, StoreError, is_store_dir
from .stored import StoredGraph, open_store

__all__ = ["StoreCatalog"]

PathLike = Union[str, os.PathLike]


class StoreCatalog:
    """Enumerate and open the stores under one root directory."""

    def __init__(
        self,
        root: PathLike,
        cache_budget: Optional[int] = None,
        obs=None,
        checksum: bool = True,
    ) -> None:
        self.root = os.fspath(root)
        if not os.path.isdir(self.root):
            raise StoreError(f"catalog root {self.root!r} is not a directory")
        self.cache_budget = cache_budget
        self.obs = obs
        self.checksum = checksum

    def names(self) -> List[str]:
        """Store subdirectory names, sorted."""
        out = []
        for entry in sorted(os.listdir(self.root)):
            if is_store_dir(os.path.join(self.root, entry)):
                out.append(entry)
        return out

    def __contains__(self, name: str) -> bool:
        return is_store_dir(os.path.join(self.root, name))

    def path(self, name: str) -> str:
        full = os.path.join(self.root, name)
        if not is_store_dir(full):
            raise StoreError(f"catalog has no store named {name!r}")
        return full

    def manifest(self, name: str) -> Manifest:
        """Read one store's manifest (no shard I/O)."""
        return Manifest.load(self.path(name))

    def manifests(self) -> Dict[str, Manifest]:
        return {name: self.manifest(name) for name in self.names()}

    def open(
        self, name: str, cache_budget: Optional[int] = None
    ) -> StoredGraph:
        """Open one store with the catalog's (or an override) budget."""
        budget = self.cache_budget if cache_budget is None else cache_budget
        return open_store(
            self.path(name),
            cache_budget=budget,
            obs=self.obs,
            checksum=self.checksum,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StoreCatalog({self.root!r}, stores={self.names()})"
