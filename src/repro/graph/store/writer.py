"""Store builders: one-shot materialization and chunked ingest.

Two ways to produce the same bytes:

* :func:`build_store` — materialize an in-memory :class:`Graph` (plus
  any partitioner's output) to a store directory.  This is the path
  benchmarks and the serving catalog use when the graph already fits
  in RAM.
* :func:`ingest_edge_stream` — the DistDGL-style chunked pipeline: the
  edge iterable is consumed in bounded chunks, each chunk is routed to
  per-partition spill files, and partitions are then built **one at a
  time** — the full edge list is never resident.  Peak memory is
  ``O(|V| + chunk + max_k |E_k|)``, which is what lets graphs larger
  than RAM be written at all.

Both funnel every partition through the same shard writer, so a
chunked build of the same edges under the same partition layout is
**byte-identical** to the one-shot build (the ingest-pipeline tests
assert file-level equality, and the ``store.manifest.roundtrip``
oracle asserts shard → CSR reassembly).

Streaming builds can only use partitioners that are pure functions of
the vertex id (``hash``, ``range``); graph-aware partitioners
(``metis``) need the whole structure and are one-shot only.
"""

from __future__ import annotations

import os
import shutil
from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from ..csr import Graph
from ..partition import Partition
from .format import (
    FileEntry,
    Manifest,
    MANIFEST_FILENAME,
    PartitionMeta,
    StoreError,
    file_entry,
)

__all__ = [
    "build_store",
    "ingest_edge_stream",
    "streaming_assignment",
    "STREAMING_PARTITIONERS",
]

PathLike = Union[str, os.PathLike]

#: Partitioners computable from the vertex id alone (chunked-ingest safe).
STREAMING_PARTITIONERS = ("hash", "range")


def streaming_assignment(
    kind: str, num_vertices: int, num_parts: int, seed: int = 0
) -> np.ndarray:
    """Vertex → partition map that never needs the graph structure.

    ``hash`` reproduces :func:`repro.graph.partition.hash_partition`'s
    salted multiplicative hash bit-for-bit; ``range`` reproduces
    :func:`repro.graph.partition.range_partition`'s contiguous bounds.
    """
    n, p = int(num_vertices), max(1, int(num_parts))
    if kind == "hash":
        ids = np.arange(n, dtype=np.uint64)
        salt = np.uint64(0x9E3779B97F4A7C15 + seed)
        mixed = (ids + salt) * np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(31)
        return (mixed % np.uint64(p)).astype(np.int64)
    if kind == "range":
        bounds = np.linspace(0, n, p + 1).astype(np.int64)
        assignment = np.zeros(n, dtype=np.int64)
        for k in range(p):
            assignment[bounds[k]: bounds[k + 1]] = k
        return assignment
    raise ValueError(
        f"streaming builds support {STREAMING_PARTITIONERS}, not {kind!r}"
    )


# ----------------------------------------------------------------------
# Shared low-level writers
# ----------------------------------------------------------------------


def _prepare_root(path: PathLike, overwrite: bool) -> str:
    root = os.fspath(path)
    if os.path.exists(os.path.join(root, MANIFEST_FILENAME)):
        if not overwrite:
            raise StoreError(
                f"store already exists at {root!r}; pass overwrite=True"
            )
        shutil.rmtree(root)
    os.makedirs(root, exist_ok=True)
    return root


def _write_array(root: str, rel: str, array: np.ndarray) -> FileEntry:
    full = os.path.join(root, rel)
    os.makedirs(os.path.dirname(full) or root, exist_ok=True)
    np.save(full, array, allow_pickle=False)
    rel_npy = rel if rel.endswith(".npy") else rel + ".npy"
    return file_entry(root, rel_npy)


def _write_partition_shard(
    root: str,
    part_id: int,
    nodes: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_labels: Optional[np.ndarray],
    feature_rows: Optional[np.ndarray],
) -> PartitionMeta:
    """Write one partition's shard files; the single byte-layout authority."""
    prefix = f"part{part_id}"
    files: Dict[str, FileEntry] = {}
    files["nodes"] = _write_array(
        root, f"{prefix}/nodes.npy", np.ascontiguousarray(nodes, dtype=np.int64)
    )
    files["indptr"] = _write_array(
        root, f"{prefix}/indptr.npy", np.ascontiguousarray(indptr, dtype=np.int64)
    )
    files["indices"] = _write_array(
        root, f"{prefix}/indices.npy",
        np.ascontiguousarray(indices, dtype=np.int64),
    )
    if edge_labels is not None:
        files["edge_labels"] = _write_array(
            root, f"{prefix}/edge_labels.npy",
            np.ascontiguousarray(edge_labels, dtype=np.int64),
        )
    if feature_rows is not None:
        files["features"] = _write_array(
            root, f"{prefix}/features.npy",
            np.ascontiguousarray(feature_rows, dtype=np.float64),
        )
    return PartitionMeta(
        part_id=part_id,
        num_vertices=int(nodes.size),
        num_edge_slots=int(indices.size),
        files=files,
    )


def _resolve_partition(
    graph: Graph,
    partition: Union[str, Partition],
    num_parts: int,
    seed: int,
) -> Tuple[np.ndarray, str, int]:
    """Normalize the partition argument to (assignment, name, parts)."""
    if isinstance(partition, Partition):
        return (
            np.asarray(partition.assignment, dtype=np.int64),
            "custom",
            partition.num_parts,
        )
    if partition in STREAMING_PARTITIONERS:
        return (
            streaming_assignment(partition, graph.num_vertices, num_parts, seed),
            partition,
            max(1, num_parts),
        )
    if partition == "metis":
        from ..partition import metis_like_partition

        part = metis_like_partition(graph, max(1, num_parts), seed=seed)
        return np.asarray(part.assignment, dtype=np.int64), "metis", part.num_parts
    raise ValueError(
        f"unknown partitioner {partition!r}; pass a Partition or one of "
        f"{STREAMING_PARTITIONERS + ('metis',)}"
    )


# ----------------------------------------------------------------------
# One-shot build
# ----------------------------------------------------------------------


def build_store(
    graph_or_handle,
    path: PathLike,
    *,
    partition: Union[str, Partition] = "range",
    num_parts: int = 1,
    seed: int = 0,
    features: Optional[np.ndarray] = None,
    name: Optional[str] = None,
    overwrite: bool = False,
) -> Manifest:
    """Materialize a graph (any handle) to a store directory.

    ``partition`` is a :class:`~repro.graph.partition.Partition` (any
    partitioner's output — vertex-cut partitions use their primary
    ``assignment``) or a partitioner name (``hash``/``range``/``metis``).
    ``features`` is an optional ``(n, d)`` array written as per-partition
    feature shards.  Returns the saved :class:`Manifest`.
    """
    from .handle import as_handle

    graph = as_handle(graph_or_handle).to_graph()
    root = _prepare_root(path, overwrite)
    n = graph.num_vertices
    assignment, partitioner_name, parts = _resolve_partition(
        graph, partition, num_parts, seed
    )
    if assignment.size != n:
        raise StoreError(
            f"partition assigns {assignment.size} vertices, graph has {n}"
        )
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != n:
            raise StoreError(
                f"features must be (n, d); got {features.shape} for n={n}"
            )
    degrees = graph.degrees()
    indptr, indices = graph.indptr, graph.indices

    partitions = []
    for k in range(parts):
        nodes = np.flatnonzero(assignment == k).astype(np.int64)
        if nodes.size:
            slices = [indices[indptr[v]: indptr[v + 1]] for v in nodes]
            part_indices = (
                np.concatenate(slices) if slices else np.empty(0, dtype=np.int64)
            )
            part_indptr = np.zeros(nodes.size + 1, dtype=np.int64)
            np.cumsum(degrees[nodes], out=part_indptr[1:])
            part_labels = None
            if graph.edge_labels is not None:
                part_labels = np.concatenate(
                    [graph.edge_labels[indptr[v]: indptr[v + 1]] for v in nodes]
                )
        else:
            part_indices = np.empty(0, dtype=np.int64)
            part_indptr = np.zeros(1, dtype=np.int64)
            part_labels = (
                np.empty(0, dtype=np.int64)
                if graph.edge_labels is not None
                else None
            )
        feature_rows = features[nodes] if features is not None else None
        partitions.append(
            _write_partition_shard(
                root, k, nodes, part_indptr, part_indices, part_labels,
                feature_rows,
            )
        )

    files = {
        "assignment": _write_array(root, "assignment.npy", assignment),
        "degrees": _write_array(root, "degrees.npy", degrees),
    }
    if graph.vertex_labels is not None:
        files["vertex_labels"] = _write_array(
            root, "vertex_labels.npy", graph.vertex_labels
        )
    manifest = Manifest(
        name=name or os.path.basename(os.path.normpath(root)) or "graph",
        num_vertices=n,
        num_edges=graph.num_edges,
        num_edge_slots=int(indices.size),
        directed=graph.directed,
        num_parts=parts,
        partitioner=partitioner_name,
        built_by="one_shot",
        has_vertex_labels=graph.vertex_labels is not None,
        has_edge_labels=graph.edge_labels is not None,
        feature_dim=None if features is None else int(features.shape[1]),
        partitions=partitions,
        files=files,
    )
    manifest.save(root)
    return manifest


# ----------------------------------------------------------------------
# Chunked ingest (graphs larger than RAM)
# ----------------------------------------------------------------------


def ingest_edge_stream(
    edges: Iterable[Tuple[int, int]],
    num_vertices: int,
    path: PathLike,
    *,
    directed: bool = False,
    partition: str = "hash",
    num_parts: int = 1,
    seed: int = 0,
    chunk_edges: int = 200_000,
    features: Optional[np.ndarray] = None,
    name: Optional[str] = None,
    overwrite: bool = False,
) -> Manifest:
    """Write a store from an edge iterable without holding the edge list.

    Pass 1 consumes ``edges`` in chunks of ``chunk_edges`` pairs,
    routing each directed slot ``u -> v`` (undirected inputs emit both
    directions) to its owner partition's spill file.  Pass 2 builds one
    partition at a time: load that partition's spill, sort, dedupe,
    drop self-loops, and write the CSR shard.  Equivalent to
    ``build_store(Graph.from_edges(edges, ...), ...)`` under the same
    partition layout — byte-for-byte.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    n = int(num_vertices)
    root = _prepare_root(path, overwrite)
    assignment = streaming_assignment(partition, n, num_parts, seed)
    parts = max(1, int(num_parts))
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != n:
            raise StoreError(
                f"features must be (n, d); got {features.shape} for n={n}"
            )

    spill_dir = os.path.join(root, "_ingest")
    os.makedirs(spill_dir, exist_ok=True)
    spill_paths = [os.path.join(spill_dir, f"part{k}.edges.bin") for k in range(parts)]
    spills = [open(p, "wb") for p in spill_paths]
    total_slots_spilled = 0
    try:
        # -- pass 1: chunked routing to per-partition spill files --------
        chunk_src, chunk_dst = [], []

        def flush() -> None:
            nonlocal total_slots_spilled
            if not chunk_src:
                return
            src = np.asarray(chunk_src, dtype=np.int64)
            dst = np.asarray(chunk_dst, dtype=np.int64)
            owner = assignment[src]
            for k in np.unique(owner):
                mask = owner == k
                pairs = np.empty((int(mask.sum()), 2), dtype=np.int64)
                pairs[:, 0] = src[mask]
                pairs[:, 1] = dst[mask]
                spills[int(k)].write(pairs.tobytes())
            total_slots_spilled += src.size
            chunk_src.clear()
            chunk_dst.clear()

        for u, v in edges:
            u, v = int(u), int(v)
            if u < 0 or v < 0 or u >= n or v >= n:
                raise StoreError(
                    f"edge ({u}, {v}) references a vertex outside 0..{n - 1}"
                )
            if u == v:
                continue  # GraphBuilder drops self-loops; stay equivalent
            chunk_src.append(u)
            chunk_dst.append(v)
            if not directed:
                chunk_src.append(v)
                chunk_dst.append(u)
            if len(chunk_src) >= 2 * chunk_edges:
                flush()
        flush()
    finally:
        for handle in spills:
            handle.close()

    # -- pass 2: one partition at a time ----------------------------------
    degrees = np.zeros(n, dtype=np.int64)
    partitions = []
    total_slots = 0
    for k in range(parts):
        raw = np.fromfile(spill_paths[k], dtype=np.int64)
        pairs = raw.reshape(-1, 2) if raw.size else np.empty((0, 2), dtype=np.int64)
        src, dst = pairs[:, 0], pairs[:, 1]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size:
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst = src[keep], dst[keep]
        nodes = np.flatnonzero(assignment == k).astype(np.int64)
        local_src = np.searchsorted(nodes, src)
        counts = np.bincount(local_src, minlength=nodes.size)
        part_indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=part_indptr[1:])
        degrees[nodes] = counts
        feature_rows = features[nodes] if features is not None else None
        partitions.append(
            _write_partition_shard(
                root, k, nodes, part_indptr, dst, None, feature_rows
            )
        )
        total_slots += int(dst.size)
        os.remove(spill_paths[k])
    shutil.rmtree(spill_dir, ignore_errors=True)

    files = {
        "assignment": _write_array(root, "assignment.npy", assignment),
        "degrees": _write_array(root, "degrees.npy", degrees),
    }
    manifest = Manifest(
        name=name or os.path.basename(os.path.normpath(root)) or "graph",
        num_vertices=n,
        num_edges=total_slots if directed else total_slots // 2,
        num_edge_slots=total_slots,
        directed=bool(directed),
        num_parts=parts,
        partitioner=partition,
        built_by="chunked",
        chunk_edges=int(chunk_edges),
        feature_dim=None if features is None else int(features.shape[1]),
        partitions=partitions,
        files=files,
    )
    manifest.save(root)
    return manifest
