"""Store builders: one-shot materialization and chunked ingest.

Two ways to produce the same bytes:

* :func:`build_store` — materialize an in-memory :class:`Graph` (plus
  any partitioner's output) to a store directory.  This is the path
  benchmarks and the serving catalog use when the graph already fits
  in RAM.  With ``overwrite=True`` the build is **atomic**: it lands
  in a sibling temp directory and is renamed into place, so an
  interrupted overwrite can never destroy the previous good store.
* :func:`ingest_edge_stream` — the DistDGL-style chunked pipeline: the
  edge iterable is consumed in bounded chunks, each chunk is routed to
  per-partition spill files, and partitions are then built **one at a
  time** — the full edge list is never resident.  Peak memory is
  ``O(|V| + chunk + max_k |E_k|)``, which is what lets graphs larger
  than RAM be written at all.  Progress is journaled at every chunk
  and partition boundary (see :mod:`repro.graph.store.journal`), so a
  crashed ingest resumes with ``resume=True`` and produces bytes
  identical to an uninterrupted run.

Both funnel every partition through the same shard writer, so a
chunked build of the same edges under the same partition layout is
**byte-identical** to the one-shot build (the ingest-pipeline tests
assert file-level equality, and the ``store.journal.resume_vs_oneshot``
oracle pins crash-resume equivalence on top).

Storage fault injection threads through every shard write: a
:class:`~repro.resilience.FaultInjector` passed as ``injector`` can
fail individual file writes (``io_error`` — retried once,
deterministically), tear a spill flush mid-chunk (``torn_write``), or
crash the ingest at an exact chunk boundary (``crash_at_chunk``).

Streaming builds can only use partitioners that are pure functions of
the vertex id (``hash``, ``range``); graph-aware partitioners
(``metis``) need the whole structure and are one-shot only.
"""

from __future__ import annotations

import atexit
import itertools
import os
import shutil
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ...resilience.faults import FaultError, FaultInjector
from ..csr import Graph
from ..partition import Partition
from .format import (
    FileEntry,
    Manifest,
    MANIFEST_FILENAME,
    PartitionMeta,
    StoreError,
    file_entry,
)
from .journal import INGEST_DIRNAME, IngestJournal

__all__ = [
    "build_store",
    "ingest_edge_stream",
    "streaming_assignment",
    "STREAMING_PARTITIONERS",
]

PathLike = Union[str, os.PathLike]

#: Partitioners computable from the vertex id alone (chunked-ingest safe).
STREAMING_PARTITIONERS = ("hash", "range")

# Sibling temp directories from in-flight atomic overwrites; swept at
# exit so a crashed build cannot strand half-written stores.
_LIVE_TMP_DIRS: set = set()


@atexit.register
def _sweep_tmp_dirs() -> None:
    for path in list(_LIVE_TMP_DIRS):
        shutil.rmtree(path, ignore_errors=True)
        _LIVE_TMP_DIRS.discard(path)


def streaming_assignment(
    kind: str, num_vertices: int, num_parts: int, seed: int = 0
) -> np.ndarray:
    """Vertex → partition map that never needs the graph structure.

    ``hash`` reproduces :func:`repro.graph.partition.hash_partition`'s
    salted multiplicative hash bit-for-bit; ``range`` reproduces
    :func:`repro.graph.partition.range_partition`'s contiguous bounds.
    """
    n, p = int(num_vertices), max(1, int(num_parts))
    if kind == "hash":
        ids = np.arange(n, dtype=np.uint64)
        salt = np.uint64(0x9E3779B97F4A7C15 + seed)
        mixed = (ids + salt) * np.uint64(0xBF58476D1CE4E5B9)
        mixed ^= mixed >> np.uint64(31)
        return (mixed % np.uint64(p)).astype(np.int64)
    if kind == "range":
        bounds = np.linspace(0, n, p + 1).astype(np.int64)
        assignment = np.zeros(n, dtype=np.int64)
        for k in range(p):
            assignment[bounds[k]: bounds[k + 1]] = k
        return assignment
    raise ValueError(
        f"streaming builds support {STREAMING_PARTITIONERS}, not {kind!r}"
    )


# ----------------------------------------------------------------------
# Shared low-level writers
# ----------------------------------------------------------------------


def _prepare_root(path: PathLike, overwrite: bool) -> str:
    root = os.fspath(path)
    if os.path.exists(os.path.join(root, MANIFEST_FILENAME)):
        if not overwrite:
            raise StoreError(
                f"store already exists at {root!r}; pass overwrite=True"
            )
        shutil.rmtree(root)
    os.makedirs(root, exist_ok=True)
    return root


def _write_array(
    root: str,
    rel: str,
    array: np.ndarray,
    injector: Optional[FaultInjector] = None,
) -> FileEntry:
    full = os.path.join(root, rel)
    os.makedirs(os.path.dirname(full) or root, exist_ok=True)
    rel_npy = rel if rel.endswith(".npy") else rel + ".npy"
    last: Optional[FaultError] = None
    for attempt in range(2):  # one deterministic retry per shard write
        if injector is not None and injector.take_io_error(rel_npy, attempt):
            last = FaultError("io_error", path=rel_npy, attempt=attempt)
            continue
        np.save(full, array, allow_pickle=False)
        return file_entry(root, rel_npy)
    assert last is not None
    raise last


def _write_partition_shard(
    root: str,
    part_id: int,
    nodes: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    edge_labels: Optional[np.ndarray],
    feature_rows: Optional[np.ndarray],
    injector: Optional[FaultInjector] = None,
) -> PartitionMeta:
    """Write one partition's shard files; the single byte-layout authority."""
    prefix = f"part{part_id}"
    files: Dict[str, FileEntry] = {}
    files["nodes"] = _write_array(
        root, f"{prefix}/nodes.npy",
        np.ascontiguousarray(nodes, dtype=np.int64), injector,
    )
    files["indptr"] = _write_array(
        root, f"{prefix}/indptr.npy",
        np.ascontiguousarray(indptr, dtype=np.int64), injector,
    )
    files["indices"] = _write_array(
        root, f"{prefix}/indices.npy",
        np.ascontiguousarray(indices, dtype=np.int64), injector,
    )
    if edge_labels is not None:
        files["edge_labels"] = _write_array(
            root, f"{prefix}/edge_labels.npy",
            np.ascontiguousarray(edge_labels, dtype=np.int64), injector,
        )
    if feature_rows is not None:
        files["features"] = _write_array(
            root, f"{prefix}/features.npy",
            np.ascontiguousarray(feature_rows, dtype=np.float64), injector,
        )
    return PartitionMeta(
        part_id=part_id,
        num_vertices=int(nodes.size),
        num_edge_slots=int(indices.size),
        files=files,
    )


def _resolve_partition(
    graph: Graph,
    partition: Union[str, Partition],
    num_parts: int,
    seed: int,
) -> Tuple[np.ndarray, str, int]:
    """Normalize the partition argument to (assignment, name, parts)."""
    if isinstance(partition, Partition):
        return (
            np.asarray(partition.assignment, dtype=np.int64),
            "custom",
            partition.num_parts,
        )
    if partition in STREAMING_PARTITIONERS:
        return (
            streaming_assignment(partition, graph.num_vertices, num_parts, seed),
            partition,
            max(1, num_parts),
        )
    if partition == "metis":
        from ..partition import metis_like_partition

        part = metis_like_partition(graph, max(1, num_parts), seed=seed)
        return np.asarray(part.assignment, dtype=np.int64), "metis", part.num_parts
    raise ValueError(
        f"unknown partitioner {partition!r}; pass a Partition or one of "
        f"{STREAMING_PARTITIONERS + ('metis',)}"
    )


# ----------------------------------------------------------------------
# One-shot build
# ----------------------------------------------------------------------


def build_store(
    graph_or_handle,
    path: PathLike,
    *,
    partition: Union[str, Partition] = "range",
    num_parts: int = 1,
    seed: int = 0,
    features: Optional[np.ndarray] = None,
    name: Optional[str] = None,
    overwrite: bool = False,
    injector: Optional[FaultInjector] = None,
) -> Manifest:
    """Materialize a graph (any handle) to a store directory.

    ``partition`` is a :class:`~repro.graph.partition.Partition` (any
    partitioner's output — vertex-cut partitions use their primary
    ``assignment``) or a partitioner name (``hash``/``range``/``metis``).
    ``features`` is an optional ``(n, d)`` array written as per-partition
    feature shards.  Returns the saved :class:`Manifest`.

    Overwriting an existing store is atomic: the new store is built
    into a sibling ``<path>.tmp-<pid>`` directory, the old store is
    renamed aside, and only after the replacement is in place is the
    old one removed — a crash at any point leaves either the old or
    the new store intact, never neither.
    """
    final_root = os.fspath(path)
    replacing = os.path.exists(os.path.join(final_root, MANIFEST_FILENAME))
    if replacing and not overwrite:
        raise StoreError(
            f"store already exists at {final_root!r}; pass overwrite=True"
        )
    if replacing:
        root = os.path.normpath(final_root) + f".tmp-{os.getpid()}"
        shutil.rmtree(root, ignore_errors=True)
        _LIVE_TMP_DIRS.add(root)
    else:
        root = final_root
    os.makedirs(root, exist_ok=True)
    store_name = (
        name or os.path.basename(os.path.normpath(final_root)) or "graph"
    )

    manifest = _build_into(
        root, graph_or_handle, partition=partition, num_parts=num_parts,
        seed=seed, features=features, name=store_name, injector=injector,
    )

    if replacing:
        old = os.path.normpath(final_root) + f".old-{os.getpid()}"
        shutil.rmtree(old, ignore_errors=True)
        os.rename(final_root, old)
        os.rename(root, final_root)
        shutil.rmtree(old)
        _LIVE_TMP_DIRS.discard(root)
    return manifest


def _build_into(
    root: str,
    graph_or_handle,
    *,
    partition: Union[str, Partition],
    num_parts: int,
    seed: int,
    features: Optional[np.ndarray],
    name: str,
    injector: Optional[FaultInjector] = None,
) -> Manifest:
    """One-shot build body: write every shard + manifest under ``root``."""
    from .handle import as_handle

    graph = as_handle(graph_or_handle).to_graph()
    n = graph.num_vertices
    assignment, partitioner_name, parts = _resolve_partition(
        graph, partition, num_parts, seed
    )
    if assignment.size != n:
        raise StoreError(
            f"partition assigns {assignment.size} vertices, graph has {n}"
        )
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != n:
            raise StoreError(
                f"features must be (n, d); got {features.shape} for n={n}"
            )
    degrees = graph.degrees()
    indptr, indices = graph.indptr, graph.indices

    partitions = []
    for k in range(parts):
        nodes = np.flatnonzero(assignment == k).astype(np.int64)
        if nodes.size:
            slices = [indices[indptr[v]: indptr[v + 1]] for v in nodes]
            part_indices = (
                np.concatenate(slices) if slices else np.empty(0, dtype=np.int64)
            )
            part_indptr = np.zeros(nodes.size + 1, dtype=np.int64)
            np.cumsum(degrees[nodes], out=part_indptr[1:])
            part_labels = None
            if graph.edge_labels is not None:
                part_labels = np.concatenate(
                    [graph.edge_labels[indptr[v]: indptr[v + 1]] for v in nodes]
                )
        else:
            part_indices = np.empty(0, dtype=np.int64)
            part_indptr = np.zeros(1, dtype=np.int64)
            part_labels = (
                np.empty(0, dtype=np.int64)
                if graph.edge_labels is not None
                else None
            )
        feature_rows = features[nodes] if features is not None else None
        partitions.append(
            _write_partition_shard(
                root, k, nodes, part_indptr, part_indices, part_labels,
                feature_rows, injector,
            )
        )

    files = {
        "assignment": _write_array(root, "assignment.npy", assignment, injector),
        "degrees": _write_array(root, "degrees.npy", degrees, injector),
    }
    if graph.vertex_labels is not None:
        files["vertex_labels"] = _write_array(
            root, "vertex_labels.npy", graph.vertex_labels, injector
        )
    manifest = Manifest(
        name=name,
        num_vertices=n,
        num_edges=graph.num_edges,
        num_edge_slots=int(indices.size),
        directed=graph.directed,
        num_parts=parts,
        partitioner=partitioner_name,
        built_by="one_shot",
        has_vertex_labels=graph.vertex_labels is not None,
        has_edge_labels=graph.edge_labels is not None,
        feature_dim=None if features is None else int(features.shape[1]),
        partitions=partitions,
        files=files,
    )
    manifest.save(root)
    return manifest


# ----------------------------------------------------------------------
# Chunked ingest (graphs larger than RAM)
# ----------------------------------------------------------------------


def ingest_edge_stream(
    edges: Optional[Iterable[Tuple[int, int]]],
    num_vertices: int,
    path: PathLike,
    *,
    directed: bool = False,
    partition: str = "hash",
    num_parts: int = 1,
    seed: int = 0,
    chunk_edges: int = 200_000,
    features: Optional[np.ndarray] = None,
    name: Optional[str] = None,
    overwrite: bool = False,
    resume: bool = False,
    injector: Optional[FaultInjector] = None,
) -> Manifest:
    """Write a store from an edge iterable without holding the edge list.

    Pass 1 consumes ``edges`` in chunks of ``chunk_edges`` pairs,
    routing each directed slot ``u -> v`` (undirected inputs emit both
    directions) to its owner partition's spill file.  Pass 2 builds one
    partition at a time: load that partition's spill, sort, dedupe,
    drop self-loops, and write the CSR shard.  Equivalent to
    ``build_store(Graph.from_edges(edges, ...), ...)`` under the same
    partition layout — byte-for-byte.

    Every chunk and partition boundary commits a write-ahead journal
    (see :mod:`repro.graph.store.journal`).  After a crash, call again
    with ``resume=True`` and the *same* parameters: pass 1 truncates
    any torn spill tail, replays ``edges`` past the consumed prefix
    (the iterable must restart from the beginning — a generator
    factory, file reader, or list), and pass 2 skips completed
    partitions.  If the crash happened in pass 2 or later, ``edges``
    is not consumed at all and may be ``None``.  The resumed build is
    byte-identical to an uninterrupted one.
    """
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    n = int(num_vertices)
    parts = max(1, int(num_parts))
    root = os.fspath(path)
    store_name = name or os.path.basename(os.path.normpath(root)) or "graph"
    if features is not None:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != n:
            raise StoreError(
                f"features must be (n, d); got {features.shape} for n={n}"
            )
    fingerprint = {
        "num_vertices": n,
        "directed": bool(directed),
        "partition": str(partition),
        "num_parts": parts,
        "seed": int(seed),
        "chunk_edges": int(chunk_edges),
        "name": store_name,
        "feature_dim": None if features is None else int(features.shape[1]),
    }

    journal: Optional[IngestJournal] = None
    if resume:
        if os.path.exists(os.path.join(root, MANIFEST_FILENAME)):
            # Crashed after publish: the store is complete, only the
            # journal sweep was lost.  Finish it and return.
            leftover = IngestJournal.load(root)
            if leftover is not None:
                shutil.rmtree(os.path.join(root, INGEST_DIRNAME),
                              ignore_errors=True)
            return Manifest.load(root)
        journal = IngestJournal.load(root)
        if journal is not None and not journal.matches(fingerprint):
            raise StoreError(
                f"ingest journal under {root!r} was written with different "
                f"parameters; refusing to resume (journal {journal.fingerprint}, "
                f"requested {fingerprint})"
            )
        os.makedirs(root, exist_ok=True)
    else:
        root = _prepare_root(path, overwrite)
        # A previous crashed ingest may have stranded spills + journal
        # under _ingest/ without publishing a manifest; a fresh
        # (non-resume) run must not inherit them.
        shutil.rmtree(os.path.join(root, INGEST_DIRNAME), ignore_errors=True)
    if journal is None:
        journal = IngestJournal(root, fingerprint)
        if resume:
            # Crashed before the first chunk committed: start pass 1
            # from scratch (spills, if any, are truncated to zero).
            journal.spill_bytes = [0] * parts

    assignment = streaming_assignment(partition, n, num_parts, seed)
    spill_dir = os.path.join(root, INGEST_DIRNAME)
    os.makedirs(spill_dir, exist_ok=True)
    spill_paths = [
        os.path.join(spill_dir, f"part{k}.edges.bin") for k in range(parts)
    ]

    total_slots_spilled = journal.slots_spilled
    if journal.phase == "pass1":
        if edges is None:
            raise StoreError(
                "pass 1 is incomplete; resuming needs the edge iterable"
            )
        # Discard any torn tail past the last journaled commit.
        committed_sizes = list(journal.spill_bytes) + [0] * (
            parts - len(journal.spill_bytes)
        )
        for spill_path, size in zip(spill_paths, committed_sizes):
            if not os.path.exists(spill_path):
                open(spill_path, "wb").close()
            os.truncate(spill_path, size)
        spills = [open(p, "ab") for p in spill_paths]
        consumed = journal.items_consumed
        stream = iter(edges)
        if consumed:
            skipped = sum(1 for _ in itertools.islice(stream, consumed))
            if skipped < consumed:
                raise StoreError(
                    f"edge stream ended after {skipped} items on resume; the "
                    f"journal consumed {consumed} — pass the same stream"
                )
        try:
            # -- pass 1: chunked routing to per-partition spill files ----
            chunk_src: List[int] = []
            chunk_dst: List[int] = []

            def flush() -> None:
                nonlocal total_slots_spilled
                if not chunk_src:
                    return
                chunk_index = journal.chunks_committed
                torn = (
                    injector is not None
                    and injector.take_torn_write(chunk_index)
                )
                src = np.asarray(chunk_src, dtype=np.int64)
                dst = np.asarray(chunk_dst, dtype=np.int64)
                owner = assignment[src]
                owners = np.unique(owner)
                for i, k in enumerate(owners):
                    mask = owner == k
                    pairs = np.empty((int(mask.sum()), 2), dtype=np.int64)
                    pairs[:, 0] = src[mask]
                    pairs[:, 1] = dst[mask]
                    data = pairs.tobytes()
                    if torn and i == len(owners) - 1:
                        # A torn write: half of the final partition's
                        # bytes land, then the "machine" dies.  The
                        # journal still points at the previous commit,
                        # so resume truncates this whole chunk away.
                        spills[int(k)].write(data[: len(data) // 2])
                        spills[int(k)].flush()
                        raise FaultError("torn_write", chunk=chunk_index)
                    spills[int(k)].write(data)
                total_slots_spilled += src.size
                chunk_src.clear()
                chunk_dst.clear()
                sizes = []
                for handle in spills:
                    handle.flush()
                    os.fsync(handle.fileno())
                    sizes.append(handle.tell())
                journal.commit_chunk(consumed, total_slots_spilled, sizes)
                if injector is not None and injector.take_ingest_crash(
                    chunk_index
                ):
                    raise FaultError("crash_at_chunk", chunk=chunk_index)

            for u, v in stream:
                consumed += 1
                u, v = int(u), int(v)
                if u < 0 or v < 0 or u >= n or v >= n:
                    raise StoreError(
                        f"edge ({u}, {v}) references a vertex outside 0..{n - 1}"
                    )
                if u == v:
                    continue  # GraphBuilder drops self-loops; stay equivalent
                chunk_src.append(u)
                chunk_dst.append(v)
                if not directed:
                    chunk_src.append(v)
                    chunk_dst.append(u)
                if len(chunk_src) >= 2 * chunk_edges:
                    flush()
            flush()
        finally:
            for handle in spills:
                handle.close()
        journal.begin_pass2()

    # -- pass 2: one partition at a time ----------------------------------
    done = journal.completed_partitions()
    degrees = np.zeros(n, dtype=np.int64)
    partitions = []
    total_slots = 0
    for k in range(parts):
        nodes = np.flatnonzero(assignment == k).astype(np.int64)
        if k in done:
            # Finished before the crash: shards are on disk; recover
            # this partition's degree rows from its own indptr shard.
            meta = done[k]
            indptr_k = np.load(os.path.join(root, f"part{k}/indptr.npy"))
            degrees[nodes] = np.diff(indptr_k)
            partitions.append(meta)
            total_slots += meta.num_edge_slots
            if os.path.exists(spill_paths[k]):
                os.remove(spill_paths[k])
            continue
        raw = np.fromfile(spill_paths[k], dtype=np.int64)
        pairs = raw.reshape(-1, 2) if raw.size else np.empty((0, 2), dtype=np.int64)
        src, dst = pairs[:, 0], pairs[:, 1]
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        if src.size:
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst = src[keep], dst[keep]
        local_src = np.searchsorted(nodes, src)
        counts = np.bincount(local_src, minlength=nodes.size)
        part_indptr = np.zeros(nodes.size + 1, dtype=np.int64)
        np.cumsum(counts, out=part_indptr[1:])
        degrees[nodes] = counts
        feature_rows = features[nodes] if features is not None else None
        meta = _write_partition_shard(
            root, k, nodes, part_indptr, dst, None, feature_rows, injector
        )
        partitions.append(meta)
        total_slots += int(dst.size)
        journal.commit_partition(meta, total_slots)
        os.remove(spill_paths[k])

    files = {
        "assignment": _write_array(root, "assignment.npy", assignment, injector),
        "degrees": _write_array(root, "degrees.npy", degrees, injector),
    }
    manifest = Manifest(
        name=store_name,
        num_vertices=n,
        num_edges=total_slots if directed else total_slots // 2,
        num_edge_slots=total_slots,
        directed=bool(directed),
        num_parts=parts,
        partitioner=partition,
        built_by="chunked",
        chunk_edges=int(chunk_edges),
        feature_dim=None if features is None else int(features.shape[1]),
        partitions=partitions,
        files=files,
    )
    manifest.save(root)
    journal.remove()
    shutil.rmtree(spill_dir, ignore_errors=True)
    return manifest
