"""Memory-mapped stored graphs with an LRU shard cache.

:class:`StoredGraph` implements the :class:`GraphHandle` protocol over
a store directory written by :mod:`repro.graph.store.writer`.  Resident
state is the GraphD budget — O(|V|): the manifest, the vertex→partition
``assignment``, global ``degrees``, and each partition's sorted
``nodes`` id map.  Everything edge- or feature-sized (``indptr`` /
``indices`` / ``edge_labels`` / ``features`` shards) is paged in as a
read-only ``numpy`` memory map on first touch and held in a byte-budget
LRU cache.

Eviction drops the cache's *reference* only — engines may hold live
neighbor views into an evicted mmap, so the map is never force-closed;
the OS unmaps it when the last view is garbage-collected.  That makes
eviction always safe at the cost of the budget being a cache-resident
target rather than a hard RSS ceiling (exactly the mmap page-cache
semantics the out-of-core literature assumes).

Every page-in validates the shard's byte size against the manifest
(truncation ⇒ :class:`StoreError`) and, unless ``checksum=False``,
re-checks the CRC-32 (same-size corruption ⇒ :class:`StoreError`).

Cache traffic reports through :mod:`repro.obs`: counters
``store.shard_hits`` / ``store.shard_misses`` / ``store.shard_evictions``
/ ``store.bytes_paged`` and gauge ``store.cache_bytes``.  The
``store.cache.accounting`` oracle pins the invariant
``hits + misses == pages requested``.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..csr import Graph
from .format import Manifest, StoreError, verify_file
from .handle import PartitionView

__all__ = ["ShardCache", "CacheStats", "StoredGraph", "open_store"]

PathLike = Union[str, os.PathLike]

#: Shard kinds the cache pages, in manifest ``files`` key vocabulary.
_PAGEABLE = ("indptr", "indices", "edge_labels", "features")


@dataclass
class CacheStats:
    """Shard-cache traffic; ``hits + misses == pages requested``."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    bytes_paged: int = 0

    @property
    def pages_requested(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "bytes_paged": self.bytes_paged,
            "pages_requested": self.pages_requested,
        }


class ShardCache:
    """Byte-budgeted LRU over memory-mapped shard arrays.

    Keys are ``(part_id, kind)``.  A ``budget`` of ``None`` means
    unbounded (everything stays cached once touched); any positive
    budget below the store's total shard bytes forces real paging,
    which is what the ``store.*`` oracles and the scaling bench pin.
    """

    def __init__(self, budget: Optional[int] = None, obs=None) -> None:
        if budget is not None and budget < 0:
            raise ValueError("cache budget must be >= 0 or None")
        self.budget = budget
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[int, str], Tuple[np.ndarray, int]]" = (
            OrderedDict()
        )
        self._resident_bytes = 0
        self._obs = obs
        if obs is not None:
            self._c_hits = obs.counter("store.shard_hits", "shard cache hits")
            self._c_misses = obs.counter("store.shard_misses", "shard cache misses")
            self._c_evict = obs.counter("store.shard_evictions", "shards evicted")
            self._c_paged = obs.counter("store.bytes_paged", "shard bytes paged in")
            self._g_bytes = obs.gauge("store.cache_bytes", "resident shard bytes")
        else:
            self._c_hits = self._c_misses = self._c_evict = self._c_paged = None
            self._g_bytes = None

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[int, str], loader, nbytes: int) -> np.ndarray:
        """Return the shard for ``key``, paging it in via ``loader()``."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self._c_hits is not None:
                self._c_hits.inc()
            return entry[0]
        array = loader()
        self.stats.misses += 1
        self.stats.bytes_paged += nbytes
        if self._c_misses is not None:
            self._c_misses.inc()
            self._c_paged.inc(nbytes)
        self._entries[key] = (array, nbytes)
        self._resident_bytes += nbytes
        self._evict_to_budget()
        if self._g_bytes is not None:
            self._g_bytes.set(self._resident_bytes)
        return array

    def _evict_to_budget(self) -> None:
        if self.budget is None:
            return
        # Never evict the page just inserted (it is in use by the caller),
        # even when it alone exceeds the budget.
        while self._resident_bytes > self.budget and len(self._entries) > 1:
            _, (_, nbytes) = self._entries.popitem(last=False)
            self._resident_bytes -= nbytes
            self.stats.evictions += 1
            if self._c_evict is not None:
                self._c_evict.inc()
        # Dropping our reference is the whole eviction: the mmap closes
        # when the last outstanding view is garbage-collected.

    def clear(self) -> None:
        self._entries.clear()
        self._resident_bytes = 0
        if self._g_bytes is not None:
            self._g_bytes.set(0)


class StoredGraph:
    """A :class:`GraphHandle` that pages shards from a store directory.

    Open with :func:`open_store` (or ``as_handle(path)``).  Usable as a
    context manager; :meth:`close` drops every cache reference.
    """

    is_graph_handle = True

    def __init__(
        self,
        root: PathLike,
        cache_budget: Optional[int] = None,
        obs=None,
        checksum: bool = True,
    ) -> None:
        self.root = os.fspath(root)
        self.manifest = Manifest.load(self.root)
        self._checksum = bool(checksum)
        self.cache = ShardCache(cache_budget, obs=obs)
        # O(|V|) resident state:
        self._assignment = self._load_resident("assignment")
        self._degrees = self._load_resident("degrees")
        self._vertex_labels: Optional[np.ndarray] = None
        if self.manifest.has_vertex_labels:
            self._vertex_labels = self._load_resident("vertex_labels")
        self._nodes: List[np.ndarray] = []
        for part in self.manifest.partitions:
            entry = part.files["nodes"]
            path = verify_file(self.root, entry, checksum=self._checksum)
            self._nodes.append(np.load(path, allow_pickle=False))
        self._edge_labels_memo: Optional[np.ndarray] = None
        self._closed = False

    def _load_resident(self, key: str) -> np.ndarray:
        entry = self.manifest.files.get(key)
        if entry is None:
            raise StoreError(f"manifest lists no {key!r} file")
        path = verify_file(self.root, entry, checksum=self._checksum)
        return np.load(path, allow_pickle=False)

    # -- shard paging ------------------------------------------------------

    def _shard(self, part_id: int, kind: str) -> np.ndarray:
        if self._closed:
            raise StoreError("stored graph is closed")
        part = self.manifest.partitions[part_id]
        entry = part.files.get(kind)
        if entry is None:
            raise StoreError(
                f"partition {part_id} has no {kind!r} shard in {self.root!r}"
            )
        checksum = self._checksum

        def loader() -> np.ndarray:
            path = verify_file(self.root, entry, checksum=checksum)
            return np.load(path, mmap_mode="r", allow_pickle=False)

        return self.cache.get((part_id, kind), loader, entry.nbytes)

    # -- GraphHandle surface ----------------------------------------------

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def num_vertices(self) -> int:
        return self.manifest.num_vertices

    @property
    def num_edges(self) -> int:
        return self.manifest.num_edges

    @property
    def num_edge_slots(self) -> int:
        return self.manifest.num_edge_slots

    @property
    def directed(self) -> bool:
        return self.manifest.directed

    @property
    def num_parts(self) -> int:
        return self.manifest.num_parts

    @property
    def feature_dim(self) -> Optional[int]:
        return self.manifest.feature_dim

    @property
    def assignment(self) -> np.ndarray:
        return self._assignment

    def part_of(self, v: int) -> int:
        """Partition owning vertex ``v``."""
        return int(self._assignment[v])

    def vertices(self) -> range:
        return range(self.num_vertices)

    def neighbors(self, v: int) -> np.ndarray:
        part_id = int(self._assignment[v])
        nodes = self._nodes[part_id]
        local = int(np.searchsorted(nodes, v))
        indptr = self._shard(part_id, "indptr")
        indices = self._shard(part_id, "indices")
        return indices[indptr[local]: indptr[local + 1]]

    def degree(self, v: int) -> int:
        return int(self._degrees[v])

    def degrees(self) -> np.ndarray:
        return self._degrees

    def has_edge(self, u: int, v: int) -> bool:
        neighbors = self.neighbors(u)
        pos = int(np.searchsorted(neighbors, v))
        return pos < neighbors.size and int(neighbors[pos]) == v

    def edge_label(self, u: int, v: int) -> int:
        if not self.manifest.has_edge_labels:
            raise KeyError(f"no edge ({u}, {v})" )
        part_id = int(self._assignment[u])
        nodes = self._nodes[part_id]
        local = int(np.searchsorted(nodes, u))
        indptr = self._shard(part_id, "indptr")
        row = self._shard(part_id, "indices")[indptr[local]: indptr[local + 1]]
        pos = int(np.searchsorted(row, v))
        if pos >= row.size or int(row[pos]) != v:
            raise KeyError(f"no edge ({u}, {v})")
        labels = self._shard(part_id, "edge_labels")
        return int(labels[indptr[local] + pos])

    @property
    def vertex_labels(self) -> Optional[np.ndarray]:
        return self._vertex_labels

    def vertex_label(self, v: int) -> int:
        if self._vertex_labels is None:
            return 0
        return int(self._vertex_labels[v])

    @property
    def edge_labels(self) -> Optional[np.ndarray]:
        """Full edge-label array in global CSR order (assembled lazily)."""
        if not self.manifest.has_edge_labels:
            return None
        if self._edge_labels_memo is None:
            out = np.empty(self.num_edge_slots, dtype=np.int64)
            gip = self._global_indptr()
            for lo, hi, indptr_run, _, part_id, local_lo in self._runs():
                labels = self._shard(part_id, "edge_labels")
                base = int(self._shard(part_id, "indptr")[local_lo])
                span = int(indptr_run[-1])
                out[gip[lo]: gip[hi]] = labels[base: base + span]
            self._edge_labels_memo = out
        return self._edge_labels_memo

    def features(self, ids: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """Feature rows for ``ids`` (or all vertices), paged per shard."""
        if self.manifest.feature_dim is None:
            return None
        dim = int(self.manifest.feature_dim)
        if ids is None:
            ids = np.arange(self.num_vertices, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
        out = np.empty((ids.size, dim), dtype=np.float64)
        owners = self._assignment[ids]
        for part_id in np.unique(owners):
            mask = owners == part_id
            rows = np.searchsorted(self._nodes[int(part_id)], ids[mask])
            shard = self._shard(int(part_id), "features")
            out[mask] = shard[rows]
        return out

    def partition(self, i: int) -> PartitionView:
        if i < 0 or i >= self.num_parts:
            raise IndexError(f"partition {i} out of range 0..{self.num_parts - 1}")
        return PartitionView(
            i,
            self._nodes[i],
            self._shard(i, "indptr"),
            self._shard(i, "indices"),
        )

    # -- run iteration (bit-identity workhorse) ---------------------------

    def _run_spans(self) -> np.ndarray:
        """Boundaries of maximal runs of consecutive ids in one partition."""
        n = self.num_vertices
        if n == 0:
            return np.asarray([0], dtype=np.int64)
        breaks = np.flatnonzero(np.diff(self._assignment) != 0) + 1
        return np.concatenate(([0], breaks, [n])).astype(np.int64)

    def _runs(self):
        spans = self._run_spans()
        for lo, hi in zip(spans[:-1], spans[1:]):
            lo, hi = int(lo), int(hi)
            part_id = int(self._assignment[lo])
            nodes = self._nodes[part_id]
            local_lo = int(np.searchsorted(nodes, lo))
            indptr = self._shard(part_id, "indptr")
            run_ptr = indptr[local_lo: local_lo + (hi - lo) + 1]
            run_ptr = np.asarray(run_ptr, dtype=np.int64) - int(run_ptr[0])
            indices = self._shard(part_id, "indices")
            base = int(indptr[local_lo])
            run_idx = indices[base: base + int(run_ptr[-1])]
            yield lo, hi, run_ptr, run_idx, part_id, local_lo

    def iter_csr_runs(self) -> Iterator[Tuple[int, int, np.ndarray, np.ndarray]]:
        """Yield ``(lo, hi, indptr_run, indices_run)`` ascending in ``lo``.

        Each run covers the consecutive global ids ``lo..hi-1``, all
        owned by one partition; ``indptr_run`` is rebased to 0 and
        ``indices_run`` holds global neighbor ids.  Because vertex ids
        ascend within a run and runs ascend globally, concatenating the
        runs reproduces the global source-major CSR exactly — dense
        supersteps that scatter per-run in order perform the *same
        floating-point additions in the same order* as the in-memory
        path.  Works for any partitioner: within a partition, ascending
        global ids map to ascending local ids.
        """
        for lo, hi, run_ptr, run_idx, _, _ in self._runs():
            yield lo, hi, run_ptr, run_idx

    def _global_indptr(self) -> np.ndarray:
        gip = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(self._degrees, out=gip[1:])
        return gip

    def to_graph(self) -> Graph:
        """Materialize the full in-memory :class:`Graph` (pages everything)."""
        gip = self._global_indptr()
        if int(gip[-1]) != self.num_edge_slots:
            raise StoreError(
                f"degrees sum to {int(gip[-1])} slots, manifest says "
                f"{self.num_edge_slots}"
            )
        indices = np.empty(self.num_edge_slots, dtype=np.int64)
        for lo, hi, _, run_idx in self.iter_csr_runs():
            indices[gip[lo]: gip[hi]] = run_idx
        return Graph(
            gip,
            indices,
            directed=self.directed,
            vertex_labels=self._vertex_labels,
            edge_labels=self.edge_labels if self.manifest.has_edge_labels else None,
        )

    # -- materializing conveniences (whole-graph restructuring) -----------

    def edges(self):
        return self.to_graph().edges()

    def orient_by_degree(self) -> Graph:
        return self.to_graph().orient_by_degree()

    def reverse(self) -> Graph:
        return self.to_graph().reverse()

    def subgraph(self, keep):
        return self.to_graph().subgraph(keep)

    # -- versioning (serve epochs) ----------------------------------------

    @property
    def version(self) -> int:
        return self.manifest.version

    def bump_version(self) -> int:
        """Advance the manifest epoch on disk (atomic rewrite)."""
        self.manifest.version += 1
        self.manifest.save(self.root)
        return self.manifest.version

    # -- lifecycle ---------------------------------------------------------

    def cache_stats(self) -> Dict[str, int]:
        return self.cache.stats.as_dict()

    def close(self) -> None:
        """Drop all cache references; mmaps close as views are collected."""
        self.cache.clear()
        self._closed = True

    def __enter__(self) -> "StoredGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        budget = self.cache.budget
        return (
            f"StoredGraph({self.manifest.name!r}, n={self.num_vertices}, "
            f"slots={self.num_edge_slots}, parts={self.num_parts}, "
            f"cache_budget={budget})"
        )


def open_store(
    path: PathLike,
    cache_budget: Optional[int] = None,
    obs=None,
    checksum: bool = True,
) -> StoredGraph:
    """Open a store directory as a paging :class:`StoredGraph`.

    ``cache_budget`` caps resident shard bytes (LRU); ``None`` keeps
    every touched shard mapped.  ``checksum=False`` skips CRC-32
    verification at page-in (size/truncation checks always run).
    """
    return StoredGraph(path, cache_budget=cache_budget, obs=obs, checksum=checksum)
