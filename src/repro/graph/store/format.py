"""On-disk partitioned graph format: manifest schema and file integrity.

A *store* is a directory laid out the way DistDGL's chunked-partition
pipeline lays out its artifacts (``mygraph.json`` + per-partition
structure/feature files), adapted to this repository's CSR substrate:

::

    <store>/
      graph.json              # the manifest (this module)
      assignment.npy          # int64[n]   partition owning each vertex
      degrees.npy             # int64[n]   global (out-)degrees
      vertex_labels.npy       # int64[n]   optional
      part<k>/
        nodes.npy             # int64[n_k] global ids owned, ascending
        indptr.npy            # int64[n_k + 1] local CSR index
        indices.npy           # int64[e_k] neighbor *global* ids, sorted
        edge_labels.npy       # int64[e_k] optional, aligned with indices
        features.npy          # float64[n_k, d] optional feature shard

The manifest records, for every file, its byte size and CRC-32 so a
truncated or corrupted shard is detected at page-in time and raised as
a :class:`StoreError` instead of silently feeding garbage to an engine.
The manifest also carries a ``version`` counter — the graph's *epoch*.
The serving layer's registry backs its epoch bumps with this field, so
cache invalidation survives process restarts.

Every quantity in ``graph.json`` is derivable from the shards; the
``store.manifest.roundtrip`` oracle in :mod:`repro.graph.store.checks`
asserts the shards re-assemble to the exact CSR the manifest describes.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MANIFEST_FILENAME",
    "QUARANTINE_DIRNAME",
    "StoreError",
    "CorruptShardError",
    "FileEntry",
    "PartitionMeta",
    "Manifest",
    "StoreReport",
    "file_entry",
    "verify_file",
    "verify_store",
    "repair_store",
    "is_store_dir",
]

FORMAT_NAME = "repro.graph.store"
FORMAT_VERSION = 1
MANIFEST_FILENAME = "graph.json"
QUARANTINE_DIRNAME = "_quarantine"

PathLike = Union[str, os.PathLike]


class StoreError(Exception):
    """A store is malformed: missing, truncated, or corrupted files,
    or a manifest this code cannot interpret."""


class CorruptShardError(StoreError):
    """One or more manifest-listed shards failed integrity checks.

    Carries the store-relative paths (and, when raised by
    ``repair_store``, the full :class:`StoreReport`) so callers can act
    on exactly the failing files instead of guessing."""

    def __init__(
        self, message: str, paths: List[str], report: Optional["StoreReport"] = None
    ) -> None:
        super().__init__(message)
        self.paths = list(paths)
        self.report = report


@dataclass
class FileEntry:
    """One file the manifest vouches for."""

    path: str  # store-relative, '/'-separated
    nbytes: int
    crc32: int

    def as_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "bytes": self.nbytes, "crc32": self.crc32}

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "FileEntry":
        return FileEntry(str(d["path"]), int(d["bytes"]), int(d["crc32"]))


@dataclass
class PartitionMeta:
    """Shard inventory of one partition."""

    part_id: int
    num_vertices: int
    num_edge_slots: int  # directed adjacency entries in this shard
    files: Dict[str, FileEntry] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.part_id,
            "num_vertices": self.num_vertices,
            "num_edge_slots": self.num_edge_slots,
            "files": {k: f.as_dict() for k, f in sorted(self.files.items())},
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "PartitionMeta":
        return PartitionMeta(
            part_id=int(d["id"]),
            num_vertices=int(d["num_vertices"]),
            num_edge_slots=int(d["num_edge_slots"]),
            files={k: FileEntry.from_dict(f) for k, f in d["files"].items()},
        )

    @property
    def shard_bytes(self) -> int:
        """Total bytes of this partition's pageable shards."""
        return sum(f.nbytes for f in self.files.values())


@dataclass
class Manifest:
    """The ``graph.json`` catalog entry of one stored graph."""

    name: str
    num_vertices: int
    num_edges: int
    num_edge_slots: int
    directed: bool
    num_parts: int
    partitioner: str
    built_by: str  # "one_shot" | "chunked"
    version: int = 1  # the graph's epoch; bumped on mutation/replace
    chunk_edges: Optional[int] = None
    has_vertex_labels: bool = False
    has_edge_labels: bool = False
    feature_dim: Optional[int] = None
    partitions: List[PartitionMeta] = field(default_factory=list)
    files: Dict[str, FileEntry] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": FORMAT_NAME,
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "version": self.version,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "num_edge_slots": self.num_edge_slots,
            "directed": self.directed,
            "num_parts": self.num_parts,
            "partitioner": self.partitioner,
            "built_by": self.built_by,
            "chunk_edges": self.chunk_edges,
            "has_vertex_labels": self.has_vertex_labels,
            "has_edge_labels": self.has_edge_labels,
            "feature_dim": self.feature_dim,
            "partitions": [p.as_dict() for p in self.partitions],
            "files": {k: f.as_dict() for k, f in sorted(self.files.items())},
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Manifest":
        if d.get("format") != FORMAT_NAME:
            raise StoreError(
                f"not a {FORMAT_NAME} manifest (format={d.get('format')!r})"
            )
        if int(d.get("format_version", -1)) > FORMAT_VERSION:
            raise StoreError(
                f"manifest format_version {d['format_version']} is newer than "
                f"this code understands ({FORMAT_VERSION})"
            )
        return Manifest(
            name=str(d["name"]),
            version=int(d.get("version", 1)),
            num_vertices=int(d["num_vertices"]),
            num_edges=int(d["num_edges"]),
            num_edge_slots=int(d["num_edge_slots"]),
            directed=bool(d["directed"]),
            num_parts=int(d["num_parts"]),
            partitioner=str(d["partitioner"]),
            built_by=str(d["built_by"]),
            chunk_edges=d.get("chunk_edges"),
            has_vertex_labels=bool(d.get("has_vertex_labels", False)),
            has_edge_labels=bool(d.get("has_edge_labels", False)),
            feature_dim=d.get("feature_dim"),
            partitions=[PartitionMeta.from_dict(p) for p in d["partitions"]],
            files={
                k: FileEntry.from_dict(f) for k, f in d.get("files", {}).items()
            },
        )

    # -- persistence -------------------------------------------------------

    def save(self, root: PathLike) -> None:
        path = os.path.join(os.fspath(root), MANIFEST_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)  # atomic epoch bumps

    @staticmethod
    def load(root: PathLike) -> "Manifest":
        path = os.path.join(os.fspath(root), MANIFEST_FILENAME)
        if not os.path.exists(path):
            raise StoreError(f"no {MANIFEST_FILENAME} under {os.fspath(root)!r}")
        try:
            with open(path) as handle:
                return Manifest.from_dict(json.load(handle))
        except (json.JSONDecodeError, KeyError, ValueError, TypeError) as exc:
            raise StoreError(f"malformed manifest {path!r}: {exc}") from exc

    @property
    def shard_bytes(self) -> int:
        """Total pageable bytes across every partition's shards."""
        return sum(p.shard_bytes for p in self.partitions)


def _crc32_of(path: str) -> int:
    crc = 0
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            crc = zlib.crc32(block, crc)
    return crc


def file_entry(root: PathLike, relpath: str) -> FileEntry:
    """Stat + checksum a freshly written store file."""
    full = os.path.join(os.fspath(root), relpath)
    return FileEntry(relpath, os.path.getsize(full), _crc32_of(full))


def verify_file(root: PathLike, entry: FileEntry, checksum: bool = True) -> str:
    """Validate a manifest-listed file on disk; returns its full path.

    Size mismatches (truncation) are always caught; ``checksum=True``
    additionally recomputes the CRC-32 (corruption that preserves size).
    """
    full = os.path.join(os.fspath(root), entry.path)
    if not os.path.exists(full):
        raise StoreError(f"missing shard file {entry.path!r}")
    actual = os.path.getsize(full)
    if actual != entry.nbytes:
        raise StoreError(
            f"truncated shard {entry.path!r}: {actual} bytes on disk, "
            f"manifest says {entry.nbytes}"
        )
    if checksum and _crc32_of(full) != entry.crc32:
        raise StoreError(f"corrupt shard {entry.path!r}: CRC-32 mismatch")
    return full


@dataclass
class StoreReport:
    """Outcome of a :func:`verify_store` / :func:`repair_store` sweep."""

    root: str
    checked: int = 0
    corrupt: List[str] = field(default_factory=list)  # CRC mismatches
    truncated: List[str] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.corrupt or self.truncated or self.missing)

    @property
    def bad_paths(self) -> List[str]:
        return self.corrupt + self.truncated + self.missing

    def as_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "ok": self.ok,
            "checked": self.checked,
            "corrupt": list(self.corrupt),
            "truncated": list(self.truncated),
            "missing": list(self.missing),
            "quarantined": list(self.quarantined),
        }


def _manifest_entries(manifest: Manifest) -> List[FileEntry]:
    entries = [f for _, f in sorted(manifest.files.items())]
    for part in manifest.partitions:
        entries.extend(f for _, f in sorted(part.files.items()))
    return entries


def verify_store(root: PathLike, checksum: bool = True) -> StoreReport:
    """Sweep every manifest-listed file; never raises on bad shards.

    Returns a :class:`StoreReport` classifying each failure as missing,
    truncated (size mismatch), or corrupt (CRC-32 mismatch — only with
    ``checksum=True``).  A malformed or absent manifest still raises
    :class:`StoreError` because there is nothing to sweep.
    """
    rootstr = os.fspath(root)
    manifest = Manifest.load(rootstr)
    report = StoreReport(root=rootstr)
    for entry in _manifest_entries(manifest):
        report.checked += 1
        full = os.path.join(rootstr, entry.path)
        if not os.path.exists(full):
            report.missing.append(entry.path)
        elif os.path.getsize(full) != entry.nbytes:
            report.truncated.append(entry.path)
        elif checksum and _crc32_of(full) != entry.crc32:
            report.corrupt.append(entry.path)
    return report


def repair_store(root: PathLike, checksum: bool = True) -> StoreReport:
    """Quarantine every failing shard under ``<root>/_quarantine/``.

    Corrupt and truncated files are *moved* (never deleted) into the
    quarantine directory, preserving their relative layout, so a later
    page-in raises a typed "missing shard" :class:`StoreError` instead
    of reading undefined bytes.  Raises :class:`CorruptShardError`
    summarizing what was quarantined when anything failed; a clean
    store returns its report untouched.
    """
    rootstr = os.fspath(root)
    report = verify_store(rootstr, checksum=checksum)
    if report.ok:
        return report
    qdir = os.path.join(rootstr, QUARANTINE_DIRNAME)
    for rel in report.corrupt + report.truncated:
        dest = os.path.join(qdir, rel)
        os.makedirs(os.path.dirname(dest), exist_ok=True)
        os.replace(os.path.join(rootstr, rel), dest)
        report.quarantined.append(rel)
    raise CorruptShardError(
        f"store {rootstr!r}: quarantined {len(report.quarantined)} shard(s) "
        f"({len(report.missing)} already missing)",
        report.bad_paths,
        report=report,
    )


def is_store_dir(path: PathLike) -> bool:
    """Does ``path`` look like a store directory (has a manifest)?"""
    return os.path.isdir(os.fspath(path)) and os.path.exists(
        os.path.join(os.fspath(path), MANIFEST_FILENAME)
    )
