"""Graph I/O.

Loads and saves the three on-disk formats the benchmarks use:

* **edge list** — one ``u v [label]`` pair per line, ``#`` comments
  (the SNAP format every surveyed system consumes);
* **adjacency** — ``v: n1 n2 n3 ...`` per line (Pregel-style input);
* **transaction** — the gSpan ``t/v/e`` format for labeled graph
  databases (``t # <id>``, ``v <id> <label>``, ``e <u> <v> <label>``).
"""

from __future__ import annotations

import os
from typing import List, Union

from .csr import Graph, GraphBuilder
from .transactions import GraphTransaction, TransactionDatabase

__all__ = [
    "load_edge_list",
    "save_edge_list",
    "load_adjacency",
    "save_adjacency",
    "load_transactions",
    "save_transactions",
]

PathLike = Union[str, os.PathLike]


def load_edge_list(path: PathLike, directed: bool = False) -> Graph:
    """Read a SNAP-style edge list; lines starting with ``#`` are comments."""
    builder = GraphBuilder(directed=directed)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed edge line: {line!r}")
            label = int(parts[2]) if len(parts) > 2 else 0
            builder.add_edge(int(parts[0]), int(parts[1]), label=label)
    return builder.build()


def save_edge_list(graph: Graph, path: PathLike) -> None:
    """Write each edge once; labels are appended when present."""
    with open(path, "w") as handle:
        handle.write(f"# n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v in graph.edges():
            if graph.edge_labels is not None:
                handle.write(f"{u} {v} {graph.edge_label(u, v)}\n")
            else:
                handle.write(f"{u} {v}\n")


def load_adjacency(path: PathLike, directed: bool = False) -> Graph:
    """Read ``v: n1 n2 ...`` adjacency lines."""
    builder = GraphBuilder(directed=directed)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            head, _, rest = line.partition(":")
            v = int(head)
            builder.add_vertex(v)
            for w in rest.split():
                builder.add_edge(v, int(w))
    return builder.build()


def save_adjacency(graph: Graph, path: PathLike) -> None:
    """Write one adjacency line per vertex (neighbors sorted)."""
    with open(path, "w") as handle:
        for v in graph.vertices():
            nbrs = " ".join(str(int(w)) for w in graph.neighbors(v))
            handle.write(f"{v}: {nbrs}\n")


def load_transactions(path: PathLike) -> TransactionDatabase:
    """Read a gSpan-format labeled graph database."""
    transactions: List[GraphTransaction] = []
    builder: GraphBuilder = GraphBuilder(directed=False)
    labels: List[int] = []
    graph_id = -1

    def flush() -> None:
        if graph_id >= 0:
            graph = builder.build(num_vertices=len(labels), vertex_labels=labels)
            transactions.append(GraphTransaction(graph_id=graph_id, graph=graph))

    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if not parts or parts[0] == "#":
                continue
            if parts[0] == "t":
                flush()
                graph_id = int(parts[-1])
                if graph_id < 0:  # "t # -1" is the gSpan end marker
                    graph_id = -1
                    break
                builder = GraphBuilder(directed=False)
                labels = []
            elif parts[0] == "v":
                vid, vlabel = int(parts[1]), int(parts[2])
                if vid != len(labels):
                    raise ValueError("vertex ids must be dense and in order")
                labels.append(vlabel)
                builder.add_vertex(vid)
            elif parts[0] == "e":
                builder.add_edge(int(parts[1]), int(parts[2]), label=int(parts[3]))
            else:
                raise ValueError(f"unknown record type: {parts[0]!r}")
    flush()
    return TransactionDatabase(transactions)


def save_transactions(db: TransactionDatabase, path: PathLike) -> None:
    """Write a gSpan-format labeled graph database."""
    with open(path, "w") as handle:
        for t in db:
            handle.write(f"t # {t.graph_id}\n")
            for v in t.graph.vertices():
                handle.write(f"v {v} {t.graph.vertex_label(v)}\n")
            for u, v in t.graph.edges():
                label = (
                    t.graph.edge_label(u, v)
                    if t.graph.edge_labels is not None
                    else 0
                )
                handle.write(f"e {u} {v} {label}\n")
        handle.write("t # -1\n")
