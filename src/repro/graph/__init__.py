"""Graph substrate: CSR storage, generators, I/O, partitioners, properties,
and the on-disk store layer behind the :class:`GraphHandle` protocol."""

from .csr import Graph, GraphBuilder
from .delta import EdgeDelta, apply_edge_updates, random_edge_updates
from .transactions import GraphTransaction, TransactionDatabase
from .weighted import dijkstra, edge_label_weight
from .store import (
    GraphHandle,
    InMemoryGraph,
    StoreCatalog,
    StoredGraph,
    StoreError,
    as_handle,
    build_store,
    ingest_edge_stream,
    open_store,
)

__all__ = [
    "EdgeDelta",
    "Graph",
    "GraphBuilder",
    "apply_edge_updates",
    "random_edge_updates",
    "GraphTransaction",
    "TransactionDatabase",
    "dijkstra",
    "edge_label_weight",
    "GraphHandle",
    "InMemoryGraph",
    "StoreCatalog",
    "StoredGraph",
    "StoreError",
    "as_handle",
    "build_store",
    "ingest_edge_stream",
    "open_store",
]
