"""Graph substrate: CSR storage, generators, I/O, partitioners, properties."""

from .csr import Graph, GraphBuilder
from .transactions import GraphTransaction, TransactionDatabase
from .weighted import dijkstra, edge_label_weight

__all__ = ["Graph", "GraphBuilder", "GraphTransaction", "TransactionDatabase", "dijkstra", "edge_label_weight"]
