"""Vectorized adjacency kernels shared by the hot paths.

Every inner loop the profiler flags — candidate intersection in the
backtracking matcher, the per-edge merge join of triangle counting, the
frontier expansion of TLAV supersteps, the edge scan of modularity —
reduces to a handful of numpy primitives over the sorted CSR arrays:

* :func:`in_sorted` — batched membership of many queries in one sorted
  adjacency list (one ``searchsorted`` call instead of one per element);
* :func:`intersect_sorted` / :func:`intersect_count` — merge-join of two
  sorted lists, probing the smaller into the larger;
* :func:`intersect_multi` — k-way intersection, smallest list first
  (the matcher's candidate kernel);
* :func:`expand_frontier` — gather the concatenated neighborhoods of a
  vertex frontier plus the owner of each gathered entry, without a
  Python loop (the repeat/arange trick);
* :func:`any_true_per_owner` — reduce a per-gathered-entry mask to a
  per-owner "any hit" flag (the arc-consistency test of candidate
  refinement, batched);
* :func:`scatter_add_ordered` — ordered scatter-add (``np.add.at``):
  increments apply in element order, so for any destination the adds
  happen in source order.  The dense TLAV path relies on this to stay
  bit-identical to the per-vertex engine's left-fold combiner.

All functions take plain ``int64`` arrays so they work on both a
:class:`~repro.graph.csr.Graph` and the shared-memory views that
:mod:`repro.parallel` reattaches inside worker processes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "in_sorted",
    "intersect_sorted",
    "intersect_count",
    "intersect_multi",
    "expand_frontier",
    "any_true_per_owner",
    "scatter_add_ordered",
    "edge_array",
]


def in_sorted(haystack: np.ndarray, needles: np.ndarray) -> np.ndarray:
    """Boolean mask: which ``needles`` occur in the sorted ``haystack``.

    One vectorized binary search for the whole query batch — the
    replacement for per-element ``np.searchsorted`` calls.
    """
    needles = np.asarray(needles)
    if haystack.size == 0 or needles.size == 0:
        return np.zeros(needles.shape, dtype=bool)
    pos = np.searchsorted(haystack, needles)
    found = pos < haystack.size
    out = np.zeros(needles.shape, dtype=bool)
    hit = np.flatnonzero(found)
    out[hit] = haystack[pos[hit]] == needles[hit]
    return out


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted duplicate-free arrays (sorted output).

    Probes the smaller list into the larger one: ``O(min * log max)``,
    the binary-search flavour of the merge join (right regime for the
    skewed degree distributions the matcher sees).
    """
    if a.size > b.size:
        a, b = b, a
    return a[in_sorted(b, a)]


def intersect_count(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` for sorted duplicate-free arrays, without materializing."""
    if a.size > b.size:
        a, b = b, a
    return int(np.count_nonzero(in_sorted(b, a)))


def intersect_multi(lists: Sequence[np.ndarray]) -> np.ndarray:
    """k-way intersection of sorted lists, smallest first.

    Starting from the smallest list keeps every probe batch as small as
    possible — the same ordering heuristic the per-element merge kernel
    used, now one ``searchsorted`` per remaining list.
    """
    if not lists:
        return np.empty(0, dtype=np.int64)
    ordered: List[np.ndarray] = sorted(lists, key=lambda arr: arr.size)
    base = ordered[0]
    for other in ordered[1:]:
        if base.size == 0:
            break
        base = base[in_sorted(other, base)]
    return base


def expand_frontier(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenated neighborhoods of ``frontier`` and their owners.

    Returns ``(owners, neighbors)`` where ``neighbors`` is
    ``concat(indices[indptr[v]:indptr[v+1]] for v in frontier)`` and
    ``owners[k]`` is the *position in frontier* that contributed
    ``neighbors[k]``.  Pure array arithmetic — no Python loop.
    """
    frontier = np.asarray(frontier, dtype=np.int64)
    starts = indptr[frontier]
    lengths = indptr[frontier + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    owners = np.repeat(np.arange(frontier.size, dtype=np.int64), lengths)
    # Global positions: for each gathered slot, its offset inside the
    # owner's slice plus the owner's CSR start.
    offsets = np.arange(total, dtype=np.int64)
    slice_begin = np.repeat(np.cumsum(lengths) - lengths, lengths)
    flat = np.repeat(starts, lengths) + (offsets - slice_begin)
    return owners, indices[flat]


def any_true_per_owner(
    owners: np.ndarray, mask: np.ndarray, num_owners: int
) -> np.ndarray:
    """Per-owner OR-reduction of a gathered-entry mask.

    ``owners``/``mask`` are aligned with an :func:`expand_frontier`
    gather; the result is a boolean array of ``num_owners`` entries
    where ``out[k]`` is True iff any gathered entry owned by ``k`` has
    ``mask`` set — the batched form of ``any(pred(w) for w in
    neighbors(v))`` that candidate refinement runs per candidate.
    """
    out = np.zeros(num_owners, dtype=bool)
    if mask.size:
        out[owners[mask]] = True
    return out


def scatter_add_ordered(
    out: np.ndarray, idx: np.ndarray, vals: np.ndarray
) -> np.ndarray:
    """``out[idx[k]] += vals[k]`` applied in element order.

    ``np.add.at`` is unbuffered: repeated destinations accumulate one
    increment at a time, in array order.  When ``idx`` is CSR-ordered
    (sorted by source) the per-destination accumulation order is source-
    ascending — exactly the left fold the Pregel combiner performs, which
    is what makes the dense PageRank path bit-identical to the engine.
    """
    np.add.at(out, idx, vals)
    return out


def edge_array(indptr: np.ndarray, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """All directed CSR edges as ``(src, dst)`` arrays in CSR order."""
    degrees = np.diff(indptr)
    src = np.repeat(np.arange(indptr.size - 1, dtype=np.int64), degrees)
    return src, indices
