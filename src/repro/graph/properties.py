"""Classic structural vertex properties.

These are the "vertex features ... computed based on the graph topology"
of the tutorial's Figure-1 pipeline (in/out-degrees, clustering
coefficient, core numbers), implemented serially.  The TLAV engine in
:mod:`repro.tlav` re-implements several of them as vertex programs; the
tests cross-check the two.
"""

from __future__ import annotations

import heapq
from collections import deque

import numpy as np

from . import kernels
from .csr import Graph

__all__ = [
    "connected_components",
    "num_connected_components",
    "clustering_coefficients",
    "core_numbers",
    "bfs_levels",
    "triangle_count_per_vertex",
    "modularity",
]


def connected_components(graph: Graph) -> np.ndarray:
    """Label vertices by connected component (undirected), via BFS.

    Returns an ``int64`` array ``comp`` where ``comp[v]`` is the smallest
    vertex id in ``v``'s component.
    """
    n = graph.num_vertices
    comp = np.full(n, -1, dtype=np.int64)
    for source in range(n):
        if comp[source] >= 0:
            continue
        comp[source] = source
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for w in graph.neighbors(u):
                w = int(w)
                if comp[w] < 0:
                    comp[w] = source
                    queue.append(w)
    return comp


def num_connected_components(graph: Graph) -> int:
    """Number of connected components."""
    comp = connected_components(graph)
    return int(np.unique(comp).size)


def clustering_coefficients(graph: Graph) -> np.ndarray:
    """Local clustering coefficient per vertex.

    ``c(v) = 2 * tri(v) / (d(v) * (d(v) - 1))`` with ``c(v) = 0`` for
    degree < 2.
    """
    tri = triangle_count_per_vertex(graph)
    deg = graph.degrees().astype(np.float64)
    denom = deg * (deg - 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        coeff = np.where(denom > 0, 2.0 * tri / denom, 0.0)
    return coeff


def triangle_count_per_vertex(graph: Graph) -> np.ndarray:
    """Number of triangles incident to each vertex.

    Enumerates each triangle exactly once on the degree-ordered
    orientation (see :meth:`Graph.orient_by_degree`) and credits all
    three corners; membership tests are batched binary searches over the
    gathered second hop (:mod:`repro.graph.kernels`).
    """
    n = graph.num_vertices
    tri = np.zeros(n, dtype=np.int64)
    oriented = graph.orient_by_degree()
    indptr, indices = oriented.indptr, oriented.indices
    for u in range(n):
        out_u = indices[indptr[u]: indptr[u + 1]]
        if out_u.size < 2:
            continue
        owners, second = kernels.expand_frontier(indptr, indices, out_u)
        closed = kernels.in_sorted(out_u, second)
        if not closed.any():
            continue
        hits = np.flatnonzero(closed)
        tri[u] += hits.size
        np.add.at(tri, out_u[owners[hits]], 1)  # the middle corner v
        np.add.at(tri, second[hits], 1)         # the closing corner w
    return tri


def core_numbers(graph: Graph) -> np.ndarray:
    """k-core decomposition (Batagelj–Zaveršnik peeling)."""
    n = graph.num_vertices
    degree = graph.degrees().copy()
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    heap = [(int(degree[v]), v) for v in range(n)]
    heapq.heapify(heap)
    current = 0
    while heap:
        d, v = heapq.heappop(heap)
        if removed[v] or d != degree[v]:
            continue  # stale heap entry
        removed[v] = True
        current = max(current, d)
        core[v] = current
        for w in graph.neighbors(v):
            w = int(w)
            if not removed[w]:
                degree[w] -= 1
                heapq.heappush(heap, (int(degree[w]), w))
    return core


def bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """BFS distance from ``source``; unreachable vertices get ``-1``."""
    n = graph.num_vertices
    level = np.full(n, -1, dtype=np.int64)
    level[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for w in graph.neighbors(u):
            w = int(w)
            if level[w] < 0:
                level[w] = level[u] + 1
                queue.append(w)
    return level


def modularity(graph: Graph, labels) -> float:
    """Newman modularity of a vertex labeling.

    ``Q = (1/2m) * sum_{uv} (A_uv - d_u d_v / 2m) [c_u == c_v]`` — the
    standard quality score for community detection output (used to
    evaluate the label-propagation and embedding pipelines).

    Fully vectorized: one pass over the CSR edge arrays for the internal
    edge count and one ``bincount`` for the per-community degree mass.
    """
    labels = np.asarray(labels)
    m = graph.num_edges
    if m == 0:
        return 0.0
    deg = graph.degrees().astype(np.float64)
    src, dst = kernels.edge_array(graph.indptr, graph.indices)
    if not graph.directed:
        once = src < dst  # each undirected edge appears twice in the CSR
        src, dst = src[once], dst[once]
    internal = float(np.count_nonzero(labels[src] == labels[dst]))
    _, community = np.unique(labels, return_inverse=True)
    community_degree = np.bincount(community, weights=deg)
    degree_term = float(np.square(community_degree).sum())
    return internal / m - degree_term / (4.0 * m * m)
