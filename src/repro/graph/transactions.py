"""Graph-transaction databases.

Frequent subgraph mining comes in two flavours in the tutorial:

* mining from a **database of graph transactions** (PrefixFPM, gSpan) —
  each transaction is a small labeled graph, such as one molecule;
* mining from a **single big graph** (GraMi, ScaleMine, T-FSM).

This module holds the transaction-side data model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from .csr import Graph

__all__ = ["GraphTransaction", "TransactionDatabase"]


@dataclass(frozen=True)
class GraphTransaction:
    """One labeled graph in a transaction database."""

    graph_id: int
    graph: Graph

    def __post_init__(self) -> None:
        if self.graph.directed:
            raise ValueError("transaction graphs must be undirected")


class TransactionDatabase:
    """An ordered collection of :class:`GraphTransaction`.

    Provides the label-frequency view that FSM algorithms use for their
    initial 1-edge candidate generation.
    """

    def __init__(self, transactions: Iterable[GraphTransaction]) -> None:
        self.transactions: List[GraphTransaction] = list(transactions)
        ids = [t.graph_id for t in self.transactions]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate graph_id in transaction database")

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    def __getitem__(self, i: int) -> GraphTransaction:
        return self.transactions[i]

    def vertex_label_support(self) -> dict:
        """Map vertex label -> number of transactions containing it."""
        support: dict = {}
        for t in self.transactions:
            labels = set(
                t.graph.vertex_label(v) for v in t.graph.vertices()
            )
            for label in labels:
                support[label] = support.get(label, 0) + 1
        return support

    def edge_label_support(self) -> dict:
        """Map (min_vlabel, elabel, max_vlabel) -> transaction count.

        This is the canonical key for a frequent 1-edge pattern in an
        undirected labeled graph.
        """
        support: dict = {}
        for t in self.transactions:
            seen = set()
            g = t.graph
            for u, v in g.edges():
                lu, lv = g.vertex_label(u), g.vertex_label(v)
                el = g.edge_label(u, v) if g.edge_labels is not None else 0
                key = (min(lu, lv), el, max(lu, lv))
                seen.add(key)
            for key in seen:
                support[key] = support.get(key, 0) + 1
        return support
