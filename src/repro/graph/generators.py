"""Synthetic graph generators.

The surveyed systems are evaluated on large public graphs (LiveJournal,
Twitter, ogbn-products, ...).  Those datasets are not available offline,
so every benchmark in this repository runs on synthetic graphs whose
structural regimes match the originals:

* :func:`erdos_renyi` — sparse homogeneous graphs (easy case);
* :func:`barabasi_albert` — heavy-tailed degree distributions, the regime
  where load balancing and work stealing matter;
* :func:`rmat` — Kronecker-style power-law graphs, the standard stand-in
  for web/social graphs in systems papers (Graph500 uses the same model);
* :func:`watts_strogatz` — high clustering, many triangles;
* :func:`planted_partition` — graphs with ground-truth communities, used
  by the GNN node-classification benchmarks;
* :func:`random_labeled_transactions` / :func:`planted_motif_graph` —
  labeled FSM workloads with planted frequent patterns.

All generators take an explicit ``seed`` so benches are reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .csr import Graph, GraphBuilder
from .transactions import GraphTransaction

__all__ = [
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "watts_strogatz",
    "planted_partition",
    "grid_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "random_labeled_graph",
    "random_labeled_transactions",
    "planted_motif_graph",
]


def erdos_renyi(n: int, p: float, seed: int = 0, directed: bool = False) -> Graph:
    """G(n, p) random graph, sampled edge-by-edge in expectation O(pn^2)."""
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=directed)
    builder.add_vertex(n - 1)
    if p <= 0:
        return builder.build(num_vertices=n)
    # Geometric skipping: visit only the edges that exist.
    total = n * n if directed else n * (n - 1) // 2
    k = -1
    log_q = np.log1p(-min(p, 1 - 1e-12))
    while True:
        gap = int(np.floor(np.log(rng.random()) / log_q)) if p < 1 else 0
        k += gap + 1
        if k >= total:
            break
        if directed:
            u, v = divmod(k, n)
            if u != v:
                builder.add_edge(u, v)
        else:
            # Map linear index k to the (u, v) pair with u < v.
            u = int((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * k)) // 2)
            v = k - u * (2 * n - u - 1) // 2 + u + 1
            builder.add_edge(u, v)
    return builder.build(num_vertices=n)


def barabasi_albert(n: int, m: int, seed: int = 0) -> Graph:
    """Preferential-attachment graph: each new vertex attaches to ``m`` others.

    Produces the heavy-tailed degree distribution under which DFS task
    skew (and hence work stealing) becomes visible.
    """
    if m < 1 or m >= n:
        raise ValueError("need 1 <= m < n")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=False)
    # Endpoint pool: vertices appear once per incident edge, which makes a
    # uniform draw from the pool a degree-proportional draw.
    pool: List[int] = []
    for v in range(m):
        builder.add_edge(v, m)
        pool.extend((v, m))
    for v in range(m + 1, n):
        targets: set = set()
        while len(targets) < m:
            targets.add(pool[rng.integers(len(pool))])
        for t in targets:
            builder.add_edge(v, t)
            pool.extend((v, t))
    return builder.build(num_vertices=n)


def rmat(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> Graph:
    """R-MAT / Kronecker power-law graph with ``2**scale`` vertices.

    The (a, b, c, d) defaults are the Graph500 parameters.  Duplicate
    edges and self-loops are dropped, so the edge count is slightly below
    ``edge_factor * 2**scale``.
    """
    n = 1 << scale
    num_edges = edge_factor * n
    rng = np.random.default_rng(seed)
    d = 1.0 - a - b - c
    if d < -1e-9:
        raise ValueError("a + b + c must be <= 1")
    probs = np.array([a, b, c, max(d, 0.0)])
    probs = probs / probs.sum()
    # Vectorized: draw one quadrant per (edge, level).
    quadrants = rng.choice(4, size=(num_edges, scale), p=probs)
    row_bits = (quadrants >> 1) & 1
    col_bits = quadrants & 1
    weights = 1 << np.arange(scale - 1, -1, -1)
    us = (row_bits * weights).sum(axis=1)
    vs = (col_bits * weights).sum(axis=1)
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u, v in zip(us.tolist(), vs.tolist()):
        builder.add_edge(u, v)
    return builder.build(num_vertices=n)


def watts_strogatz(n: int, k: int, p: float, seed: int = 0) -> Graph:
    """Small-world ring lattice with rewiring; rich in triangles."""
    if k % 2 or k >= n:
        raise ValueError("k must be even and < n")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            if rng.random() < p:
                w = int(rng.integers(n))
                while w == u:
                    w = int(rng.integers(n))
                builder.add_edge(u, w)
            else:
                builder.add_edge(u, v)
    return builder.build(num_vertices=n)


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
) -> Tuple[Graph, np.ndarray]:
    """Stochastic block model with equal-size communities.

    Returns ``(graph, labels)`` where ``labels[v]`` is the planted
    community of ``v`` — the ground truth for the GNN node-classification
    benchmarks (the synthetic stand-in for ogbn-style datasets).
    """
    n = num_communities * community_size
    rng = np.random.default_rng(seed)
    labels = np.repeat(np.arange(num_communities), community_size)
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if labels[u] == labels[v] else p_out
            if rng.random() < p:
                builder.add_edge(u, v)
    graph = builder.build(num_vertices=n, vertex_labels=labels)
    return graph, labels


def grid_graph(rows: int, cols: int) -> Graph:
    """2-D grid; a sparse, low-degree graph with known structure."""
    builder = GraphBuilder(directed=False)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                builder.add_edge(v, v + 1)
            if r + 1 < rows:
                builder.add_edge(v, v + cols)
    return builder.build(num_vertices=rows * cols)


def complete_graph(n: int) -> Graph:
    """K_n."""
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u in range(n):
        for v in range(u + 1, n):
            builder.add_edge(u, v)
    return builder.build(num_vertices=n)


def cycle_graph(n: int) -> Graph:
    """C_n."""
    return Graph.from_edges(
        [(i, (i + 1) % n) for i in range(n)], num_vertices=n
    )


def path_graph(n: int) -> Graph:
    """P_n."""
    return Graph.from_edges([(i, i + 1) for i in range(n - 1)], num_vertices=n)


def star_graph(n: int) -> Graph:
    """K_{1,n-1}: one hub, n-1 leaves — the extreme skew case."""
    return Graph.from_edges([(0, i) for i in range(1, n)], num_vertices=n)


def random_labeled_graph(
    n: int,
    p: float,
    num_vertex_labels: int,
    num_edge_labels: int = 1,
    seed: int = 0,
) -> Graph:
    """G(n, p) with uniform random vertex (and optionally edge) labels."""
    rng = np.random.default_rng(seed)
    base = erdos_renyi(n, p, seed=seed + 1)
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u, v in base.edges():
        label = int(rng.integers(num_edge_labels)) if num_edge_labels > 1 else 0
        builder.add_edge(u, v, label=label)
    vertex_labels = rng.integers(num_vertex_labels, size=n)
    return builder.build(num_vertices=n, vertex_labels=vertex_labels)


def random_labeled_transactions(
    num_graphs: int,
    n: int,
    p: float,
    num_vertex_labels: int,
    seed: int = 0,
    planted: Optional[Graph] = None,
    plant_fraction: float = 0.0,
    id_offset: int = 0,
) -> List[GraphTransaction]:
    """A database of small labeled graphs, optionally with a planted motif.

    This is the synthetic stand-in for molecule datasets (MUTAG, NCI1...)
    used by the FSM and graph-classification workloads.  When ``planted``
    is given, a ``plant_fraction`` share of the transactions embed it as a
    subgraph, so its pattern is guaranteed frequent.
    """
    rng = np.random.default_rng(seed)
    out: List[GraphTransaction] = []
    for g_id in range(num_graphs):
        base = random_labeled_graph(
            n, p, num_vertex_labels, seed=int(rng.integers(1 << 31))
        )
        builder = GraphBuilder(directed=False)
        builder.add_vertex(n - 1)
        for u, v in base.edges():
            builder.add_edge(u, v)
        vlabels = list(base.vertex_labels)
        if planted is not None and rng.random() < plant_fraction:
            # Embed the motif on the first k vertices with its own labels.
            k = planted.num_vertices
            if k > n:
                raise ValueError("planted motif larger than transaction")
            for u, v in planted.edges():
                builder.add_edge(u, v)
            for v in range(k):
                vlabels[v] = planted.vertex_label(v)
        graph = builder.build(num_vertices=n, vertex_labels=vlabels)
        out.append(GraphTransaction(graph_id=id_offset + g_id, graph=graph))
    return out


def planted_motif_graph(
    n: int,
    p: float,
    motif: Graph,
    copies: int,
    num_vertex_labels: int,
    seed: int = 0,
) -> Graph:
    """A single big labeled graph with ``copies`` disjoint embeddings of ``motif``.

    The synthetic workload for single-graph FSM (GraMi/T-FSM regime):
    the planted motif is guaranteed to have MNI support >= ``copies``.
    """
    rng = np.random.default_rng(seed)
    k = motif.num_vertices
    if copies * k > n:
        raise ValueError("not enough vertices for the requested copies")
    base = erdos_renyi(n, p, seed=seed + 7)
    builder = GraphBuilder(directed=False)
    builder.add_vertex(n - 1)
    for u, v in base.edges():
        builder.add_edge(u, v)
    vlabels = list(rng.integers(num_vertex_labels, size=n))
    slots = rng.permutation(n)[: copies * k].reshape(copies, k)
    for copy in range(copies):
        mapping = slots[copy]
        for u, v in motif.edges():
            builder.add_edge(int(mapping[u]), int(mapping[v]))
        for v in range(k):
            vlabels[int(mapping[v])] = motif.vertex_label(v)
    return builder.build(num_vertices=n, vertex_labels=vlabels)
