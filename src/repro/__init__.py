"""repro: systems for scalable graph analytics and machine learning.

A from-scratch Python reproduction of the system families surveyed in
"Systems for Scalable Graph Analytics and Machine Learning: Trends and
Methods" (Yan, Yuan, Ahmad, Adhikari; PVLDB 18(12), 2025 / EDBT 2025):

* :mod:`repro.graph` -- CSR graph substrate, generators, I/O, partitioners;
* :mod:`repro.cluster` -- simulated workers/links with traffic accounting;
* :mod:`repro.tlav` -- think-like-a-vertex (Pregel-family) engines;
* :mod:`repro.tlag` -- think-like-a-task engines for subgraph search
  (DFS tasks + stealing, BFS extension, AIMD chunking, BFS-DFS hybrid,
  warp-level GPU simulation, interactive querying);
* :mod:`repro.matching` -- patterns, matching orders, codegen, cliques;
* :mod:`repro.fsm` -- gSpan, PrefixFPM, single-graph MNI mining;
* :mod:`repro.gnn` -- numpy autograd, GCN/SAGE/GAT, sampling, and the
  distributed-training technique set of the paper's Table 2;
* :mod:`repro.core` -- the Figure-1 pipeline API and the Tables-1/2
  taxonomy.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table, figure and quantified claim.
"""

__version__ = "1.0.0"

from . import cluster, core, fsm, gnn, graph, matching, tlag, tlav

__all__ = [
    "graph",
    "cluster",
    "tlav",
    "tlag",
    "matching",
    "fsm",
    "gnn",
    "core",
    "__version__",
]
