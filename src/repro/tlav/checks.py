"""Differential checks for the TLAV engine family.

The in-memory :class:`~repro.tlav.engine.PregelEngine` is the reference;
the vectorized, out-of-core and distributed engines each promise a
declared relation against it:

* vectorized (``*_dense``) — bit-identical (same float operations in
  the same order, just whole-frontier at a time);
* out-of-core GraphD — bit-identical (streaming changes *where* state
  lives, never what is computed).  The random-walk pair is the one that
  flushed out the ``neighbors()``-returns-a-list contract violation;
* distributed — BFS/WCC bit-identical (min combiners are
  order-insensitive), PageRank bounded-error (per-worker combining
  re-associates float sums).

Plus the out-of-core spill-accounting invariant: every spilled byte is
read back exactly once, and the buffer never exceeds its limit.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from typing import Dict, List

import numpy as np

from ..check.invariants import bounded_error, same_bits, same_values
from ..check.registry import BIT_IDENTICAL, BOUNDED_ERROR, invariant, pair
from ..check.workloads import gen_graph_params, make_graph
from ..graph.io import save_adjacency
from ..graph.partition import hash_partition, metis_like_partition
from .algorithms import (
    PageRankProgram,
    RandomWalkProgram,
    bfs,
    pagerank,
    random_walks,
    wcc,
)
from .distributed import run_distributed
from .engine import Aggregator, PregelEngine
from .ooc import OutOfCoreEngine
from .vectorized import bfs_dense, pagerank_dense, wcc_dense


def _gen_graph(rng: np.random.Generator) -> Dict:
    return gen_graph_params(rng, n_range=(8, 80))


def _gen_pagerank(rng: np.random.Generator) -> Dict:
    params = _gen_graph(rng)
    params["iterations"] = int(rng.integers(1, 13))
    return params


def _gen_source(rng: np.random.Generator) -> Dict:
    params = _gen_graph(rng)
    params["source"] = int(rng.integers(1 << 16))
    return params


def _ooc_engine(graph, program, tmp: str, **kwargs) -> OutOfCoreEngine:
    path = os.path.join(tmp, "graph.adj")
    save_adjacency(graph, path)
    # The deprecation is the point: these oracles pin the legacy shim's
    # equivalence to the store-backed engines until it is removed.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return OutOfCoreEngine(
            path, graph.num_vertices, program, workdir=tmp, **kwargs
        )


# ----------------------------------------------------------------------
# Engine vs vectorized
# ----------------------------------------------------------------------


@pair(
    "tlav.pagerank.engine_vs_dense", "tlav", BIT_IDENTICAL,
    gen=_gen_pagerank, floors={"n": 4, "iterations": 1},
)
def _check_pr_dense(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    return same_bits(
        pagerank(graph, iterations=iters),
        pagerank_dense(graph, iterations=iters),
        "pagerank",
    )


@pair(
    "tlav.bfs.engine_vs_dense", "tlav", BIT_IDENTICAL,
    gen=_gen_source, floors={"n": 4, "source": 0},
)
def _check_bfs_dense(params: Dict) -> List[str]:
    graph = make_graph(params)
    source = int(params["source"]) % graph.num_vertices
    return same_bits(bfs(graph, source), bfs_dense(graph, source), "bfs")


@pair(
    "tlav.wcc.engine_vs_dense", "tlav", BIT_IDENTICAL,
    gen=_gen_graph, floors={"n": 4},
)
def _check_wcc_dense(params: Dict) -> List[str]:
    graph = make_graph(params)
    return same_bits(wcc(graph), wcc_dense(graph), "wcc")


# ----------------------------------------------------------------------
# Engine vs out-of-core (GraphD)
# ----------------------------------------------------------------------


def _gen_ooc(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 48))
    params["iterations"] = int(rng.integers(1, 9))
    # Deliberately tiny limits: mid-superstep spills are the point.
    params["buffer_limit"] = int(rng.integers(1, 65))
    return params


@pair(
    "tlav.pagerank.engine_vs_ooc", "tlav", BIT_IDENTICAL,
    gen=_gen_ooc, floors={"n": 4, "iterations": 1, "buffer_limit": 1},
    description="Streaming from disk with any message_buffer_limit "
    "(including 1: spill after every send) is bit-identical to the "
    "in-memory engine.",
)
def _check_pr_ooc(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    with tempfile.TemporaryDirectory(prefix="check-ooc-") as tmp:
        engine = _ooc_engine(
            graph,
            PageRankProgram(0.85, iters),
            tmp,
            aggregators={
                "dangling": Aggregator(reduce=lambda a, b: a + b, initial=0.0)
            },
            max_supersteps=iters + 2,
            message_buffer_limit=int(params["buffer_limit"]),
        )
        got = np.asarray(engine.run(), dtype=np.float64)
    return same_bits(pagerank(graph, iterations=iters), got, "pagerank")


def _gen_walks(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(6, 32))
    params["walk_length"] = int(rng.integers(2, 7))
    params["walks_per_vertex"] = int(rng.integers(1, 3))
    params["walk_seed"] = int(rng.integers(1 << 16))
    params["buffer_limit"] = int(rng.integers(1, 33))
    return params


@pair(
    "tlav.random_walks.engine_vs_ooc", "tlav", BIT_IDENTICAL,
    gen=_gen_walks,
    floors={"n": 4, "walk_length": 2, "walks_per_vertex": 1, "buffer_limit": 1},
    description="Random walks must not depend on which engine runs the "
    "program — this pair caught the out-of-core context handing "
    "programs a plain list where the engine contract says ndarray.",
)
def _check_walks_ooc(params: Dict) -> List[str]:
    graph = make_graph(params)
    length = int(params["walk_length"])
    per_vertex = int(params["walks_per_vertex"])
    seed = int(params.get("walk_seed", 0))
    reference = random_walks(
        graph, walk_length=length, walks_per_vertex=per_vertex, seed=seed
    )
    with tempfile.TemporaryDirectory(prefix="check-ooc-") as tmp:
        engine = _ooc_engine(
            graph,
            RandomWalkProgram(length, per_vertex, seed),
            tmp,
            max_supersteps=length + 3,
            message_buffer_limit=int(params["buffer_limit"]),
        )
        values = engine.run()
    got = [list(path) for collected in values for path in collected]
    return same_values(reference, got, "walks")


def _gen_spill(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 40))
    params["iterations"] = int(rng.integers(1, 6))
    params["buffer_limit"] = int(rng.integers(1, 17))
    return params


@invariant(
    "tlav.ooc.spill_accounting", "tlav", gen=_gen_spill,
    floors={"n": 4, "iterations": 1, "buffer_limit": 1},
    description="Out-of-core I/O accounting: bytes read back equal "
    "bytes spilled, the buffer never holds more than its limit, and "
    "edge traffic is a whole multiple of the store's pageable CSR "
    "bytes (the zero-budget shard cache re-pages every indptr/indices "
    "shard each superstep).",
)
def _check_spill_accounting(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    limit = int(params["buffer_limit"])
    out: List[str] = []
    with tempfile.TemporaryDirectory(prefix="check-ooc-") as tmp:
        engine = _ooc_engine(
            graph,
            PageRankProgram(0.85, iters),
            tmp,
            aggregators={
                "dangling": Aggregator(reduce=lambda a, b: a + b, initial=0.0)
            },
            max_supersteps=iters + 2,
            message_buffer_limit=limit,
        )
        engine.run()
        io = engine.io
        pass_bytes = engine.structure_bytes
    if io.message_bytes_read != io.message_bytes_spilled:
        out.append(
            f"spill: read {io.message_bytes_read} bytes back but spilled "
            f"{io.message_bytes_spilled}"
        )
    if io.peak_buffered_messages > max(limit, 1):
        out.append(
            f"spill: peak_buffered_messages {io.peak_buffered_messages} "
            f"exceeds message_buffer_limit {limit}"
        )
    if pass_bytes and io.edge_bytes_read % pass_bytes:
        out.append(
            f"spill: edge_bytes_read {io.edge_bytes_read} is not a whole "
            f"number of structure passes ({pass_bytes} bytes each)"
        )
    if io.supersteps and io.edge_bytes_read < io.supersteps * pass_bytes:
        out.append(
            f"spill: {io.supersteps} supersteps but only "
            f"{io.edge_bytes_read} edge bytes read"
        )
    return out


# ----------------------------------------------------------------------
# Engine vs distributed
# ----------------------------------------------------------------------


def _gen_distributed(rng: np.random.Generator) -> Dict:
    params = gen_graph_params(rng, n_range=(8, 64))
    params["num_parts"] = int(rng.integers(2, 6))
    params["part_seed"] = int(rng.integers(1 << 16))
    params["metis"] = int(rng.integers(2))
    params["source"] = int(rng.integers(1 << 16))
    params["iterations"] = int(rng.integers(1, 9))
    return params


def _partition_for(graph, params: Dict):
    parts = max(1, int(params["num_parts"]))
    seed = int(params.get("part_seed", 0))
    if int(params.get("metis", 0)):
        return metis_like_partition(graph, parts, seed=seed)
    return hash_partition(graph, parts, seed=seed)


@pair(
    "tlav.bfs.engine_vs_distributed", "tlav", BIT_IDENTICAL,
    gen=_gen_distributed,
    floors={"n": 4, "num_parts": 2, "source": 0, "metis": 0},
    description="BFS under per-worker min-combining is exact: min is "
    "associative/commutative/idempotent, so worker boundaries cannot "
    "change any level.",
)
def _check_bfs_distributed(params: Dict) -> List[str]:
    graph = make_graph(params)
    source = int(params["source"]) % graph.num_vertices
    from .algorithms import BFSProgram

    engine = PregelEngine(
        graph, BFSProgram(source), max_supersteps=graph.num_vertices + 1
    )
    reference = engine.run()
    values, _ = run_distributed(
        graph,
        BFSProgram(source),
        _partition_for(graph, params),
        max_supersteps=graph.num_vertices + 1,
    )
    return same_values(list(reference), list(values), "bfs")


@pair(
    "tlav.pagerank.engine_vs_distributed", "tlav", BOUNDED_ERROR,
    gen=_gen_distributed,
    floors={"n": 4, "num_parts": 2, "iterations": 1, "metis": 0},
    description="Distributed PageRank re-associates float sums at "
    "worker boundaries (combiners), so it is bounded-error (1e-12), "
    "never bit-identical.",
)
def _check_pr_distributed(params: Dict) -> List[str]:
    graph = make_graph(params)
    iters = int(params["iterations"])
    reference = pagerank(graph, iterations=iters)
    values, _ = run_distributed(
        graph,
        PageRankProgram(0.85, iters),
        _partition_for(graph, params),
        aggregators={
            "dangling": Aggregator(reduce=lambda a, b: a + b, initial=0.0)
        },
        max_supersteps=iters + 2,
    )
    return bounded_error(
        reference, np.asarray(values, dtype=np.float64), atol=1e-12,
        label="pagerank",
    )
